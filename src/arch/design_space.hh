/**
 * @file
 * The hardware design space of Table II: six discrete parameters of a
 * Simba-like DNN accelerator, with exact index<->value<->feature
 * conversions.
 *
 * Parameter grids (counts multiply to 3.6e17, matching the paper):
 *   - number of PEs:        {4, 8, 16, 32, 64}          (5 values)
 *   - total MAC units:      multiples of 64 up to 4096  (64 values)
 *   - accum buffer / PE:    multiples of 768 B to 96 KB (128 values)
 *   - weight buffer / PE:   multiples of 256 B to 8 MB  (32768 values)
 *   - input buffer / PE:    multiples of 128 B to 256 KB(2048 values)
 *   - global buffer:        multiples of 2 B to 256 KB  (131072 values)
 */

#ifndef VAESA_ARCH_DESIGN_SPACE_HH
#define VAESA_ARCH_DESIGN_SPACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vaesa {

class Rng;

/** Identifier of one tunable hardware parameter. */
enum class HwParam : int {
    NumPes = 0,
    NumMacs = 1,
    AccumBufBytes = 2,
    WeightBufBytes = 3,
    InputBufBytes = 4,
    GlobalBufBytes = 5,
};

/** Number of tunable hardware parameters. */
constexpr int numHwParams = 6;

/**
 * One concrete accelerator configuration. Buffer capacities are per-PE
 * for the accumulation/weight/input buffers and shared for the global
 * buffer, following the Simba hierarchy.
 */
struct AcceleratorConfig
{
    /** Number of processing elements. */
    std::int64_t numPes = 0;

    /** Total MAC units across the accelerator (numMacs % numPes == 0
     *  is not required by the grid; lanes per PE are rounded down and
     *  must stay >= 1 for validity). */
    std::int64_t numMacs = 0;

    /** Per-PE accumulation buffer capacity in bytes. */
    std::int64_t accumBufBytes = 0;

    /** Per-PE weight buffer capacity in bytes. */
    std::int64_t weightBufBytes = 0;

    /** Per-PE input buffer capacity in bytes. */
    std::int64_t inputBufBytes = 0;

    /** Shared global buffer capacity in bytes. */
    std::int64_t globalBufBytes = 0;

    /** MAC lanes per PE (numMacs / numPes, floored). */
    std::int64_t lanesPerPe() const;

    /** Value of one parameter by enum. */
    std::int64_t value(HwParam param) const;

    /** Set one parameter by enum. */
    void setValue(HwParam param, std::int64_t value);

    /** Human-readable one-line description. */
    std::string describe() const;

    bool operator==(const AcceleratorConfig &other) const = default;
};

/**
 * Static description of the discrete search space: per-parameter grids
 * and conversions between grid indices, physical values, and the
 * log2-feature vectors the VAE consumes.
 */
class DesignSpace
{
  public:
    /** Grid metadata for one parameter. */
    struct ParamSpec
    {
        /** Parameter name as in Table II. */
        std::string name;

        /** Number of discrete values. */
        std::int64_t count;

        /** Largest value (Table II "Max"). */
        std::int64_t max;
    };

    DesignSpace();

    /** Grid metadata for one parameter. */
    const ParamSpec &spec(HwParam param) const;

    /** Number of discrete values of one parameter. */
    std::int64_t count(HwParam param) const;

    /** Physical value at a grid index in [0, count). */
    std::int64_t indexToValue(HwParam param, std::int64_t index) const;

    /** Grid index of the closest legal value to a physical value. */
    std::int64_t valueToIndex(HwParam param, std::int64_t value) const;

    /** Closest legal physical value (snap to grid). */
    std::int64_t snapValue(HwParam param, std::int64_t value) const;

    /** Build a configuration from six grid indices. */
    AcceleratorConfig
    fromIndices(const std::array<std::int64_t, numHwParams> &idx) const;

    /** Recover the six grid indices of a configuration. */
    std::array<std::int64_t, numHwParams>
    toIndices(const AcceleratorConfig &config) const;

    /** Uniform random configuration (every grid point equally likely). */
    AcceleratorConfig randomConfig(Rng &rng) const;

    /** Total number of design points (as double; ~3.6e17). */
    double totalSize() const;

    /**
     * Raw feature vector of a configuration: log2 of each parameter
     * value. These are what the Normalizer min-max scales (Sec IV-A4).
     */
    std::vector<double> toFeatures(const AcceleratorConfig &config) const;

    /**
     * Decode raw (log2-domain) features back to the nearest legal
     * configuration; the reconstruction step of the pipeline.
     */
    AcceleratorConfig fromFeatures(const std::vector<double> &feats) const;

    /** Smallest raw feature value per parameter (log2 of min value). */
    std::vector<double> featureLowerBounds() const;

    /** Largest raw feature value per parameter (log2 of max value). */
    std::vector<double> featureUpperBounds() const;

    /**
     * Architectural validity: at least one MAC lane per PE and nonzero
     * buffers (grid values always give nonzero buffers; the lane check
     * can fail when numMacs < numPes).
     */
    bool isValid(const AcceleratorConfig &config) const;

  private:
    std::array<ParamSpec, numHwParams> specs_;
};

/** Singleton accessor; the grid is immutable program-wide. */
const DesignSpace &designSpace();

} // namespace vaesa

#endif // VAESA_ARCH_DESIGN_SPACE_HH
