/**
 * @file
 * Silicon-area model at the same 40 nm-like operating point as the
 * energy model. Timeloop reports area alongside latency and energy;
 * VAESA's objective is EDP, but area matters for sanity-checking
 * decoded designs (e.g.\ the accelerator_report example) and for
 * EDAP-style analyses.
 *
 * Component estimates follow public 40/45 nm numbers: a 16-bit MAC
 * datapath is a few hundred um^2, dense SRAM is ~0.5 um^2/byte plus
 * peripheral overhead that amortizes with capacity, and a NoC router
 * port costs a few thousand um^2.
 */

#ifndef VAESA_ARCH_AREA_MODEL_HH
#define VAESA_ARCH_AREA_MODEL_HH

#include "arch/design_space.hh"

namespace vaesa {

/** Per-component and full-chip area estimates in um^2. */
class AreaModel
{
  public:
    /** Default 40 nm-like operating point. */
    AreaModel() = default;

    /** Uniformly scaled variant (1.0 = 40 nm defaults). */
    explicit AreaModel(double tech_scale);

    /** Area of one 16-bit MAC unit (datapath + pipeline regs). */
    double macUm2() const;

    /**
     * Area of an SRAM of the given capacity: cell array plus a
     * fixed peripheral term per instance.
     */
    double sramUm2(std::int64_t capacity_bytes) const;

    /** Area of one PE's NoC router port. */
    double routerUm2() const;

    /**
     * Total accelerator area: PEs (lanes x MAC + the three per-PE
     * buffers + router) plus the shared global buffer.
     */
    double totalUm2(const AcceleratorConfig &config) const;

    /** Total area in mm^2 (convenience). */
    double totalMm2(const AcceleratorConfig &config) const;

  private:
    double scale_ = 1.0;
};

} // namespace vaesa

#endif // VAESA_ARCH_AREA_MODEL_HH
