/**
 * @file
 * Per-operation energy model at a 40 nm-like operating point.
 *
 * Substitutes for the Timeloop/Accelergy energy tables the paper uses.
 * Values follow the well-known CMOS estimates (Horowitz, ISSCC'14;
 * Eyeriss): a 16-bit MAC costs ~1 pJ, SRAM access energy grows roughly
 * with the square root of capacity, and DRAM access costs two orders
 * of magnitude more than small SRAM. Only *relative* energies matter
 * for EDP orderings, which is what the reproduction targets.
 */

#ifndef VAESA_ARCH_ENERGY_MODEL_HH
#define VAESA_ARCH_ENERGY_MODEL_HH

#include <cstdint>

namespace vaesa {

/**
 * Energy-per-action lookup for the accelerator's component types.
 * All energies are in picojoules per 16-bit word action.
 */
class EnergyModel
{
  public:
    /** Default 40 nm-like operating point. */
    EnergyModel() = default;

    /**
     * Construct with an overall technology scale factor (1.0 = 40 nm
     * defaults; smaller scales all energies down uniformly).
     */
    explicit EnergyModel(double tech_scale);

    /** Energy of one 16-bit multiply-accumulate. */
    double macPj() const;

    /**
     * Energy of one 16-bit word access to an SRAM of the given
     * capacity: base + k * sqrt(capacity in KiB).
     */
    double sramAccessPj(std::int64_t capacity_bytes) const;

    /** Energy of one register-file access inside a PE. */
    double registerAccessPj() const;

    /** Energy of one 16-bit word DRAM access. */
    double dramAccessPj() const;

    /** Energy of moving one word over the on-chip network (per hop). */
    double nocHopPj() const;

  private:
    double scale_ = 1.0;
};

} // namespace vaesa

#endif // VAESA_ARCH_ENERGY_MODEL_HH
