#include "arch/area_model.hh"

#include "util/logging.hh"

namespace vaesa {

namespace {

// 40 nm-like component areas in um^2.
constexpr double macArea = 700.0;
constexpr double sramAreaPerByte = 0.6;
constexpr double sramPeripheralArea = 5000.0;
constexpr double routerArea = 12000.0;

} // namespace

AreaModel::AreaModel(double tech_scale)
    : scale_(tech_scale)
{
    if (tech_scale <= 0.0)
        fatal("AreaModel technology scale must be positive, got ",
              tech_scale);
}

double
AreaModel::macUm2() const
{
    return scale_ * macArea;
}

double
AreaModel::sramUm2(std::int64_t capacity_bytes) const
{
    if (capacity_bytes <= 0)
        panic("sramUm2: non-positive capacity ", capacity_bytes);
    return scale_ * (sramPeripheralArea +
                     sramAreaPerByte *
                         static_cast<double>(capacity_bytes));
}

double
AreaModel::routerUm2() const
{
    return scale_ * routerArea;
}

double
AreaModel::totalUm2(const AcceleratorConfig &config) const
{
    if (!designSpace().isValid(config))
        panic("totalUm2 of an invalid configuration");
    const double per_pe =
        static_cast<double>(config.lanesPerPe()) * macUm2() +
        sramUm2(config.accumBufBytes) +
        sramUm2(config.weightBufBytes) +
        sramUm2(config.inputBufBytes) + routerUm2();
    return static_cast<double>(config.numPes) * per_pe +
           sramUm2(config.globalBufBytes);
}

double
AreaModel::totalMm2(const AcceleratorConfig &config) const
{
    return totalUm2(config) / 1e6;
}

} // namespace vaesa
