#include "arch/energy_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace vaesa {

namespace {

// 40 nm-like per-action energies in pJ for 16-bit words.
constexpr double macEnergy = 1.0;
constexpr double registerEnergy = 0.15;
constexpr double sramBaseEnergy = 0.4;
constexpr double sramSqrtCoefficient = 0.45; // pJ per sqrt(KiB)
constexpr double dramEnergy = 200.0;
constexpr double nocHopEnergy = 0.35;

} // namespace

EnergyModel::EnergyModel(double tech_scale)
    : scale_(tech_scale)
{
    if (tech_scale <= 0.0)
        fatal("EnergyModel technology scale must be positive, got ",
              tech_scale);
}

double
EnergyModel::macPj() const
{
    return scale_ * macEnergy;
}

double
EnergyModel::sramAccessPj(std::int64_t capacity_bytes) const
{
    if (capacity_bytes <= 0)
        panic("sramAccessPj: non-positive capacity ", capacity_bytes);
    const double kib = static_cast<double>(capacity_bytes) / 1024.0;
    return scale_ * (sramBaseEnergy +
                     sramSqrtCoefficient * std::sqrt(kib));
}

double
EnergyModel::registerAccessPj() const
{
    return scale_ * registerEnergy;
}

double
EnergyModel::dramAccessPj() const
{
    return scale_ * dramEnergy;
}

double
EnergyModel::nocHopPj() const
{
    return scale_ * nocHopEnergy;
}

} // namespace vaesa
