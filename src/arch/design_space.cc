#include "arch/design_space.hh"

#include <cmath>
#include <sstream>

#include "util/contracts.hh"
#include "util/logging.hh"
#include "util/numeric.hh"
#include "util/rng.hh"

namespace vaesa {

std::int64_t
AcceleratorConfig::lanesPerPe() const
{
    if (numPes <= 0)
        return 0;
    return numMacs / numPes;
}

std::int64_t
AcceleratorConfig::value(HwParam param) const
{
    switch (param) {
      case HwParam::NumPes: return numPes;
      case HwParam::NumMacs: return numMacs;
      case HwParam::AccumBufBytes: return accumBufBytes;
      case HwParam::WeightBufBytes: return weightBufBytes;
      case HwParam::InputBufBytes: return inputBufBytes;
      case HwParam::GlobalBufBytes: return globalBufBytes;
    }
    panic("AcceleratorConfig::value: bad parameter");
}

void
AcceleratorConfig::setValue(HwParam param, std::int64_t value)
{
    switch (param) {
      case HwParam::NumPes: numPes = value; return;
      case HwParam::NumMacs: numMacs = value; return;
      case HwParam::AccumBufBytes: accumBufBytes = value; return;
      case HwParam::WeightBufBytes: weightBufBytes = value; return;
      case HwParam::InputBufBytes: inputBufBytes = value; return;
      case HwParam::GlobalBufBytes: globalBufBytes = value; return;
    }
    panic("AcceleratorConfig::setValue: bad parameter");
}

std::string
AcceleratorConfig::describe() const
{
    std::ostringstream oss;
    oss << "pes=" << numPes << " macs=" << numMacs
        << " accum=" << accumBufBytes << "B"
        << " weight=" << weightBufBytes << "B"
        << " input=" << inputBufBytes << "B"
        << " global=" << globalBufBytes << "B";
    return oss.str();
}

DesignSpace::DesignSpace()
{
    specs_[0] = {"No. of PEs", 5, 64};
    specs_[1] = {"No. of MAC units", 64, 4096};
    specs_[2] = {"Accum. buffer size", 128, 96 * 1024};
    specs_[3] = {"Weight buffer size", 32768, 8 * 1024 * 1024};
    specs_[4] = {"Input buffer size", 2048, 256 * 1024};
    specs_[5] = {"Global buffer size", 131072, 256 * 1024};
}

const DesignSpace::ParamSpec &
DesignSpace::spec(HwParam param) const
{
    return specs_[static_cast<int>(param)];
}

std::int64_t
DesignSpace::count(HwParam param) const
{
    return spec(param).count;
}

std::int64_t
DesignSpace::indexToValue(HwParam param, std::int64_t index) const
{
    const ParamSpec &s = spec(param);
    if (index < 0 || index >= s.count)
        panic("DesignSpace: index ", index, " out of [0,", s.count,
              ") for ", s.name);
    if (param == HwParam::NumPes) {
        // Geometric grid: 4, 8, 16, 32, 64.
        return std::int64_t{4} << index;
    }
    // Linear grids: step, 2*step, ..., max.
    const std::int64_t step = s.max / s.count;
    return step * (index + 1);
}

std::int64_t
DesignSpace::valueToIndex(HwParam param, std::int64_t value) const
{
    const ParamSpec &s = spec(param);
    if (param == HwParam::NumPes) {
        std::int64_t best_idx = 0;
        double best_err = 1e300;
        for (std::int64_t i = 0; i < s.count; ++i) {
            const double err =
                std::fabs(std::log2(static_cast<double>(
                              indexToValue(param, i))) -
                          std::log2(std::max<double>(1.0,
                              static_cast<double>(value))));
            if (err < best_err) {
                best_err = err;
                best_idx = i;
            }
        }
        return best_idx;
    }
    const std::int64_t step = s.max / s.count;
    // Round to the nearest multiple of step, clamped into the grid.
    std::int64_t idx = (2 * value + step) / (2 * step) - 1;
    if (idx < 0)
        idx = 0;
    if (idx >= s.count)
        idx = s.count - 1;
    return idx;
}

std::int64_t
DesignSpace::snapValue(HwParam param, std::int64_t value) const
{
    const std::int64_t idx = valueToIndex(param, value);
    const std::int64_t snapped = indexToValue(param, idx);
    VAESA_ENSURE(valueToIndex(param, snapped) == idx,
                 "snap-to-grid not idempotent for ", spec(param).name,
                 ": value=", value, " snapped=", snapped);
    return snapped;
}

AcceleratorConfig
DesignSpace::fromIndices(
    const std::array<std::int64_t, numHwParams> &idx) const
{
    AcceleratorConfig config;
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        config.setValue(param, indexToValue(param, idx[p]));
    }
    return config;
}

std::array<std::int64_t, numHwParams>
DesignSpace::toIndices(const AcceleratorConfig &config) const
{
    std::array<std::int64_t, numHwParams> idx{};
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        idx[p] = valueToIndex(param, config.value(param));
    }
    return idx;
}

AcceleratorConfig
DesignSpace::randomConfig(Rng &rng) const
{
    std::array<std::int64_t, numHwParams> idx{};
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        idx[p] = static_cast<std::int64_t>(
            rng.index(static_cast<std::uint64_t>(count(param))));
    }
    return fromIndices(idx);
}

double
DesignSpace::totalSize() const
{
    double size = 1.0;
    for (const ParamSpec &s : specs_)
        size *= static_cast<double>(s.count);
    return size;
}

std::vector<double>
DesignSpace::toFeatures(const AcceleratorConfig &config) const
{
    std::vector<double> feats(numHwParams);
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        feats[p] = log2d(static_cast<double>(config.value(param)));
    }
    return feats;
}

AcceleratorConfig
DesignSpace::fromFeatures(const std::vector<double> &feats) const
{
    if (feats.size() != numHwParams)
        panic("DesignSpace::fromFeatures: expected ", numHwParams,
              " features, got ", feats.size());
    AcceleratorConfig config;
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        VAESA_CHECK_FINITE(feats[p], "feature for ",
                           spec(param).name,
                           " decoded from the latent space");
        const double raw = std::exp2(feats[p]);
        const auto value = static_cast<std::int64_t>(
            std::llround(std::min(raw, 9.0e15)));
        config.setValue(param, snapValue(param, value));
    }
    VAESA_ENSURE(isValid(config),
                 "snapped config out of domain: ", config.describe());
    return config;
}

std::vector<double>
DesignSpace::featureLowerBounds() const
{
    std::vector<double> lo(numHwParams);
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        lo[p] = log2d(static_cast<double>(indexToValue(param, 0)));
    }
    return lo;
}

std::vector<double>
DesignSpace::featureUpperBounds() const
{
    std::vector<double> hi(numHwParams);
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        hi[p] = log2d(static_cast<double>(
            indexToValue(param, count(param) - 1)));
    }
    return hi;
}

bool
DesignSpace::isValid(const AcceleratorConfig &config) const
{
    if (config.numPes <= 0 || config.numMacs <= 0)
        return false;
    if (config.lanesPerPe() < 1)
        return false;
    return config.accumBufBytes > 0 && config.weightBufBytes > 0 &&
           config.inputBufBytes > 0 && config.globalBufBytes > 0;
}

const DesignSpace &
designSpace()
{
    static const DesignSpace instance;
    return instance;
}

} // namespace vaesa
