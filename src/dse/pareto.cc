#include "dse/pareto.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vaesa {

std::vector<std::size_t>
paretoFront(const std::vector<BiPoint> &pts)
{
    std::vector<std::size_t> order(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
        order[i] = i;
    // Sort by first coordinate, tie-break by second; the front is
    // then the running minimum of the second coordinate.
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (pts[a].first != pts[b].first)
                      return pts[a].first < pts[b].first;
                  if (pts[a].second != pts[b].second)
                      return pts[a].second < pts[b].second;
                  return a < b;
              });

    std::vector<std::size_t> front;
    double best_second = 0.0;
    bool have = false;
    double last_first = 0.0;
    for (std::size_t idx : order) {
        const auto &[x, y] = pts[idx];
        if (!have) {
            front.push_back(idx);
            best_second = y;
            last_first = x;
            have = true;
            continue;
        }
        if (y < best_second) {
            front.push_back(idx);
            best_second = y;
            last_first = x;
        } else if (x == last_first && y == best_second) {
            // Exact duplicate of the last front point: skip (keep
            // first occurrence only).
        }
    }
    return front;
}

bool
isDominated(const BiPoint &candidate, const std::vector<BiPoint> &pts)
{
    for (const BiPoint &p : pts) {
        const bool no_worse = p.first <= candidate.first &&
                              p.second <= candidate.second;
        const bool better = p.first < candidate.first ||
                            p.second < candidate.second;
        if (no_worse && better)
            return true;
    }
    return false;
}

double
hypervolume(const std::vector<BiPoint> &points,
            const BiPoint &reference)
{
    if (points.empty())
        return 0.0;
    for (const BiPoint &p : points) {
        if (p.first > reference.first || p.second > reference.second)
            panic("hypervolume: reference point does not dominate "
                  "every point");
    }
    // Reduce to the clean front: ascending x, strictly decreasing y.
    std::vector<BiPoint> front;
    for (std::size_t idx : paretoFront(points))
        front.push_back(points[idx]);

    // Left-to-right sweep: each front point owns the strip from its
    // x to the next point's x (the last strip ends at the
    // reference).
    double area = 0.0;
    for (std::size_t i = 0; i < front.size(); ++i) {
        const double next_x = (i + 1 < front.size())
                                  ? front[i + 1].first
                                  : reference.first;
        area += (next_x - front[i].first) *
                (reference.second - front[i].second);
    }
    return area;
}

} // namespace vaesa
