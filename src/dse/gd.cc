#include "dse/gd.hh"

#include "util/logging.hh"
#include "util/numeric.hh"

namespace vaesa {

GradientDescent::GradientDescent(const GdOptions &options)
    : options_(options)
{
}

GdResult
GradientDescent::run(const DifferentiableFn &fn,
                     const std::vector<double> &x0) const
{
    const bool project =
        !options_.lower.empty() || !options_.upper.empty();
    if (project && (options_.lower.size() != x0.size() ||
                    options_.upper.size() != x0.size())) {
        panic("GradientDescent: bound dimensionality mismatch");
    }

    GdResult result;
    result.x = x0;
    std::vector<double> velocity(x0.size(), 0.0);
    std::vector<double> grad;

    result.valueTrace.reserve(options_.steps + 1);
    result.value = fn(result.x, nullptr);
    result.valueTrace.push_back(result.value);

    for (std::size_t step = 0; step < options_.steps; ++step) {
        fn(result.x, &grad);
        if (grad.size() != result.x.size())
            panic("GradientDescent: gradient dimensionality mismatch");
        for (std::size_t d = 0; d < result.x.size(); ++d) {
            velocity[d] = options_.momentum * velocity[d] -
                          options_.learningRate * grad[d];
            result.x[d] += velocity[d];
            if (project) {
                result.x[d] = clampd(result.x[d], options_.lower[d],
                                     options_.upper[d]);
            }
        }
        result.value = fn(result.x, nullptr);
        result.valueTrace.push_back(result.value);
    }
    return result;
}

} // namespace vaesa
