#include "dse/gp.hh"

#include <cmath>

#include "tensor/linalg.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace vaesa {

GaussianProcess::GaussianProcess(Kernel kernel)
    : kernel_(kernel)
{
}

GaussianProcess::GaussianProcess(Kernel kernel, const Hyper &hyper)
    : kernel_(kernel), hyper_(hyper)
{
}

double
GaussianProcess::kernelValue(const std::vector<double> &a,
                             const std::vector<double> &b) const
{
    const double d2 = squaredDistance(a, b);
    const double ls = hyper_.lengthscale;
    switch (kernel_) {
      case Kernel::Rbf:
        return std::exp(-0.5 * d2 / (ls * ls));
      case Kernel::Matern52: {
        const double r = std::sqrt(d2) / ls;
        const double sq5r = std::sqrt(5.0) * r;
        return (1.0 + sq5r + 5.0 * r * r / 3.0) * std::exp(-sq5r);
      }
    }
    panic("GaussianProcess: bad kernel");
}

void
GaussianProcess::fit(const std::vector<std::vector<double>> &xs,
                     const std::vector<double> &ys)
{
    if (xs.empty() || xs.size() != ys.size())
        panic("GaussianProcess::fit: bad observation set (",
              xs.size(), " xs, ", ys.size(), " ys)");
    xs_ = xs;

    yMean_ = mean(ys);
    yStd_ = stddev(ys);
    // stddev() is NaN for fewer than two observations and ~0 for
    // identical ones; !(x > t) is the NaN-safe form of (x < t), so
    // both degenerate sets fall back to unit scale instead of
    // dividing by NaN/0 and poisoning every standardized label.
    if (!(yStd_ > 1e-12))
        yStd_ = 1.0;
    std::vector<double> y_std(ys.size());
    for (std::size_t i = 0; i < ys.size(); ++i)
        y_std[i] = (ys[i] - yMean_) / yStd_;

    const std::size_t n = xs_.size();
    Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double v = kernelValue(xs_[i], xs_[j]);
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += hyper_.noiseVar;
    }

    choleskyJittered(k, choleskyLower_);
    alpha_ = solveLowerTransposed(choleskyLower_,
                                  solveLower(choleskyLower_, y_std));

    // log p(y) = -0.5 y^T alpha - sum log L_ii - n/2 log(2 pi).
    double quad = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        quad += y_std[i] * alpha_[i];
    double log_det_half = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        log_det_half += std::log(choleskyLower_(i, i));
    logLik_ = -0.5 * quad - log_det_half -
              0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
}

GaussianProcess::Prediction
GaussianProcess::predict(const std::vector<double> &x) const
{
    if (xs_.empty())
        panic("GaussianProcess::predict before fit");
    const std::size_t n = xs_.size();
    std::vector<double> k_star(n);
    for (std::size_t i = 0; i < n; ++i)
        k_star[i] = kernelValue(x, xs_[i]);

    double mean_std = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        mean_std += k_star[i] * alpha_[i];

    const std::vector<double> v = solveLower(choleskyLower_, k_star);
    double var_std = kernelValue(x, x);
    for (double vi : v)
        var_std -= vi * vi;
    // Clamp BEFORE the caller takes sqrt: near-duplicate rows make
    // the subtraction catastrophically cancel, which can leave a
    // slightly negative or (through a degenerate solve) NaN residual
    // variance. (var_std < 0.0) is false for NaN and would let it
    // through, so test the NaN-safe complement instead.
    if (!(var_std > 0.0))
        var_std = 0.0;

    return {yMean_ + yStd_ * mean_std, yStd_ * yStd_ * var_std};
}

double
GaussianProcess::logMarginalLikelihood() const
{
    if (xs_.empty())
        panic("logMarginalLikelihood before fit");
    return logLik_;
}

void
GaussianProcess::fitWithHyperSearch(
    const std::vector<std::vector<double>> &xs,
    const std::vector<double> &ys)
{
    static const double lengthscales[] = {0.05, 0.1, 0.2, 0.4, 0.8,
                                          1.6};
    static const double noises[] = {1e-6, 1e-4, 1e-2};

    Hyper best = hyper_;
    double best_lik = -1e300;
    for (double ls : lengthscales) {
        for (double nv : noises) {
            hyper_.lengthscale = ls;
            hyper_.noiseVar = nv;
            fit(xs, ys);
            if (logLik_ > best_lik) {
                best_lik = logLik_;
                best = hyper_;
            }
        }
    }
    hyper_ = best;
    fit(xs, ys);
}

double
normalPdf(double z)
{
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

} // namespace vaesa
