#include "dse/random_search.hh"

namespace vaesa {

SearchTrace
RandomSearch::run(Objective &objective, std::size_t samples,
                  Rng &rng, ThreadPool *pool) const
{
    const std::vector<double> lo = objective.lowerBounds();
    const std::vector<double> hi = objective.upperBounds();
    // Draw every point first (the evaluation consumes no rng), then
    // score them as one batch: the rng stream and the trace are
    // identical with and without a pool.
    std::vector<std::vector<double>> xs(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        xs[i].resize(objective.dim());
        for (std::size_t d = 0; d < xs[i].size(); ++d)
            xs[i][d] = rng.uniform(lo[d], hi[d]);
    }
    const std::vector<double> values =
        evaluatePoints(objective, xs, pool);

    SearchTrace trace;
    for (std::size_t i = 0; i < samples; ++i)
        trace.add(xs[i], values[i]);
    return trace;
}

} // namespace vaesa
