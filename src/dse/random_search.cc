#include "dse/random_search.hh"

namespace vaesa {

SearchTrace
RandomSearch::run(Objective &objective, std::size_t samples,
                  Rng &rng) const
{
    const std::vector<double> lo = objective.lowerBounds();
    const std::vector<double> hi = objective.upperBounds();
    SearchTrace trace;
    for (std::size_t i = 0; i < samples; ++i) {
        std::vector<double> x(objective.dim());
        for (std::size_t d = 0; d < x.size(); ++d)
            x[d] = rng.uniform(lo[d], hi[d]);
        trace.add(x, objective.evaluate(x));
    }
    return trace;
}

} // namespace vaesa
