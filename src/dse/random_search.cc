#include "dse/random_search.hh"

#include <algorithm>

#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/trace.hh"

namespace vaesa {

SearchTrace
RandomSearch::run(Objective &objective, std::size_t samples, Rng &rng,
                  ThreadPool *pool,
                  const SearchCheckpointConfig *checkpoint,
                  const CancelToken *cancel) const
{
    const std::vector<double> lo = objective.lowerBounds();
    const std::vector<double> hi = objective.upperBounds();

    SearchTrace trace;
    if (checkpoint)
        resumeSearch(*checkpoint, SearchDriver::Random, trace, rng);

    // Without checkpointing the whole budget is one chunk (draw every
    // point, then score as one batch); with it, the run snapshots at
    // chunk boundaries. Draws stay strictly before evaluations in
    // every chunk and evaluation consumes no rng, so the stream --
    // and therefore the trace -- is identical in all three modes
    // (plain, checkpointed, resumed).
    // A cancellable run without checkpointing still needs bounded
    // chunks so the token is observed between batches; chunking does
    // not perturb the rng stream, so the trace stays a prefix of the
    // uncancelled run's.
    const std::size_t chunk =
        checkpoint ? std::max<std::size_t>(1, checkpoint->every)
                   : (cancel ? std::min<std::size_t>(
                                   std::max<std::size_t>(1, samples),
                                   64)
                             : samples);
    static metrics::Counter &chunksMetric =
        metrics::counter("search.random.chunks");
    static metrics::Histogram &chunkNsMetric =
        metrics::histogram("search.random.chunk_ns");
    while (trace.points.size() < samples) {
        if (cancel && cancel->expired())
            return trace; // partial best-so-far
        const trace::Span chunkSpan("random.chunk");
        const metrics::ScopedTimer chunkTimer(chunkNsMetric);
        chunksMetric.inc();
        faultCheck("random_chunk");
        const std::size_t count =
            std::min(chunk, samples - trace.points.size());
        std::vector<std::vector<double>> xs(count);
        for (std::size_t i = 0; i < count; ++i) {
            xs[i].resize(objective.dim());
            for (std::size_t d = 0; d < xs[i].size(); ++d)
                xs[i][d] = rng.uniform(lo[d], hi[d]);
        }
        const std::vector<double> values =
            evaluatePoints(objective, xs, pool);
        for (std::size_t i = 0; i < count; ++i)
            trace.add(xs[i], values[i]);

        if (checkpoint && !checkpoint->path.empty()) {
            SearchSnapshot snapshot;
            snapshot.driver = SearchDriver::Random;
            snapshot.trace = trace;
            snapshot.rng = rng.state();
            if (auto err =
                    saveSearchSnapshot(checkpoint->path, snapshot))
                warn("search snapshot save failed: ",
                     err->describe());
        }
    }
    return trace;
}

} // namespace vaesa
