/**
 * @file
 * Multi-workload co-design: one accelerator configuration scored
 * against a weighted traffic mix of whole networks, instead of a
 * single workload's unique layers. This is the co-design question
 * the zoo exists for — does one design serve BERT-class GEMMs,
 * MobileNet depthwise stacks and DLRM skinny MLPs at once, and what
 * does it give up against per-workload specialists (bench/pareto_zoo
 * measures exactly that)?
 *
 * The traffic-mix file format is one entry per line:
 *
 *   # comment lines and blank lines are ignored
 *   <workload-name> <weight>
 *
 * where <workload-name> is any built-in or zoo workload
 * (workloadByName's namespace) and <weight> is a positive finite
 * relative rate. Weights are used as given (not normalized), so the
 * objective is sum_i weight_i * EDP_i over the mix.
 */

#ifndef VAESA_DSE_MULTI_WORKLOAD_HH
#define VAESA_DSE_MULTI_WORKLOAD_HH

#include <string>
#include <vector>

#include "dse/objective.hh"
#include "util/load_error.hh"
#include "workload/networks.hh"

namespace vaesa {

/** One workload of a traffic mix with its relative rate. */
struct TrafficEntry
{
    /** The (occurrence-counted) workload. */
    Workload workload;

    /** Positive relative rate of this workload in the mix. */
    double weight = 1.0;
};

/** A weighted set of workloads scored as one objective. */
struct TrafficMix
{
    /** The workloads and their weights, in file/insertion order. */
    std::vector<TrafficEntry> entries;

    /** Sum of entry weights. */
    double totalWeight() const;
};

/**
 * Build a mix from (name, weight) pairs through tryWorkloadByName.
 * Returns a Malformed LoadError for an unknown name, a non-positive
 * or non-finite weight, a duplicate name, or an empty list.
 */
Expected<TrafficMix>
makeTrafficMix(const std::vector<std::pair<std::string, double>>
                   &namedWeights);

/**
 * Parse a traffic-mix file in the format above. Errors carry the
 * file name and 1-based line number (OpenFailed when unreadable,
 * Malformed on bad content or an empty mix).
 */
Expected<TrafficMix> parseTrafficMixFile(const std::string &path);

/**
 * Flatten a mix into one layer pool for dataset generation: every
 * unique layer of every entry, with sampling weight
 * entry.weight * countOf(layer). Shapes shared across entries merge
 * (first name wins, weights sum), so weighted sampling over the
 * result draws layers proportionally to their traffic-weighted
 * occurrence across the whole mix.
 */
std::vector<LayerShape> mixLayerPool(const TrafficMix &mix,
                                     std::vector<double> *weights_out);

/**
 * Weighted multi-workload objective over the same [0,1]^6 input box
 * as InputSpaceObjective: a point decodes to one discrete
 * configuration whose score is sum_i weight_i * metric_i with every
 * workload rolled up occurrence-counted. Any unmappable workload
 * makes the whole point invalid (a co-designed accelerator must run
 * ALL of its traffic).
 */
class MultiWorkloadObjective : public Objective
{
  public:
    /**
     * @param evaluator scoring backend (borrowed; must outlive this).
     * @param mix non-empty weighted workload set.
     * @param metric per-workload quantity to combine (default EDP).
     */
    MultiWorkloadObjective(const Evaluator &evaluator, TrafficMix mix,
                           Metric metric = Metric::Edp);

    std::size_t dim() const override;
    std::vector<double> lowerBounds() const override;
    std::vector<double> upperBounds() const override;
    double evaluate(const std::vector<double> &x) override;

    /** Decode + Evaluator are stateless-const and deterministic. */
    bool threadSafeEvaluate() const override { return true; }

    /**
     * Batch scoring through the counted evaluateConfigBatch pipeline,
     * one pass per mix entry, with the weighted combination and the
     * per-point recovery semantics applied in input order on the
     * calling thread — bit-identical to the per-point path, falling
     * back to it if the batch phase throws or no pool is given.
     */
    std::vector<double> evaluateBatch(
        const std::vector<std::vector<double>> &xs,
        ThreadPool *pool) override;

    /** Decode a box point to the configuration it scores. */
    AcceleratorConfig decode(const std::vector<double> &x) const;

    /** The mix being optimized. */
    const TrafficMix &mix() const { return mix_; }

    /** The per-workload metric being combined. */
    Metric metric() const { return metric_; }

  private:
    const Evaluator &evaluator_;
    TrafficMix mix_;
    Metric metric_;
};

} // namespace vaesa

#endif // VAESA_DSE_MULTI_WORKLOAD_HH
