#include "dse/objective.hh"

#include <algorithm>
#include <cmath>
#include <array>
#include <exception>

#include "sched/parallel_evaluator.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/numeric.hh"
#include "util/thread_pool.hh"

namespace vaesa {

namespace {

/**
 * Objective-evaluation instruments. Every search driver funnels
 * candidate scoring through evaluateRecovered(), so counting here
 * covers random/GA/BO/SA uniformly, including pool-parallel batches
 * (counters and histograms are safe under concurrent writers).
 */
struct EvalMetrics
{
    metrics::Counter &evals = metrics::counter("search.evals");
    metrics::Counter &invalid =
        metrics::counter("search.eval_invalid");
    metrics::Histogram &evalNs =
        metrics::histogram("search.eval_ns");
};

EvalMetrics &
evalMetrics()
{
    static EvalMetrics m;
    return m;
}

} // namespace

double
evaluateRecovered(Objective &objective, const std::vector<double> &x)
{
    EvalMetrics &em = evalMetrics();
    em.evals.inc();
    const metrics::ScopedTimer timer(em.evalNs);
    // Two attempts: injected faults fire once, so the retry separates
    // transient failures (which succeed on attempt two) from
    // persistent ones (which score invalid).
    constexpr int maxAttempts = 2;
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        try {
            faultCheck("eval_throw");
            const double value =
                faultMaybeNan("eval_nan", objective.evaluate(x));
            if (std::isnan(value)) {
                warn("evaluation produced NaN (attempt ", attempt,
                     "/", maxAttempts, ")");
                continue;
            }
            return value;
        } catch (const std::exception &e) {
            warn("evaluation failed: ", e.what(), " (attempt ",
                 attempt, "/", maxAttempts, ")");
        }
    }
    warn("marking candidate invalid after ", maxAttempts,
         " failed evaluations");
    em.invalid.inc();
    return invalidScore;
}

/**
 * Valid to reuse the raw batch value because batch evaluation is
 * deterministic: the per-point path's retry would recompute the
 * identical value, so replaying the recovery protocol over it
 * preserves bit-identical results and identical fault-site hits.
 */
double
recoverRawObjective(double raw)
{
    EvalMetrics &em = evalMetrics();
    em.evals.inc();
    const metrics::ScopedTimer timer(em.evalNs);
    constexpr int maxAttempts = 2;
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
        try {
            faultCheck("eval_throw");
            const double value = faultMaybeNan("eval_nan", raw);
            if (std::isnan(value)) {
                warn("evaluation produced NaN (attempt ", attempt,
                     "/", maxAttempts, ")");
                continue;
            }
            return value;
        } catch (const std::exception &e) {
            warn("evaluation failed: ", e.what(), " (attempt ",
                 attempt, "/", maxAttempts, ")");
        }
    }
    warn("marking candidate invalid after ", maxAttempts,
         " failed evaluations");
    em.invalid.inc();
    return invalidScore;
}

std::vector<double>
Objective::evaluateBatch(const std::vector<std::vector<double>> &xs,
                         ThreadPool *pool)
{
    std::vector<double> values(xs.size());
    if (pool && threadSafeEvaluate()) {
        pool->parallelFor(xs.size(), [&](std::size_t i) {
            values[i] = evaluateRecovered(*this, xs[i]);
        });
    } else {
        for (std::size_t i = 0; i < xs.size(); ++i)
            values[i] = evaluateRecovered(*this, xs[i]);
    }
    return values;
}

std::vector<double>
evaluatePoints(Objective &objective,
               const std::vector<std::vector<double>> &xs,
               ThreadPool *pool)
{
    return objective.evaluateBatch(xs, pool);
}

void
SearchTrace::add(const std::vector<double> &x, double value)
{
    points.push_back({x, value});
}

double
SearchTrace::bestAfter(std::size_t n) const
{
    double best = invalidScore;
    const std::size_t limit = std::min(n, points.size());
    for (std::size_t i = 0; i < limit; ++i)
        best = std::min(best, points[i].value);
    return best;
}

double
SearchTrace::best() const
{
    return bestAfter(points.size());
}

std::vector<double>
SearchTrace::bestPoint() const
{
    double best = invalidScore;
    std::vector<double> arg;
    for (const TracePoint &p : points) {
        if (p.value < best) {
            best = p.value;
            arg = p.x;
        }
    }
    return arg;
}

std::vector<double>
SearchTrace::bestCurve() const
{
    std::vector<double> curve;
    curve.reserve(points.size());
    double best = invalidScore;
    for (const TracePoint &p : points) {
        best = std::min(best, p.value);
        curve.push_back(best);
    }
    return curve;
}

std::size_t
SearchTrace::samplesToReach(double threshold) const
{
    for (std::size_t i = 0; i < points.size(); ++i)
        if (points[i].value <= threshold)
            return i + 1;
    return 0;
}

double
metricValue(const EvalResult &result, Metric metric)
{
    if (!result.valid)
        return invalidScore;
    switch (metric) {
      case Metric::Edp: return result.edp;
      case Metric::Latency: return result.latencyCycles;
      case Metric::Energy: return result.energyPj;
    }
    panic("metricValue: bad metric");
}

const char *
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Edp: return "EDP";
      case Metric::Latency: return "latency";
      case Metric::Energy: return "energy";
    }
    panic("metricName: bad metric");
}

AcceleratorConfig
decodeBoxPoint(const std::vector<double> &x)
{
    if (x.size() != numHwParams)
        panic("decodeBoxPoint: wrong dimensionality");
    const DesignSpace &ds = designSpace();
    std::array<std::int64_t, numHwParams> idx{};
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        const double unit = clampd(x[p], 0.0, 1.0);
        const auto count = static_cast<double>(ds.count(param));
        idx[p] = std::min<std::int64_t>(
            ds.count(param) - 1,
            static_cast<std::int64_t>(
                std::llround(unit * (count - 1.0))));
    }
    return ds.fromIndices(idx);
}

std::vector<double>
encodeBoxPoint(const AcceleratorConfig &config)
{
    const DesignSpace &ds = designSpace();
    const auto idx = ds.toIndices(config);
    std::vector<double> x(numHwParams);
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        const auto count = static_cast<double>(ds.count(param));
        x[p] = count > 1.0
                   ? static_cast<double>(idx[p]) / (count - 1.0)
                   : 0.0;
    }
    return x;
}

InputSpaceObjective::InputSpaceObjective(const Evaluator &evaluator,
                                         std::vector<LayerShape> layers,
                                         Metric metric)
    : InputSpaceObjective(evaluator,
                          Workload{"", std::move(layers), {}}, metric)
{
}

InputSpaceObjective::InputSpaceObjective(const Evaluator &evaluator,
                                         Workload workload,
                                         Metric metric)
    : evaluator_(evaluator), workload_(std::move(workload)),
      metric_(metric)
{
    if (workload_.layers.empty())
        fatal("InputSpaceObjective needs at least one layer");
    if (!workload_.counts.empty() &&
        workload_.counts.size() != workload_.layers.size())
        fatal("InputSpaceObjective: counts/layers size mismatch");
}

std::size_t
InputSpaceObjective::dim() const
{
    return numHwParams;
}

std::vector<double>
InputSpaceObjective::lowerBounds() const
{
    return std::vector<double>(numHwParams, 0.0);
}

std::vector<double>
InputSpaceObjective::upperBounds() const
{
    return std::vector<double>(numHwParams, 1.0);
}

AcceleratorConfig
InputSpaceObjective::decode(const std::vector<double> &x) const
{
    return decodeBoxPoint(x);
}

std::vector<double>
InputSpaceObjective::encode(const AcceleratorConfig &config) const
{
    return encodeBoxPoint(config);
}

double
InputSpaceObjective::evaluate(const std::vector<double> &x)
{
    const AcceleratorConfig config = decode(x);
    return metricValue(evaluator_.evaluateWorkload(config, workload_),
                       metric_);
}

std::vector<double>
InputSpaceObjective::evaluateBatch(
    const std::vector<std::vector<double>> &xs, ThreadPool *pool)
{
    if (!pool || xs.empty())
        return Objective::evaluateBatch(xs, pool);

    // Batch phase: decode + score every point through the SoA
    // pipeline. Any failure here (bad point, pool fault) degrades to
    // the per-point path, whose per-point recovery then isolates the
    // offender instead of losing the whole batch.
    std::vector<double> raw;
    try {
        std::vector<AcceleratorConfig> configs;
        configs.reserve(xs.size());
        for (const std::vector<double> &x : xs)
            configs.push_back(decode(x));
        const std::vector<EvalResult> results =
            evaluateConfigBatch(evaluator_, configs, workload_,
                                *pool);
        raw.reserve(results.size());
        for (const EvalResult &r : results)
            raw.push_back(metricValue(r, metric_));
    } catch (const std::exception &e) {
        warn("batch evaluation failed: ", e.what(),
             "; retrying point by point");
        return Objective::evaluateBatch(xs, pool);
    }

    // Recovery phase: identical per-point semantics (counters,
    // timers, fault sites, retry) applied in input order.
    std::vector<double> values(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        values[i] = recoverRawObjective(raw[i]);
    return values;
}

} // namespace vaesa
