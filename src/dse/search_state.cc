#include "dse/search_state.hh"

#include "util/atomic_io.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/state_io.hh"

namespace vaesa {

namespace {

constexpr std::uint32_t searchMagic = 0x56535243; // "VSRC"
constexpr std::uint32_t searchVersion = 1;

// Traces and points beyond these are corruption, not search runs.
constexpr std::uint64_t maxTraceLen = 1u << 26;
constexpr std::uint64_t maxPointDim = 1u << 16;

Expected<SearchSnapshot>
loadSearchSnapshotFile(const std::string &path)
{
    Expected<std::string> bytes = readFileBytes(path);
    if (!bytes)
        return bytes.error();
    RecordReader in(bytes.value(), path);
    std::uint32_t version = 0;
    if (auto err = in.readHeader(searchMagic, searchVersion,
                                 searchVersion, &version))
        return *err;

    Expected<std::string> meta_record = in.readRecord();
    if (!meta_record)
        return meta_record.error();
    ByteReader meta(meta_record.value().data(),
                    meta_record.value().size());
    SearchSnapshot snapshot;
    const std::uint32_t driver = meta.getU32();
    if (driver < 1 || driver > 3)
        return in.makeError(LoadError::Kind::Malformed,
                            "unknown search driver tag");
    snapshot.driver = static_cast<SearchDriver>(driver);
    if (!readRngState(meta, snapshot.rng) || !meta.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt snapshot metadata record");

    Expected<std::string> trace_record = in.readRecord();
    if (!trace_record)
        return trace_record.error();
    ByteReader trace_reader(trace_record.value().data(),
                            trace_record.value().size());
    const std::uint64_t count = trace_reader.getU64();
    if (trace_reader.failed() || count > maxTraceLen)
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt trace length");
    // Every point needs at least its u64 dimension plus the f64
    // value; bounding the declared count by the record payload keeps
    // a hostile CRC-valid file from driving a multi-gigabyte
    // reserve() before per-point validation runs (found by fuzzing).
    if (count > trace_reader.remaining() / (2 * sizeof(double)))
        return in.makeError(LoadError::Kind::Malformed,
                            "trace length exceeds record payload");
    snapshot.trace.points.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t dim = trace_reader.getU64();
        if (trace_reader.failed() || dim > maxPointDim)
            return in.makeError(LoadError::Kind::Malformed,
                                "corrupt trace point");
        TracePoint point;
        point.x.resize(dim);
        if (!trace_reader.getBytes(point.x.data(),
                                   dim * sizeof(double)))
            return in.makeError(LoadError::Kind::Truncated,
                                "truncated trace point");
        point.value = trace_reader.getF64();
        snapshot.trace.points.push_back(std::move(point));
    }
    if (trace_reader.failed() || !trace_reader.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt trace record");

    Expected<std::string> payload_record = in.readRecord();
    if (!payload_record)
        return payload_record.error();
    snapshot.payload = std::move(payload_record.value());
    if (!in.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "trailing bytes after snapshot payload");
    return snapshot;
}

} // namespace

std::optional<LoadError>
saveSearchSnapshot(const std::string &path,
                   const SearchSnapshot &snapshot)
{
    RecordWriter out(searchMagic, searchVersion);

    ByteBuffer meta;
    meta.putU32(static_cast<std::uint32_t>(snapshot.driver));
    putRngState(meta, snapshot.rng);
    out.writeRecord(meta);

    ByteBuffer trace;
    trace.putU64(snapshot.trace.points.size());
    for (const TracePoint &point : snapshot.trace.points) {
        trace.putU64(point.x.size());
        trace.putBytes(point.x.data(),
                       point.x.size() * sizeof(double));
        trace.putF64(point.value);
    }
    out.writeRecord(trace);

    ByteBuffer payload;
    payload.putBytes(snapshot.payload.data(),
                     snapshot.payload.size());
    out.writeRecord(payload);

    faultCheck("search_snapshot_save");
    return atomicWriteFileWithRotation(path, out.bytes());
}

Expected<SearchSnapshot>
loadSearchSnapshot(const std::string &path, SearchDriver driver)
{
    Expected<SearchSnapshot> result =
        loadWithFallback<SearchSnapshot>(path, loadSearchSnapshotFile);
    if (result && result.value().driver != driver)
        return makeLoadError(
            LoadError::Kind::ShapeMismatch, path, 0,
            "snapshot was written by a different search driver");
    return result;
}

std::optional<std::string>
resumeSearch(const SearchCheckpointConfig &config, SearchDriver driver,
             SearchTrace &trace, Rng &rng)
{
    if (config.path.empty())
        return std::nullopt;
    if (config.every == 0)
        panic("SearchCheckpointConfig: every must be >= 1");
    Expected<SearchSnapshot> snapshot =
        loadSearchSnapshot(config.path, driver);
    if (!snapshot) {
        if (snapshot.error().kind != LoadError::Kind::OpenFailed)
            warn("ignoring unusable search snapshot: ",
                 snapshot.error().describe());
        return std::nullopt;
    }
    trace = std::move(snapshot.value().trace);
    rng.setState(snapshot.value().rng);
    inform("resuming search from '", config.path, "' at sample ",
           trace.points.size());
    return std::move(snapshot.value().payload);
}

} // namespace vaesa
