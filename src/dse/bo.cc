#include "dse/bo.hh"

#include <algorithm>
#include <cmath>

#include "util/atomic_io.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/numeric.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace vaesa {

namespace {

/** BO driver instruments, resolved once. */
struct BoMetrics
{
    metrics::Counter &iterations =
        metrics::counter("search.bo.iterations");
    metrics::Histogram &fitNs =
        metrics::histogram("search.bo.fit_ns");
    metrics::Histogram &acqNs =
        metrics::histogram("search.bo.acq_ns");
};

BoMetrics &
boMetrics()
{
    static BoMetrics m;
    return m;
}

/** BO snapshot payload: surrogate hyper-state at an iteration
 *  boundary (the GP itself is refit from the trace every iteration,
 *  so only the slow-moving hyperparameters need saving). */
struct BoResumeState
{
    bool hasHyper = false;
    GaussianProcess::Hyper hyper;
    std::uint64_t iterationsSinceRefit = 0;
};

std::string
encodeBoState(const BoResumeState &state)
{
    ByteBuffer out;
    out.putU32(state.hasHyper ? 1 : 0);
    out.putF64(state.hyper.lengthscale);
    out.putF64(state.hyper.noiseVar);
    out.putU64(state.iterationsSinceRefit);
    return out.data();
}

bool
decodeBoState(const std::string &payload, BoResumeState &state)
{
    ByteReader in(payload.data(), payload.size());
    const std::uint32_t flag = in.getU32();
    state.hyper.lengthscale = in.getF64();
    state.hyper.noiseVar = in.getF64();
    state.iterationsSinceRefit = in.getU64();
    if (in.failed() || !in.atEnd() || flag > 1)
        return false;
    state.hasHyper = flag == 1;
    return true;
}

} // namespace

BayesOpt::BayesOpt(const BoOptions &options)
    : options_(options)
{
}

double
expectedImprovement(const GaussianProcess::Prediction &pred, double best)
{
    // NaN-safe clamp: std::max(NaN, 0.0) returns NaN, so a predictive
    // variance poisoned upstream (near-duplicate training points can
    // drive the Cholesky solve slightly negative or non-finite) would
    // make sigma NaN and every EI comparison false -- the acquisition
    // would silently fall back to its unscored candidate forever.
    // The (var > 0) test is false for negatives, zero, and NaN alike.
    const double var = pred.var > 0.0 ? pred.var : 0.0;
    const double sigma = std::sqrt(var);
    if (sigma < 1e-12)
        return std::max(best - pred.mean, 0.0);
    const double z = (best - pred.mean) / sigma;
    return (best - pred.mean) * normalCdf(z) + sigma * normalPdf(z);
}

SearchTrace
BayesOpt::run(Objective &objective, std::size_t samples, Rng &rng,
              ThreadPool *pool,
              const SearchCheckpointConfig *checkpoint,
              const CancelToken *cancel) const
{
    SearchTrace trace;
    continueRun(objective, trace, samples, rng, pool, checkpoint,
                cancel);
    return trace;
}

void
BayesOpt::continueRun(Objective &objective, SearchTrace &trace,
                      std::size_t additional, Rng &rng,
                      ThreadPool *pool,
                      const SearchCheckpointConfig *checkpoint,
                      const CancelToken *cancel) const
{
    const std::vector<double> lo = objective.lowerBounds();
    const std::vector<double> hi = objective.upperBounds();
    const std::size_t dim = objective.dim();

    // Resume only when the caller starts from scratch (run()); the
    // restored points then count toward the budget, so a killed run
    // finishes with exactly the trace an uninterrupted one produces.
    BoResumeState resume_state;
    bool resumed = false;
    if (checkpoint && !checkpoint->path.empty() &&
        trace.points.empty()) {
        Expected<SearchSnapshot> snapshot =
            loadSearchSnapshot(checkpoint->path,
                               SearchDriver::BayesOpt);
        if (snapshot) {
            BoResumeState state;
            if (decodeBoState(snapshot.value().payload, state)) {
                trace = std::move(snapshot.value().trace);
                rng.setState(snapshot.value().rng);
                resume_state = state;
                resumed = true;
                inform("resuming BO from '", checkpoint->path,
                       "' at sample ", trace.points.size());
            } else {
                warn("ignoring BO snapshot with corrupt surrogate "
                     "payload");
            }
        } else if (snapshot.error().kind !=
                   LoadError::Kind::OpenFailed) {
            warn("ignoring unusable search snapshot: ",
                 snapshot.error().describe());
        }
    }
    const std::size_t samples =
        resumed ? std::max(additional, trace.points.size())
                : trace.points.size() + additional;

    auto sample_uniform = [&]() {
        std::vector<double> x(dim);
        for (std::size_t d = 0; d < dim; ++d)
            x[d] = rng.uniform(lo[d], hi[d]);
        return x;
    };

    if (cancel && cancel->expired())
        return; // nothing evaluated; caller reports best-so-far

    // Warm-up (only for a fresh trace): draw every point, then score
    // them as one batch — rng stream and trace are identical with
    // and without a pool.
    if (trace.points.empty()) {
        const std::size_t warmup =
            std::min(options_.initSamples, samples);
        std::vector<std::vector<double>> xs(warmup);
        for (std::size_t i = 0; i < warmup; ++i)
            xs[i] = sample_uniform();
        const std::vector<double> values =
            evaluatePoints(objective, xs, pool);
        for (std::size_t i = 0; i < warmup; ++i)
            trace.add(xs[i], values[i]);
    }

    GaussianProcess gp(options_.kernel);
    std::size_t iterations_since_refit = options_.hyperRefitInterval;
    bool hyper_known = false;
    if (resumed) {
        iterations_since_refit = static_cast<std::size_t>(
            resume_state.iterationsSinceRefit);
        if (resume_state.hasHyper) {
            gp.setHyper(resume_state.hyper);
            hyper_known = true;
        }
    }

    const std::size_t snapshot_every =
        checkpoint ? std::max<std::size_t>(1, checkpoint->every) : 0;
    std::size_t iterations = 0;
    auto maybeSnapshot = [&]() {
        if (!checkpoint || checkpoint->path.empty() ||
            (iterations % snapshot_every != 0 &&
             trace.points.size() < samples))
            return;
        SearchSnapshot snapshot;
        snapshot.driver = SearchDriver::BayesOpt;
        snapshot.trace = trace;
        snapshot.rng = rng.state();
        BoResumeState state;
        state.hasHyper = hyper_known;
        state.hyper = gp.hyper();
        state.iterationsSinceRefit = iterations_since_refit;
        snapshot.payload = encodeBoState(state);
        if (auto err = saveSearchSnapshot(checkpoint->path, snapshot))
            warn("search snapshot save failed: ", err->describe());
    };
    maybeSnapshot(); // cover the warm-up before the first iteration

    BoMetrics &bm = boMetrics();
    while (trace.points.size() < samples) {
        if (cancel && cancel->expired())
            return; // partial best-so-far
        const trace::Span iterSpan("bo.iteration");
        bm.iterations.inc();
        faultCheck("bo_iteration");
        // Penalize invalid observations to a finite value so the GP
        // learns to avoid the region instead of ignoring it.
        double worst_finite = -1e300;
        double best_finite = invalidScore;
        for (const TracePoint &p : trace.points) {
            if (std::isfinite(p.value)) {
                worst_finite = std::max(worst_finite, p.value);
                best_finite = std::min(best_finite, p.value);
            }
        }
        const bool any_finite = worst_finite > -1e300;
        const double penalty = any_finite
            ? worst_finite * options_.invalidPenaltyFactor
            : 1.0;

        if (!any_finite) {
            // Nothing to model yet; keep sampling at random.
            const std::vector<double> x = sample_uniform();
            trace.add(x, evaluateRecovered(objective, x));
            ++iterations;
            maybeSnapshot();
            continue;
        }

        // Subset-of-data selection: best half + most recent half.
        std::vector<std::size_t> chosen;
        const std::size_t n = trace.points.size();
        if (n <= options_.maxGpPoints) {
            chosen.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                chosen[i] = i;
        } else {
            std::vector<std::size_t> order(n);
            for (std::size_t i = 0; i < n; ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return trace.points[a].value <
                                 trace.points[b].value;
                      });
            std::vector<bool> taken(n, false);
            const std::size_t half = options_.maxGpPoints / 2;
            for (std::size_t i = 0; i < half; ++i) {
                chosen.push_back(order[i]);
                taken[order[i]] = true;
            }
            for (std::size_t i = n;
                 i > 0 && chosen.size() < options_.maxGpPoints; --i) {
                if (!taken[i - 1]) {
                    chosen.push_back(i - 1);
                    taken[i - 1] = true;
                }
            }
        }

        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        xs.reserve(chosen.size());
        ys.reserve(chosen.size());
        for (std::size_t idx : chosen) {
            xs.push_back(trace.points[idx].x);
            ys.push_back(std::isfinite(trace.points[idx].value)
                             ? trace.points[idx].value
                             : penalty);
        }

        {
            const metrics::ScopedTimer fitTimer(bm.fitNs);
            if (iterations_since_refit >=
                options_.hyperRefitInterval) {
                gp.fitWithHyperSearch(xs, ys);
                iterations_since_refit = 0;
                hyper_known = true;
            } else {
                gp.fit(xs, ys);
            }
        }
        ++iterations_since_refit;

        const bool instrument = metrics::metricsEnabled();
        const std::uint64_t acq_t0 =
            instrument ? metrics::monotonicNowNs() : 0;
        // Acquisition: random + local candidates, take the best EI.
        // Candidates are drawn serially (the rng stream must not
        // depend on the worker count); their EI scores are
        // independent GP predictions, so they fan out across the
        // pool. The winner scan below replicates the serial
        // first-strict-improvement rule, so the selected candidate
        // is identical either way.
        const std::vector<double> incumbent = trace.bestPoint();
        std::vector<std::vector<double>> candidates;
        candidates.reserve(1 + options_.uniformCandidates +
                           options_.localCandidates);
        candidates.push_back(sample_uniform()); // unscored fallback
        for (std::size_t i = 0; i < options_.uniformCandidates; ++i)
            candidates.push_back(sample_uniform());
        if (!incumbent.empty()) {
            for (std::size_t i = 0; i < options_.localCandidates; ++i) {
                std::vector<double> x = incumbent;
                for (std::size_t d = 0; d < dim; ++d) {
                    const double span = hi[d] - lo[d];
                    x[d] = clampd(
                        x[d] + rng.normal(0.0, options_.perturbSigma *
                                                   span),
                        lo[d], hi[d]);
                }
                candidates.push_back(std::move(x));
            }
        }

        std::vector<double> eis(candidates.size(), -1.0);
        auto score = [&](std::size_t i) {
            eis[i] = expectedImprovement(gp.predict(candidates[i]),
                                         best_finite);
        };
        if (pool) {
            pool->parallelFor(candidates.size() - 1,
                              [&](std::size_t i) { score(i + 1); });
        } else {
            for (std::size_t i = 1; i < candidates.size(); ++i)
                score(i);
        }

        std::size_t best_idx = 0;
        double best_ei = -1.0;
        for (std::size_t i = 1; i < candidates.size(); ++i) {
            if (eis[i] > best_ei) {
                best_ei = eis[i];
                best_idx = i;
            }
        }
        const std::vector<double> &best_x = candidates[best_idx];
        if (instrument)
            bm.acqNs.observe(metrics::monotonicNowNs() - acq_t0);

        trace.add(best_x, evaluateRecovered(objective, best_x));
        ++iterations;
        maybeSnapshot();
    }
}

} // namespace vaesa
