/**
 * @file
 * Projected gradient descent over a differentiable surrogate.
 *
 * The paper's GD flows minimize a *predictor* (not the simulator):
 * vae_gd walks the latent space against the jointly-trained predictor
 * heads; the gd baseline walks the normalized input space against a
 * separately trained predictor and rounds to the grid afterwards.
 * Both are thin wrappers around this driver.
 */

#ifndef VAESA_DSE_GD_HH
#define VAESA_DSE_GD_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace vaesa {

/**
 * Differentiable scalar function: returns f(x) and, when grad is
 * non-null, writes df/dx into it (resized by the callee).
 */
using DifferentiableFn = std::function<double(
    const std::vector<double> &x, std::vector<double> *grad)>;

/** Tunables of the GD driver. */
struct GdOptions
{
    /** Step size. */
    double learningRate = 0.05;

    /** Momentum coefficient (classical). */
    double momentum = 0.9;

    /** Number of gradient steps. */
    std::size_t steps = 100;

    /** Clamp iterates into [lower, upper] after every step. */
    std::vector<double> lower;

    /** See lower. Empty bounds disable projection. */
    std::vector<double> upper;
};

/** Outcome of one GD run. */
struct GdResult
{
    /** Final iterate. */
    std::vector<double> x;

    /** Surrogate value at the final iterate. */
    double value = 0.0;

    /** Surrogate value at each step (steps + 1 entries, incl. x0). */
    std::vector<double> valueTrace;
};

/** Projected gradient descent with momentum. */
class GradientDescent
{
  public:
    /** Driver with default options. */
    GradientDescent() = default;

    /** Driver with explicit options. */
    explicit GradientDescent(const GdOptions &options);

    /**
     * Minimize fn starting at x0.
     * @param fn surrogate with gradients.
     * @param x0 starting point.
     */
    GdResult run(const DifferentiableFn &fn,
                 const std::vector<double> &x0) const;

    /** Options in use. */
    const GdOptions &options() const { return options_; }

  private:
    GdOptions options_;
};

} // namespace vaesa

#endif // VAESA_DSE_GD_HH
