#include "dse/multi_workload.hh"

#include <cmath>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <utility>

#include "sched/parallel_evaluator.hh"
#include "util/atomic_io.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace vaesa {

double
TrafficMix::totalWeight() const
{
    double total = 0.0;
    for (const TrafficEntry &e : entries)
        total += e.weight;
    return total;
}

Expected<TrafficMix>
makeTrafficMix(
    const std::vector<std::pair<std::string, double>> &namedWeights)
{
    TrafficMix mix;
    for (const auto &[name, weight] : namedWeights) {
        if (!(weight > 0.0) || !std::isfinite(weight))
            return makeLoadError(LoadError::Kind::Malformed, "", 0,
                                 "weight for '" + name +
                                     "' must be positive and finite");
        for (const TrafficEntry &e : mix.entries)
            if (e.workload.name == name)
                return makeLoadError(LoadError::Kind::Malformed, "",
                                     0,
                                     "duplicate workload '" + name +
                                         "' in mix");
        std::optional<Workload> w = tryWorkloadByName(name);
        if (!w)
            return makeLoadError(LoadError::Kind::Malformed, "", 0,
                                 "unknown workload '" + name + "'");
        mix.entries.push_back({*std::move(w), weight});
    }
    if (mix.entries.empty())
        return makeLoadError(LoadError::Kind::Malformed, "", 0,
                             "empty traffic mix");
    return mix;
}

Expected<TrafficMix>
parseTrafficMixFile(const std::string &path)
{
    Expected<std::string> bytes = readFileBytes(path);
    if (!bytes)
        return bytes.error();

    std::vector<std::pair<std::string, double>> namedWeights;
    std::istringstream in(bytes.value());
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string name;
        if (!(fields >> name))
            continue;
        std::string weightToken;
        if (!(fields >> weightToken))
            return makeLoadError(LoadError::Kind::Malformed, path,
                                 line_no,
                                 "expected '<workload> <weight>', got "
                                 "'" + line + "'");
        std::string extra;
        if (fields >> extra)
            return makeLoadError(LoadError::Kind::Malformed, path,
                                 line_no,
                                 "trailing token '" + extra + "'");
        char *end = nullptr;
        const double weight =
            std::strtod(weightToken.c_str(), &end);
        if (end == weightToken.c_str() || *end)
            return makeLoadError(LoadError::Kind::Malformed, path,
                                 line_no,
                                 "'" + weightToken +
                                     "' is not a number");
        namedWeights.emplace_back(name, weight);
    }

    Expected<TrafficMix> mix = makeTrafficMix(namedWeights);
    if (!mix) {
        // Re-home the (file-less) builder error onto this file.
        LoadError err = mix.error();
        err.file = path;
        return err;
    }
    return mix;
}

std::vector<LayerShape>
mixLayerPool(const TrafficMix &mix, std::vector<double> *weights_out)
{
    std::vector<LayerShape> pool;
    std::vector<double> weights;
    for (const TrafficEntry &entry : mix.entries) {
        for (std::size_t i = 0; i < entry.workload.layers.size();
             ++i) {
            const LayerShape &layer = entry.workload.layers[i];
            const double w =
                entry.weight *
                static_cast<double>(entry.workload.countOf(i));
            bool merged = false;
            for (std::size_t j = 0; j < pool.size(); ++j) {
                if (pool[j].sameShape(layer)) {
                    weights[j] += w;
                    merged = true;
                    break;
                }
            }
            if (!merged) {
                pool.push_back(layer);
                weights.push_back(w);
            }
        }
    }
    if (weights_out)
        *weights_out = std::move(weights);
    return pool;
}

MultiWorkloadObjective::MultiWorkloadObjective(
    const Evaluator &evaluator, TrafficMix mix, Metric metric)
    : evaluator_(evaluator), mix_(std::move(mix)), metric_(metric)
{
    if (mix_.entries.empty())
        fatal("MultiWorkloadObjective needs a non-empty mix");
    for (const TrafficEntry &e : mix_.entries) {
        if (e.workload.layers.empty())
            fatal("MultiWorkloadObjective: workload '",
                  e.workload.name, "' has no layers");
        if (!(e.weight > 0.0) || !std::isfinite(e.weight))
            fatal("MultiWorkloadObjective: non-positive weight for '",
                  e.workload.name, "'");
    }
}

std::size_t
MultiWorkloadObjective::dim() const
{
    return numHwParams;
}

std::vector<double>
MultiWorkloadObjective::lowerBounds() const
{
    return std::vector<double>(numHwParams, 0.0);
}

std::vector<double>
MultiWorkloadObjective::upperBounds() const
{
    return std::vector<double>(numHwParams, 1.0);
}

AcceleratorConfig
MultiWorkloadObjective::decode(const std::vector<double> &x) const
{
    return decodeBoxPoint(x);
}

double
MultiWorkloadObjective::evaluate(const std::vector<double> &x)
{
    const AcceleratorConfig config = decode(x);
    double score = 0.0;
    for (const TrafficEntry &entry : mix_.entries) {
        const EvalResult r =
            evaluator_.evaluateWorkload(config, entry.workload);
        if (!r.valid)
            return invalidScore;
        score += entry.weight * metricValue(r, metric_);
    }
    return score;
}

std::vector<double>
MultiWorkloadObjective::evaluateBatch(
    const std::vector<std::vector<double>> &xs, ThreadPool *pool)
{
    if (!pool || xs.empty())
        return Objective::evaluateBatch(xs, pool);

    // Batch phase: one counted config-batch pass per mix entry, the
    // weighted combination accumulating in entry order on this
    // thread (the same association as the serial loop). An invalid
    // workload poisons the point to invalidScore exactly like the
    // serial early return — adding weight * infinity keeps the sum
    // infinite for positive weights.
    std::vector<double> raw;
    try {
        std::vector<AcceleratorConfig> configs;
        configs.reserve(xs.size());
        for (const std::vector<double> &x : xs)
            configs.push_back(decode(x));
        raw.assign(xs.size(), 0.0);
        for (const TrafficEntry &entry : mix_.entries) {
            const std::vector<EvalResult> results =
                evaluateConfigBatch(evaluator_, configs,
                                    entry.workload, *pool);
            for (std::size_t i = 0; i < results.size(); ++i)
                raw[i] += entry.weight *
                          metricValue(results[i], metric_);
        }
    } catch (const std::exception &e) {
        warn("multi-workload batch evaluation failed: ", e.what(),
             "; retrying point by point");
        return Objective::evaluateBatch(xs, pool);
    }

    // Recovery phase: identical per-point semantics (counters,
    // timers, fault sites, retry) applied in input order.
    std::vector<double> values(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        values[i] = recoverRawObjective(raw[i]);
    return values;
}

} // namespace vaesa
