/**
 * @file
 * Evolutionary search over an Objective's box -- the class of
 * algorithms Table I cites for NAAS. Tournament selection, blend
 * crossover, Gaussian mutation, elitism. Like the other drivers it
 * works unchanged on the input box and on a VAESA latent box.
 */

#ifndef VAESA_DSE_GENETIC_HH
#define VAESA_DSE_GENETIC_HH

#include "dse/objective.hh"
#include "dse/search_state.hh"
#include "util/deadline.hh"
#include "util/rng.hh"

namespace vaesa {

/** Tunables of the evolutionary driver. */
struct GaOptions
{
    /** Individuals per generation. */
    std::size_t populationSize = 24;

    /** Tournament size for parent selection. */
    std::size_t tournamentSize = 3;

    /** Elites copied unchanged into the next generation. */
    std::size_t elites = 2;

    /** Per-gene probability of Gaussian mutation. */
    double mutationRate = 0.25;

    /** Mutation stddev, in box-span units. */
    double mutationSigma = 0.1;

    /** BLX-alpha blend-crossover expansion factor. */
    double blendAlpha = 0.3;
};

/** Generational genetic algorithm. */
class GeneticSearch
{
  public:
    /** Driver with default options. */
    GeneticSearch() = default;

    /** Driver with explicit options. */
    explicit GeneticSearch(const GaOptions &options);

    /**
     * Minimize with a fixed evaluation budget (the final partial
     * generation is truncated to hit the budget exactly). Each
     * generation's individuals are bred serially from the rng and
     * then scored as one batch, so a pool-enabled run reproduces the
     * serial trace seed-for-seed.
     * @param pool optional worker pool for population scoring (used
     *        only when the objective is threadSafeEvaluate()).
     * @param checkpoint optional snapshot config: resume from an
     *        existing snapshot (trace, population, rng) and write one
     *        every `every` generations. A resumed run returns the
     *        trace an uninterrupted run would have produced.
     * @param cancel optional cancellation token, observed at
     *        generation boundaries: an expired token stops the run
     *        and returns the partial best-so-far trace.
     */
    SearchTrace
    run(Objective &objective, std::size_t samples, Rng &rng,
        ThreadPool *pool = nullptr,
        const SearchCheckpointConfig *checkpoint = nullptr,
        const CancelToken *cancel = nullptr) const;

    /** Options in use. */
    const GaOptions &options() const { return options_; }

  private:
    GaOptions options_;
};

/** Tunables of simulated annealing. */
struct SaOptions
{
    /** Initial acceptance temperature as a fraction of the observed
     *  objective spread. */
    double initialTemperature = 1.0;

    /** Multiplicative cooling per step. */
    double coolingRate = 0.98;

    /** Proposal stddev, in box-span units. */
    double stepSigma = 0.08;

    /** Restart from the incumbent after this many rejections. */
    std::size_t restartAfterRejects = 25;
};

/** Metropolis simulated annealing over the box. */
class SimulatedAnnealing
{
  public:
    /** Driver with default options. */
    SimulatedAnnealing() = default;

    /** Driver with explicit options. */
    explicit SimulatedAnnealing(const SaOptions &options);

    /** Minimize with a fixed evaluation budget. */
    SearchTrace run(Objective &objective, std::size_t samples,
                    Rng &rng) const;

    /** Options in use. */
    const SaOptions &options() const { return options_; }

  private:
    SaOptions options_;
};

} // namespace vaesa

#endif // VAESA_DSE_GENETIC_HH
