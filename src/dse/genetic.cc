#include "dse/genetic.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace vaesa {

GeneticSearch::GeneticSearch(const GaOptions &options)
    : options_(options)
{
}

SearchTrace
GeneticSearch::run(Objective &objective, std::size_t samples,
                   Rng &rng, ThreadPool *pool) const
{
    const std::vector<double> lo = objective.lowerBounds();
    const std::vector<double> hi = objective.upperBounds();
    const std::size_t dim = objective.dim();
    const std::size_t pop_size =
        std::max<std::size_t>(2, options_.populationSize);

    SearchTrace trace;
    // Rank invalid (infinite) individuals below everything finite
    // but keep them comparable among themselves.
    auto fitness_key = [](double v) {
        return std::isfinite(v) ? v : 1e300;
    };

    struct Individual
    {
        std::vector<double> genes;
        double value;
    };
    std::vector<Individual> population;
    population.reserve(pop_size);

    // Breeding is serial (it owns the rng stream); scoring runs as
    // one batch per generation, on the pool when available. Since
    // evaluate() never touches the rng, the batched run consumes the
    // identical stream — traces match serial runs seed-for-seed.
    auto scoreInto = [&](std::vector<std::vector<double>> genes) {
        const std::vector<double> values =
            evaluatePoints(objective, genes, pool);
        for (std::size_t i = 0; i < genes.size(); ++i) {
            trace.add(genes[i], values[i]);
            population.push_back(
                {std::move(genes[i]), values[i]});
        }
    };

    {
        const std::size_t count =
            std::min(pop_size, samples - trace.points.size());
        std::vector<std::vector<double>> genes(count);
        for (std::size_t i = 0; i < count; ++i) {
            genes[i].resize(dim);
            for (std::size_t d = 0; d < dim; ++d)
                genes[i][d] = rng.uniform(lo[d], hi[d]);
        }
        scoreInto(std::move(genes));
    }

    auto tournament = [&]() -> const Individual & {
        const Individual *best =
            &population[rng.index(population.size())];
        for (std::size_t t = 1; t < options_.tournamentSize; ++t) {
            const Individual &cand =
                population[rng.index(population.size())];
            if (fitness_key(cand.value) < fitness_key(best->value))
                best = &cand;
        }
        return *best;
    };

    while (trace.points.size() < samples) {
        std::sort(population.begin(), population.end(),
                  [&](const Individual &a, const Individual &b) {
                      return fitness_key(a.value) <
                             fitness_key(b.value);
                  });
        const std::size_t elites =
            std::min(options_.elites, population.size());
        const std::size_t children =
            std::min(pop_size - elites,
                     samples - trace.points.size());

        std::vector<std::vector<double>> genes(children);
        for (std::size_t c = 0; c < children; ++c) {
            const Individual &pa = tournament();
            const Individual &pb = tournament();
            std::vector<double> child(dim);
            for (std::size_t d = 0; d < dim; ++d) {
                // BLX-alpha blend crossover.
                const double a = pa.genes[d];
                const double b = pb.genes[d];
                const double span = std::fabs(a - b);
                const double left = std::min(a, b) -
                                    options_.blendAlpha * span;
                const double right = std::max(a, b) +
                                     options_.blendAlpha * span;
                child[d] = rng.uniform(left, right);
                if (rng.uniform() < options_.mutationRate) {
                    child[d] += rng.normal(
                        0.0,
                        options_.mutationSigma * (hi[d] - lo[d]));
                }
                child[d] = clampd(child[d], lo[d], hi[d]);
            }
            genes[c] = std::move(child);
        }

        std::vector<Individual> survivors;
        survivors.reserve(pop_size);
        for (std::size_t e = 0; e < elites; ++e)
            survivors.push_back(population[e]);
        population = std::move(survivors);
        scoreInto(std::move(genes));
    }
    return trace;
}

SimulatedAnnealing::SimulatedAnnealing(const SaOptions &options)
    : options_(options)
{
}

SearchTrace
SimulatedAnnealing::run(Objective &objective, std::size_t samples,
                        Rng &rng) const
{
    const std::vector<double> lo = objective.lowerBounds();
    const std::vector<double> hi = objective.upperBounds();
    const std::size_t dim = objective.dim();

    SearchTrace trace;
    if (samples == 0)
        return trace;

    std::vector<double> current(dim);
    for (std::size_t d = 0; d < dim; ++d)
        current[d] = rng.uniform(lo[d], hi[d]);
    double current_value = objective.evaluate(current);
    trace.add(current, current_value);

    // Temperature scaled to the first finite observation's
    // magnitude so acceptance probabilities are meaningful across
    // objective scales.
    double scale = std::isfinite(current_value)
                       ? std::fabs(current_value) + 1e-12
                       : 1.0;
    double temperature = options_.initialTemperature * scale;
    std::size_t rejects = 0;

    while (trace.points.size() < samples) {
        std::vector<double> proposal = current;
        for (std::size_t d = 0; d < dim; ++d) {
            proposal[d] = clampd(
                proposal[d] + rng.normal(0.0, options_.stepSigma *
                                                  (hi[d] - lo[d])),
                lo[d], hi[d]);
        }
        const double value = objective.evaluate(proposal);
        trace.add(proposal, value);

        bool accept = false;
        if (!std::isfinite(current_value)) {
            accept = true;
        } else if (std::isfinite(value)) {
            if (value <= current_value) {
                accept = true;
            } else {
                const double prob = std::exp(
                    (current_value - value) /
                    std::max(temperature, 1e-300));
                accept = rng.uniform() < prob;
            }
        }
        if (accept) {
            current = std::move(proposal);
            current_value = value;
            rejects = 0;
        } else if (++rejects >= options_.restartAfterRejects) {
            // Restart from the incumbent to escape dead regions.
            current = trace.bestPoint();
            current_value = trace.best();
            rejects = 0;
        }
        temperature *= options_.coolingRate;
    }
    return trace;
}

} // namespace vaesa
