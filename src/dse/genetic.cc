#include "dse/genetic.hh"

#include <algorithm>
#include <cmath>

#include "util/atomic_io.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/numeric.hh"
#include "util/trace.hh"

namespace vaesa {

namespace {

struct Individual
{
    std::vector<double> genes;
    double value;
};

/** GA snapshot payload: the population at a generation boundary. */
std::string
encodePopulation(const std::vector<Individual> &population)
{
    ByteBuffer out;
    out.putU64(population.size());
    for (const Individual &ind : population) {
        out.putU64(ind.genes.size());
        out.putBytes(ind.genes.data(),
                     ind.genes.size() * sizeof(double));
        out.putF64(ind.value);
    }
    return out.data();
}

bool
decodePopulation(const std::string &payload, std::size_t dim,
                 std::vector<Individual> &population)
{
    ByteReader in(payload.data(), payload.size());
    const std::uint64_t count = in.getU64();
    if (in.failed() || count > (1u << 20))
        return false;
    population.clear();
    population.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t genes = in.getU64();
        if (in.failed() || genes != dim)
            return false;
        Individual ind;
        ind.genes.resize(genes);
        if (!in.getBytes(ind.genes.data(), genes * sizeof(double)))
            return false;
        ind.value = in.getF64();
        population.push_back(std::move(ind));
    }
    return !in.failed() && in.atEnd();
}

} // namespace

GeneticSearch::GeneticSearch(const GaOptions &options)
    : options_(options)
{
}

SearchTrace
GeneticSearch::run(Objective &objective, std::size_t samples, Rng &rng,
                   ThreadPool *pool,
                   const SearchCheckpointConfig *checkpoint,
                   const CancelToken *cancel) const
{
    const std::vector<double> lo = objective.lowerBounds();
    const std::vector<double> hi = objective.upperBounds();
    const std::size_t dim = objective.dim();
    const std::size_t pop_size =
        std::max<std::size_t>(2, options_.populationSize);

    SearchTrace trace;
    std::vector<Individual> population;
    population.reserve(pop_size);

    // Resume only once the payload decodes: the population order
    // feeds tournament selection, so a snapshot is applied either
    // completely or not at all.
    if (checkpoint && !checkpoint->path.empty()) {
        Expected<SearchSnapshot> snapshot =
            loadSearchSnapshot(checkpoint->path,
                               SearchDriver::Genetic);
        if (snapshot) {
            std::vector<Individual> resumed;
            if (decodePopulation(snapshot.value().payload, dim,
                                 resumed)) {
                trace = std::move(snapshot.value().trace);
                rng.setState(snapshot.value().rng);
                population = std::move(resumed);
                inform("resuming GA from '", checkpoint->path,
                       "' at sample ", trace.points.size());
            } else {
                warn("ignoring GA snapshot with corrupt population "
                     "payload");
            }
        } else if (snapshot.error().kind !=
                   LoadError::Kind::OpenFailed) {
            warn("ignoring unusable search snapshot: ",
                 snapshot.error().describe());
        }
    }

    const std::size_t snapshot_every =
        checkpoint ? std::max<std::size_t>(1, checkpoint->every) : 0;
    std::size_t generations = 0;
    auto maybeSnapshot = [&](bool force) {
        if (!checkpoint || checkpoint->path.empty() ||
            (!force && generations % snapshot_every != 0))
            return;
        SearchSnapshot snapshot;
        snapshot.driver = SearchDriver::Genetic;
        snapshot.trace = trace;
        snapshot.rng = rng.state();
        snapshot.payload = encodePopulation(population);
        if (auto err = saveSearchSnapshot(checkpoint->path, snapshot))
            warn("search snapshot save failed: ", err->describe());
    };

    // Rank invalid (infinite) individuals below everything finite
    // but keep them comparable among themselves.
    auto fitness_key = [](double v) {
        return std::isfinite(v) ? v : 1e300;
    };

    // Breeding is serial (it owns the rng stream); scoring runs as
    // one batch per generation, on the pool when available. Since
    // evaluate() never touches the rng, the batched run consumes the
    // identical stream — traces match serial runs seed-for-seed.
    auto scoreInto = [&](std::vector<std::vector<double>> genes) {
        const std::vector<double> values =
            evaluatePoints(objective, genes, pool);
        for (std::size_t i = 0; i < genes.size(); ++i) {
            trace.add(genes[i], values[i]);
            population.push_back(
                {std::move(genes[i]), values[i]});
        }
    };

    if (cancel && cancel->expired())
        return trace; // partial best-so-far

    if (population.empty() && trace.points.size() < samples) {
        faultCheck("ga_generation");
        const std::size_t count =
            std::min(pop_size, samples - trace.points.size());
        std::vector<std::vector<double>> genes(count);
        for (std::size_t i = 0; i < count; ++i) {
            genes[i].resize(dim);
            for (std::size_t d = 0; d < dim; ++d)
                genes[i][d] = rng.uniform(lo[d], hi[d]);
        }
        scoreInto(std::move(genes));
        ++generations;
        maybeSnapshot(trace.points.size() >= samples);
    }

    auto tournament = [&]() -> const Individual & {
        const Individual *best =
            &population[rng.index(population.size())];
        for (std::size_t t = 1; t < options_.tournamentSize; ++t) {
            const Individual &cand =
                population[rng.index(population.size())];
            if (fitness_key(cand.value) < fitness_key(best->value))
                best = &cand;
        }
        return *best;
    };

    static metrics::Counter &generationsMetric =
        metrics::counter("search.ga.generations");
    static metrics::Histogram &generationNsMetric =
        metrics::histogram("search.ga.generation_ns");
    while (trace.points.size() < samples) {
        if (cancel && cancel->expired())
            return trace; // partial best-so-far
        const trace::Span generationSpan("ga.generation");
        const metrics::ScopedTimer generationTimer(
            generationNsMetric);
        generationsMetric.inc();
        faultCheck("ga_generation");
        std::sort(population.begin(), population.end(),
                  [&](const Individual &a, const Individual &b) {
                      return fitness_key(a.value) <
                             fitness_key(b.value);
                  });
        const std::size_t elites =
            std::min(options_.elites, population.size());
        const std::size_t children =
            std::min(pop_size - elites,
                     samples - trace.points.size());

        std::vector<std::vector<double>> genes(children);
        for (std::size_t c = 0; c < children; ++c) {
            const Individual &pa = tournament();
            const Individual &pb = tournament();
            std::vector<double> child(dim);
            for (std::size_t d = 0; d < dim; ++d) {
                // BLX-alpha blend crossover.
                const double a = pa.genes[d];
                const double b = pb.genes[d];
                const double span = std::fabs(a - b);
                const double left = std::min(a, b) -
                                    options_.blendAlpha * span;
                const double right = std::max(a, b) +
                                     options_.blendAlpha * span;
                child[d] = rng.uniform(left, right);
                if (rng.uniform() < options_.mutationRate) {
                    child[d] += rng.normal(
                        0.0,
                        options_.mutationSigma * (hi[d] - lo[d]));
                }
                child[d] = clampd(child[d], lo[d], hi[d]);
            }
            genes[c] = std::move(child);
        }

        std::vector<Individual> survivors;
        survivors.reserve(pop_size);
        for (std::size_t e = 0; e < elites; ++e)
            survivors.push_back(population[e]);
        population = std::move(survivors);
        scoreInto(std::move(genes));
        ++generations;
        maybeSnapshot(trace.points.size() >= samples);
    }
    return trace;
}

SimulatedAnnealing::SimulatedAnnealing(const SaOptions &options)
    : options_(options)
{
}

SearchTrace
SimulatedAnnealing::run(Objective &objective, std::size_t samples,
                        Rng &rng) const
{
    const std::vector<double> lo = objective.lowerBounds();
    const std::vector<double> hi = objective.upperBounds();
    const std::size_t dim = objective.dim();

    SearchTrace trace;
    if (samples == 0)
        return trace;

    std::vector<double> current(dim);
    for (std::size_t d = 0; d < dim; ++d)
        current[d] = rng.uniform(lo[d], hi[d]);
    double current_value = evaluateRecovered(objective, current);
    trace.add(current, current_value);

    // Temperature scaled to the first finite observation's
    // magnitude so acceptance probabilities are meaningful across
    // objective scales.
    double scale = std::isfinite(current_value)
                       ? std::fabs(current_value) + 1e-12
                       : 1.0;
    double temperature = options_.initialTemperature * scale;
    std::size_t rejects = 0;

    while (trace.points.size() < samples) {
        std::vector<double> proposal = current;
        for (std::size_t d = 0; d < dim; ++d) {
            proposal[d] = clampd(
                proposal[d] + rng.normal(0.0, options_.stepSigma *
                                                  (hi[d] - lo[d])),
                lo[d], hi[d]);
        }
        const double value = evaluateRecovered(objective, proposal);
        trace.add(proposal, value);

        bool accept = false;
        if (!std::isfinite(current_value)) {
            accept = true;
        } else if (std::isfinite(value)) {
            if (value <= current_value) {
                accept = true;
            } else {
                const double prob = std::exp(
                    (current_value - value) /
                    std::max(temperature, 1e-300));
                accept = rng.uniform() < prob;
            }
        }
        if (accept) {
            current = std::move(proposal);
            current_value = value;
            rejects = 0;
        } else if (++rejects >= options_.restartAfterRejects) {
            // Restart from the incumbent to escape dead regions.
            current = trace.bestPoint();
            current_value = trace.best();
            rejects = 0;
        }
        temperature *= options_.coolingRate;
    }
    return trace;
}

} // namespace vaesa
