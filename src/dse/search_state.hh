/**
 * @file
 * Crash-safe search-state snapshots for the DSE drivers. A snapshot
 * captures everything a driver needs to continue a killed run with
 * the exact trace an uninterrupted run would have produced: the
 * chronological trace so far, the RNG state at the snapshot boundary,
 * and a driver-specific payload (GA population, BO surrogate
 * hyperparameters, ...).
 *
 * Files use the shared record framing, rotate (`path` + `path.prev`),
 * and load with automatic fallback. A snapshot from a different
 * driver or dimensionality is reported as ShapeMismatch, never
 * silently resumed.
 */

#ifndef VAESA_DSE_SEARCH_STATE_HH
#define VAESA_DSE_SEARCH_STATE_HH

#include <cstdint>
#include <string>

#include "dse/objective.hh"
#include "util/load_error.hh"
#include "util/rng.hh"

namespace vaesa {

/** Where and how often a driver snapshots its state. */
struct SearchCheckpointConfig
{
    /** Snapshot file (empty disables checkpointing). */
    std::string path;

    /**
     * Snapshot every N progress units -- samples for random search,
     * generations for the GA, iterations for BO. Must be >= 1.
     */
    std::size_t every = 1;
};

/** Identifies which driver wrote a snapshot. */
enum class SearchDriver : std::uint32_t {
    Random = 1,
    Genetic = 2,
    BayesOpt = 3,
};

/** One resumable snapshot of a search run. */
struct SearchSnapshot
{
    /** Driver that wrote the snapshot. */
    SearchDriver driver = SearchDriver::Random;

    /** All evaluations so far, in sample order. */
    SearchTrace trace;

    /** RNG state at the snapshot boundary. */
    RngState rng;

    /** Driver-specific serialized state (may be empty). */
    std::string payload;
};

/**
 * Write a snapshot (with rotation).
 * @return nullopt on success, the write error otherwise.
 */
std::optional<LoadError>
saveSearchSnapshot(const std::string &path,
                   const SearchSnapshot &snapshot);

/**
 * Load a snapshot with fallback to `path.prev`. The driver argument
 * guards against resuming a snapshot written by a different driver.
 * @return the snapshot, or the primary file's error.
 */
Expected<SearchSnapshot>
loadSearchSnapshot(const std::string &path, SearchDriver driver);

/**
 * Shared resume preamble for the drivers: when config names an
 * existing, loadable snapshot of the right driver, restore the trace
 * and rng from it and return its payload; otherwise leave them
 * untouched (warning when the file exists but is unusable for any
 * reason other than not existing).
 * @return the driver payload, or std::nullopt for a fresh start.
 */
std::optional<std::string>
resumeSearch(const SearchCheckpointConfig &config, SearchDriver driver,
             SearchTrace &trace, Rng &rng);

} // namespace vaesa

#endif // VAESA_DSE_SEARCH_STATE_HH
