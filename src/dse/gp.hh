/**
 * @file
 * Gaussian-process regression for Bayesian optimization.
 *
 * Supports RBF and Matern-5/2 kernels with isotropic lengthscale,
 * observation noise, and internal y-standardization. Hyperparameters
 * are selected by maximizing the log marginal likelihood over a small
 * grid, which is robust and deterministic.
 */

#ifndef VAESA_DSE_GP_HH
#define VAESA_DSE_GP_HH

#include <vector>

#include "tensor/matrix.hh"

namespace vaesa {

/** Gaussian-process regressor with a fixed kernel family. */
class GaussianProcess
{
  public:
    /** Kernel family. */
    enum class Kernel { Rbf, Matern52 };

    /** Kernel hyperparameters (y is standardized internally, so the
     *  signal variance is fixed at 1). */
    struct Hyper
    {
        /** Isotropic lengthscale in box units. */
        double lengthscale = 0.3;

        /** Observation-noise variance (standardized units). */
        double noiseVar = 1e-4;
    };

    /** Construct with a kernel family and default hyperparameters. */
    explicit GaussianProcess(Kernel kernel = Kernel::Matern52);

    /** Construct with a kernel family and hyperparameters. */
    GaussianProcess(Kernel kernel, const Hyper &hyper);

    /**
     * Fit to observations. Inputs are copied; y is standardized
     * internally. Requires at least one observation.
     */
    void fit(const std::vector<std::vector<double>> &xs,
             const std::vector<double> &ys);

    /** Posterior mean and variance at one point. */
    struct Prediction
    {
        /** Posterior mean in original y units. */
        double mean;

        /** Posterior variance in original y^2 units (>= 0). */
        double var;
    };

    /** Predict at one point. Requires a prior fit(). */
    Prediction predict(const std::vector<double> &x) const;

    /** Log marginal likelihood of the last fit (standardized y). */
    double logMarginalLikelihood() const;

    /**
     * Pick hyperparameters by grid-searching lengthscale x noise for
     * the maximum log marginal likelihood, then refit with the winner.
     */
    void fitWithHyperSearch(const std::vector<std::vector<double>> &xs,
                            const std::vector<double> &ys);

    /** Current hyperparameters. */
    const Hyper &hyper() const { return hyper_; }

    /** Set hyperparameters (takes effect at the next fit). */
    void setHyper(const Hyper &hyper) { hyper_ = hyper; }

    /** Number of fitted observations (0 before fit). */
    std::size_t sampleCount() const { return xs_.size(); }

  private:
    double kernelValue(const std::vector<double> &a,
                       const std::vector<double> &b) const;

    Kernel kernel_;
    Hyper hyper_;
    std::vector<std::vector<double>> xs_;
    std::vector<double> alpha_;
    Matrix choleskyLower_;
    double yMean_ = 0.0;
    double yStd_ = 1.0;
    double logLik_ = 0.0;
};

/** Standard normal probability density. */
double normalPdf(double z);

/** Standard normal cumulative distribution (via erf). */
double normalCdf(double z);

} // namespace vaesa

#endif // VAESA_DSE_GP_HH
