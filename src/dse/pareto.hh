/**
 * @file
 * Pareto-front utilities over (latency, energy) points. The paper
 * selects EDP "because it allows us to investigate Pareto-optimal
 * design points that trade off latency and energy"; these helpers
 * make that trade-off explicit: extract the non-dominated set of a
 * sample, test membership, and compute the hypervolume indicator.
 */

#ifndef VAESA_DSE_PARETO_HH
#define VAESA_DSE_PARETO_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace vaesa {

/** A (latency, energy) objective pair; both minimized. */
using BiPoint = std::pair<double, double>;

/**
 * Indices of the non-dominated points (minimization in both
 * coordinates), sorted by ascending first coordinate. Duplicate
 * points keep their first occurrence.
 */
std::vector<std::size_t> paretoFront(const std::vector<BiPoint> &pts);

/**
 * True when candidate is dominated by some point in pts (strictly
 * worse in one coordinate, not better in the other).
 */
bool isDominated(const BiPoint &candidate,
                 const std::vector<BiPoint> &pts);

/**
 * Hypervolume (area) dominated by the front relative to a reference
 * point that must be weakly worse than every front point in both
 * coordinates. Larger is better.
 */
double hypervolume(const std::vector<BiPoint> &front,
                   const BiPoint &reference);

} // namespace vaesa

#endif // VAESA_DSE_PARETO_HH
