/**
 * @file
 * Bayesian optimization over an Objective's box: GP surrogate +
 * expected-improvement acquisition. The identical driver produces the
 * `bo` baseline (on the 6-D input box) and the `vae_bo` flow (on the
 * latent box) of Figure 11 / Table V.
 */

#ifndef VAESA_DSE_BO_HH
#define VAESA_DSE_BO_HH

#include <cstddef>

#include "dse/gp.hh"
#include "dse/objective.hh"
#include "dse/search_state.hh"
#include "util/deadline.hh"
#include "util/rng.hh"

namespace vaesa {

/** Tunables of the BO driver. */
struct BoOptions
{
    /** Random warm-up evaluations before the first GP fit. */
    std::size_t initSamples = 10;

    /** Subset-of-data cap on GP training points (O(n^3) control):
     *  the best half and the most recent half of the history. */
    std::size_t maxGpPoints = 192;

    /** Uniform random acquisition candidates per iteration. */
    std::size_t uniformCandidates = 512;

    /** Gaussian perturbations of the incumbent per iteration. */
    std::size_t localCandidates = 128;

    /** Stddev of local perturbations, in box units. */
    double perturbSigma = 0.08;

    /** Refit GP hyperparameters every this many iterations. */
    std::size_t hyperRefitInterval = 16;

    /** Kernel family of the surrogate. */
    GaussianProcess::Kernel kernel = GaussianProcess::Kernel::Matern52;

    /** Penalty multiplier mapping invalid points to a finite value
     *  (worst finite observation times this factor). */
    double invalidPenaltyFactor = 2.0;
};

/** GP-EI Bayesian-optimization driver. */
class BayesOpt
{
  public:
    /** Driver with default options. */
    BayesOpt() = default;

    /** Driver with explicit options. */
    explicit BayesOpt(const BoOptions &options);

    /**
     * Minimize the objective with a fixed evaluation budget.
     * Candidates are always drawn from the rng before any scoring,
     * so a pool-enabled run reproduces the serial trace
     * seed-for-seed.
     * @param objective problem to minimize.
     * @param samples total objective evaluations (incl. warm-up).
     * @param rng seeded generator.
     * @param pool optional worker pool: fans out warm-up evaluations
     *        (when the objective is threadSafeEvaluate()) and the
     *        per-iteration acquisition candidate scoring (GP
     *        predictions are const and always safe to fan out).
     * @param checkpoint optional snapshot config: resume from an
     *        existing snapshot (trace, rng, GP hyperparameters,
     *        refit counter) and write one every `every` iterations.
     *        A resumed run returns the trace an uninterrupted run
     *        would have produced.
     * @param cancel optional cancellation token, observed at
     *        iteration boundaries: an expired token stops the run
     *        and returns the partial best-so-far trace.
     * @return chronological trace of all samples.
     */
    SearchTrace
    run(Objective &objective, std::size_t samples, Rng &rng,
        ThreadPool *pool = nullptr,
        const SearchCheckpointConfig *checkpoint = nullptr,
        const CancelToken *cancel = nullptr) const;

    /**
     * Extend an existing trace by additional evaluations. Prior
     * points seed the GP (warm start); warm-up sampling only happens
     * when the trace is empty. Used by adaptive flows that alternate
     * search with model retraining. When checkpoint is given and the
     * incoming trace is empty, an existing snapshot is resumed and
     * its points count toward the budget.
     */
    void
    continueRun(Objective &objective, SearchTrace &trace,
                std::size_t additional, Rng &rng,
                ThreadPool *pool = nullptr,
                const SearchCheckpointConfig *checkpoint = nullptr,
                const CancelToken *cancel = nullptr) const;

    /** Options in use. */
    const BoOptions &options() const { return options_; }

  private:
    BoOptions options_;
};

/**
 * Expected improvement for minimization at a GP prediction.
 * @param best incumbent (smallest observed) value.
 */
double expectedImprovement(const GaussianProcess::Prediction &pred,
                           double best);

} // namespace vaesa

#endif // VAESA_DSE_BO_HH
