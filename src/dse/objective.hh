/**
 * @file
 * Search-space abstractions for design space exploration.
 *
 * An Objective is a black-box function over a continuous box to be
 * MINIMIZED (EDP in all of the paper's experiments). The same search
 * drivers (random, BO) run against the 6-D normalized input space and
 * against a VAE latent space; only the Objective differs, which is
 * exactly the framing of Figure 6.
 */

#ifndef VAESA_DSE_OBJECTIVE_HH
#define VAESA_DSE_OBJECTIVE_HH

#include <limits>
#include <vector>

#include "arch/design_space.hh"
#include "sched/evaluator.hh"
#include "workload/layer.hh"
#include "workload/networks.hh"

namespace vaesa {

class ThreadPool;

/** Value used for invalid/unmappable design points. */
constexpr double invalidScore = std::numeric_limits<double>::infinity();

/**
 * The hardware quantity a search minimizes. The paper optimizes EDP
 * throughout but notes the flow "can optimize the latency and energy
 * separately" (Section IV-A2).
 */
enum class Metric { Edp, Latency, Energy };

/** Extract a metric from an evaluation (invalidScore when invalid). */
double metricValue(const EvalResult &result, Metric metric);

/** Human-readable metric name. */
const char *metricName(Metric metric);

/** A black-box minimization problem over a continuous box. */
class Objective
{
  public:
    virtual ~Objective() = default;

    /** Dimensionality of the search box. */
    virtual std::size_t dim() const = 0;

    /** Per-dimension lower bounds of the box. */
    virtual std::vector<double> lowerBounds() const = 0;

    /** Per-dimension upper bounds of the box. */
    virtual std::vector<double> upperBounds() const = 0;

    /**
     * Score a point (smaller is better). Returns invalidScore when the
     * point decodes to an unmappable design.
     */
    virtual double evaluate(const std::vector<double> &x) = 0;

    /**
     * True when concurrent evaluate() calls on this instance are
     * safe AND deterministic (no per-call mutable state, no hidden
     * RNG draws). Search drivers only fan evaluations onto a thread
     * pool when this holds; the default is the conservative false.
     */
    virtual bool threadSafeEvaluate() const { return false; }

    /**
     * Score xs[i] into out[i] as one batch. The base implementation
     * reproduces the historical evaluatePoints() behavior exactly:
     * per-point evaluateRecovered() calls, fanned across the pool
     * when one is given and threadSafeEvaluate() holds, serial
     * otherwise. Objectives backed by the batch evaluation pipeline
     * (InputSpaceObjective) override this to score the whole batch
     * through Evaluator::evaluateLayerBatch and then re-apply the
     * per-point recovery semantics in input order, so values, search
     * metrics, and fault-site hit counts stay identical to the
     * per-point path while the cost-model work runs batched. All
     * overrides must keep results in input order and bit-identical
     * to the base implementation for deterministic objectives.
     */
    virtual std::vector<double> evaluateBatch(
        const std::vector<std::vector<double>> &xs, ThreadPool *pool);
};

/**
 * Score one point with graceful degradation: an evaluator exception
 * or a NaN score (including the injected `eval_throw` / `eval_nan`
 * fault sites) marks the candidate invalid and the search continues,
 * instead of one bad design killing an hours-long run. One bounded
 * retry absorbs transient faults; persistent failures score
 * invalidScore.
 */
double evaluateRecovered(Objective &objective,
                         const std::vector<double> &x);

/**
 * Re-apply evaluateRecovered()'s exact semantics — metric counters,
 * timer, fault sites, NaN/exception retry, invalid fallback — to a
 * raw objective value already computed by a deterministic batch
 * pipeline. Every batch-capable Objective (InputSpaceObjective,
 * MultiWorkloadObjective) runs its batch results through this in
 * input order so values AND fault-site hit counts stay identical to
 * the per-point path.
 */
double recoverRawObjective(double raw);

/**
 * Map a [0,1]^6 box point to the nearest discrete Table II
 * configuration (per-axis linear index rounding; out-of-box
 * coordinates clamp). The shared decode of every input-space
 * objective.
 */
AcceleratorConfig decodeBoxPoint(const std::vector<double> &x);

/** Inverse of decodeBoxPoint onto grid indices, normalized [0,1]. */
std::vector<double> encodeBoxPoint(const AcceleratorConfig &config);

/**
 * Score xs[i] into out[i], fanning across the pool when one is given
 * and the objective declares threadSafeEvaluate(); the serial loop
 * otherwise. Results are bit-identical either way (results land in
 * input order and thread-safe objectives are deterministic), which
 * is what keeps pool-enabled search traces seed-for-seed equal to
 * serial ones. Every evaluation goes through evaluateRecovered().
 */
std::vector<double> evaluatePoints(
    Objective &objective, const std::vector<std::vector<double>> &xs,
    ThreadPool *pool);

/** One evaluated point of a search run. */
struct TracePoint
{
    /** The point in the search box. */
    std::vector<double> x;

    /** Its objective value. */
    double value;
};

/** Chronological record of a search run. */
struct SearchTrace
{
    /** All evaluated points, in sample order. */
    std::vector<TracePoint> points;

    /** Append one evaluation. */
    void add(const std::vector<double> &x, double value);

    /** Best (smallest) value among the first n samples. */
    double bestAfter(std::size_t n) const;

    /** Best value overall (invalidScore when empty). */
    double best() const;

    /** Best point overall (empty when no finite sample exists). */
    std::vector<double> bestPoint() const;

    /** Best-so-far curve: out[i] = min(value[0..i]). */
    std::vector<double> bestCurve() const;

    /**
     * Sample index (1-based) at which the trace first reaches
     * threshold or better; 0 when it never does.
     */
    std::size_t samplesToReach(double threshold) const;
};

/**
 * The paper's direct-search objective over the ORIGINAL design space:
 * points live in the [0,1]^6 box that maps linearly onto the grid
 * *indices* of Table II, so a uniform sample is uniform over the
 * 3.6e17 discrete configurations (the paper's `random` baseline) and
 * BO sees the raw, linearly-scaled parameter axes (the paper's `bo`
 * baseline). Evaluation rounds to the nearest grid index and scores
 * workload EDP with the scheduler + cost model. Note the contrast
 * with the latent space: VAESA's learned representation is the
 * log-normalized, compressed one -- that difference is the point of
 * the paper.
 */
class InputSpaceObjective : public Objective
{
  public:
    /**
     * @param evaluator scoring backend (borrowed; must outlive this).
     * @param layers workload layers to optimize (paper mode: every
     *        layer once).
     * @param metric quantity to minimize (default EDP).
     */
    InputSpaceObjective(const Evaluator &evaluator,
                        std::vector<LayerShape> layers,
                        Metric metric = Metric::Edp);

    /**
     * Occurrence-counted variant: the workload's counts weight each
     * layer's latency/energy in the roll-up (see
     * Evaluator::evaluateWorkload(arch, Workload)). With empty
     * counts this is exactly the layer-vector constructor.
     */
    InputSpaceObjective(const Evaluator &evaluator, Workload workload,
                        Metric metric = Metric::Edp);

    std::size_t dim() const override;
    std::vector<double> lowerBounds() const override;
    std::vector<double> upperBounds() const override;
    double evaluate(const std::vector<double> &x) override;

    /** Decode + Evaluator are stateless-const and deterministic. */
    bool threadSafeEvaluate() const override { return true; }

    /**
     * Batch scoring through the SoA cost-model pipeline
     * (evaluateConfigBatch): decode every point, score all configs
     * layer-by-layer with within-batch dedup and work-stealing
     * chunks, then apply the per-point recovery/metric semantics in
     * input order. Bit-identical values and counter totals to the
     * per-point path; falls back to the base implementation if the
     * batch phase itself fails (so one bad batch degrades gracefully
     * instead of killing a run), or when no pool is given.
     */
    std::vector<double> evaluateBatch(
        const std::vector<std::vector<double>> &xs,
        ThreadPool *pool) override;

    /** Decode a box point to the discrete configuration it scores. */
    AcceleratorConfig decode(const std::vector<double> &x) const;

    /** Normalize a configuration into the [0,1]^6 box. */
    std::vector<double> encode(const AcceleratorConfig &config) const;

    /** The metric being minimized. */
    Metric metric() const { return metric_; }

  private:
    const Evaluator &evaluator_;
    Workload workload_;
    Metric metric_;
};

} // namespace vaesa

#endif // VAESA_DSE_OBJECTIVE_HH
