/**
 * @file
 * Uniform random search over an Objective's box -- the `random`
 * baseline of Figure 11 and Table V.
 */

#ifndef VAESA_DSE_RANDOM_SEARCH_HH
#define VAESA_DSE_RANDOM_SEARCH_HH

#include <cstddef>

#include "dse/objective.hh"
#include "dse/search_state.hh"
#include "util/deadline.hh"
#include "util/rng.hh"

namespace vaesa {

/** Stateless random-search driver. */
class RandomSearch
{
  public:
    /**
     * Evaluate n uniform points of the objective's box. Points are
     * drawn from the rng before any scoring (drawing and evaluation
     * never interleave within a batch), so a pool-enabled run
     * consumes the identical rng stream and returns the identical
     * trace as a serial one.
     * @param objective problem to minimize.
     * @param samples number of evaluations.
     * @param rng seeded generator.
     * @param pool optional worker pool for batch scoring (used only
     *        when the objective is threadSafeEvaluate()).
     * @param checkpoint optional snapshot config: resume from an
     *        existing snapshot and write one every `every` samples.
     *        A resumed run returns the trace an uninterrupted run
     *        would have produced.
     * @param cancel optional cancellation token, observed at chunk
     *        boundaries (with a bounded chunk size when set, so a
     *        deadline is noticed promptly even without
     *        checkpointing): an expired token stops the run and
     *        returns the partial best-so-far trace instead of
     *        blocking to the full budget.
     * @return chronological trace of all samples.
     */
    SearchTrace
    run(Objective &objective, std::size_t samples, Rng &rng,
        ThreadPool *pool = nullptr,
        const SearchCheckpointConfig *checkpoint = nullptr,
        const CancelToken *cancel = nullptr) const;
};

} // namespace vaesa

#endif // VAESA_DSE_RANDOM_SEARCH_HH
