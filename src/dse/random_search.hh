/**
 * @file
 * Uniform random search over an Objective's box -- the `random`
 * baseline of Figure 11 and Table V.
 */

#ifndef VAESA_DSE_RANDOM_SEARCH_HH
#define VAESA_DSE_RANDOM_SEARCH_HH

#include <cstddef>

#include "dse/objective.hh"
#include "util/rng.hh"

namespace vaesa {

/** Stateless random-search driver. */
class RandomSearch
{
  public:
    /**
     * Evaluate n uniform points of the objective's box. All points
     * are drawn from the rng up front and scored as one batch, so a
     * pool-enabled run consumes the identical rng stream and returns
     * the identical trace as a serial one.
     * @param objective problem to minimize.
     * @param samples number of evaluations.
     * @param rng seeded generator.
     * @param pool optional worker pool for batch scoring (used only
     *        when the objective is threadSafeEvaluate()).
     * @return chronological trace of all samples.
     */
    SearchTrace run(Objective &objective, std::size_t samples,
                    Rng &rng, ThreadPool *pool = nullptr) const;
};

} // namespace vaesa

#endif // VAESA_DSE_RANDOM_SEARCH_HH
