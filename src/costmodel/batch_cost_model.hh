/**
 * @file
 * Structure-of-arrays batch front-end of the analytical cost model:
 * score N (architecture, mapping) items against ONE layer in a
 * single pass. The branchy per-item work (mapping validation,
 * ceil-divided tile counts, per-architecture SRAM energy lookups)
 * runs here as a gather pass; the dense floating-point tail runs in
 * the kernel layer (src/tensor/kernels/cost_kernels.*) under the
 * VAESA_KERNEL runtime switch, and a scatter pass re-applies the
 * scalar path's post-condition contracts per item.
 *
 * Determinism/equivalence contract (enforced by
 * tests/costmodel/test_batch_properties.cc):
 *  - Under the naive kernel every headline field produced below is
 *    BIT-IDENTICAL to CostModel::evaluate() on the same item — the
 *    gather pass replicates the scalar operation order exactly, and
 *    the naive kernel TU is built at baseline flags.
 *  - Under the blocked kernel results remain bit-identical on
 *    current builds (its TU disables fp contraction, so SIMD lanes
 *    round like scalar ops); the tests additionally bound it by a
 *    1e-12 relative tolerance as contractual headroom.
 *  - Results are independent of batch size, item order, and the
 *    presence of duplicate items.
 *
 * Scope note: the batch path fills validity, the latency triple and
 * roll-up, the DRAM traffic triple, total energyPj, and
 * macUtilization — everything the search/evaluation stack consumes
 * (EvalResult needs only latency/energy/edp). The per-term energy
 * breakdown stays zero; callers that want it (reporting, figures) go
 * through the scalar CostModel::evaluate() / Evaluator::detailedLayer
 * path, which remains the source of truth for breakdowns.
 */

#ifndef VAESA_COSTMODEL_BATCH_COST_MODEL_HH
#define VAESA_COSTMODEL_BATCH_COST_MODEL_HH

#include <cstddef>

#include "costmodel/cost_model.hh"

namespace vaesa {

/**
 * Batch scorer over a borrowed CostModel. Stateless and cheap to
 * construct; safe to share across threads (scoring allocates only
 * function-local scratch).
 */
class BatchCostModel
{
  public:
    /** Wrap @p model (borrowed; must outlive this object). */
    explicit BatchCostModel(const CostModel &model) : model_(&model) {}

    /**
     * Score items [0, n): results[i] = the batch-path equivalent of
     * model.evaluate(archs[i], layer, mappings[i]). Items failing
     * checkMapping() come back invalid with the scalar path's exact
     * reason string and zeroed numeric fields.
     */
    void evaluateLayer(const AcceleratorConfig *archs,
                       const Mapping *mappings, std::size_t n,
                       const LayerShape &layer,
                       CostResult *results) const;

    /** The wrapped scalar model. */
    const CostModel &model() const { return *model_; }

  private:
    const CostModel *model_;
};

} // namespace vaesa

#endif // VAESA_COSTMODEL_BATCH_COST_MODEL_HH
