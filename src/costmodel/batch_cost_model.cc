#include "costmodel/batch_cost_model.hh"

#include <string>
#include <vector>

#include "tensor/kernels/cost_kernels.hh"
#include "util/contracts.hh"
#include "util/numeric.hh"

namespace vaesa {

void
BatchCostModel::evaluateLayer(const AcceleratorConfig *archs,
                              const Mapping *mappings, std::size_t n,
                              const LayerShape &layer,
                              CostResult *results) const
{
    if (n == 0)
        return;
    const CostModel &model = *model_;
    const EnergyModel &energy = model.energy();
    const CostModel::Params &params = model.params();

    // Validation pass: invalid items are finalized immediately with
    // the scalar path's exact reason string; valid items are
    // compacted into the SoA lanes below so the kernel sees a dense
    // batch.
    std::vector<std::size_t> live;
    live.reserve(n);
    std::string reason;
    for (std::size_t i = 0; i < n; ++i) {
        results[i] = CostResult{};
        if (model.checkMapping(archs[i], layer, mappings[i], &reason)) {
            results[i].valid = true;
            live.push_back(i);
        } else {
            results[i].valid = false;
            results[i].invalidReason = reason;
        }
    }
    if (live.empty())
        return;

    // 13 input + 8 output lanes, one allocation.
    const std::size_t m = live.size();
    std::vector<double> soa(m * 21);
    double *nTotal = soa.data();
    double *cyclesPerTile = nTotal + m;
    double *nPqOuter = cyclesPerTile + m;
    double *nGbAll = nPqOuter + m;
    double *inputGbWords = nGbAll + m;
    double *inputTileWords = inputGbWords + m;
    double *spatialK = inputTileWords + m;
    double *spatialC = spatialK + m;
    double *pqTile = spatialC + m;
    double *inputBufPj = pqTile + m;
    double *weightBufPj = inputBufPj + m;
    double *accumBufPj = weightBufPj + m;
    double *globalBufPj = accumBufPj + m;
    double *outCompute = globalBufPj + m;
    double *outDram = outCompute + m;
    double *outGb = outDram + m;
    double *outWeightReads = outGb + m;
    double *outInputReads = outWeightReads + m;
    double *outLatency = outInputReads + m;
    double *outEnergy = outLatency + m;
    double *outUtil = outEnergy + m;

    // Gather pass. Every expression below mirrors the scalar prep in
    // CostModel::evaluate() operation for operation (same widening
    // points, same product order over dimensions), which is what
    // makes the naive-kernel batch path bit-identical to the scalar
    // path rather than merely close.
    const auto dims = layerDims(layer);
    for (std::size_t j = 0; j < m; ++j) {
        const AcceleratorConfig &arch = archs[live[j]];
        const Mapping &mapping = mappings[live[j]];

        double n_total = 1.0;
        double n_gb_all = 1.0;
        for (int d = 0; d < numDims; ++d) {
            n_total *= static_cast<double>(
                ceilDiv(dims[d], mapping.arrayTilePe(d)));
            n_gb_all *= static_cast<double>(
                ceilDiv(dims[d], mapping.tileGb[d]));
        }
        nTotal[j] = n_total;
        nGbAll[j] = n_gb_all;

        cyclesPerTile[j] =
            static_cast<double>(mapping.tilePe[DimR]) *
            static_cast<double>(mapping.tilePe[DimS]) *
            static_cast<double>(mapping.tilePe[DimP]) *
            static_cast<double>(mapping.tilePe[DimQ]) *
            static_cast<double>(
                ceilDiv(mapping.tilePe[DimC], mapping.spatialC)) *
            static_cast<double>(mapping.tilePe[DimK]);

        nPqOuter[j] =
            static_cast<double>(
                ceilDiv(dims[DimP], mapping.tilePe[DimP])) *
            static_cast<double>(
                ceilDiv(dims[DimQ], mapping.tilePe[DimQ]));

        inputGbWords[j] = mapping.inputGbTileWords(layer);
        inputTileWords[j] = mapping.inputTileWords(layer);
        spatialK[j] = static_cast<double>(mapping.spatialK);
        spatialC[j] = static_cast<double>(mapping.spatialC);
        pqTile[j] = static_cast<double>(mapping.tilePe[DimP]) *
                    static_cast<double>(mapping.tilePe[DimQ]);

        inputBufPj[j] = energy.sramAccessPj(arch.inputBufBytes);
        weightBufPj[j] = energy.sramAccessPj(arch.weightBufBytes);
        accumBufPj[j] = energy.sramAccessPj(arch.accumBufBytes);
        globalBufPj[j] = energy.sramAccessPj(arch.globalBufBytes);
    }

    const kernels::CostBatch batch{
        nTotal,       cyclesPerTile,  nPqOuter,  nGbAll,
        inputGbWords, inputTileWords, spatialK,  spatialC,
        pqTile,       inputBufPj,     weightBufPj,
        accumBufPj,   globalBufPj,
        outCompute,   outDram,        outGb,     outWeightReads,
        outInputReads, outLatency,    outEnergy, outUtil};
    const kernels::CostBatchConsts consts{
        layer.macs(),
        static_cast<double>(layer.weightWords()),
        static_cast<double>(layer.outputWords()),
        params.dramWordsPerCycle,
        params.globalBufWordsPerCycle,
        energy.macPj(),
        energy.registerAccessPj(),
        energy.dramAccessPj(),
        energy.nocHopPj()};
    kernels::costBatch(m, batch, consts);

    // Scatter pass, with the scalar path's post-condition contracts
    // re-applied per item at the costmodel/sched boundary.
    const double dram_output_writes =
        static_cast<double>(layer.outputWords());
    for (std::size_t j = 0; j < m; ++j) {
        CostResult &r = results[live[j]];
        r.computeCycles = outCompute[j];
        r.dramCycles = outDram[j];
        r.globalBufCycles = outGb[j];
        r.dramWeightReads = outWeightReads[j];
        r.dramInputReads = outInputReads[j];
        r.dramOutputWrites = dram_output_writes;
        r.latencyCycles = outLatency[j];
        r.energyPj = outEnergy[j];
        r.macUtilization = outUtil[j];

        VAESA_CHECK_FINITE(r.latencyCycles, "latency for layer ",
                           layer.name);
        VAESA_CHECK_FINITE(r.energyPj, "energy for layer ",
                           layer.name);
        VAESA_ENSURE(r.latencyCycles >= 0.0,
                     "negative latency for layer ", layer.name);
        VAESA_ENSURE(r.energyPj >= 0.0,
                     "negative energy for layer ", layer.name);
        VAESA_ENSURE(r.macUtilization >= 0.0 &&
                         r.macUtilization <= 1.0 + 1e-9,
                     "MAC utilization outside [0, 1] for layer ",
                     layer.name, ": ", r.macUtilization);
    }
}

} // namespace vaesa
