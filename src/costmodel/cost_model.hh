/**
 * @file
 * Analytical latency/energy model for the Simba-like accelerator --
 * the repository's stand-in for Timeloop.
 *
 * Like Timeloop, the model derives per-level access counts from the
 * mapping's tile sizes, multiplies them by per-access energies, and
 * takes latency as the maximum of compute-bound and per-memory-level
 * bandwidth-bound cycles. See mapping.hh for the loop-order
 * conventions that fix the re-fetch factors.
 */

#ifndef VAESA_COSTMODEL_COST_MODEL_HH
#define VAESA_COSTMODEL_COST_MODEL_HH

#include <string>

#include "arch/design_space.hh"
#include "arch/energy_model.hh"
#include "costmodel/mapping.hh"
#include "workload/layer.hh"

namespace vaesa {

/** Full evaluation of (architecture, layer, mapping). */
struct CostResult
{
    /** False when the mapping violates a capacity or shape invariant;
     *  all other fields are undefined in that case. */
    bool valid = false;

    /** Reason for invalidity (empty when valid). */
    std::string invalidReason;

    /** End-to-end latency in cycles (max of the bound terms). */
    double latencyCycles = 0.0;

    /** Total energy in picojoules. */
    double energyPj = 0.0;

    /** Energy-delay product: latencyCycles * energyPj. */
    double edp() const { return latencyCycles * energyPj; }

    /** @name Latency breakdown (cycles) */
    /** @{ */
    double computeCycles = 0.0;
    double dramCycles = 0.0;
    double globalBufCycles = 0.0;
    /** @} */

    /** @name DRAM traffic breakdown (words) */
    /** @{ */
    double dramWeightReads = 0.0;
    double dramInputReads = 0.0;
    double dramOutputWrites = 0.0;
    /** @} */

    /** @name Energy breakdown (pJ) */
    /** @{ */
    double macEnergy = 0.0;
    double registerEnergy = 0.0;
    double inputBufEnergy = 0.0;
    double weightBufEnergy = 0.0;
    double accumBufEnergy = 0.0;
    double globalBufEnergy = 0.0;
    double dramEnergy = 0.0;
    double nocEnergy = 0.0;
    /** @} */

    /** Fraction of MAC issue slots doing useful work, in (0, 1]. */
    double macUtilization = 0.0;
};

/**
 * The analytical model. Stateless apart from bandwidth parameters and
 * the energy table, so one instance can score any number of points.
 */
class CostModel
{
  public:
    /** Bandwidths in 16-bit words per cycle. */
    struct Params
    {
        /** DRAM bandwidth (words/cycle); 8 words ~ 16 GB/s at 1 GHz. */
        double dramWordsPerCycle = 8.0;

        /** Global-buffer bandwidth (words/cycle). */
        double globalBufWordsPerCycle = 32.0;

        /** Bytes per activation/weight word. */
        double bytesPerWord = 2.0;

        /** Bytes per partial sum held in the accumulation buffer. */
        double bytesPerPsum = 4.0;
    };

    /** Model with default bandwidths and the 40 nm energy table. */
    CostModel() = default;

    /** Model with explicit parameters. */
    CostModel(const Params &params, const EnergyModel &energy);

    /** Score one (architecture, layer, mapping) triple. */
    CostResult evaluate(const AcceleratorConfig &arch,
                        const LayerShape &layer,
                        const Mapping &mapping) const;

    /**
     * Check the mapping against the architecture's capacities and the
     * structural invariants without computing costs.
     * @param reason set to a diagnostic when the check fails.
     */
    bool checkMapping(const AcceleratorConfig &arch,
                      const LayerShape &layer, const Mapping &mapping,
                      std::string *reason = nullptr) const;

    /** Bandwidth/word-size parameters in use. */
    const Params &params() const { return params_; }

    /** Energy table in use. */
    const EnergyModel &energy() const { return energy_; }

  private:
    Params params_;
    EnergyModel energy_;
};

} // namespace vaesa

#endif // VAESA_COSTMODEL_COST_MODEL_HH
