#include "costmodel/mapping.hh"

#include <sstream>

#include "util/logging.hh"

namespace vaesa {

std::array<std::int64_t, numDims>
layerDims(const LayerShape &layer)
{
    return {layer.r, layer.s, layer.p, layer.q, layer.c, layer.k};
}

std::int64_t
Mapping::arrayTilePe(int dim) const
{
    if (dim == DimK)
        return spatialK * tilePe[DimK];
    return tilePe[dim];
}

std::int64_t
Mapping::weightTileWords() const
{
    return tilePe[DimR] * tilePe[DimS] * tilePe[DimC] * tilePe[DimK];
}

std::int64_t
Mapping::inputTileWords(const LayerShape &layer) const
{
    const std::int64_t in_w =
        (tilePe[DimP] - 1) * layer.strideW + tilePe[DimR];
    const std::int64_t in_h =
        (tilePe[DimQ] - 1) * layer.strideH + tilePe[DimS];
    return in_w * in_h * tilePe[DimC];
}

std::int64_t
Mapping::psumTileWords() const
{
    return tilePe[DimP] * tilePe[DimQ] * tilePe[DimK];
}

std::int64_t
Mapping::inputGbTileWords(const LayerShape &layer) const
{
    const std::int64_t in_w =
        (tileGb[DimP] - 1) * layer.strideW + tileGb[DimR];
    const std::int64_t in_h =
        (tileGb[DimQ] - 1) * layer.strideH + tileGb[DimS];
    return in_w * in_h * tileGb[DimC];
}

std::int64_t
Mapping::outputGbTileWords() const
{
    return tileGb[DimP] * tileGb[DimQ] * tileGb[DimK];
}

std::string
Mapping::describe() const
{
    std::ostringstream oss;
    oss << "spatialK=" << spatialK << " spatialC=" << spatialC
        << " tilePe=[";
    for (int d = 0; d < numDims; ++d)
        oss << (d ? "," : "") << tilePe[d];
    oss << "] tileGb=[";
    for (int d = 0; d < numDims; ++d)
        oss << (d ? "," : "") << tileGb[d];
    oss << "]";
    return oss.str();
}

const char *
dimName(int dim)
{
    switch (dim) {
      case DimR: return "R";
      case DimS: return "S";
      case DimP: return "P";
      case DimQ: return "Q";
      case DimC: return "C";
      case DimK: return "K";
    }
    panic("dimName: bad dimension ", dim);
}

} // namespace vaesa
