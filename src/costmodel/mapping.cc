#include "costmodel/mapping.hh"

#include <sstream>

#include "util/logging.hh"

namespace vaesa {

std::array<std::int64_t, numDims>
layerDims(const LayerShape &layer)
{
    return {layer.r, layer.s, layer.p, layer.q, layer.c, layer.k};
}

std::int64_t
Mapping::arrayTilePe(int dim) const
{
    if (dim == DimK)
        return spatialK * tilePe[DimK];
    return tilePe[dim];
}

namespace {

/** Widen-before-multiply (see the header's overflow note). */
inline double
d(std::int64_t v)
{
    return static_cast<double>(v);
}

} // namespace

double
Mapping::weightTileWords() const
{
    return d(tilePe[DimR]) * d(tilePe[DimS]) * d(tilePe[DimC]) *
           d(tilePe[DimK]);
}

double
Mapping::inputTileWords(const LayerShape &layer) const
{
    const double in_w =
        d(tilePe[DimP] - 1) * d(layer.strideW) + d(tilePe[DimR]);
    const double in_h =
        d(tilePe[DimQ] - 1) * d(layer.strideH) + d(tilePe[DimS]);
    return in_w * in_h * d(tilePe[DimC]);
}

double
Mapping::psumTileWords() const
{
    return d(tilePe[DimP]) * d(tilePe[DimQ]) * d(tilePe[DimK]);
}

double
Mapping::inputGbTileWords(const LayerShape &layer) const
{
    const double in_w =
        d(tileGb[DimP] - 1) * d(layer.strideW) + d(tileGb[DimR]);
    const double in_h =
        d(tileGb[DimQ] - 1) * d(layer.strideH) + d(tileGb[DimS]);
    return in_w * in_h * d(tileGb[DimC]);
}

double
Mapping::outputGbTileWords() const
{
    return d(tileGb[DimP]) * d(tileGb[DimQ]) * d(tileGb[DimK]);
}

std::string
Mapping::describe() const
{
    std::ostringstream oss;
    oss << "spatialK=" << spatialK << " spatialC=" << spatialC
        << " tilePe=[";
    for (int d = 0; d < numDims; ++d)
        oss << (d ? "," : "") << tilePe[d];
    oss << "] tileGb=[";
    for (int d = 0; d < numDims; ++d)
        oss << (d ? "," : "") << tileGb[d];
    oss << "]";
    return oss.str();
}

const char *
dimName(int dim)
{
    switch (dim) {
      case DimR: return "R";
      case DimS: return "S";
      case DimP: return "P";
      case DimQ: return "Q";
      case DimC: return "C";
      case DimK: return "K";
    }
    panic("dimName: bad dimension ", dim);
}

} // namespace vaesa
