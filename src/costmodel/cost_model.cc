#include "costmodel/cost_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contracts.hh"
#include "util/logging.hh"
#include "util/numeric.hh"

namespace vaesa {

CostModel::CostModel(const Params &params, const EnergyModel &energy)
    : params_(params), energy_(energy)
{
}

bool
CostModel::checkMapping(const AcceleratorConfig &arch,
                        const LayerShape &layer, const Mapping &mapping,
                        std::string *reason) const
{
    auto fail = [&](const std::string &why) {
        if (reason)
            *reason = why;
        return false;
    };

    if (!layer.isSane())
        return fail("layer has a non-positive dimension");
    if (!designSpace().isValid(arch))
        return fail("architecture is structurally invalid");

    if (mapping.spatialK < 1 || mapping.spatialK > arch.numPes)
        return fail("spatialK outside [1, numPes]");
    if (mapping.spatialC < 1 || mapping.spatialC > arch.lanesPerPe())
        return fail("spatialC outside [1, lanes/PE]");

    const auto dims = layerDims(layer);
    for (int d = 0; d < numDims; ++d) {
        if (mapping.tilePe[d] < 1)
            return fail(std::string("tilePe[") + dimName(d) + "] < 1");
        if (mapping.tileGb[d] < mapping.tilePe[d])
            return fail(std::string("tileGb[") + dimName(d) +
                        "] < tilePe");
        if (mapping.tileGb[d] > dims[d])
            return fail(std::string("tileGb[") + dimName(d) +
                        "] exceeds layer dimension");
    }
    // The global-buffer K tile must cover the concurrent array tile.
    if (mapping.tileGb[DimK] < mapping.arrayTilePe(DimK) &&
        mapping.tileGb[DimK] < dims[DimK]) {
        return fail("tileGb[K] smaller than the concurrent array tile");
    }
    if (mapping.spatialC > mapping.tilePe[DimC])
        return fail("spatialC exceeds the per-PE C tile");

    // Word counts are computed in double (widened per-factor in
    // Mapping), so an absurdly large tile compares as too big
    // instead of wrapping negative and "fitting".
    const double bpw = params_.bytesPerWord;
    if (mapping.weightTileWords() * bpw >
        static_cast<double>(arch.weightBufBytes)) {
        return fail("weight tile exceeds weight buffer");
    }
    if (mapping.inputTileWords(layer) * bpw >
        static_cast<double>(arch.inputBufBytes)) {
        return fail("input tile exceeds input buffer");
    }
    if (mapping.psumTileWords() * params_.bytesPerPsum >
        static_cast<double>(arch.accumBufBytes)) {
        return fail("psum tile exceeds accumulation buffer");
    }
    const double gb_words =
        mapping.inputGbTileWords(layer) + mapping.outputGbTileWords();
    if (gb_words * bpw > static_cast<double>(arch.globalBufBytes))
        return fail("global-buffer tile exceeds global buffer");

    if (reason)
        reason->clear();
    return true;
}

CostResult
CostModel::evaluate(const AcceleratorConfig &arch, const LayerShape &layer,
                    const Mapping &mapping) const
{
    CostResult result;
    std::string reason;
    if (!checkMapping(arch, layer, mapping, &reason)) {
        result.valid = false;
        result.invalidReason = reason;
        return result;
    }
    result.valid = true;

    const auto dims = layerDims(layer);
    const double macs = layer.macs();

    // Tile iteration counts: nTotal over PE-array tiles, nGb over
    // global-buffer tiles (DRAM-level loops).
    double n_total = 1.0;
    double n_total_arr[numDims];
    double n_gb[numDims];
    for (int d = 0; d < numDims; ++d) {
        n_total_arr[d] = static_cast<double>(
            ceilDiv(dims[d], mapping.arrayTilePe(d)));
        n_gb[d] = static_cast<double>(
            ceilDiv(dims[d], mapping.tileGb[d]));
        n_total *= n_total_arr[d];
    }

    // Compute-bound cycles: per array-tile, each PE runs its tile with
    // spatialC lanes reducing C.
    const double cycles_per_tile =
        static_cast<double>(mapping.tilePe[DimR]) *
        static_cast<double>(mapping.tilePe[DimS]) *
        static_cast<double>(mapping.tilePe[DimP]) *
        static_cast<double>(mapping.tilePe[DimQ]) *
        static_cast<double>(
            ceilDiv(mapping.tilePe[DimC], mapping.spatialC)) *
        static_cast<double>(mapping.tilePe[DimK]);
    result.computeCycles = n_total * cycles_per_tile;

    // DRAM traffic (see mapping.hh for the loop-order rationale).
    const double n_pq_outer =
        static_cast<double>(ceilDiv(dims[DimP], mapping.tilePe[DimP])) *
        static_cast<double>(ceilDiv(dims[DimQ], mapping.tilePe[DimQ]));
    result.dramWeightReads =
        static_cast<double>(layer.weightWords()) * n_pq_outer;

    double n_gb_all = 1.0;
    for (int d = 0; d < numDims; ++d)
        n_gb_all *= n_gb[d];
    result.dramInputReads = n_gb_all * mapping.inputGbTileWords(layer);

    result.dramOutputWrites = static_cast<double>(layer.outputWords());

    // Global-buffer traffic: input fills from DRAM, multicast reads by
    // the PE array (once per array-tile iteration), and one output
    // pass-through.
    const double gb_input_writes = result.dramInputReads;
    const double gb_input_reads =
        n_total * mapping.inputTileWords(layer);
    const double gb_output_writes = result.dramOutputWrites;
    const double gb_output_reads = result.dramOutputWrites;

    // Per-PE buffer traffic.
    const double input_buf_writes =
        gb_input_reads * static_cast<double>(mapping.spatialK);
    const double input_buf_reads = macs;
    const double weight_buf_writes = result.dramWeightReads;
    const double weight_buf_reads =
        macs / (static_cast<double>(mapping.tilePe[DimP]) *
                static_cast<double>(mapping.tilePe[DimQ]));
    const double accum_updates =
        macs / static_cast<double>(mapping.spatialC);
    const double accum_accesses =
        2.0 * accum_updates + 2.0 * result.dramOutputWrites;

    // Latency: bandwidth-bound terms vs compute.
    const double dram_words = result.dramWeightReads +
                              result.dramInputReads +
                              result.dramOutputWrites;
    result.dramCycles = dram_words / params_.dramWordsPerCycle;
    const double gb_words = gb_input_writes + gb_input_reads +
                            gb_output_writes + gb_output_reads;
    result.globalBufCycles = gb_words / params_.globalBufWordsPerCycle;
    result.latencyCycles = std::max({result.computeCycles,
                                     result.dramCycles,
                                     result.globalBufCycles});

    // Energy roll-up.
    result.macEnergy = macs * energy_.macPj();
    result.registerEnergy = 2.0 * macs * energy_.registerAccessPj();
    result.inputBufEnergy = (input_buf_reads + input_buf_writes) *
                            energy_.sramAccessPj(arch.inputBufBytes);
    result.weightBufEnergy = (weight_buf_reads + weight_buf_writes) *
                             energy_.sramAccessPj(arch.weightBufBytes);
    result.accumBufEnergy =
        accum_accesses * energy_.sramAccessPj(arch.accumBufBytes);
    result.globalBufEnergy =
        gb_words * energy_.sramAccessPj(arch.globalBufBytes);
    result.dramEnergy = dram_words * energy_.dramAccessPj();
    const double mean_hops =
        std::sqrt(static_cast<double>(mapping.spatialK));
    result.nocEnergy = (gb_input_reads + result.dramWeightReads +
                        gb_output_writes) *
                       mean_hops * energy_.nocHopPj();

    result.energyPj = result.macEnergy + result.registerEnergy +
                      result.inputBufEnergy + result.weightBufEnergy +
                      result.accumBufEnergy + result.globalBufEnergy +
                      result.dramEnergy + result.nocEnergy;

    const double issue_slots =
        result.computeCycles * static_cast<double>(mapping.spatialK) *
        static_cast<double>(mapping.spatialC);
    result.macUtilization = issue_slots > 0.0 ? macs / issue_slots : 0.0;

    // Post-conditions at the costmodel/sched boundary: a mapping that
    // passed checkMapping() must never score as negative or
    // non-finite, or every search curve downstream silently corrupts.
    VAESA_CHECK_FINITE(result.latencyCycles, "latency for layer ",
                       layer.name);
    VAESA_CHECK_FINITE(result.energyPj, "energy for layer ",
                       layer.name);
    VAESA_ENSURE(result.latencyCycles >= 0.0,
                 "negative latency for layer ", layer.name);
    VAESA_ENSURE(result.energyPj >= 0.0,
                 "negative energy for layer ", layer.name);
    VAESA_ENSURE(result.macUtilization >= 0.0 &&
                     result.macUtilization <= 1.0 + 1e-9,
                 "MAC utilization outside [0, 1] for layer ",
                 layer.name, ": ", result.macUtilization);

    return result;
}

} // namespace vaesa
