/**
 * @file
 * Loop-nest mapping of a layer onto the Simba-like accelerator.
 *
 * The machine has a three-level storage hierarchy:
 *   DRAM -> shared global buffer -> per-PE buffers -> MAC registers.
 * A mapping fixes (a) the spatial work split -- output channels K
 * across PEs, input channels C across the MAC lanes inside a PE -- and
 * (b) the temporal tile sizes resident in the per-PE buffers and in
 * the global buffer. Tile counts use ceiling division, so tile sizes
 * need not divide the layer dimensions; the quantization loss shows up
 * as under-utilization, as in Timeloop.
 *
 * Fixed loop order (a CoSA-style convention, documented in DESIGN.md):
 * at every temporal level the nest is [P, Q outermost][K][C innermost].
 * Consequences used by the cost model:
 *   - weights live in the per-PE weight buffer and are re-fetched from
 *     DRAM once per outer (P, Q) tile iteration;
 *   - inputs live in the global buffer and are re-fetched from DRAM
 *     once per DRAM-level K iteration;
 *   - partial sums never spill: the accumulation buffer holds one
 *     (P, Q, K) psum tile across the entire C reduction, and each
 *     output word is written to DRAM exactly once.
 */

#ifndef VAESA_COSTMODEL_MAPPING_HH
#define VAESA_COSTMODEL_MAPPING_HH

#include <array>
#include <cstdint>
#include <string>

#include "workload/layer.hh"

namespace vaesa {

/** Loop dimensions of a convolution in Table IV order. */
enum Dim : int {
    DimR = 0,
    DimS = 1,
    DimP = 2,
    DimQ = 3,
    DimC = 4,
    DimK = 5,
};

/** Number of loop dimensions. */
constexpr int numDims = 6;

/** Per-dimension extents of one layer as an array. */
std::array<std::int64_t, numDims> layerDims(const LayerShape &layer);

/**
 * A complete mapping: spatial split plus per-level temporal tiles.
 * Invariants (checked by CostModel::evaluate):
 *   - 1 <= spatialK <= #PEs, 1 <= spatialC <= lanes/PE;
 *   - 1 <= tilePe[d] <= tileGb[d] <= dim[d] for d in {R,S,P,Q,C};
 *   - for K the global-buffer tile covers the whole array:
 *     spatialK * tilePe[K] <= tileGb[K] <= K (after ceiling padding).
 */
struct Mapping
{
    /** Number of PEs used; K is split spatially across them. */
    std::int64_t spatialK = 1;

    /** MAC lanes used per PE; C is split spatially across them. */
    std::int64_t spatialC = 1;

    /** Temporal tile resident in one PE's buffers. tilePe[DimC] counts
     *  all lanes' channels (the lanes reduce into one psum). */
    std::array<std::int64_t, numDims> tilePe{1, 1, 1, 1, 1, 1};

    /** Array-level tile resident in the global buffer. tileGb[DimK]
     *  covers all PEs (>= spatialK * tilePe[DimK]). */
    std::array<std::int64_t, numDims> tileGb{1, 1, 1, 1, 1, 1};

    /** Tile the whole PE array covers concurrently in dimension d. */
    std::int64_t arrayTilePe(int dim) const;

    // Word counts are products of up to four tile extents. At the
    // corners of the design space (and for adversarial mappings fed
    // to the fit check) the int64 product overflows, wraps negative,
    // and makes an impossibly large tile "fit" its buffer — so every
    // factor is widened to double BEFORE multiplying. Each factor is
    // far below 2^53, so the result is exact whenever it matters and
    // merely saturates gracefully when it would not fit an int64 at
    // all. Callers consume these in double arithmetic anyway.

    /** Words of one PE's weight tile: r*s*c*k. */
    double weightTileWords() const;

    /** Words of one PE's input tile, halo included. */
    double inputTileWords(const LayerShape &layer) const;

    /** Partial sums in one PE's accumulation buffer: p*q*k. */
    double psumTileWords() const;

    /** Words of the global buffer's input tile, halo included. */
    double inputGbTileWords(const LayerShape &layer) const;

    /** Words of the global buffer's output tile: p*q*k. */
    double outputGbTileWords() const;

    /** One-line description for logs. */
    std::string describe() const;
};

/** Name of a dimension ("R", "S", ...). */
const char *dimName(int dim);

} // namespace vaesa

#endif // VAESA_COSTMODEL_MAPPING_HH
