#include "tensor/matrix.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels/kernels.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace vaesa {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    if (data_.size() != rows * cols)
        panic("Matrix init payload size ", data_.size(),
              " != ", rows, "x", cols);
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix index (", r, ",", c, ") out of ",
              rows_, "x", cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix index (", r, ",", c, ") out of ",
              rows_, "x", cols_);
    return data_[r * cols_ + c];
}

void
Matrix::resizeBuffer(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
}

void
Matrix::copyFrom(const Matrix &other)
{
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_.assign(other.data_.begin(), other.data_.end());
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    if (r >= rows_)
        panic("Matrix row ", r, " out of ", rows_);
    return std::vector<double>(data_.begin() + r * cols_,
                               data_.begin() + (r + 1) * cols_);
}

void
Matrix::copyRowInto(std::size_t r, std::vector<double> &out) const
{
    if (r >= rows_)
        panic("Matrix row ", r, " out of ", rows_);
    out.resize(cols_);
    std::copy(data_.begin() + r * cols_,
              data_.begin() + (r + 1) * cols_, out.begin());
}

void
Matrix::setRow(std::size_t r, const std::vector<double> &values)
{
    if (r >= rows_)
        panic("Matrix row ", r, " out of ", rows_);
    if (values.size() != cols_)
        panic("Matrix setRow length ", values.size(), " != ", cols_);
    std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

void
Matrix::fill(double value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::apply(const std::function<double(double)> &f)
{
    for (double &x : data_)
        x = f(x);
}

void
Matrix::add(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix add shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Matrix::sub(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix sub shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
}

void
Matrix::scale(double factor)
{
    for (double &x : data_)
        x *= factor;
}

void
Matrix::addScaled(const Matrix &other, double factor)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix addScaled shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += factor * other.data_[i];
}

void
Matrix::hadamard(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix hadamard shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] *= other.data_[i];
}

void
Matrix::addRowVector(const std::vector<double> &bias)
{
    if (bias.size() != cols_)
        panic("Matrix addRowVector length ", bias.size(), " != ", cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        double *row_ptr = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c)
            row_ptr[c] += bias[c];
    }
}

std::vector<double>
Matrix::colSums() const
{
    std::vector<double> sums(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *row_ptr = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c)
            sums[c] += row_ptr[c];
    }
    return sums;
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (double x : data_)
        best = std::max(best, std::fabs(x));
    return best;
}

double
Matrix::sum() const
{
    double acc = 0.0;
    for (double x : data_)
        acc += x;
    return acc;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.data_[c * rows_ + r] = data_[r * cols_ + c];
    return out;
}

Matrix
Matrix::multiply(const Matrix &a, const Matrix &b)
{
    Matrix c;
    multiplyInto(a, b, c);
    return c;
}

Matrix
Matrix::multiplyTransB(const Matrix &a, const Matrix &b)
{
    Matrix c;
    multiplyTransBInto(a, b, c);
    return c;
}

Matrix
Matrix::multiplyTransA(const Matrix &a, const Matrix &b)
{
    Matrix c;
    multiplyTransAInto(a, b, c);
    return c;
}

void
Matrix::multiplyInto(const Matrix &a, const Matrix &b, Matrix &c)
{
    if (a.cols_ != b.rows_)
        panic("Matrix multiply shape mismatch: ", a.rows_, "x", a.cols_,
              " * ", b.rows_, "x", b.cols_);
    c.resizeBuffer(a.rows_, b.cols_);
    kernels::gemm(a.rows_, b.cols_, a.cols_, a.data_.data(),
                  b.data_.data(), c.data_.data());
}

void
Matrix::multiplyTransBInto(const Matrix &a, const Matrix &b, Matrix &c)
{
    if (a.cols_ != b.cols_)
        panic("Matrix multiplyTransB shape mismatch: ", a.rows_, "x",
              a.cols_, " * (", b.rows_, "x", b.cols_, ")^T");
    c.resizeBuffer(a.rows_, b.rows_);
    kernels::gemmTransB(a.rows_, b.rows_, a.cols_, a.data_.data(),
                        b.data_.data(), c.data_.data());
}

void
Matrix::multiplyTransAInto(const Matrix &a, const Matrix &b, Matrix &c)
{
    if (a.rows_ != b.rows_)
        panic("Matrix multiplyTransA shape mismatch: (", a.rows_, "x",
              a.cols_, ")^T * ", b.rows_, "x", b.cols_);
    c.resizeBuffer(a.cols_, b.cols_);
    kernels::gemmTransA(a.cols_, b.cols_, a.rows_, a.data_.data(),
                        b.data_.data(), c.data_.data());
}

void
Matrix::randomNormal(Rng &rng, double mean, double stddev)
{
    for (double &x : data_)
        x = rng.normal(mean, stddev);
}

void
Matrix::randomUniform(Rng &rng, double lo, double hi)
{
    for (double &x : data_)
        x = rng.uniform(lo, hi);
}

bool
Matrix::operator==(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

} // namespace vaesa
