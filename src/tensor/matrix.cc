#include "tensor/matrix.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace vaesa {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    if (data_.size() != rows * cols)
        panic("Matrix init payload size ", data_.size(),
              " != ", rows, "x", cols);
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix index (", r, ",", c, ") out of ",
              rows_, "x", cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix index (", r, ",", c, ") out of ",
              rows_, "x", cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    if (r >= rows_)
        panic("Matrix row ", r, " out of ", rows_);
    return std::vector<double>(data_.begin() + r * cols_,
                               data_.begin() + (r + 1) * cols_);
}

void
Matrix::setRow(std::size_t r, const std::vector<double> &values)
{
    if (r >= rows_)
        panic("Matrix row ", r, " out of ", rows_);
    if (values.size() != cols_)
        panic("Matrix setRow length ", values.size(), " != ", cols_);
    std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

void
Matrix::fill(double value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::apply(const std::function<double(double)> &f)
{
    for (double &x : data_)
        x = f(x);
}

void
Matrix::add(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix add shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Matrix::sub(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix sub shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
}

void
Matrix::scale(double factor)
{
    for (double &x : data_)
        x *= factor;
}

void
Matrix::addScaled(const Matrix &other, double factor)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix addScaled shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += factor * other.data_[i];
}

void
Matrix::hadamard(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix hadamard shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] *= other.data_[i];
}

void
Matrix::addRowVector(const std::vector<double> &bias)
{
    if (bias.size() != cols_)
        panic("Matrix addRowVector length ", bias.size(), " != ", cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        double *row_ptr = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c)
            row_ptr[c] += bias[c];
    }
}

std::vector<double>
Matrix::colSums() const
{
    std::vector<double> sums(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *row_ptr = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c)
            sums[c] += row_ptr[c];
    }
    return sums;
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (double x : data_)
        best = std::max(best, std::fabs(x));
    return best;
}

double
Matrix::sum() const
{
    double acc = 0.0;
    for (double x : data_)
        acc += x;
    return acc;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.data_[c * rows_ + r] = data_[r * cols_ + c];
    return out;
}

Matrix
Matrix::multiply(const Matrix &a, const Matrix &b)
{
    if (a.cols_ != b.rows_)
        panic("Matrix multiply shape mismatch: ", a.rows_, "x", a.cols_,
              " * ", b.rows_, "x", b.cols_);
    Matrix c(a.rows_, b.cols_);
    // i-k-j loop order keeps the inner loop contiguous in both b and c.
    for (std::size_t i = 0; i < a.rows_; ++i) {
        const double *a_row = a.data_.data() + i * a.cols_;
        double *c_row = c.data_.data() + i * c.cols_;
        for (std::size_t k = 0; k < a.cols_; ++k) {
            const double aik = a_row[k];
            if (aik == 0.0)
                continue;
            const double *b_row = b.data_.data() + k * b.cols_;
            for (std::size_t j = 0; j < b.cols_; ++j)
                c_row[j] += aik * b_row[j];
        }
    }
    return c;
}

Matrix
Matrix::multiplyTransB(const Matrix &a, const Matrix &b)
{
    if (a.cols_ != b.cols_)
        panic("Matrix multiplyTransB shape mismatch: ", a.rows_, "x",
              a.cols_, " * (", b.rows_, "x", b.cols_, ")^T");
    Matrix c(a.rows_, b.rows_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
        const double *a_row = a.data_.data() + i * a.cols_;
        double *c_row = c.data_.data() + i * c.cols_;
        for (std::size_t j = 0; j < b.rows_; ++j) {
            const double *b_row = b.data_.data() + j * b.cols_;
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols_; ++k)
                acc += a_row[k] * b_row[k];
            c_row[j] = acc;
        }
    }
    return c;
}

Matrix
Matrix::multiplyTransA(const Matrix &a, const Matrix &b)
{
    if (a.rows_ != b.rows_)
        panic("Matrix multiplyTransA shape mismatch: (", a.rows_, "x",
              a.cols_, ")^T * ", b.rows_, "x", b.cols_);
    Matrix c(a.cols_, b.cols_);
    for (std::size_t k = 0; k < a.rows_; ++k) {
        const double *a_row = a.data_.data() + k * a.cols_;
        const double *b_row = b.data_.data() + k * b.cols_;
        for (std::size_t i = 0; i < a.cols_; ++i) {
            const double aki = a_row[i];
            if (aki == 0.0)
                continue;
            double *c_row = c.data_.data() + i * c.cols_;
            for (std::size_t j = 0; j < b.cols_; ++j)
                c_row[j] += aki * b_row[j];
        }
    }
    return c;
}

void
Matrix::randomNormal(Rng &rng, double mean, double stddev)
{
    for (double &x : data_)
        x = rng.normal(mean, stddev);
}

void
Matrix::randomUniform(Rng &rng, double lo, double hi)
{
    for (double &x : data_)
        x = rng.uniform(lo, hi);
}

bool
Matrix::operator==(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

} // namespace vaesa
