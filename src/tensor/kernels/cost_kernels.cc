/**
 * @file
 * Dispatch and blocked (vectorized) body of the batch cost kernel.
 * This TU is compiled with tuned per-file flags (see
 * src/tensor/CMakeLists.txt): -O3 and AVX2 on x86-64 so the
 * straight-line loop below vectorizes across items, but — unlike the
 * GEMM TU — with fp contraction OFF. With no FMA fusion every
 * operation in the loop (mul, div, add, sqrt, max) is correctly
 * rounded per IEEE 754 and therefore produces the same bits whether
 * executed in a scalar or a SIMD lane, which keeps the blocked body
 * bit-identical to the naive reference. The blocked speedup comes
 * from SoA-contiguous loads, eliminated per-item call/branch
 * overhead, and 4-wide divide/sqrt throughput — not from reordering
 * arithmetic.
 */

#include "tensor/kernels/cost_kernels.hh"

#include <cmath>

#include "tensor/kernels/kernels.hh"

namespace vaesa::kernels {

namespace detail {

void costBatchBlocked(std::size_t i0, std::size_t i1,
                      const CostBatch &b, const CostBatchConsts &c)
{
    const double *__restrict__ nTotal = b.nTotal;
    const double *__restrict__ cyclesPerTile = b.cyclesPerTile;
    const double *__restrict__ nPqOuter = b.nPqOuter;
    const double *__restrict__ nGbAll = b.nGbAll;
    const double *__restrict__ inputGbWords = b.inputGbWords;
    const double *__restrict__ inputTileWords = b.inputTileWords;
    const double *__restrict__ spatialK = b.spatialK;
    const double *__restrict__ spatialC = b.spatialC;
    const double *__restrict__ pqTile = b.pqTile;
    const double *__restrict__ inputBufPj = b.inputBufPj;
    const double *__restrict__ weightBufPj = b.weightBufPj;
    const double *__restrict__ accumBufPj = b.accumBufPj;
    const double *__restrict__ globalBufPj = b.globalBufPj;
    double *__restrict__ outCompute = b.computeCycles;
    double *__restrict__ outDram = b.dramCycles;
    double *__restrict__ outGb = b.globalBufCycles;
    double *__restrict__ outWeightReads = b.dramWeightReads;
    double *__restrict__ outInputReads = b.dramInputReads;
    double *__restrict__ outLatency = b.latencyCycles;
    double *__restrict__ outEnergy = b.energyPj;
    double *__restrict__ outUtil = b.macUtilization;

    for (std::size_t i = i0; i < i1; ++i) {
        const double n_total = nTotal[i];
        const double compute_cycles = n_total * cyclesPerTile[i];

        const double dram_weight_reads = c.weightWords * nPqOuter[i];
        const double dram_input_reads = nGbAll[i] * inputGbWords[i];
        const double dram_output_writes = c.outputWords;

        const double gb_input_writes = dram_input_reads;
        const double gb_input_reads = n_total * inputTileWords[i];
        const double gb_output_writes = dram_output_writes;
        const double gb_output_reads = dram_output_writes;

        const double input_buf_writes = gb_input_reads * spatialK[i];
        const double input_buf_reads = c.macs;
        const double weight_buf_writes = dram_weight_reads;
        const double weight_buf_reads = c.macs / pqTile[i];
        const double accum_updates = c.macs / spatialC[i];
        const double accum_accesses =
            2.0 * accum_updates + 2.0 * dram_output_writes;

        const double dram_words =
            dram_weight_reads + dram_input_reads + dram_output_writes;
        const double dram_cycles = dram_words / c.dramWordsPerCycle;

        const double gb_words = gb_input_writes + gb_input_reads +
                                gb_output_writes + gb_output_reads;
        const double gb_cycles = gb_words / c.globalBufWordsPerCycle;

        double latency =
            compute_cycles < dram_cycles ? dram_cycles : compute_cycles;
        latency = latency < gb_cycles ? gb_cycles : latency;

        const double mac_energy = c.macs * c.macPj;
        const double reg_energy = 2.0 * c.macs * c.registerPj;
        const double input_buf_energy =
            (input_buf_reads + input_buf_writes) * inputBufPj[i];
        const double weight_buf_energy =
            (weight_buf_reads + weight_buf_writes) * weightBufPj[i];
        const double accum_buf_energy = accum_accesses * accumBufPj[i];
        const double global_buf_energy = gb_words * globalBufPj[i];
        const double dram_energy = dram_words * c.dramPj;
        const double mean_hops = std::sqrt(spatialK[i]);
        const double noc_energy =
            (gb_input_reads + dram_weight_reads + gb_output_writes) *
            mean_hops * c.nocPj;

        const double energy = mac_energy + reg_energy + input_buf_energy +
                              weight_buf_energy + accum_buf_energy +
                              global_buf_energy + dram_energy + noc_energy;

        const double issue_slots =
            compute_cycles * spatialK[i] * spatialC[i];
        const double util =
            issue_slots > 0.0 ? c.macs / issue_slots : 0.0;

        outCompute[i] = compute_cycles;
        outDram[i] = dram_cycles;
        outGb[i] = gb_cycles;
        outWeightReads[i] = dram_weight_reads;
        outInputReads[i] = dram_input_reads;
        outLatency[i] = latency;
        outEnergy[i] = energy;
        outUtil[i] = util;
    }
}

} // namespace detail

void
costBatch(std::size_t n, const CostBatch &batch,
          const CostBatchConsts &consts)
{
    if (n == 0)
        return;
    if (activeKernel() == KernelKind::Naive)
        detail::costBatchNaive(0, n, batch, consts);
    else
        detail::costBatchBlocked(0, n, batch, consts);
}

} // namespace vaesa::kernels
