/**
 * @file
 * Naive reference body of the batch cost kernel. This TU is compiled
 * at the project's BASELINE flags (no -mavx2, no -ffast-math, no
 * contraction) precisely so that each item goes through the same
 * sequence of individually rounded IEEE 754 operations as the scalar
 * CostModel::evaluate() path — the operation order below mirrors
 * src/costmodel/cost_model.cc statement for statement, which is what
 * makes batch-vs-scalar bit-exactness a structural property rather
 * than a tuning accident. Keep the two in sync when either changes;
 * tests/costmodel/test_batch_properties.cc enforces the equality.
 */

#include "tensor/kernels/cost_kernels.hh"

#include <cmath>

namespace vaesa::kernels::detail {

void costBatchNaive(std::size_t i0, std::size_t i1,
                    const CostBatch &b, const CostBatchConsts &c)
{
    for (std::size_t i = i0; i < i1; ++i) {
        const double n_total = b.nTotal[i];
        const double compute_cycles = n_total * b.cyclesPerTile[i];

        const double dram_weight_reads = c.weightWords * b.nPqOuter[i];
        const double dram_input_reads = b.nGbAll[i] * b.inputGbWords[i];
        const double dram_output_writes = c.outputWords;

        const double gb_input_writes = dram_input_reads;
        const double gb_input_reads = n_total * b.inputTileWords[i];
        const double gb_output_writes = dram_output_writes;
        const double gb_output_reads = dram_output_writes;

        const double input_buf_writes = gb_input_reads * b.spatialK[i];
        const double input_buf_reads = c.macs;
        const double weight_buf_writes = dram_weight_reads;
        const double weight_buf_reads = c.macs / b.pqTile[i];
        const double accum_updates = c.macs / b.spatialC[i];
        const double accum_accesses =
            2.0 * accum_updates + 2.0 * dram_output_writes;

        const double dram_words =
            dram_weight_reads + dram_input_reads + dram_output_writes;
        const double dram_cycles = dram_words / c.dramWordsPerCycle;

        const double gb_words = gb_input_writes + gb_input_reads +
                                gb_output_writes + gb_output_reads;
        const double gb_cycles = gb_words / c.globalBufWordsPerCycle;

        double latency = compute_cycles;
        if (latency < dram_cycles)
            latency = dram_cycles;
        if (latency < gb_cycles)
            latency = gb_cycles;

        const double mac_energy = c.macs * c.macPj;
        const double reg_energy = 2.0 * c.macs * c.registerPj;
        const double input_buf_energy =
            (input_buf_reads + input_buf_writes) * b.inputBufPj[i];
        const double weight_buf_energy =
            (weight_buf_reads + weight_buf_writes) * b.weightBufPj[i];
        const double accum_buf_energy = accum_accesses * b.accumBufPj[i];
        const double global_buf_energy = gb_words * b.globalBufPj[i];
        const double dram_energy = dram_words * c.dramPj;
        const double mean_hops = std::sqrt(b.spatialK[i]);
        const double noc_energy =
            (gb_input_reads + dram_weight_reads + gb_output_writes) *
            mean_hops * c.nocPj;

        const double energy = mac_energy + reg_energy + input_buf_energy +
                              weight_buf_energy + accum_buf_energy +
                              global_buf_energy + dram_energy + noc_energy;

        const double issue_slots =
            compute_cycles * b.spatialK[i] * b.spatialC[i];
        const double util =
            issue_slots > 0.0 ? c.macs / issue_slots : 0.0;

        b.computeCycles[i] = compute_cycles;
        b.dramCycles[i] = dram_cycles;
        b.globalBufCycles[i] = gb_cycles;
        b.dramWeightReads[i] = dram_weight_reads;
        b.dramInputReads[i] = dram_input_reads;
        b.latencyCycles[i] = latency;
        b.energyPj[i] = energy;
        b.macUtilization[i] = util;
    }
}

} // namespace vaesa::kernels::detail
