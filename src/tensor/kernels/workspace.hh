/**
 * @file
 * Slot-based matrix arena backing the nn layer's scratch buffers.
 *
 * Each module owns a fixed range of slots (reserved once) and
 * reshapes them per batch with buffer(); a slot's backing store only
 * grows, so after the first pass over the largest batch shape every
 * further buffer() call is allocation-free. growthEvents() exposes a
 * monotonic count of backing-store growths so tests can assert the
 * warm-up has actually converged.
 */

#ifndef VAESA_TENSOR_KERNELS_WORKSPACE_HH
#define VAESA_TENSOR_KERNELS_WORKSPACE_HH

#include <cstddef>
#include <cstdint>
#include <deque>

#include "tensor/matrix.hh"

namespace vaesa::kernels {

/**
 * A growable set of reusable Matrix slots.
 *
 * Slots live in a deque so references returned by buffer() stay
 * valid when later reservations extend the arena. Not thread-safe:
 * one workspace belongs to one module chain evaluated serially.
 */
class Workspace
{
  public:
    Workspace() = default;

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    /**
     * Claim a contiguous range of `count` fresh slots.
     * @return the index of the first claimed slot.
     */
    std::size_t reserveSlots(std::size_t count);

    /**
     * The matrix in `slot`, reshaped to rows x cols. Contents are
     * unspecified on shape change; capacity is retained, so
     * reshaping within the high-water mark never allocates.
     */
    Matrix &buffer(std::size_t slot, std::size_t rows,
                   std::size_t cols);

    /** Number of reserved slots. */
    std::size_t slotCount() const { return slots_.size(); }

    /** Times any slot's backing store had to grow. */
    std::uint64_t growthEvents() const { return growths_; }

    /** Total elements of backing capacity across all slots. */
    std::size_t capacityElements() const;

  private:
    std::deque<Matrix> slots_;
    std::uint64_t growths_ = 0;
};

} // namespace vaesa::kernels

#endif // VAESA_TENSOR_KERNELS_WORKSPACE_HH
