/**
 * @file
 * Private splits of the GEMM layer: the per-row-range kernel bodies
 * shared between the public dispatch (kernels.cc) and the naive
 * reference translation unit (kernels_naive.cc).
 *
 * The naive bodies live in their own TU built at the project's
 * baseline optimization level, so VAESA_KERNEL=naive reproduces the
 * pre-kernel-layer numerics exactly; the blocked bodies are compiled
 * with the tuned per-file flags (see src/tensor/CMakeLists.txt).
 *
 * All ranges are [i0, i1) over output rows; matrices are dense
 * row-major doubles and outputs never alias inputs.
 */

#ifndef VAESA_TENSOR_KERNELS_KERNELS_DETAIL_HH
#define VAESA_TENSOR_KERNELS_KERNELS_DETAIL_HH

#include <cstddef>

namespace vaesa::kernels::detail {

/** Rows [i0, i1) of C (m x n) = A (m x k) * B (k x n). */
void gemmNaive(std::size_t i0, std::size_t i1, std::size_t n,
               std::size_t k, const double *a, const double *b,
               double *c, bool accumulate);

/** Rows [i0, i1) of C (m x n) = A^T * B, A stored (k x m). */
void gemmTransANaive(std::size_t i0, std::size_t i1, std::size_t n,
                     std::size_t k, std::size_t m, const double *a,
                     const double *b, double *c, bool accumulate);

/** Rows [i0, i1) of C (m x n) = A (m x k) * B^T, B stored (n x k). */
void gemmTransBNaive(std::size_t i0, std::size_t i1, std::size_t n,
                     std::size_t k, const double *a, const double *b,
                     double *c, bool accumulate);

} // namespace vaesa::kernels::detail

#endif // VAESA_TENSOR_KERNELS_KERNELS_DETAIL_HH
