#include "tensor/kernels/kernels.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels/kernels_detail.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/thread_pool.hh"

// GCC/Clang no-alias qualifier; the public contract already forbids
// output/input aliasing, this just lets the vectorizer believe it.
#define VAESA_RESTRICT __restrict__

namespace vaesa::kernels {

namespace {

/** Hot-path instruments, resolved once per process. */
struct GemmMetrics
{
    metrics::Counter &calls = metrics::counter("gemm.calls");
    metrics::Counter &flops = metrics::counter("gemm.flops");
    metrics::Histogram &ns = metrics::histogram("gemm.ns");
};

GemmMetrics &
gemmMetrics()
{
    static GemmMetrics m;
    return m;
}

KernelKind
parseKernelEnv()
{
    const std::string name = envString("VAESA_KERNEL", "blocked");
    if (name == "naive")
        return KernelKind::Naive;
    if (name == "blocked")
        return KernelKind::Blocked;
    fatal("VAESA_KERNEL must be 'naive' or 'blocked', got '", name,
          "'");
}

KernelKind &
activeKernelSlot()
{
    static KernelKind kind = parseKernelEnv();
    return kind;
}

std::size_t &
parallelMinRowsSlot()
{
    static std::size_t rows = [] {
        const std::int64_t v = envInt("VAESA_GEMM_PAR_ROWS", 256);
        if (v < 1)
            fatal("VAESA_GEMM_PAR_ROWS must be >= 1, got ", v);
        return static_cast<std::size_t>(v);
    }();
    return rows;
}

ThreadPool *&
gemmPoolSlot()
{
    static ThreadPool *pool = nullptr;
    return pool;
}

/** Register-tile extents of the blocked micro-kernels. */
constexpr std::size_t kTileRows = 4;
constexpr std::size_t kTileCols = 8;
constexpr std::size_t kDotTileCols = 4;

/** Rows per parallel task; a multiple of kTileRows, and fixed so the
 *  partition (and thus every row's tile path) depends only on m. */
constexpr std::size_t kParallelRowBlock = 64;

/**
 * Split [0, m) into fixed-size row blocks across the attached pool,
 * or run the whole range inline when serial. body must be safe to
 * call concurrently on disjoint row ranges.
 */
template <typename Body>
void
forRowBlocks(std::size_t m, const Body &body)
{
    ThreadPool *pool = gemmPoolSlot();
    if (pool == nullptr || m < parallelMinRowsSlot()) {
        body(0, m);
        return;
    }
    const std::size_t blocks =
        (m + kParallelRowBlock - 1) / kParallelRowBlock;
    pool->parallelFor(blocks, [&](std::size_t idx) {
        const std::size_t lo = idx * kParallelRowBlock;
        body(lo, std::min(m, lo + kParallelRowBlock));
    });
}

// ---------------------------------------------------------------- //
// Blocked kernels. Fixed RI x RJ register tiles with the k loop
// innermost; each output element is accumulated in increasing k
// order, so for a fixed kernel choice results are fully
// deterministic. This TU is built with the tuned per-file flags
// (-O3, unrolling, AVX2+FMA on x86-64 -- see the tensor
// CMakeLists), so fused multiply-adds may shift low-order bits
// relative to the naive reference TU; the equivalence tests bound
// that drift with an explicit tolerance.
// ---------------------------------------------------------------- //

/** C tile (RI x RJ) at (c, stride n) += A rows (stride lda) * B. */
template <std::size_t RI, std::size_t RJ>
inline void
gemmTileFull(std::size_t k, std::size_t n,
             const double *VAESA_RESTRICT a,
             const double *VAESA_RESTRICT b,
             double *VAESA_RESTRICT c, bool accumulate)
{
    // a: RI rows of length k, stride k. b: k rows, stride n.
    double acc[RI][RJ];
    for (std::size_t r = 0; r < RI; ++r)
        for (std::size_t t = 0; t < RJ; ++t)
            acc[r][t] = accumulate ? c[r * n + t] : 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
        double x[RI];
        for (std::size_t r = 0; r < RI; ++r)
            x[r] = a[r * k + kk];
        const double *VAESA_RESTRICT b_row = b + kk * n;
        for (std::size_t t = 0; t < RJ; ++t) {
            const double bv = b_row[t];
            for (std::size_t r = 0; r < RI; ++r)
                acc[r][t] += x[r] * bv;
        }
    }
    for (std::size_t r = 0; r < RI; ++r)
        for (std::size_t t = 0; t < RJ; ++t)
            c[r * n + t] = acc[r][t];
}

/** Edge-tile variant with runtime extents ri <= 4, rj <= 8. */
inline void
gemmTileEdge(std::size_t ri, std::size_t rj, std::size_t k,
             std::size_t n, const double *VAESA_RESTRICT a,
             const double *VAESA_RESTRICT b,
             double *VAESA_RESTRICT c, bool accumulate)
{
    double acc[kTileRows][kTileCols];
    for (std::size_t r = 0; r < ri; ++r)
        for (std::size_t t = 0; t < rj; ++t)
            acc[r][t] = accumulate ? c[r * n + t] : 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const double *VAESA_RESTRICT b_row = b + kk * n;
        for (std::size_t r = 0; r < ri; ++r) {
            const double x = a[r * k + kk];
            for (std::size_t t = 0; t < rj; ++t)
                acc[r][t] += x * b_row[t];
        }
    }
    for (std::size_t r = 0; r < ri; ++r)
        for (std::size_t t = 0; t < rj; ++t)
            c[r * n + t] = acc[r][t];
}

void
gemmBlocked(std::size_t i0, std::size_t i1, std::size_t n,
            std::size_t k, const double *a, const double *b, double *c,
            bool accumulate)
{
    for (std::size_t i = i0; i < i1; i += kTileRows) {
        const std::size_t ri = std::min(kTileRows, i1 - i);
        for (std::size_t j = 0; j < n; j += kTileCols) {
            const std::size_t rj = std::min(kTileCols, n - j);
            const double *a_tile = a + i * k;
            const double *b_tile = b + j;
            double *c_tile = c + i * n + j;
            if (ri == kTileRows && rj == kTileCols)
                gemmTileFull<kTileRows, kTileCols>(
                    k, n, a_tile, b_tile, c_tile, accumulate);
            else
                gemmTileEdge(ri, rj, k, n, a_tile, b_tile, c_tile,
                             accumulate);
        }
    }
}

/** Like gemmTileFull, but A is (k x m): x[r] loads are contiguous. */
template <std::size_t RI, std::size_t RJ>
inline void
gemmTransATileFull(std::size_t k, std::size_t m, std::size_t n,
                   const double *VAESA_RESTRICT a,
                   const double *VAESA_RESTRICT b,
                   double *VAESA_RESTRICT c, bool accumulate)
{
    double acc[RI][RJ];
    for (std::size_t r = 0; r < RI; ++r)
        for (std::size_t t = 0; t < RJ; ++t)
            acc[r][t] = accumulate ? c[r * n + t] : 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
        double x[RI];
        const double *VAESA_RESTRICT a_row = a + kk * m;
        for (std::size_t r = 0; r < RI; ++r)
            x[r] = a_row[r];
        const double *VAESA_RESTRICT b_row = b + kk * n;
        for (std::size_t t = 0; t < RJ; ++t) {
            const double bv = b_row[t];
            for (std::size_t r = 0; r < RI; ++r)
                acc[r][t] += x[r] * bv;
        }
    }
    for (std::size_t r = 0; r < RI; ++r)
        for (std::size_t t = 0; t < RJ; ++t)
            c[r * n + t] = acc[r][t];
}

inline void
gemmTransATileEdge(std::size_t ri, std::size_t rj, std::size_t k,
                   std::size_t m, std::size_t n,
                   const double *VAESA_RESTRICT a,
                   const double *VAESA_RESTRICT b,
                   double *VAESA_RESTRICT c, bool accumulate)
{
    double acc[kTileRows][kTileCols];
    for (std::size_t r = 0; r < ri; ++r)
        for (std::size_t t = 0; t < rj; ++t)
            acc[r][t] = accumulate ? c[r * n + t] : 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const double *VAESA_RESTRICT a_row = a + kk * m;
        const double *VAESA_RESTRICT b_row = b + kk * n;
        for (std::size_t r = 0; r < ri; ++r) {
            const double x = a_row[r];
            for (std::size_t t = 0; t < rj; ++t)
                acc[r][t] += x * b_row[t];
        }
    }
    for (std::size_t r = 0; r < ri; ++r)
        for (std::size_t t = 0; t < rj; ++t)
            c[r * n + t] = acc[r][t];
}

void
gemmTransABlocked(std::size_t i0, std::size_t i1, std::size_t n,
                  std::size_t k, std::size_t m, const double *a,
                  const double *b, double *c, bool accumulate)
{
    for (std::size_t i = i0; i < i1; i += kTileRows) {
        const std::size_t ri = std::min(kTileRows, i1 - i);
        for (std::size_t j = 0; j < n; j += kTileCols) {
            const std::size_t rj = std::min(kTileCols, n - j);
            const double *a_tile = a + i;
            const double *b_tile = b + j;
            double *c_tile = c + i * n + j;
            if (ri == kTileRows && rj == kTileCols)
                gemmTransATileFull<kTileRows, kTileCols>(
                    k, m, n, a_tile, b_tile, c_tile, accumulate);
            else
                gemmTransATileEdge(ri, rj, k, m, n, a_tile, b_tile,
                                   c_tile, accumulate);
        }
    }
}

/**
 * Dot-product tile for C = A * B^T: RI rows of A against RJ rows of
 * B. Each dot is split across kLanes strided partial sums so the k
 * loop maps onto packed FMAs (a single-accumulator reduction cannot
 * be vectorized without reassociating it, which the compiler rightly
 * refuses to do on its own). The lane split and the pairwise lane
 * reduction below are a fixed, code-defined order, so results stay
 * bit-identical run to run; they differ from the naive dot in
 * low-order bits, which the documented equivalence tolerance covers.
 */
template <std::size_t RI, std::size_t RJ>
inline void
gemmTransBTileFull(std::size_t k, std::size_t n,
                   const double *VAESA_RESTRICT a,
                   const double *VAESA_RESTRICT b,
                   double *VAESA_RESTRICT c, bool accumulate)
{
    constexpr std::size_t kLanes = 4; // one 256-bit vector of doubles
    double acc[RI][RJ][kLanes] = {};
    const std::size_t k_whole = k - k % kLanes;
    for (std::size_t kk = 0; kk < k_whole; kk += kLanes) {
        for (std::size_t r = 0; r < RI; ++r) {
            const double *VAESA_RESTRICT a_row = a + r * k + kk;
            for (std::size_t t = 0; t < RJ; ++t) {
                const double *VAESA_RESTRICT b_row = b + t * k + kk;
                for (std::size_t l = 0; l < kLanes; ++l)
                    acc[r][t][l] += a_row[l] * b_row[l];
            }
        }
    }
    for (std::size_t r = 0; r < RI; ++r) {
        for (std::size_t t = 0; t < RJ; ++t) {
            double sum = (acc[r][t][0] + acc[r][t][1]) +
                         (acc[r][t][2] + acc[r][t][3]);
            for (std::size_t kk = k_whole; kk < k; ++kk)
                sum += a[r * k + kk] * b[t * k + kk];
            c[r * n + t] = accumulate ? c[r * n + t] + sum : sum;
        }
    }
}

/**
 * Scalar variant of the dot tile for short reductions: below
 * kTransBLaneMinK the lane split costs more in remainder handling
 * than it buys, so the k = 6 input/output layers take this path.
 * Selected purely by shape, so the choice is deterministic.
 */
template <std::size_t RI, std::size_t RJ>
inline void
gemmTransBTileSmallK(std::size_t k, std::size_t n,
                     const double *VAESA_RESTRICT a,
                     const double *VAESA_RESTRICT b,
                     double *VAESA_RESTRICT c, bool accumulate)
{
    double acc[RI][RJ];
    for (std::size_t r = 0; r < RI; ++r)
        for (std::size_t t = 0; t < RJ; ++t)
            acc[r][t] = accumulate ? c[r * n + t] : 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
        double x[RI];
        for (std::size_t r = 0; r < RI; ++r)
            x[r] = a[r * k + kk];
        for (std::size_t t = 0; t < RJ; ++t) {
            const double bv = b[t * k + kk];
            for (std::size_t r = 0; r < RI; ++r)
                acc[r][t] += x[r] * bv;
        }
    }
    for (std::size_t r = 0; r < RI; ++r)
        for (std::size_t t = 0; t < RJ; ++t)
            c[r * n + t] = acc[r][t];
}

/** Reductions at least this long use the lane-split dot tile. */
constexpr std::size_t kTransBLaneMinK = 16;

inline void
gemmTransBTileEdge(std::size_t ri, std::size_t rj, std::size_t k,
                   std::size_t n, const double *VAESA_RESTRICT a,
                   const double *VAESA_RESTRICT b,
                   double *VAESA_RESTRICT c, bool accumulate)
{
    double acc[kTileRows][kDotTileCols];
    for (std::size_t r = 0; r < ri; ++r)
        for (std::size_t t = 0; t < rj; ++t)
            acc[r][t] = accumulate ? c[r * n + t] : 0.0;
    for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t r = 0; r < ri; ++r) {
            const double x = a[r * k + kk];
            for (std::size_t t = 0; t < rj; ++t)
                acc[r][t] += x * b[t * k + kk];
        }
    }
    for (std::size_t r = 0; r < ri; ++r)
        for (std::size_t t = 0; t < rj; ++t)
            c[r * n + t] = acc[r][t];
}

void
gemmTransBBlocked(std::size_t i0, std::size_t i1, std::size_t n,
                  std::size_t k, const double *a, const double *b,
                  double *c, bool accumulate)
{
    for (std::size_t i = i0; i < i1; i += kTileRows) {
        const std::size_t ri = std::min(kTileRows, i1 - i);
        for (std::size_t j = 0; j < n; j += kDotTileCols) {
            const std::size_t rj = std::min(kDotTileCols, n - j);
            const double *a_tile = a + i * k;
            const double *b_tile = b + j * k;
            double *c_tile = c + i * n + j;
            if (ri == kTileRows && rj == kDotTileCols) {
                if (k >= kTransBLaneMinK)
                    gemmTransBTileFull<kTileRows, kDotTileCols>(
                        k, n, a_tile, b_tile, c_tile, accumulate);
                else
                    gemmTransBTileSmallK<kTileRows, kDotTileCols>(
                        k, n, a_tile, b_tile, c_tile, accumulate);
            } else
                gemmTransBTileEdge(ri, rj, k, n, a_tile, b_tile,
                                   c_tile, accumulate);
        }
    }
}

/** Count one public GEMM entry: m x n outputs, k-long reductions. */
void
noteGemm(std::size_t m, std::size_t n, std::size_t k)
{
    GemmMetrics &gm = gemmMetrics();
    gm.calls.inc();
    gm.flops.inc(static_cast<std::uint64_t>(2) * m * n * k);
}

} // namespace

KernelKind
activeKernel()
{
    return activeKernelSlot();
}

void
setActiveKernel(KernelKind kind)
{
    activeKernelSlot() = kind;
}

const char *
kernelName(KernelKind kind)
{
    return kind == KernelKind::Naive ? "naive" : "blocked";
}

void
setGemmPool(ThreadPool *pool)
{
    gemmPoolSlot() = pool;
}

ThreadPool *
gemmPool()
{
    return gemmPoolSlot();
}

std::size_t
gemmParallelMinRows()
{
    return parallelMinRowsSlot();
}

void
setGemmParallelMinRows(std::size_t rows)
{
    if (rows == 0)
        panic("setGemmParallelMinRows: threshold must be >= 1");
    parallelMinRowsSlot() = rows;
}

void
gemm(std::size_t m, std::size_t n, std::size_t k, const double *a,
     const double *b, double *c, bool accumulate)
{
    noteGemm(m, n, k);
    const metrics::ScopedTimer timer(gemmMetrics().ns);
    const bool blocked = activeKernelSlot() == KernelKind::Blocked;
    forRowBlocks(m, [&](std::size_t i0, std::size_t i1) {
        if (blocked)
            gemmBlocked(i0, i1, n, k, a, b, c, accumulate);
        else
            detail::gemmNaive(i0, i1, n, k, a, b, c, accumulate);
    });
}

void
gemmTransA(std::size_t m, std::size_t n, std::size_t k,
           const double *a, const double *b, double *c,
           bool accumulate)
{
    noteGemm(m, n, k);
    const metrics::ScopedTimer timer(gemmMetrics().ns);
    const bool blocked = activeKernelSlot() == KernelKind::Blocked;
    forRowBlocks(m, [&](std::size_t i0, std::size_t i1) {
        if (blocked)
            gemmTransABlocked(i0, i1, n, k, m, a, b, c, accumulate);
        else
            detail::gemmTransANaive(i0, i1, n, k, m, a, b, c, accumulate);
    });
}

void
gemmTransB(std::size_t m, std::size_t n, std::size_t k,
           const double *a, const double *b, double *c,
           bool accumulate)
{
    noteGemm(m, n, k);
    const metrics::ScopedTimer timer(gemmMetrics().ns);
    const bool blocked = activeKernelSlot() == KernelKind::Blocked;
    forRowBlocks(m, [&](std::size_t i0, std::size_t i1) {
        if (blocked)
            gemmTransBBlocked(i0, i1, n, k, a, b, c, accumulate);
        else
            detail::gemmTransBNaive(i0, i1, n, k, a, b, c, accumulate);
    });
}

void
linearForward(std::size_t batch, std::size_t in, std::size_t out,
              const double *x, const double *w, const double *b,
              double *y)
{
    noteGemm(batch, out, in);
    const metrics::ScopedTimer timer(gemmMetrics().ns);
    const bool blocked = activeKernelSlot() == KernelKind::Blocked;
    forRowBlocks(batch, [&](std::size_t i0, std::size_t i1) {
        // The bias row seeds every output row, so the GEMM's
        // accumulate path folds the broadcast into the one pass over
        // y instead of a second read-modify-write sweep.
        for (std::size_t i = i0; i < i1; ++i)
            std::copy(b, b + out, y + i * out);
        if (blocked)
            gemmTransBBlocked(i0, i1, out, in, x, w, y, true);
        else
            detail::gemmTransBNaive(i0, i1, out, in, x, w, y, true);
    });
}

void
addColSums(const double *x, std::size_t rows, std::size_t cols,
           double *sums)
{
    for (std::size_t r = 0; r < rows; ++r) {
        const double *row = x + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
            sums[c] += row[c];
    }
}

void
leakyReluForward(double *x, std::size_t n, double slope)
{
    for (std::size_t i = 0; i < n; ++i)
        x[i] = x[i] > 0.0 ? x[i] : slope * x[i];
}

void
leakyReluBackward(double *grad, const double *out, std::size_t n,
                  double slope)
{
    for (std::size_t i = 0; i < n; ++i)
        grad[i] *= out[i] > 0.0 ? 1.0 : slope;
}

void
sigmoidForward(double *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        x[i] = 1.0 / (1.0 + std::exp(-x[i]));
}

void
sigmoidBackward(double *grad, const double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        grad[i] *= out[i] * (1.0 - out[i]);
}

void
tanhForward(double *x, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        x[i] = std::tanh(x[i]);
}

void
tanhBackward(double *grad, const double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        grad[i] *= 1.0 - out[i] * out[i];
}

} // namespace vaesa::kernels
