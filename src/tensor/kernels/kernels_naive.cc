/**
 * @file
 * The naive reference GEMM bodies, in their own translation unit so
 * they keep the project's baseline optimization flags: with
 * VAESA_KERNEL=naive the math layer reproduces the pre-kernel-layer
 * numerics exactly, which is what makes naive a trustworthy ground
 * truth for the equivalence tests and A/B benchmarks.
 *
 * These are the seed implementations minus the old
 * `if (aik == 0.0) continue` sparsity skips: skipping a zero
 * multiplier silently swallowed NaN/Inf in the other operand
 * (0 * NaN must be NaN), so every product is now always formed.
 */

#include "tensor/kernels/kernels_detail.hh"

#include <algorithm>

namespace vaesa::kernels::detail {

void
gemmNaive(std::size_t i0, std::size_t i1, std::size_t n, std::size_t k,
          const double *a, const double *b, double *c, bool accumulate)
{
    // i-k-j order keeps the inner loop contiguous in b and c.
    for (std::size_t i = i0; i < i1; ++i) {
        const double *a_row = a + i * k;
        double *c_row = c + i * n;
        if (!accumulate)
            std::fill(c_row, c_row + n, 0.0);
        for (std::size_t kk = 0; kk < k; ++kk) {
            const double aik = a_row[kk];
            const double *b_row = b + kk * n;
            for (std::size_t j = 0; j < n; ++j)
                c_row[j] += aik * b_row[j];
        }
    }
}

void
gemmTransANaive(std::size_t i0, std::size_t i1, std::size_t n,
                std::size_t k, std::size_t m, const double *a,
                const double *b, double *c, bool accumulate)
{
    if (!accumulate) {
        for (std::size_t i = i0; i < i1; ++i)
            std::fill(c + i * n, c + (i + 1) * n, 0.0);
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
        const double *a_row = a + kk * m;
        const double *b_row = b + kk * n;
        for (std::size_t i = i0; i < i1; ++i) {
            const double aki = a_row[i];
            double *c_row = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                c_row[j] += aki * b_row[j];
        }
    }
}

void
gemmTransBNaive(std::size_t i0, std::size_t i1, std::size_t n,
                std::size_t k, const double *a, const double *b,
                double *c, bool accumulate)
{
    for (std::size_t i = i0; i < i1; ++i) {
        const double *a_row = a + i * k;
        double *c_row = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const double *b_row = b + j * k;
            double acc = accumulate ? c_row[j] : 0.0;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += a_row[kk] * b_row[kk];
            c_row[j] = acc;
        }
    }
}

} // namespace vaesa::kernels::detail
