#include "tensor/kernels/workspace.hh"

#include "util/logging.hh"

namespace vaesa::kernels {

std::size_t
Workspace::reserveSlots(std::size_t count)
{
    const std::size_t base = slots_.size();
    for (std::size_t i = 0; i < count; ++i)
        slots_.emplace_back();
    return base;
}

Matrix &
Workspace::buffer(std::size_t slot, std::size_t rows, std::size_t cols)
{
    if (slot >= slots_.size())
        panic("Workspace::buffer: slot ", slot, " out of ",
              slots_.size());
    Matrix &m = slots_[slot];
    const std::size_t before = m.capacityElements();
    m.resizeBuffer(rows, cols);
    if (m.capacityElements() != before)
        ++growths_;
    return m;
}

std::size_t
Workspace::capacityElements() const
{
    std::size_t total = 0;
    for (const Matrix &m : slots_)
        total += m.capacityElements();
    return total;
}

} // namespace vaesa::kernels
