/**
 * @file
 * Raw-pointer compute kernels behind the Matrix/nn hot path: GEMM in
 * the three orientations the MLPs need, a fused linear-layer forward,
 * column sums, and in-place activation forward/backward loops.
 *
 * Two GEMM implementations are provided and selected at runtime via
 * VAESA_KERNEL=naive|blocked (default blocked):
 *
 *  - naive: the reference triple loops, built in their own TU at the
 *    project's baseline flags so they reproduce the seed numerics bit
 *    for bit -- the ground truth for equivalence tests and A/B
 *    benchmarking.
 *  - blocked: register-tiled micro-kernels with restrict-qualified
 *    pointers and contiguous inner loops, compiled with tuned
 *    per-file flags (-O3, unrolling, AVX2+FMA on x86-64; see
 *    src/tensor/CMakeLists.txt). Each output element is accumulated
 *    in strictly increasing k order, but fused multiply-adds round
 *    once per a*b+c instead of twice, so blocked results may differ
 *    from naive in low-order bits. The equivalence tests bound that
 *    drift with an explicit relative tolerance (see
 *    docs/PERFORMANCE.md); NaN/Inf propagation is identical.
 *
 * Determinism contract: for a FIXED kernel choice, fixed inputs give
 * bit-identical outputs, run to run and thread count to thread count.
 * The optional ThreadPool row split assigns every output row to
 * exactly one task and never reduces across tasks, so pooled results
 * equal serial results exactly.
 *
 * This directory is the only place in the tree where raw SIMD
 * intrinsics or OpenMP pragmas may appear (enforced by tools/check);
 * everything else must go through these entry points.
 *
 * No output pointer may alias an input. All matrices are dense
 * row-major doubles, matching Matrix's storage.
 */

#ifndef VAESA_TENSOR_KERNELS_KERNELS_HH
#define VAESA_TENSOR_KERNELS_KERNELS_HH

#include <cstddef>

namespace vaesa {
class ThreadPool;
} // namespace vaesa

namespace vaesa::kernels {

/** Selectable GEMM implementation. */
enum class KernelKind
{
    /** Reference scalar triple loops. */
    Naive,

    /** Register-tiled loops (same k order as Naive, but FMA may
     *  shift low-order bits; deterministic for a fixed choice). */
    Blocked,
};

/**
 * The kernel selected by VAESA_KERNEL (read once, at first use) or by
 * the last setActiveKernel() call.
 */
KernelKind activeKernel();

/** Override the kernel choice at runtime (tests, benches). */
void setActiveKernel(KernelKind kind);

/** "naive" or "blocked". */
const char *kernelName(KernelKind kind);

/**
 * Attach a pool for row-block parallel GEMM; nullptr restores serial
 * execution. Only GEMMs with at least gemmParallelMinRows() output
 * rows fan out, each task owning a contiguous row range, so results
 * are bit-identical to serial. The caller must not issue GEMMs from
 * inside a task of the same pool (ThreadPool::parallelFor would
 * deadlock); library code therefore leaves this unset by default.
 */
void setGemmPool(ThreadPool *pool);

/** Currently attached pool (nullptr when serial). */
ThreadPool *gemmPool();

/**
 * Minimum output rows before a GEMM uses the attached pool; the
 * VAESA_GEMM_PAR_ROWS env var (default 256) sets the initial value.
 */
std::size_t gemmParallelMinRows();

/** Override the parallel row threshold (tests, benches). */
void setGemmParallelMinRows(std::size_t rows);

/**
 * C (m x n) = A (m x k) * B (k x n).
 * @param accumulate when true, add into C instead of overwriting.
 */
void gemm(std::size_t m, std::size_t n, std::size_t k, const double *a,
          const double *b, double *c, bool accumulate = false);

/**
 * C (m x n) = A^T * B with A given untransposed as (k x m);
 * B is (k x n). The weight-gradient orientation.
 */
void gemmTransA(std::size_t m, std::size_t n, std::size_t k,
                const double *a, const double *b, double *c,
                bool accumulate = false);

/**
 * C (m x n) = A * B^T with B given untransposed as (n x k);
 * A is (m x k). The forward orientation for (out x in) weights.
 */
void gemmTransB(std::size_t m, std::size_t n, std::size_t k,
                const double *a, const double *b, double *c,
                bool accumulate = false);

/**
 * Fused affine forward: Y (batch x out) = X (batch x in) * W^T + b,
 * with W (out x in) and b length out. One pass over Y: the bias
 * seeds the accumulators instead of a second broadcast sweep.
 */
void linearForward(std::size_t batch, std::size_t in, std::size_t out,
                   const double *x, const double *w, const double *b,
                   double *y);

/** sums[c] += sum over rows of x[r][c]; x is (rows x cols). */
void addColSums(const double *x, std::size_t rows, std::size_t cols,
                double *sums);

/** In place: x[i] = x[i] > 0 ? x[i] : slope * x[i]. */
void leakyReluForward(double *x, std::size_t n, double slope);

/**
 * In place: grad[i] *= (out[i] > 0 ? 1 : slope), where out is the
 * matching forward OUTPUT. Valid because LeakyReLU with slope in
 * (0, 1] is sign-preserving, so out > 0 iff in > 0 and the two
 * passes branch identically (including at exactly 0 and for NaN).
 */
void leakyReluBackward(double *grad, const double *out, std::size_t n,
                       double slope);

/** In place: x[i] = 1 / (1 + exp(-x[i])). */
void sigmoidForward(double *x, std::size_t n);

/** In place: grad[i] *= out[i] * (1 - out[i]). */
void sigmoidBackward(double *grad, const double *out, std::size_t n);

/** In place: x[i] = tanh(x[i]). */
void tanhForward(double *x, std::size_t n);

/** In place: grad[i] *= 1 - out[i]^2. */
void tanhBackward(double *grad, const double *out, std::size_t n);

} // namespace vaesa::kernels

#endif // VAESA_TENSOR_KERNELS_KERNELS_HH
