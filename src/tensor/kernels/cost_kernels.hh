/**
 * @file
 * Structure-of-arrays batch kernel for the analytical cost model: the
 * straight-line floating-point tail of CostModel::evaluate() applied
 * to N (config, mapping) items in one pass. The branchy integer prep
 * (mapping checks, ceil-divided tile counts, per-arch SRAM energies)
 * stays in src/costmodel/batch_cost_model.cc; only the dense math
 * lives here, per the kernel-containment convention (tools/check).
 *
 * Two implementations are provided, selected by the SAME runtime
 * switch as the GEMM layer (VAESA_KERNEL=naive|blocked, see
 * kernels.hh):
 *
 *  - naive: one item at a time, replicating the exact operation
 *    order of the scalar CostModel::evaluate() FP sequence, built in
 *    its own TU at the project's baseline flags — bit-for-bit equal
 *    to the scalar path by construction.
 *  - blocked: the same operation sequence over restrict-qualified
 *    SoA arrays, compiled with tuned per-file flags (-O3, AVX2 on
 *    x86-64; see src/tensor/CMakeLists.txt) so the compiler
 *    vectorizes across items. Unlike the GEMM kernels, this TU is
 *    built with fp contraction DISABLED: every operation in the cost
 *    tail (mul, div, add, sqrt, max) is correctly rounded per IEEE
 *    754 whether executed in scalar or SIMD lanes, so blocked
 *    results are bit-identical to naive as long as no FMA is fused.
 *    The equivalence tests still carry a documented 1e-12 relative
 *    tolerance as contractual headroom (docs/PERFORMANCE.md) should
 *    contraction ever be re-enabled for speed.
 *
 * Determinism contract: for a FIXED kernel choice, fixed inputs give
 * bit-identical outputs, independent of batch size, item order, and
 * thread count (the kernel itself is single-threaded; callers
 * partition items into disjoint ranges).
 *
 * No output array may alias an input. All arrays are dense doubles
 * of length n, one entry per batch item; per-layer quantities that
 * do not vary across items travel in CostBatchConsts.
 */

#ifndef VAESA_TENSOR_KERNELS_COST_KERNELS_HH
#define VAESA_TENSOR_KERNELS_COST_KERNELS_HH

#include <cstddef>

namespace vaesa::kernels {

/**
 * SoA views of one batch: per-item inputs derived from the mapping
 * (exact small-integer products widened to double by the prep pass)
 * and per-item outputs. All pointers are length-n arrays owned by
 * the caller.
 */
struct CostBatch
{
    /** @name Per-item inputs */
    /** @{ */
    /** Product of per-dimension PE-array tile counts. */
    const double *nTotal;

    /** Cycles one PE spends per array tile. */
    const double *cyclesPerTile;

    /** Outer (P, Q) tile iteration count (weight re-fetch factor). */
    const double *nPqOuter;

    /** Product of per-dimension global-buffer tile counts. */
    const double *nGbAll;

    /** Words of the global buffer's input tile (halo included). */
    const double *inputGbWords;

    /** Words of one PE's input tile (halo included). */
    const double *inputTileWords;

    /** Spatial K split (PEs used), as a double. */
    const double *spatialK;

    /** Spatial C split (lanes used per PE), as a double. */
    const double *spatialC;

    /** tilePe[P] * tilePe[Q] (weight-buffer read divisor). */
    const double *pqTile;

    /** Per-arch SRAM energies (pJ/access) of the four buffers. */
    const double *inputBufPj;
    const double *weightBufPj;
    const double *accumBufPj;
    const double *globalBufPj;
    /** @} */

    /** @name Per-item outputs */
    /** @{ */
    double *computeCycles;
    double *dramCycles;
    double *globalBufCycles;
    double *dramWeightReads;
    double *dramInputReads;
    double *latencyCycles;
    double *energyPj;
    double *macUtilization;
    /** @} */
};

/** Quantities constant across one batch (fixed layer + bandwidths). */
struct CostBatchConsts
{
    /** Total MACs of the layer. */
    double macs;

    /** Weight words of the layer. */
    double weightWords;

    /** Output words of the layer (= DRAM output writes). */
    double outputWords;

    /** DRAM bandwidth in words per cycle. */
    double dramWordsPerCycle;

    /** Global-buffer bandwidth in words per cycle. */
    double globalBufWordsPerCycle;

    /** Per-action energies (pJ). */
    double macPj;
    double registerPj;
    double dramPj;
    double nocPj;
};

/**
 * Score items [0, n) of the batch under the kernel selected by
 * activeKernel() (kernels.hh). Single-threaded; callers wanting
 * parallelism hand disjoint sub-ranges to pool workers.
 */
void costBatch(std::size_t n, const CostBatch &batch,
               const CostBatchConsts &consts);

namespace detail {

/** Items [i0, i1): reference body at baseline flags (bit-exact). */
void costBatchNaive(std::size_t i0, std::size_t i1,
                    const CostBatch &batch,
                    const CostBatchConsts &consts);

/** Items [i0, i1): vectorized body at tuned flags (contract off). */
void costBatchBlocked(std::size_t i0, std::size_t i1,
                      const CostBatch &batch,
                      const CostBatchConsts &consts);

} // namespace detail

} // namespace vaesa::kernels

#endif // VAESA_TENSOR_KERNELS_COST_KERNELS_HH
