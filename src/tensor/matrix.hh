/**
 * @file
 * Dense row-major matrix used throughout the NN and GP code.
 *
 * Double precision everywhere: the matrices in VAESA are small (a few
 * hundred by a few hundred), so the 2x bandwidth cost of double over
 * float is irrelevant, while GP Cholesky factorizations and
 * finite-difference gradient checks benefit from the extra precision.
 */

#ifndef VAESA_TENSOR_MATRIX_HH
#define VAESA_TENSOR_MATRIX_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace vaesa {

class Rng;

/**
 * A dense, row-major, heap-backed matrix of doubles.
 *
 * Shapes are checked on every operation; mismatches are programming
 * errors and panic(). Vectors are represented as 1-by-n or n-by-1
 * matrices where convenient, or as std::vector<double> at module
 * boundaries.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** rows x cols matrix filled with a constant. */
    Matrix(std::size_t rows, std::size_t cols, double fill);

    /** Build from a row-major initializer payload; size must match. */
    Matrix(std::size_t rows, std::size_t cols,
           std::vector<double> data);

    /** Number of rows. */
    std::size_t rows() const { return rows_; }

    /** Number of columns. */
    std::size_t cols() const { return cols_; }

    /** Total element count. */
    std::size_t size() const { return data_.size(); }

    /** Element access (checked in debug via panic on OOB). */
    double &operator()(std::size_t r, std::size_t c);

    /** Element access, const. */
    double operator()(std::size_t r, std::size_t c) const;

    /** Raw row-major storage. */
    double *data() { return data_.data(); }

    /** Raw row-major storage, const. */
    const double *data() const { return data_.data(); }

    /**
     * Reshape in place to rows x cols. Element values are
     * unspecified afterwards; the backing store is retained (and
     * never shrunk), so reshaping within the high-water mark is
     * allocation-free. The scratch-buffer primitive behind the
     * kernels::Workspace arena.
     */
    void resizeBuffer(std::size_t rows, std::size_t cols);

    /** Become a deep copy of other, reusing existing capacity. */
    void copyFrom(const Matrix &other);

    /** Allocated element capacity of the backing store. */
    std::size_t capacityElements() const { return data_.capacity(); }

    /** One row as a copied vector. */
    std::vector<double> row(std::size_t r) const;

    /** Copy one row into out (resized to cols(), capacity reused). */
    void copyRowInto(std::size_t r, std::vector<double> &out) const;

    /** Overwrite one row from a vector of length cols(). */
    void setRow(std::size_t r, const std::vector<double> &values);

    /** Set every element to a constant. */
    void fill(double value);

    /** Apply f element-wise in place. */
    void apply(const std::function<double(double)> &f);

    /** this += other (same shape). */
    void add(const Matrix &other);

    /** this -= other (same shape). */
    void sub(const Matrix &other);

    /** this *= scalar. */
    void scale(double factor);

    /** this += scalar * other (axpy, same shape). */
    void addScaled(const Matrix &other, double factor);

    /** Element-wise product in place: this[i] *= other[i]. */
    void hadamard(const Matrix &other);

    /** Add a length-cols() bias vector to every row. */
    void addRowVector(const std::vector<double> &bias);

    /** Sum over rows, yielding a length-cols() vector. */
    std::vector<double> colSums() const;

    /** Largest absolute element (0 for empty). */
    double maxAbs() const;

    /** Sum of all elements. */
    double sum() const;

    /** Transposed copy. */
    Matrix transposed() const;

    /**
     * C = A * B. Dispatches to the runtime-selected GEMM kernel
     * (tensor/kernels); every product term is always formed, so
     * NaN/Inf in either operand propagates even across zeros.
     */
    static Matrix multiply(const Matrix &a, const Matrix &b);

    /** C = A * B^T (B given untransposed). */
    static Matrix multiplyTransB(const Matrix &a, const Matrix &b);

    /** C = A^T * B (A given untransposed). */
    static Matrix multiplyTransA(const Matrix &a, const Matrix &b);

    /** C = A * B without allocating when C has capacity. */
    static void multiplyInto(const Matrix &a, const Matrix &b,
                             Matrix &c);

    /** C = A * B^T without allocating when C has capacity. */
    static void multiplyTransBInto(const Matrix &a, const Matrix &b,
                                   Matrix &c);

    /** C = A^T * B without allocating when C has capacity. */
    static void multiplyTransAInto(const Matrix &a, const Matrix &b,
                                   Matrix &c);

    /** Fill with i.i.d. N(mean, stddev) draws. */
    void randomNormal(Rng &rng, double mean, double stddev);

    /** Fill with i.i.d. U[lo, hi) draws. */
    void randomUniform(Rng &rng, double lo, double hi);

    /** Exact element-wise equality (for serialization round-trips). */
    bool operator==(const Matrix &other) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace vaesa

#endif // VAESA_TENSOR_MATRIX_HH
