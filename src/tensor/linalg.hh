/**
 * @file
 * Dense linear-algebra kernels for the Gaussian-process layer: Cholesky
 * factorization of SPD matrices, triangular solves, and SPD system
 * solves with adaptive jitter.
 */

#ifndef VAESA_TENSOR_LINALG_HH
#define VAESA_TENSOR_LINALG_HH

#include <vector>

#include "tensor/matrix.hh"

namespace vaesa {

/**
 * Cholesky factor of a symmetric positive-definite matrix.
 *
 * @param a square SPD matrix.
 * @param lower output: lower-triangular L with a = L L^T.
 * @return true on success, false if a is not (numerically) SPD.
 */
bool cholesky(const Matrix &a, Matrix &lower);

/** Solve L y = b for lower-triangular L (forward substitution). */
std::vector<double> solveLower(const Matrix &lower,
                               const std::vector<double> &b);

/** Solve L^T x = y for lower-triangular L (back substitution). */
std::vector<double> solveLowerTransposed(const Matrix &lower,
                                         const std::vector<double> &y);

/**
 * Solve A x = b for SPD A via Cholesky, adding diagonal jitter in
 * decade steps (starting at 1e-10 * mean diagonal) until the
 * factorization succeeds.
 *
 * @param a SPD matrix (copied internally; not modified).
 * @param b right-hand side.
 * @param jitter_out optional: receives the jitter that was required.
 */
std::vector<double> solveSpd(const Matrix &a, const std::vector<double> &b,
                             double *jitter_out = nullptr);

/**
 * Cholesky with adaptive jitter; panics if even large jitter fails.
 * Returns the jitter used.
 */
double choleskyJittered(const Matrix &a, Matrix &lower);

/** Dot product of equal-length vectors. */
double dot(const std::vector<double> &a, const std::vector<double> &b);

/** Squared Euclidean distance between equal-length vectors. */
double squaredDistance(const std::vector<double> &a,
                       const std::vector<double> &b);

} // namespace vaesa

#endif // VAESA_TENSOR_LINALG_HH
