#include "tensor/linalg.hh"

#include <cmath>

#include "util/logging.hh"

namespace vaesa {

bool
cholesky(const Matrix &a, Matrix &lower)
{
    if (a.rows() != a.cols())
        panic("cholesky requires a square matrix");
    const std::size_t n = a.rows();
    lower = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= lower(i, k) * lower(j, k);
            if (i == j) {
                if (acc <= 0.0 || !std::isfinite(acc))
                    return false;
                lower(i, i) = std::sqrt(acc);
            } else {
                lower(i, j) = acc / lower(j, j);
            }
        }
    }
    return true;
}

std::vector<double>
solveLower(const Matrix &lower, const std::vector<double> &b)
{
    const std::size_t n = lower.rows();
    if (b.size() != n)
        panic("solveLower dimension mismatch");
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= lower(i, k) * y[k];
        y[i] = acc / lower(i, i);
    }
    return y;
}

std::vector<double>
solveLowerTransposed(const Matrix &lower, const std::vector<double> &y)
{
    const std::size_t n = lower.rows();
    if (y.size() != n)
        panic("solveLowerTransposed dimension mismatch");
    std::vector<double> x(n);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double acc = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            acc -= lower(k, i) * x[k];
        x[i] = acc / lower(i, i);
    }
    return x;
}

double
choleskyJittered(const Matrix &a, Matrix &lower)
{
    const std::size_t n = a.rows();
    double diag_mean = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        diag_mean += a(i, i);
    diag_mean = n ? diag_mean / static_cast<double>(n) : 1.0;
    if (diag_mean <= 0.0)
        diag_mean = 1.0;

    double jitter = 0.0;
    for (int attempt = 0; attempt < 12; ++attempt) {
        Matrix work = a;
        if (jitter > 0.0)
            for (std::size_t i = 0; i < n; ++i)
                work(i, i) += jitter;
        if (cholesky(work, lower))
            return jitter;
        jitter = (jitter == 0.0) ? 1e-10 * diag_mean : jitter * 10.0;
    }
    panic("choleskyJittered: matrix not SPD even with jitter ", jitter);
}

std::vector<double>
solveSpd(const Matrix &a, const std::vector<double> &b, double *jitter_out)
{
    Matrix lower;
    const double jitter = choleskyJittered(a, lower);
    if (jitter_out)
        *jitter_out = jitter;
    return solveLowerTransposed(lower, solveLower(lower, b));
}

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        panic("dot dimension mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        panic("squaredDistance dimension mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

} // namespace vaesa
