#include "sched/evaluator.hh"

#include <optional>
#include <vector>

#include "costmodel/batch_cost_model.hh"

namespace vaesa {

Evaluator::Evaluator()
    : model_(), scheduler_(model_)
{
}

Evaluator::Evaluator(const CostModel &model)
    : model_(model), scheduler_(model_)
{
}

Evaluator::Evaluator(const Evaluator &other)
    : model_(other.model_), scheduler_(other.scheduler_),
      evalCount_(other.evalCount_.load())
{
}

Evaluator &
Evaluator::operator=(const Evaluator &other)
{
    if (this != &other) {
        model_ = other.model_;
        scheduler_ = other.scheduler_;
        evalCount_.store(other.evalCount_.load());
    }
    return *this;
}

EvalResult
Evaluator::evaluateLayer(const AcceleratorConfig &arch,
                         const LayerShape &layer) const
{
    ++evalCount_;
    EvalResult result;
    const auto mapping = scheduler_.schedule(arch, layer);
    if (!mapping)
        return result;
    const CostResult cost = model_.evaluate(arch, layer, *mapping);
    if (!cost.valid)
        return result;
    result.valid = true;
    result.latencyCycles = cost.latencyCycles;
    result.energyPj = cost.energyPj;
    result.edp = cost.edp();
    return result;
}

void
Evaluator::evaluateLayerBatch(const AcceleratorConfig *archs,
                              std::size_t n, const LayerShape &layer,
                              EvalResult *results) const
{
    if (n == 0)
        return;
    evalCount_ += n;

    // Scheduling stays per item (branchy search over tile factors);
    // unmapped items are finalized invalid here, mapped items go
    // through the SoA cost kernel in one pass.
    std::vector<std::optional<Mapping>> mappings(n);
    std::vector<AcceleratorConfig> liveArchs;
    std::vector<Mapping> liveMappings;
    std::vector<std::size_t> liveIdx;
    liveArchs.reserve(n);
    liveMappings.reserve(n);
    liveIdx.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        results[i] = EvalResult{};
        mappings[i] = scheduler_.schedule(archs[i], layer);
        if (mappings[i]) {
            liveArchs.push_back(archs[i]);
            liveMappings.push_back(*mappings[i]);
            liveIdx.push_back(i);
        }
    }
    if (liveIdx.empty())
        return;

    std::vector<CostResult> costs(liveIdx.size());
    const BatchCostModel batchModel(model_);
    batchModel.evaluateLayer(liveArchs.data(), liveMappings.data(),
                             liveIdx.size(), layer, costs.data());

    for (std::size_t j = 0; j < liveIdx.size(); ++j) {
        if (!costs[j].valid)
            continue;
        EvalResult &r = results[liveIdx[j]];
        r.valid = true;
        r.latencyCycles = costs[j].latencyCycles;
        r.energyPj = costs[j].energyPj;
        r.edp = costs[j].edp();
    }
}

EvalResult
Evaluator::evaluateWorkload(const AcceleratorConfig &arch,
                            const std::vector<LayerShape> &layers) const
{
    EvalResult total;
    total.valid = true;
    for (const LayerShape &layer : layers) {
        const EvalResult r = evaluateLayer(arch, layer);
        if (!r.valid) {
            total.valid = false;
            total.latencyCycles = 0.0;
            total.energyPj = 0.0;
            total.edp = 0.0;
            return total;
        }
        total.latencyCycles += r.latencyCycles;
        total.energyPj += r.energyPj;
    }
    total.edp = total.latencyCycles * total.energyPj;
    return total;
}

EvalResult
Evaluator::evaluateWorkload(const AcceleratorConfig &arch,
                            const Workload &workload) const
{
    EvalResult total;
    total.valid = true;
    for (std::size_t i = 0; i < workload.layers.size(); ++i) {
        const EvalResult r = evaluateLayer(arch, workload.layers[i]);
        if (!r.valid) {
            total.valid = false;
            total.latencyCycles = 0.0;
            total.energyPj = 0.0;
            total.edp = 0.0;
            return total;
        }
        const double n = static_cast<double>(workload.countOf(i));
        total.latencyCycles += n * r.latencyCycles;
        total.energyPj += n * r.energyPj;
    }
    total.edp = total.latencyCycles * total.energyPj;
    return total;
}

CostResult
Evaluator::detailedLayer(const AcceleratorConfig &arch,
                         const LayerShape &layer,
                         Mapping *mapping_out) const
{
    ++evalCount_;
    const auto mapping = scheduler_.schedule(arch, layer);
    if (!mapping) {
        CostResult invalid;
        invalid.valid = false;
        invalid.invalidReason = "no legal mapping";
        return invalid;
    }
    if (mapping_out)
        *mapping_out = *mapping;
    return model_.evaluate(arch, layer, *mapping);
}

} // namespace vaesa
