/**
 * @file
 * Random-search mapper: the Timeloop-style baseline that CoSA (and
 * our one-shot scheduler) is measured against. Samples random legal
 * mappings and keeps the best by EDP. Used by the mapper-quality
 * ablation to validate that the one-shot scheduler produces mappings
 * competitive with search, which is the property the VAESA pipeline
 * relies on.
 */

#ifndef VAESA_SCHED_RANDOM_MAPPER_HH
#define VAESA_SCHED_RANDOM_MAPPER_HH

#include <optional>

#include "costmodel/cost_model.hh"
#include "util/rng.hh"

namespace vaesa {

/** Budgeted random mapping search. */
class RandomMapper
{
  public:
    /** Search parameters. */
    struct Options
    {
        /** Legal mappings to evaluate. */
        std::size_t samples = 200;

        /** Draws allowed per accepted legal mapping before giving
         *  up on the (arch, layer) pair. */
        std::size_t maxRejectsPerSample = 50;
    };

    /** Mapper with default options and cost model. */
    RandomMapper() = default;

    /** Mapper with explicit cost model and options. */
    RandomMapper(const CostModel &model, const Options &options);

    /**
     * Sample legal mappings and return the best by EDP.
     * @return nullopt when no legal mapping was found.
     */
    std::optional<Mapping> search(const AcceleratorConfig &arch,
                                  const LayerShape &layer,
                                  Rng &rng) const;

    /**
     * Draw one random legal mapping (log-uniform tile sizes with
     * shrink-to-fit repair).
     * @return nullopt when the draw could not be repaired.
     */
    std::optional<Mapping> sampleMapping(const AcceleratorConfig &arch,
                                         const LayerShape &layer,
                                         Rng &rng) const;

  private:
    CostModel model_;
    Options options_;
};

} // namespace vaesa

#endif // VAESA_SCHED_RANDOM_MAPPER_HH
