/**
 * @file
 * One-shot deterministic mapper -- the repository's stand-in for CoSA.
 *
 * Given (architecture, layer) the scheduler returns a single mapping
 * without searching the simulator: it maximizes spatial utilization,
 * then greedily grows the per-PE and global-buffer tiles under the
 * capacity constraints, at each step taking the growth that most
 * reduces an analytical DRAM-traffic proxy. This mirrors CoSA's role
 * in VAESA: a fast, deterministic, optimization-guided mapping oracle
 * so the DSE loop only searches over *hardware* parameters.
 */

#ifndef VAESA_SCHED_SCHEDULER_HH
#define VAESA_SCHED_SCHEDULER_HH

#include <optional>

#include "arch/design_space.hh"
#include "costmodel/cost_model.hh"
#include "costmodel/mapping.hh"
#include "workload/layer.hh"

namespace vaesa {

/** Deterministic one-shot mapping generator. */
class Scheduler
{
  public:
    /** Scheduler validating against the default cost-model params. */
    Scheduler() = default;

    /** Scheduler sharing an existing cost model's parameters. */
    explicit Scheduler(const CostModel &model);

    /**
     * Produce a mapping for the layer on the architecture.
     * @return nullopt when no legal mapping exists (e.g.\ a buffer is
     * too small to hold even a minimal tile).
     */
    std::optional<Mapping> schedule(const AcceleratorConfig &arch,
                                    const LayerShape &layer) const;

  private:
    /** DRAM-traffic proxy for ranking per-PE tile growth steps. */
    double peTrafficProxy(const LayerShape &layer, const Mapping &m) const;

    /** DRAM-traffic proxy for ranking global-buffer tile growth. */
    double gbTrafficProxy(const LayerShape &layer, const Mapping &m) const;

    CostModel model_;
};

} // namespace vaesa

#endif // VAESA_SCHED_SCHEDULER_HH
