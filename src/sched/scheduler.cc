#include "sched/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace vaesa {

namespace {

/** True when the per-PE tile of m fits every PE buffer. */
bool
peTileFits(const CostModel &model, const AcceleratorConfig &arch,
           const LayerShape &layer, const Mapping &m)
{
    // Word counts are already double (widened before multiplying in
    // Mapping, so corner-of-space tiles can't overflow into "fits").
    const double bpw = model.params().bytesPerWord;
    if (m.weightTileWords() * bpw >
        static_cast<double>(arch.weightBufBytes))
        return false;
    if (m.inputTileWords(layer) * bpw >
        static_cast<double>(arch.inputBufBytes))
        return false;
    if (m.psumTileWords() * model.params().bytesPerPsum >
        static_cast<double>(arch.accumBufBytes))
        return false;
    return true;
}

/** True when the global-buffer tile of m fits the global buffer. */
bool
gbTileFits(const CostModel &model, const AcceleratorConfig &arch,
           const LayerShape &layer, const Mapping &m)
{
    const double words =
        m.inputGbTileWords(layer) + m.outputGbTileWords();
    return words * model.params().bytesPerWord <=
           static_cast<double>(arch.globalBufBytes);
}

} // namespace

Scheduler::Scheduler(const CostModel &model)
    : model_(model)
{
}

double
Scheduler::peTrafficProxy(const LayerShape &layer, const Mapping &m) const
{
    const auto dims = layerDims(layer);
    // Weight re-fetches scale with the outer (P, Q) iteration count;
    // input re-reads from the global buffer scale with the number of
    // array-level K tiles (and the per-tile halo overhead).
    const double n_pq =
        static_cast<double>(ceilDiv(dims[DimP], m.tilePe[DimP])) *
        static_cast<double>(ceilDiv(dims[DimQ], m.tilePe[DimQ]));
    const double weight_traffic =
        static_cast<double>(layer.weightWords()) * n_pq;

    double n_tiles = 1.0;
    for (int d = 0; d < numDims; ++d)
        n_tiles *= static_cast<double>(
            ceilDiv(dims[d], m.arrayTilePe(d)));
    const double input_traffic = n_tiles * m.inputTileWords(layer);

    return weight_traffic + input_traffic +
           static_cast<double>(layer.outputWords());
}

double
Scheduler::gbTrafficProxy(const LayerShape &layer, const Mapping &m) const
{
    const auto dims = layerDims(layer);
    double n_gb = 1.0;
    for (int d = 0; d < numDims; ++d)
        n_gb *= static_cast<double>(ceilDiv(dims[d], m.tileGb[d]));
    return n_gb * m.inputGbTileWords(layer);
}

std::optional<Mapping>
Scheduler::schedule(const AcceleratorConfig &arch,
                    const LayerShape &layer) const
{
    if (!designSpace().isValid(arch) || !layer.isSane())
        return std::nullopt;

    const auto dims = layerDims(layer);
    Mapping m;
    m.spatialK = std::min<std::int64_t>(arch.numPes, dims[DimK]);
    m.spatialC = std::min<std::int64_t>(arch.lanesPerPe(), dims[DimC]);
    m.tilePe = {dims[DimR], dims[DimS], 1, 1, m.spatialC, 1};

    // Shrink the spatial C split, then the filter window, until the
    // minimal per-PE tile fits. A fully minimal tile is 1 word per
    // buffer; if even that fails the architecture cannot map the layer.
    while (!peTileFits(model_, arch, layer, m) && m.spatialC > 1) {
        m.spatialC = std::max<std::int64_t>(1, m.spatialC / 2);
        m.tilePe[DimC] = m.spatialC;
    }
    while (!peTileFits(model_, arch, layer, m) &&
           (m.tilePe[DimR] > 1 || m.tilePe[DimS] > 1)) {
        if (m.tilePe[DimR] >= m.tilePe[DimS])
            m.tilePe[DimR] = std::max<std::int64_t>(
                1, m.tilePe[DimR] / 2);
        else
            m.tilePe[DimS] = std::max<std::int64_t>(
                1, m.tilePe[DimS] / 2);
    }
    if (!peTileFits(model_, arch, layer, m))
        return std::nullopt;

    // Greedy per-PE tile growth: take the feasible doubling that most
    // reduces the DRAM-traffic proxy. Growth is monotone and bounded,
    // so the loop terminates.
    const std::int64_t max_k_tile = ceilDiv(dims[DimK], m.spatialK);
    while (true) {
        double best_score = peTrafficProxy(layer, m);
        int best_dim = -1;
        std::int64_t best_value = 0;
        for (int d : {DimR, DimS, DimP, DimQ, DimC, DimK}) {
            const std::int64_t cap =
                (d == DimK) ? max_k_tile : dims[d];
            if (m.tilePe[d] >= cap)
                continue;
            Mapping grown = m;
            grown.tilePe[d] = std::min(cap, m.tilePe[d] * 2);
            if (!peTileFits(model_, arch, layer, grown))
                continue;
            const double score = peTrafficProxy(layer, grown);
            if (score < best_score) {
                best_score = score;
                best_dim = d;
                best_value = grown.tilePe[d];
            }
        }
        if (best_dim < 0)
            break;
        m.tilePe[best_dim] = best_value;
    }

    // Global-buffer tile starts at the concurrent array tile and grows
    // under the global-buffer capacity, minimizing DRAM input traffic.
    for (int d = 0; d < numDims; ++d)
        m.tileGb[d] = std::min(dims[d], m.arrayTilePe(d));
    if (!gbTileFits(model_, arch, layer, m)) {
        // Shrink the global-buffer tile toward the per-PE tile in
        // C/Q/P; for K the buffer must cover the concurrent array
        // tile, so shrink the K split itself (temporal first, then
        // spatial, giving up PE parallelism last).
        for (int d : {DimC, DimQ, DimP}) {
            while (!gbTileFits(model_, arch, layer, m) &&
                   m.tileGb[d] > m.tilePe[d]) {
                m.tileGb[d] = std::max(m.tilePe[d], m.tileGb[d] / 2);
            }
        }
        while (!gbTileFits(model_, arch, layer, m) &&
               (m.spatialK > 1 || m.tilePe[DimK] > 1)) {
            if (m.tilePe[DimK] > 1)
                m.tilePe[DimK] = std::max<std::int64_t>(
                    1, m.tilePe[DimK] / 2);
            else
                m.spatialK = std::max<std::int64_t>(
                    1, m.spatialK / 2);
            m.tileGb[DimK] =
                std::min(dims[DimK], m.arrayTilePe(DimK));
        }
        // Last resort: a global buffer smaller than the per-PE tile.
        // Shrink the per-PE tile itself (giving up PE-buffer reuse)
        // so the tile can stream through the small global buffer.
        for (int d : {DimC, DimQ, DimP, DimS, DimR}) {
            while (!gbTileFits(model_, arch, layer, m) &&
                   m.tilePe[d] > 1) {
                m.tilePe[d] = std::max<std::int64_t>(
                    1, m.tilePe[d] / 2);
                if (d == DimC) {
                    m.spatialC = std::min(m.spatialC, m.tilePe[DimC]);
                }
                m.tileGb[d] = std::min(dims[d], m.tilePe[d]);
            }
        }
        if (!gbTileFits(model_, arch, layer, m))
            return std::nullopt;
    }
    while (true) {
        double best_score = gbTrafficProxy(layer, m);
        int best_dim = -1;
        std::int64_t best_value = 0;
        for (int d : {DimP, DimQ, DimC, DimK}) {
            if (m.tileGb[d] >= dims[d])
                continue;
            Mapping grown = m;
            grown.tileGb[d] = std::min(dims[d], m.tileGb[d] * 2);
            if (!gbTileFits(model_, arch, layer, grown))
                continue;
            const double score = gbTrafficProxy(layer, grown);
            if (score < best_score) {
                best_score = score;
                best_dim = d;
                best_value = grown.tileGb[d];
            }
        }
        if (best_dim < 0)
            break;
        m.tileGb[best_dim] = best_value;
    }

    std::string reason;
    if (!model_.checkMapping(arch, layer, m, &reason)) {
        debugLog("scheduler produced an illegal mapping (", reason,
                 ") for ", layer.describe(), " on ", arch.describe());
        return std::nullopt;
    }
    return m;
}

} // namespace vaesa
