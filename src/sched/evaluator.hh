/**
 * @file
 * Evaluation facade: schedule a layer (CoSA stand-in), score the
 * mapping (Timeloop stand-in), and roll results up to workload level.
 * This is the "evaluator" component of the VAESA framework (Sec III-A)
 * and the only interface the DSE layers talk to.
 */

#ifndef VAESA_SCHED_EVALUATOR_HH
#define VAESA_SCHED_EVALUATOR_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "costmodel/cost_model.hh"
#include "sched/scheduler.hh"
#include "workload/networks.hh"

namespace vaesa {

/** Scored evaluation of an architecture on a layer or workload. */
struct EvalResult
{
    /** False when any layer could not be mapped. */
    bool valid = false;

    /** Total latency in cycles (summed over layers). */
    double latencyCycles = 0.0;

    /** Total energy in pJ (summed over layers). */
    double energyPj = 0.0;

    /** Energy-delay product (cycles * pJ) of the totals. */
    double edp = 0.0;
};

/**
 * Facade over Scheduler + CostModel. Counts evaluations so search
 * methods can report sample budgets consistently.
 *
 * THREAD SAFETY: evaluateLayer/evaluateWorkload/detailedLayer are
 * safe to call concurrently on one instance — the scheduler and cost
 * model are stateless const pipelines and the evaluation counter is
 * atomic. This is what the parallel evaluation layer
 * (sched/parallel_evaluator.hh) builds on.
 */
class Evaluator
{
  public:
    /** Evaluator with default model parameters. */
    Evaluator();

    /** Evaluator with an explicit cost model. */
    explicit Evaluator(const CostModel &model);

    /** Copy model/scheduler plus the counter's current value. */
    Evaluator(const Evaluator &other);
    Evaluator &operator=(const Evaluator &other);

    /** Schedule and score one layer on an architecture. */
    EvalResult evaluateLayer(const AcceleratorConfig &arch,
                             const LayerShape &layer) const;

    /**
     * Schedule and score @p n architectures against ONE layer in a
     * single pass: results[i] is bit-identical to
     * evaluateLayer(archs[i], layer) under the naive kernel (the
     * scheduler runs per item; the cost math runs through
     * BatchCostModel's SoA kernel). Counts n layer evaluations.
     * Thread-safe like evaluateLayer; callers may partition a large
     * batch into disjoint sub-ranges across pool workers.
     */
    void evaluateLayerBatch(const AcceleratorConfig *archs,
                            std::size_t n, const LayerShape &layer,
                            EvalResult *results) const;

    /**
     * Schedule and score every layer and sum latency/energy; EDP is
     * total-latency x total-energy (the paper's workload objective).
     * Invalid if any layer fails to map.
     */
    EvalResult evaluateWorkload(const AcceleratorConfig &arch,
                                const std::vector<LayerShape> &layers)
                                const;

    /**
     * Occurrence-counted workload evaluation: each unique layer is
     * scheduled and scored once, then its latency/energy enter the
     * totals weighted by Workload::countOf. With empty counts every
     * weight is exactly 1.0, so the result is bit-identical to the
     * layer-vector overload — paper-mode callers can route through
     * either.
     */
    EvalResult evaluateWorkload(const AcceleratorConfig &arch,
                                const Workload &workload) const;

    /** Detailed per-layer result (mapping + full cost breakdown). */
    CostResult detailedLayer(const AcceleratorConfig &arch,
                             const LayerShape &layer,
                             Mapping *mapping_out = nullptr) const;

    /** Number of layer evaluations performed so far. */
    std::uint64_t evaluationCount() const { return evalCount_; }

    /** Reset the evaluation counter. */
    void resetCount() { evalCount_ = 0; }

    /** The underlying cost model. */
    const CostModel &model() const { return model_; }

  private:
    CostModel model_;
    Scheduler scheduler_;
    mutable std::atomic<std::uint64_t> evalCount_{0};
};

} // namespace vaesa

#endif // VAESA_SCHED_EVALUATOR_HH
