#include "sched/caching_evaluator.hh"

#include <algorithm>

#include "util/contracts.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace vaesa {

namespace {

/** Per-parameter index widths of the perfect cache-key packing. */
constexpr int keyBits[numHwParams] = {3, 6, 7, 15, 11, 17};

constexpr int
totalKeyBits()
{
    int sum = 0;
    for (int b : keyBits)
        sum += b;
    return sum;
}

// The packing is only collision-free while every index fits its
// field and the fields fit one 64-bit word. Growing the design space
// must widen these constants in lock-step.
static_assert(totalKeyBits() <= 64,
              "cache key no longer fits in 64 bits");
static_assert(numHwParams == 6,
              "keyBits must list one width per hardware parameter");

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Process-wide mirrors of the per-instance cache counters. */
struct GlobalCacheMetrics
{
    metrics::Counter &hits = metrics::counter("cache.hit");
    metrics::Counter &misses = metrics::counter("cache.miss");
    metrics::Counter &evictions = metrics::counter("cache.evict");
    metrics::Counter &contention =
        metrics::counter("cache.shard_contention");
};

GlobalCacheMetrics &
globalCacheMetrics()
{
    static GlobalCacheMetrics m;
    return m;
}

std::size_t
roundUpPow2(std::size_t x)
{
    std::size_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

/**
 * Shard-count policy shared by construction (process-wide metrics)
 * and clear() (per-instance counters): start from a base width,
 * escalate while the observed contended-acquisition ratio is high,
 * and de-escalate only from a very quiet epoch. Ratios are per
 * lookup; below ~1k lookups there is no signal, keep the base.
 */
std::size_t
adaptShardCount(std::size_t base, std::uint64_t lookups,
                std::uint64_t contended)
{
    std::size_t want = base;
    if (lookups >= 1024) {
        if (contended * 64 > lookups)
            want = base * 4;
        else if (contended * 256 > lookups)
            want = base * 2;
        else if (contended * 4096 < lookups)
            want = base / 2;
    }
    want = std::clamp(want, CachingEvaluator::minShardCount,
                      CachingEvaluator::maxShardCount);
    return roundUpPow2(want);
}

} // namespace

std::size_t
CachingEvaluator::BatchKeyHash::operator()(const BatchKey &key) const
{
    // One avalanche over both fields: the config packing is dense in
    // the low bits, so the raw key would shard/bucket poorly.
    return static_cast<std::size_t>(
        mix64(key.config ^
              (static_cast<std::uint64_t>(key.layer) << 59)));
}

std::size_t
CachingEvaluator::contentionAwareShardCount()
{
    // Base width: 4 shards per pool thread keeps the expected number
    // of threads per shard lock well under one even with a skewed
    // key mix; past epochs' process-wide contention ratio escalates
    // it further.
    const std::size_t base = ThreadPool::defaultThreadCount() * 4;
    GlobalCacheMetrics &g = globalCacheMetrics();
    const std::uint64_t lookups = g.hits.value() + g.misses.value();
    return adaptShardCount(std::max(base, minShardCount), lookups,
                           g.contention.value());
}

CachingEvaluator::CachingEvaluator()
    : CachingEvaluator(Evaluator())
{
}

CachingEvaluator::CachingEvaluator(const Evaluator &inner)
    : CachingEvaluator(inner, contentionAwareShardCount())
{
}

CachingEvaluator::CachingEvaluator(const Evaluator &inner,
                                   std::size_t shardCount)
    : inner_(inner)
{
    // Shard holds a Mutex (non-movable), so the array is built in
    // place on the heap and only replaced at quiescent points.
    shardCount_ = roundUpPow2(
        std::clamp(shardCount, minShardCount, maxShardCount));
    shards_.reset(new Shard[shardCount_]);
}

std::uint64_t
CachingEvaluator::configKey(const AcceleratorConfig &arch) const
{
    // Pack the six grid indices into 59 bits (3+6+7+15+11+17).
    const auto idx = designSpace().toIndices(arch);
    std::uint64_t key = 0;
    for (int p = 0; p < numHwParams; ++p) {
        VAESA_EXPECT(idx[p] >= 0 &&
                         idx[p] < (std::int64_t{1} << keyBits[p]),
                     "grid index ", idx[p], " overflows the ",
                     keyBits[p], "-bit cache-key field of parameter ",
                     p, "; the memo table would alias entries");
        key = (key << keyBits[p]) |
              static_cast<std::uint64_t>(idx[p]);
    }
    return key;
}

std::uint32_t
CachingEvaluator::layerKey(const LayerShape &layer) const
{
    {
        const ReaderLock lock(registryMutex_);
        for (std::uint32_t i = 0; i < layerRegistry_.size(); ++i)
            if (layerRegistry_[i].sameShape(layer))
                return i;
    }
    const WriterLock lock(registryMutex_);
    // Re-scan under the exclusive lock: another thread may have
    // registered the same shape between the two lock scopes.
    for (std::uint32_t i = 0; i < layerRegistry_.size(); ++i)
        if (layerRegistry_[i].sameShape(layer))
            return i;
    layerRegistry_.push_back(layer);
    return static_cast<std::uint32_t>(layerRegistry_.size() - 1);
}

AcceleratorConfig
CachingEvaluator::snapConfig(const AcceleratorConfig &arch) const
{
    AcceleratorConfig snapped = arch;
    const DesignSpace &ds = designSpace();
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        snapped.setValue(param,
                         ds.snapValue(param, arch.value(param)));
    }
    return snapped;
}

CachingEvaluator::BatchKey
CachingEvaluator::batchKey(const AcceleratorConfig &snapped,
                           std::uint32_t layerId) const
{
    return BatchKey{configKey(snapped), layerId};
}

EvalResult
CachingEvaluator::evaluateLayer(const AcceleratorConfig &arch,
                                const LayerShape &layer) const
{
    // Snap to the grid first: the cache key is the grid index, and
    // evaluation of off-grid values would alias the snapped point.
    const AcceleratorConfig snapped = snapConfig(arch);

    // The (59-bit perfect config packing, registry id) pair is
    // collision-free; the hash only spreads it over buckets/shards.
    const BatchKey key{configKey(snapped), layerKey(layer)};
    Shard &shard = shards_[BatchKeyHash{}(key) % shardCount_];

    {
        lockShard(shard);
        const MutexLock lock(shard.shardMutex, adoptLock);
        const auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            hits_.inc();
            globalCacheMetrics().hits.inc();
            return it->second;
        }
    }
    // Evaluate OUTSIDE the shard lock so a slow inner evaluation
    // never serializes unrelated lookups; a concurrent miss of the
    // same key just recomputes the identical deterministic result.
    misses_.inc();
    globalCacheMetrics().misses.inc();
    const EvalResult result = inner_.evaluateLayer(snapped, layer);
    {
        lockShard(shard);
        const MutexLock lock(shard.shardMutex, adoptLock);
        shard.entries.emplace(key, result); // no-op if raced
    }
    return result;
}

EvalResult
CachingEvaluator::evaluateWorkload(
    const AcceleratorConfig &arch,
    const std::vector<LayerShape> &layers) const
{
    EvalResult total;
    total.valid = true;
    for (const LayerShape &layer : layers) {
        const EvalResult r = evaluateLayer(arch, layer);
        if (!r.valid) {
            total.valid = false;
            total.latencyCycles = 0.0;
            total.energyPj = 0.0;
            total.edp = 0.0;
            return total;
        }
        total.latencyCycles += r.latencyCycles;
        total.energyPj += r.energyPj;
    }
    total.edp = total.latencyCycles * total.energyPj;
    return total;
}

void
CachingEvaluator::probeBatch(const BatchKey *keys, std::size_t n,
                             EvalResult *results,
                             unsigned char *found) const
{
    if (n == 0)
        return;
    // Bucket keys by shard (counting sort) so each shard is locked
    // exactly once per batch regardless of n.
    std::vector<std::uint32_t> shardOf(n);
    std::vector<std::uint32_t> start(shardCount_ + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        shardOf[i] = static_cast<std::uint32_t>(
            BatchKeyHash{}(keys[i]) % shardCount_);
        ++start[shardOf[i] + 1];
    }
    for (std::size_t s = 0; s < shardCount_; ++s)
        start[s + 1] += start[s];
    std::vector<std::uint32_t> order(n);
    {
        std::vector<std::uint32_t> cursor(start.begin(),
                                          start.end() - 1);
        for (std::size_t i = 0; i < n; ++i)
            order[cursor[shardOf[i]]++] =
                static_cast<std::uint32_t>(i);
    }
    for (std::size_t s = 0; s < shardCount_; ++s) {
        if (start[s] == start[s + 1])
            continue;
        Shard &shard = shards_[s];
        lockShard(shard);
        const MutexLock lock(shard.shardMutex, adoptLock);
        for (std::uint32_t o = start[s]; o < start[s + 1]; ++o) {
            const std::uint32_t i = order[o];
            const auto it = shard.entries.find(keys[i]);
            if (it != shard.entries.end()) {
                results[i] = it->second;
                found[i] = 1;
            } else {
                found[i] = 0;
            }
        }
    }
}

void
CachingEvaluator::insertBatch(const BatchKey *keys,
                              const EvalResult *results,
                              std::size_t n) const
{
    if (n == 0)
        return;
    std::vector<std::uint32_t> shardOf(n);
    std::vector<std::uint32_t> start(shardCount_ + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        shardOf[i] = static_cast<std::uint32_t>(
            BatchKeyHash{}(keys[i]) % shardCount_);
        ++start[shardOf[i] + 1];
    }
    for (std::size_t s = 0; s < shardCount_; ++s)
        start[s + 1] += start[s];
    std::vector<std::uint32_t> order(n);
    {
        std::vector<std::uint32_t> cursor(start.begin(),
                                          start.end() - 1);
        for (std::size_t i = 0; i < n; ++i)
            order[cursor[shardOf[i]]++] =
                static_cast<std::uint32_t>(i);
    }
    for (std::size_t s = 0; s < shardCount_; ++s) {
        if (start[s] == start[s + 1])
            continue;
        Shard &shard = shards_[s];
        lockShard(shard);
        const MutexLock lock(shard.shardMutex, adoptLock);
        for (std::uint32_t o = start[s]; o < start[s + 1]; ++o) {
            const std::uint32_t i = order[o];
            shard.entries.emplace(keys[i], results[i]); // keep first
        }
    }
}

void
CachingEvaluator::accountBatch(std::uint64_t lookups,
                               std::uint64_t misses) const
{
    VAESA_EXPECT(misses <= lookups,
                 "accountBatch: ", misses, " misses out of ", lookups,
                 " lookups");
    const std::uint64_t hits = lookups - misses;
    if (hits > 0) {
        hits_.inc(hits);
        globalCacheMetrics().hits.inc(hits);
    }
    if (misses > 0) {
        misses_.inc(misses);
        globalCacheMetrics().misses.inc(misses);
    }
}

void
CachingEvaluator::lockShard(const Shard &shard)
{
    // try_lock first purely to observe contention; the blocking lock
    // below is what actually serializes. The counter increment is a
    // relaxed sharded add, cheap enough for the lookup path.
    if (shard.shardMutex.try_lock())
        return;
    shard.contention.inc();
    globalCacheMetrics().contention.inc();
    shard.shardMutex.lock();
}

std::uint64_t
CachingEvaluator::contention() const
{
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < shardCount_; ++s)
        total += shards_[s].contention.value();
    return total;
}

void
CachingEvaluator::clear()
{
    const WriterLock lock(registryMutex_);
    // Snapshot the adaptation inputs before the counters reset: the
    // finished epoch's own ratio drives next epoch's shard count.
    const std::uint64_t lookups = hits_.value() + misses_.value();
    const std::uint64_t contended = contention();
    std::uint64_t dropped = 0;
    for (std::size_t s = 0; s < shardCount_; ++s) {
        Shard &shard = shards_[s];
        const MutexLock shardLock(shard.shardMutex);
        dropped += shard.entries.size();
        shard.entries.clear();
    }
    layerRegistry_.clear();
    if (dropped > 0) {
        evictions_.inc(dropped);
        globalCacheMetrics().evictions.inc(dropped);
    }
    hits_.reset();
    misses_.reset();
    // Contention-aware resize: clear() already requires quiescence,
    // so swapping the shard array here (and nowhere else) is safe.
    const std::size_t want =
        adaptShardCount(shardCount_, lookups, contended);
    if (want != shardCount_) {
        shards_.reset(new Shard[want]);
        shardCount_ = want;
    }
}

} // namespace vaesa
