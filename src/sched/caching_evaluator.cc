#include "sched/caching_evaluator.hh"

#include "util/contracts.hh"
#include "util/logging.hh"

namespace vaesa {

namespace {

/** Per-parameter index widths of the perfect cache-key packing. */
constexpr int keyBits[numHwParams] = {3, 6, 7, 15, 11, 17};

constexpr int
totalKeyBits()
{
    int sum = 0;
    for (int b : keyBits)
        sum += b;
    return sum;
}

// The packing is only collision-free while every index fits its
// field and the fields fit one 64-bit word. Growing the design space
// must widen these constants in lock-step.
static_assert(totalKeyBits() <= 64,
              "cache key no longer fits in 64 bits");
static_assert(numHwParams == 6,
              "keyBits must list one width per hardware parameter");

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Process-wide mirrors of the per-instance cache counters. */
struct GlobalCacheMetrics
{
    metrics::Counter &hits = metrics::counter("cache.hit");
    metrics::Counter &misses = metrics::counter("cache.miss");
    metrics::Counter &evictions = metrics::counter("cache.evict");
    metrics::Counter &contention =
        metrics::counter("cache.shard_contention");
};

GlobalCacheMetrics &
globalCacheMetrics()
{
    static GlobalCacheMetrics m;
    return m;
}

} // namespace

std::size_t
CachingEvaluator::KeyHash::operator()(const Key &key) const
{
    // One avalanche over both fields: the config packing is dense in
    // the low bits, so the raw key would shard/bucket poorly.
    return static_cast<std::size_t>(
        mix64(key.config ^
              (static_cast<std::uint64_t>(key.layer) << 59)));
}

CachingEvaluator::CachingEvaluator(const Evaluator &inner)
    : inner_(inner)
{
}

std::uint64_t
CachingEvaluator::configKey(const AcceleratorConfig &arch) const
{
    // Pack the six grid indices into 59 bits (3+6+7+15+11+17).
    const auto idx = designSpace().toIndices(arch);
    std::uint64_t key = 0;
    for (int p = 0; p < numHwParams; ++p) {
        VAESA_EXPECT(idx[p] >= 0 &&
                         idx[p] < (std::int64_t{1} << keyBits[p]),
                     "grid index ", idx[p], " overflows the ",
                     keyBits[p], "-bit cache-key field of parameter ",
                     p, "; the memo table would alias entries");
        key = (key << keyBits[p]) |
              static_cast<std::uint64_t>(idx[p]);
    }
    return key;
}

std::uint32_t
CachingEvaluator::layerId(const LayerShape &layer) const
{
    {
        const ReaderLock lock(registryMutex_);
        for (std::uint32_t i = 0; i < layerRegistry_.size(); ++i)
            if (layerRegistry_[i].sameShape(layer))
                return i;
    }
    const WriterLock lock(registryMutex_);
    // Re-scan under the exclusive lock: another thread may have
    // registered the same shape between the two lock scopes.
    for (std::uint32_t i = 0; i < layerRegistry_.size(); ++i)
        if (layerRegistry_[i].sameShape(layer))
            return i;
    layerRegistry_.push_back(layer);
    return static_cast<std::uint32_t>(layerRegistry_.size() - 1);
}

EvalResult
CachingEvaluator::evaluateLayer(const AcceleratorConfig &arch,
                                const LayerShape &layer) const
{
    // Snap to the grid first: the cache key is the grid index, and
    // evaluation of off-grid values would alias the snapped point.
    AcceleratorConfig snapped = arch;
    const DesignSpace &ds = designSpace();
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        snapped.setValue(param,
                         ds.snapValue(param, arch.value(param)));
    }

    // The (59-bit perfect config packing, registry id) pair is
    // collision-free; the hash only spreads it over buckets/shards.
    const Key key{configKey(snapped), layerId(layer)};
    Shard &shard = shards_[KeyHash{}(key) % numShards];

    {
        lockShard(shard);
        const MutexLock lock(shard.shardMutex, adoptLock);
        const auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            hits_.inc();
            globalCacheMetrics().hits.inc();
            return it->second;
        }
    }
    // Evaluate OUTSIDE the shard lock so a slow inner evaluation
    // never serializes unrelated lookups; a concurrent miss of the
    // same key just recomputes the identical deterministic result.
    misses_.inc();
    globalCacheMetrics().misses.inc();
    const EvalResult result = inner_.evaluateLayer(snapped, layer);
    {
        lockShard(shard);
        const MutexLock lock(shard.shardMutex, adoptLock);
        shard.entries.emplace(key, result); // no-op if raced
    }
    return result;
}

EvalResult
CachingEvaluator::evaluateWorkload(
    const AcceleratorConfig &arch,
    const std::vector<LayerShape> &layers) const
{
    EvalResult total;
    total.valid = true;
    for (const LayerShape &layer : layers) {
        const EvalResult r = evaluateLayer(arch, layer);
        if (!r.valid) {
            total.valid = false;
            total.latencyCycles = 0.0;
            total.energyPj = 0.0;
            total.edp = 0.0;
            return total;
        }
        total.latencyCycles += r.latencyCycles;
        total.energyPj += r.energyPj;
    }
    total.edp = total.latencyCycles * total.energyPj;
    return total;
}

void
CachingEvaluator::lockShard(const Shard &shard)
{
    // try_lock first purely to observe contention; the blocking lock
    // below is what actually serializes. The counter increment is a
    // relaxed sharded add, cheap enough for the lookup path.
    if (shard.shardMutex.try_lock())
        return;
    shard.contention.inc();
    globalCacheMetrics().contention.inc();
    shard.shardMutex.lock();
}

std::uint64_t
CachingEvaluator::contention() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.contention.value();
    return total;
}

void
CachingEvaluator::clear()
{
    const WriterLock lock(registryMutex_);
    std::uint64_t dropped = 0;
    for (Shard &shard : shards_) {
        const MutexLock shardLock(shard.shardMutex);
        dropped += shard.entries.size();
        shard.entries.clear();
    }
    layerRegistry_.clear();
    if (dropped > 0) {
        evictions_.inc(dropped);
        globalCacheMetrics().evictions.inc(dropped);
    }
    hits_.reset();
    misses_.reset();
}

} // namespace vaesa
