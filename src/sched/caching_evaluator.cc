#include "sched/caching_evaluator.hh"

#include "util/contracts.hh"
#include "util/logging.hh"

namespace vaesa {

namespace {

/** Per-parameter index widths of the perfect cache-key packing. */
constexpr int keyBits[numHwParams] = {3, 6, 7, 15, 11, 17};

constexpr int
totalKeyBits()
{
    int sum = 0;
    for (int b : keyBits)
        sum += b;
    return sum;
}

// The packing is only collision-free while every index fits its
// field and the fields fit one 64-bit word. Growing the design space
// must widen these constants in lock-step.
static_assert(totalKeyBits() <= 64,
              "cache key no longer fits in 64 bits");
static_assert(numHwParams == 6,
              "keyBits must list one width per hardware parameter");

} // namespace

CachingEvaluator::CachingEvaluator(const Evaluator &inner)
    : inner_(inner)
{
}

std::uint64_t
CachingEvaluator::configKey(const AcceleratorConfig &arch) const
{
    // Pack the six grid indices into 59 bits (3+6+7+15+11+17).
    const auto idx = designSpace().toIndices(arch);
    std::uint64_t key = 0;
    for (int p = 0; p < numHwParams; ++p) {
        VAESA_EXPECT(idx[p] >= 0 &&
                         idx[p] < (std::int64_t{1} << keyBits[p]),
                     "grid index ", idx[p], " overflows the ",
                     keyBits[p], "-bit cache-key field of parameter ",
                     p, "; the memo table would alias entries");
        key = (key << keyBits[p]) |
              static_cast<std::uint64_t>(idx[p]);
    }
    return key;
}

std::uint32_t
CachingEvaluator::layerId(const LayerShape &layer) const
{
    for (std::uint32_t i = 0; i < layerRegistry_.size(); ++i)
        if (layerRegistry_[i].sameShape(layer))
            return i;
    layerRegistry_.push_back(layer);
    return static_cast<std::uint32_t>(layerRegistry_.size() - 1);
}

EvalResult
CachingEvaluator::evaluateLayer(const AcceleratorConfig &arch,
                                const LayerShape &layer) const
{
    // Snap to the grid first: the cache key is the grid index, and
    // evaluation of off-grid values would alias the snapped point.
    AcceleratorConfig snapped = arch;
    const DesignSpace &ds = designSpace();
    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        snapped.setValue(param,
                         ds.snapValue(param, arch.value(param)));
    }

    const std::uint32_t lid = layerId(layer);
    // 59 config bits + layer id; combine with a 64-bit multiply mix
    // into a two-level map-free key. Equality is guaranteed because
    // the config key is a *perfect* (collision-free) packing and the
    // per-layer maps are separated below.
    const std::uint64_t key = configKey(snapped);

    if (perLayer_.size() <= lid)
        perLayer_.resize(lid + 1);
    auto &cache = perLayer_[lid];
    const auto it = cache.find(key);
    if (it != cache.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    const EvalResult result = inner_.evaluateLayer(snapped, layer);
    cache.emplace(key, result);
    return result;
}

EvalResult
CachingEvaluator::evaluateWorkload(
    const AcceleratorConfig &arch,
    const std::vector<LayerShape> &layers) const
{
    EvalResult total;
    total.valid = true;
    for (const LayerShape &layer : layers) {
        const EvalResult r = evaluateLayer(arch, layer);
        if (!r.valid) {
            total.valid = false;
            total.latencyCycles = 0.0;
            total.energyPj = 0.0;
            total.edp = 0.0;
            return total;
        }
        total.latencyCycles += r.latencyCycles;
        total.energyPj += r.energyPj;
    }
    total.edp = total.latencyCycles * total.energyPj;
    return total;
}

void
CachingEvaluator::clear()
{
    perLayer_.clear();
    layerRegistry_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace vaesa
