/**
 * @file
 * Batch evaluation APIs on top of the thread pool: score many
 * (config, workload) pairs — or the layers of one workload —
 * concurrently, with results bit-identical to the serial Evaluator
 * loops. This is the scaling layer every search driver funnels its
 * bulk cost-model queries through (the ROADMAP's batching axis);
 * determinism is preserved because work is only *scheduled* in
 * parallel while all result ordering and summation stays in input
 * order on the calling thread.
 *
 * BATCH PIPELINE (the DESIGN.md batch-evaluation contract): a layer
 * batch runs dedup -> probe -> evaluate -> merge -> account:
 *   1. snap + key every config, then deduplicate keys (searches
 *      repeatedly decode to the same snapped config, so a batch of N
 *      often holds far fewer distinct keys);
 *   2. one locked-per-shard probeBatch() against the memo cache;
 *   3. the missing distinct keys are evaluated through the SoA batch
 *      cost model in work-stealing CHUNKS (chunkSizeFor()) claimed
 *      off a shared atomic cursor — each chunk's results land in a
 *      thread-local slice, no lock held while evaluating;
 *   4. the slices are merged into the cache once, at batch end
 *      (insertBatch), and the counters folded with accountBatch(),
 *      reproducing the serial path's hit/miss totals exactly;
 *   5. results scatter back to input order on the calling thread.
 * A fault or exception inside step 3 propagates after in-flight
 * chunks finish and SKIPS steps 4-5, so a killed batch is
 * all-or-nothing: no partial merge, no counter drift.
 */

#ifndef VAESA_SCHED_PARALLEL_EVALUATOR_HH
#define VAESA_SCHED_PARALLEL_EVALUATOR_HH

#include <vector>

#include "sched/caching_evaluator.hh"
#include "util/deadline.hh"
#include "util/thread_pool.hh"

namespace vaesa {

/**
 * Work-stealing chunk size for a batch of @p items across @p threads
 * workers: items/(threads*8) clamped to [8, 256]. ~8 chunks per
 * worker keeps the steal-cursor overhead negligible (one atomic add
 * per ~10-2000 µs of work) while bounding tail imbalance to ~1/8 of
 * a worker's share; the floor of 8 stops tiny batches from degrading
 * to per-item claims.
 */
std::size_t chunkSizeFor(std::size_t items, std::size_t threads);

/**
 * Roll a workload up layer-by-layer in parallel on a plain (cache-
 * free) Evaluator. Bit-identical to Evaluator::evaluateWorkload:
 * layer results are summed on the calling thread in layer order and
 * any unmappable layer zeroes the total. Unlike the serial loop,
 * layers after an invalid one are still evaluated (they were already
 * in flight), so the inner evaluationCount() can differ.
 */
EvalResult evaluateWorkloadParallel(
    const Evaluator &evaluator, const AcceleratorConfig &arch,
    const std::vector<LayerShape> &layers, ThreadPool &pool);

/**
 * Score configs[i] on the whole workload into result i on a plain
 * (cache-free) Evaluator — the uncached driver fast path. Results
 * are bit-identical to calling evaluator.evaluateWorkload per
 * config: each layer is scored through the SoA batch cost model
 * with within-batch deduplication (evaluation is deterministic, so
 * sharing one result across duplicate configs is lossless), per-
 * config sums accumulate in layer order on the calling thread, and
 * an alive mask reproduces the serial early-exit (a config invalid
 * at layer L is not scored past L). Dedup means the evaluator's
 * evaluationCount() advances by distinct work, not input size.
 */
std::vector<EvalResult> evaluateConfigBatch(
    const Evaluator &evaluator,
    const std::vector<AcceleratorConfig> &configs,
    const std::vector<LayerShape> &layers, ThreadPool &pool);

/**
 * Batch front-end over a shared CachingEvaluator and a ThreadPool.
 * Borrows both (they must outlive this). All methods are safe to
 * call from one thread while the pool's workers fan the batch out;
 * do not call them from inside a pool task (see
 * ThreadPool::parallelFor).
 */
class ParallelEvaluator
{
  public:
    ParallelEvaluator(const CachingEvaluator &cache, ThreadPool &pool);

    /**
     * Score configs[i] on the whole workload into result i. Runs
     * layer-by-layer over the batch through the chunked pipeline
     * above, with an alive mask reproducing the serial early-exit:
     * a config invalid at layer L does not look up layers beyond L,
     * so both the results AND the cache hit/miss totals are
     * identical to calling cache.evaluateWorkload per config. Sums
     * accumulate in layer order on the calling thread.
     */
    std::vector<EvalResult> evaluateBatch(
        const std::vector<AcceleratorConfig> &configs,
        const std::vector<LayerShape> &workload) const;

    /** Score configs[i] on one layer into result i through the
     *  chunked dedup/probe/merge pipeline (see file comment). */
    std::vector<EvalResult> evaluateLayerBatch(
        const std::vector<AcceleratorConfig> &configs,
        const LayerShape &layer) const;

    /**
     * One config's workload sum with the *layers* fanned out across
     * the pool; bit-identical to the serial roll-up (summed in layer
     * order on the calling thread).
     */
    EvalResult evaluateWorkload(
        const AcceleratorConfig &arch,
        const std::vector<LayerShape> &layers) const;

    /** The shared memo cache. */
    const CachingEvaluator &cache() const { return *cache_; }

    /** The pool work is scheduled on. */
    ThreadPool &pool() const { return *pool_; }

    /**
     * Observe @p token (borrowed; may be nullptr to detach) at every
     * chunk-claim checkpoint. Expiry throws DeadlineExceeded from
     * the batch call after in-flight chunks finish, taking the SAME
     * all-or-nothing exit as an injected fault: no partial merge, no
     * counter drift — so a request killed by its deadline leaves the
     * shared cache exactly as a never-started one. Set it before
     * sharing the evaluator with workers; one evaluator instance
     * serves one request at a time (instances are cheap views over
     * the shared cache + pool, so concurrent requests each build
     * their own).
     */
    void setCancelToken(const CancelToken *token) { cancel_ = token; }

  private:
    /** One layer of the pipeline over the items configs[idx[j]],
     *  j in [0, m); writes results[idx[j]]. */
    void scoreLayerSubset(const AcceleratorConfig *configs,
                          const std::uint32_t *idx, std::size_t m,
                          const LayerShape &layer,
                          EvalResult *results) const;

    const CachingEvaluator *cache_;
    ThreadPool *pool_;
    const CancelToken *cancel_ = nullptr;
};

} // namespace vaesa

#endif // VAESA_SCHED_PARALLEL_EVALUATOR_HH
