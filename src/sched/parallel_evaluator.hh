/**
 * @file
 * Batch evaluation APIs on top of the thread pool: score many
 * (config, workload) pairs — or the layers of one workload —
 * concurrently, with results bit-identical to the serial Evaluator
 * loops. This is the scaling layer every search driver funnels its
 * bulk cost-model queries through (the ROADMAP's batching axis);
 * determinism is preserved because work is only *scheduled* in
 * parallel while all result ordering and summation stays in input
 * order on the calling thread.
 *
 * BATCH PIPELINE (the DESIGN.md batch-evaluation contract): a layer
 * batch runs dedup -> probe -> evaluate -> merge -> account:
 *   1. snap + key every config, then deduplicate keys (searches
 *      repeatedly decode to the same snapped config, so a batch of N
 *      often holds far fewer distinct keys);
 *   2. one locked-per-shard probeBatch() against the memo cache;
 *   3. the missing distinct keys are evaluated through the SoA batch
 *      cost model in work-stealing CHUNKS (chunkSizeFor()) claimed
 *      off a shared atomic cursor — each chunk's results land in a
 *      thread-local slice, no lock held while evaluating;
 *   4. the slices are merged into the cache once, at batch end
 *      (insertBatch), and the counters folded with accountBatch(),
 *      reproducing the serial path's hit/miss totals exactly;
 *   5. results scatter back to input order on the calling thread.
 * A fault or exception inside step 3 propagates after in-flight
 * chunks finish and SKIPS steps 4-5, so a killed batch is
 * all-or-nothing: no partial merge, no counter drift.
 */

#ifndef VAESA_SCHED_PARALLEL_EVALUATOR_HH
#define VAESA_SCHED_PARALLEL_EVALUATOR_HH

#include <vector>

#include "sched/caching_evaluator.hh"
#include "util/deadline.hh"
#include "util/thread_pool.hh"

namespace vaesa {

/**
 * Work-stealing chunk size for a batch of @p items across @p threads
 * workers: items/(threads*8) clamped to [min(items, 8), 256]. ~8
 * chunks per worker keeps the steal-cursor overhead negligible (one
 * atomic add per ~10-2000 µs of work) while bounding tail imbalance
 * to ~1/8 of a worker's share; the floor of 8 stops tiny batches
 * from degrading to per-item claims. Contract (unit-tested): the
 * result is never 0, never exceeds max(items, 1) — so ceil(items /
 * chunk) chunks never outnumber items and no chunk is empty — and
 * threads == 0 behaves like threads == 1.
 */
std::size_t chunkSizeFor(std::size_t items, std::size_t threads);

/**
 * Per-item outcome of a ParallelEvaluator batch evaluated with
 * per-item cancel tokens: items whose own token expires are DROPPED
 * at the next layer boundary without disturbing their batch-mates.
 */
enum class BatchItemStatus : std::uint8_t
{
    /** Scored completely; the result slot is authoritative. */
    Ok = 0,

    /** The item's own token expired; its result slot is the invalid
     *  zero EvalResult and layers past the boundary were never
     *  looked up for it. */
    DeadlineExpired = 1,
};

/**
 * Roll a workload up layer-by-layer in parallel on a plain (cache-
 * free) Evaluator. Bit-identical to Evaluator::evaluateWorkload:
 * layer results are summed on the calling thread in layer order and
 * any unmappable layer zeroes the total. Unlike the serial loop,
 * layers after an invalid one are still evaluated (they were already
 * in flight), so the inner evaluationCount() can differ.
 */
EvalResult evaluateWorkloadParallel(
    const Evaluator &evaluator, const AcceleratorConfig &arch,
    const std::vector<LayerShape> &layers, ThreadPool &pool);

/**
 * Score configs[i] on the whole workload into result i on a plain
 * (cache-free) Evaluator — the uncached driver fast path. Results
 * are bit-identical to calling evaluator.evaluateWorkload per
 * config: each layer is scored through the SoA batch cost model
 * with within-batch deduplication (evaluation is deterministic, so
 * sharing one result across duplicate configs is lossless), per-
 * config sums accumulate in layer order on the calling thread, and
 * an alive mask reproduces the serial early-exit (a config invalid
 * at layer L is not scored past L). Dedup means the evaluator's
 * evaluationCount() advances by distinct work, not input size.
 */
std::vector<EvalResult> evaluateConfigBatch(
    const Evaluator &evaluator,
    const std::vector<AcceleratorConfig> &configs,
    const std::vector<LayerShape> &layers, ThreadPool &pool);

/**
 * Occurrence-counted variant: layer i's latency/energy enter each
 * config's totals weighted by workload.countOf(i), matching
 * Evaluator::evaluateWorkload(arch, workload) per config bit for bit
 * (weights multiply before the in-order accumulation, and an empty
 * counts vector weighs every layer exactly 1.0, collapsing to the
 * overload above).
 */
std::vector<EvalResult> evaluateConfigBatch(
    const Evaluator &evaluator,
    const std::vector<AcceleratorConfig> &configs,
    const Workload &workload, ThreadPool &pool);

/**
 * Batch front-end over a shared CachingEvaluator and a ThreadPool.
 * Borrows both (they must outlive this). All methods are safe to
 * call from one thread while the pool's workers fan the batch out;
 * do not call them from inside a pool task (see
 * ThreadPool::parallelFor).
 */
class ParallelEvaluator
{
  public:
    ParallelEvaluator(const CachingEvaluator &cache, ThreadPool &pool);

    /**
     * Score configs[i] on the whole workload into result i. Runs
     * layer-by-layer over the batch through the chunked pipeline
     * above, with an alive mask reproducing the serial early-exit:
     * a config invalid at layer L does not look up layers beyond L,
     * so both the results AND the cache hit/miss totals are
     * identical to calling cache.evaluateWorkload per config. Sums
     * accumulate in layer order on the calling thread.
     */
    std::vector<EvalResult> evaluateBatch(
        const std::vector<AcceleratorConfig> &configs,
        const std::vector<LayerShape> &workload) const;

    /**
     * evaluateBatch with PER-ITEM deadlines: the serve-side
     * coalescing entry point (serve/batcher.cc funnels concurrent
     * ScoreConfig requests here as one SoA batch).
     *
     * @p itemTokens, when non-null, holds configs.size() borrowed
     * token pointers (individual entries may be null = no deadline).
     * Expiry of item i's own token is observed at layer boundaries —
     * including before the first layer — and drops ONLY item i from
     * the rest of the batch: statuses[i] (when @p statuses is
     * non-null) becomes DeadlineExpired, its result slot is the
     * invalid zero result, and its batch-mates score on untouched.
     * Completed layers stay merged into the cache, exactly as a
     * solo request cancelled between layers would leave it.
     *
     * The evaluator-wide token installed via setCancelToken() keeps
     * its PR 7 semantics on top: it fires at chunk claims and throws
     * DeadlineExceeded for the WHOLE batch through the all-or-
     * nothing exit (per-item tokens never throw). With null
     * @p itemTokens this is exactly evaluateBatch(), which now
     * delegates here.
     */
    std::vector<EvalResult> evaluateConfigBatch(
        const std::vector<AcceleratorConfig> &configs,
        const std::vector<LayerShape> &workload,
        const CancelToken *const *itemTokens,
        BatchItemStatus *statuses) const;

    /** Score configs[i] on one layer into result i through the
     *  chunked dedup/probe/merge pipeline (see file comment). */
    std::vector<EvalResult> evaluateLayerBatch(
        const std::vector<AcceleratorConfig> &configs,
        const LayerShape &layer) const;

    /**
     * One config's workload sum with the *layers* fanned out across
     * the pool; bit-identical to the serial roll-up (summed in layer
     * order on the calling thread).
     */
    EvalResult evaluateWorkload(
        const AcceleratorConfig &arch,
        const std::vector<LayerShape> &layers) const;

    /** The shared memo cache. */
    const CachingEvaluator &cache() const { return *cache_; }

    /** The pool work is scheduled on. */
    ThreadPool &pool() const { return *pool_; }

    /**
     * Observe @p token (borrowed; may be nullptr to detach) at every
     * chunk-claim checkpoint. Expiry throws DeadlineExceeded from
     * the batch call after in-flight chunks finish, taking the SAME
     * all-or-nothing exit as an injected fault: no partial merge, no
     * counter drift — so a request killed by its deadline leaves the
     * shared cache exactly as a never-started one. Set it before
     * sharing the evaluator with workers; one evaluator instance
     * serves one request at a time (instances are cheap views over
     * the shared cache + pool, so concurrent requests each build
     * their own).
     */
    void setCancelToken(const CancelToken *token) { cancel_ = token; }

  private:
    /** One layer of the pipeline over the items snapped[idx[j]],
     *  j in [0, m); writes results[idx[j]]. @p snapped and
     *  @p configKeys are the HOISTED per-config snap/key arrays
     *  (snapConfig() result and its snappedConfigKey()), computed
     *  once per batch call and reused for every layer — re-deriving
     *  them per layer was pure redundant work (the snap and the
     *  59-bit packing are layer-independent). */
    void scoreLayerSubset(const AcceleratorConfig *snapped,
                          const std::uint64_t *configKeys,
                          const std::uint32_t *idx, std::size_t m,
                          const LayerShape &layer,
                          EvalResult *results) const;

    const CachingEvaluator *cache_;
    ThreadPool *pool_;
    const CancelToken *cancel_ = nullptr;
};

} // namespace vaesa

#endif // VAESA_SCHED_PARALLEL_EVALUATOR_HH
