/**
 * @file
 * Batch evaluation APIs on top of the thread pool: score many
 * (config, workload) pairs — or the layers of one workload —
 * concurrently, with results bit-identical to the serial Evaluator
 * loops. This is the scaling layer every search driver funnels its
 * bulk cost-model queries through (the ROADMAP's batching axis);
 * determinism is preserved because work is only *scheduled* in
 * parallel while all result ordering and summation stays in input
 * order on the calling thread.
 */

#ifndef VAESA_SCHED_PARALLEL_EVALUATOR_HH
#define VAESA_SCHED_PARALLEL_EVALUATOR_HH

#include <vector>

#include "sched/caching_evaluator.hh"
#include "util/thread_pool.hh"

namespace vaesa {

/**
 * Roll a workload up layer-by-layer in parallel on a plain (cache-
 * free) Evaluator. Bit-identical to Evaluator::evaluateWorkload:
 * layer results are summed on the calling thread in layer order and
 * any unmappable layer zeroes the total. Unlike the serial loop,
 * layers after an invalid one are still evaluated (they were already
 * in flight), so the inner evaluationCount() can differ.
 */
EvalResult evaluateWorkloadParallel(
    const Evaluator &evaluator, const AcceleratorConfig &arch,
    const std::vector<LayerShape> &layers, ThreadPool &pool);

/**
 * Batch front-end over a shared CachingEvaluator and a ThreadPool.
 * Borrows both (they must outlive this). All methods are safe to
 * call from one thread while the pool's workers fan the batch out;
 * do not call them from inside a pool task (see
 * ThreadPool::parallelFor).
 */
class ParallelEvaluator
{
  public:
    ParallelEvaluator(const CachingEvaluator &cache, ThreadPool &pool);

    /**
     * Score configs[i] on the whole workload into result i. Each
     * config's layer sum runs serially inside one task (preserving
     * the serial early-exit), configs run concurrently. Results are
     * bit-identical to calling cache.evaluateWorkload per config.
     */
    std::vector<EvalResult> evaluateBatch(
        const std::vector<AcceleratorConfig> &configs,
        const std::vector<LayerShape> &workload) const;

    /** Score configs[i] on one layer into result i, concurrently. */
    std::vector<EvalResult> evaluateLayerBatch(
        const std::vector<AcceleratorConfig> &configs,
        const LayerShape &layer) const;

    /**
     * One config's workload sum with the *layers* fanned out across
     * the pool; bit-identical to the serial roll-up (summed in layer
     * order on the calling thread).
     */
    EvalResult evaluateWorkload(
        const AcceleratorConfig &arch,
        const std::vector<LayerShape> &layers) const;

    /** The shared memo cache. */
    const CachingEvaluator &cache() const { return *cache_; }

    /** The pool work is scheduled on. */
    ThreadPool &pool() const { return *pool_; }

  private:
    const CachingEvaluator *cache_;
    ThreadPool *pool_;
};

} // namespace vaesa

#endif // VAESA_SCHED_PARALLEL_EVALUATOR_HH
