/**
 * @file
 * Memoizing wrapper around the Evaluator. Searches over the discrete
 * design space repeatedly decode to the same snapped configuration
 * (BO exploitation, GA elites, dense latent grids), and the
 * scheduler + cost model evaluation is deterministic -- so caching
 * (config, layer) results is lossless and saves a large fraction of
 * evaluation work at scale.
 */

#ifndef VAESA_SCHED_CACHING_EVALUATOR_HH
#define VAESA_SCHED_CACHING_EVALUATOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sched/evaluator.hh"
#include "util/metrics.hh"
#include "util/sync.hh"

namespace vaesa {

/**
 * Evaluator with a per-(config, layer) memo table. The cache key
 * combines the six grid indices with the layer's index in an
 * internal registry, so any layer object with the same shape hits
 * the same entry.
 *
 * THREAD SAFETY: evaluateLayer()/evaluateWorkload() and the counter
 * accessors are safe to call concurrently on one instance. The memo
 * table is split into `numShards` shards, each guarded by its own
 * mutex and keyed by the mixed (config, layer) hash, so concurrent
 * lookups of different keys rarely contend; the layer registry is
 * append-only under a shared_mutex (read-mostly); hit/miss counters
 * are sharded relaxed atomics (util/metrics.hh). Shard locks are
 * only held for the table lookup/insert,
 * never across the inner evaluation — two threads missing the same
 * key concurrently both evaluate (the results are deterministic and
 * identical) and the second insert is dropped, so misses() counts
 * inner evaluations performed, which can exceed the number of
 * distinct keys under contention. clear() is the one exception: it
 * must not run concurrently with evaluations (it resets the layer
 * registry that in-flight lookups have already consulted).
 */
class CachingEvaluator
{
  public:
    /** Number of independently locked memo-table shards. */
    static constexpr std::size_t numShards = 16;

    /** Wrap a default-constructed Evaluator. */
    CachingEvaluator() = default;

    /** Wrap an evaluator with explicit cost-model parameters. */
    explicit CachingEvaluator(const Evaluator &inner);

    /** Memoized variant of Evaluator::evaluateLayer. */
    EvalResult evaluateLayer(const AcceleratorConfig &arch,
                             const LayerShape &layer) const;

    /** Memoized per-layer sum, like Evaluator::evaluateWorkload. */
    EvalResult evaluateWorkload(const AcceleratorConfig &arch,
                                const std::vector<LayerShape>
                                    &layers) const;

    /** Number of cache hits so far. */
    std::uint64_t hits() const { return hits_.value(); }

    /** Number of cache misses (real inner evaluations) so far. */
    std::uint64_t misses() const { return misses_.value(); }

    /** Entries dropped by clear() over this instance's lifetime. */
    std::uint64_t evictions() const { return evictions_.value(); }

    /**
     * Shard-lock acquisitions that found the lock already held
     * (summed over shards). A rising ratio of contention() to
     * hits()+misses() means the shard count no longer matches the
     * thread count.
     */
    std::uint64_t contention() const;

    /**
     * Drop all cached entries, the layer registry, and both
     * counters. NOT safe concurrently with evaluateLayer(); quiesce
     * the pool first.
     */
    void clear() VAESA_EXCLUDES(registryMutex_);

    /** The wrapped evaluator. */
    const Evaluator &inner() const { return inner_; }

  private:
    /** Collision-free (config grid indices, layer id) pair. */
    struct Key
    {
        std::uint64_t config;
        std::uint32_t layer;

        bool operator==(const Key &other) const
        {
            return config == other.config && layer == other.layer;
        }
    };

    /** splitmix64-style mix over both fields; also picks the shard. */
    struct KeyHash
    {
        std::size_t operator()(const Key &key) const;
    };

    /** One independently locked slice of the memo table. */
    struct Shard
    {
        mutable Mutex shardMutex;
        std::unordered_map<Key, EvalResult, KeyHash> entries
            VAESA_GUARDED_BY(shardMutex);
        /** Lock acquisitions that had to wait (try_lock failed). */
        mutable metrics::Counter contention;
    };

    /** Lock shard.shardMutex, counting contended acquisitions. */
    static void lockShard(const Shard &shard)
        VAESA_ACQUIRE(shard.shardMutex);

    std::uint64_t configKey(const AcceleratorConfig &arch) const;
    std::uint32_t layerId(const LayerShape &layer) const
        VAESA_EXCLUDES(registryMutex_);

    Evaluator inner_;
    /** Append-only shape registry; shared lock to scan, unique to
     *  append. Registered ids are stable until clear(). */
    mutable SharedMutex registryMutex_;
    mutable std::vector<LayerShape> layerRegistry_
        VAESA_GUARDED_BY(registryMutex_);
    mutable Shard shards_[numShards];
    // Sharded metrics counters (util/metrics.hh) instead of ad-hoc
    // atomics: same relaxed-increment semantics, but writers on
    // different cores stop bouncing one cache line, and the values
    // are mirrored into the process-wide registry ("cache.*") for
    // the run manifest.
    mutable metrics::Counter hits_;
    mutable metrics::Counter misses_;
    mutable metrics::Counter evictions_;
};

} // namespace vaesa

#endif // VAESA_SCHED_CACHING_EVALUATOR_HH
