/**
 * @file
 * Memoizing wrapper around the Evaluator. Searches over the discrete
 * design space repeatedly decode to the same snapped configuration
 * (BO exploitation, GA elites, dense latent grids), and the
 * scheduler + cost model evaluation is deterministic -- so caching
 * (config, layer) results is lossless and saves a large fraction of
 * evaluation work at scale.
 */

#ifndef VAESA_SCHED_CACHING_EVALUATOR_HH
#define VAESA_SCHED_CACHING_EVALUATOR_HH

#include <cstdint>
#include <unordered_map>

#include "sched/evaluator.hh"

namespace vaesa {

/**
 * Evaluator with a per-(config, layer) memo table. The cache key
 * combines the six grid indices with the layer's index in an
 * internal registry, so any layer object with the same shape hits
 * the same entry.
 *
 * THREAD SAFETY: none. evaluateLayer() is `const` but mutates the
 * memo table, the layer registry, and the hit/miss counters through
 * `mutable` members, so concurrent calls on one instance are data
 * races on std::unordered_map and will corrupt the cache. The
 * planned parallel evaluator must either shard per-thread instances
 * or add a lock here first — build the `tsan` preset (see
 * docs/STATIC_ANALYSIS.md) before attempting it. clear() resets the
 * table, the registry, AND both counters, so hit-rate measurements
 * can be restarted without reconstructing the evaluator.
 */
class CachingEvaluator
{
  public:
    /** Wrap a default-constructed Evaluator. */
    CachingEvaluator() = default;

    /** Wrap an evaluator with explicit cost-model parameters. */
    explicit CachingEvaluator(const Evaluator &inner);

    /** Memoized variant of Evaluator::evaluateLayer. */
    EvalResult evaluateLayer(const AcceleratorConfig &arch,
                             const LayerShape &layer) const;

    /** Memoized per-layer sum, like Evaluator::evaluateWorkload. */
    EvalResult evaluateWorkload(const AcceleratorConfig &arch,
                                const std::vector<LayerShape>
                                    &layers) const;

    /** Number of cache hits so far. */
    std::uint64_t hits() const { return hits_; }

    /** Number of cache misses (real evaluations) so far. */
    std::uint64_t misses() const { return misses_; }

    /** Drop all cached entries and counters. */
    void clear();

    /** The wrapped evaluator. */
    const Evaluator &inner() const { return inner_; }

  private:
    std::uint64_t configKey(const AcceleratorConfig &arch) const;
    std::uint32_t layerId(const LayerShape &layer) const;

    Evaluator inner_;
    mutable std::vector<LayerShape> layerRegistry_;
    /** One collision-free memo table per registered layer, keyed by
     *  the perfect 59-bit packing of the six grid indices. */
    mutable std::vector<std::unordered_map<std::uint64_t, EvalResult>>
        perLayer_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

} // namespace vaesa

#endif // VAESA_SCHED_CACHING_EVALUATOR_HH
