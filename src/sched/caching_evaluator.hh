/**
 * @file
 * Memoizing wrapper around the Evaluator. Searches over the discrete
 * design space repeatedly decode to the same snapped configuration
 * (BO exploitation, GA elites, dense latent grids), and the
 * scheduler + cost model evaluation is deterministic -- so caching
 * (config, layer) results is lossless and saves a large fraction of
 * evaluation work at scale.
 */

#ifndef VAESA_SCHED_CACHING_EVALUATOR_HH
#define VAESA_SCHED_CACHING_EVALUATOR_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sched/evaluator.hh"
#include "util/metrics.hh"
#include "util/sync.hh"

namespace vaesa {

/**
 * Evaluator with a per-(config, layer) memo table. The cache key
 * combines the six grid indices with the layer's index in an
 * internal registry, so any layer object with the same shape hits
 * the same entry.
 *
 * THREAD SAFETY: evaluateLayer()/evaluateWorkload() and the counter
 * accessors are safe to call concurrently on one instance. The memo
 * table is split into shardCount() shards, each guarded by its own
 * mutex and keyed by the mixed (config, layer) hash, so concurrent
 * lookups of different keys rarely contend; the layer registry is
 * append-only under a shared_mutex (read-mostly); hit/miss counters
 * are sharded relaxed atomics (util/metrics.hh). Shard locks are
 * only held for the table lookup/insert,
 * never across the inner evaluation — two threads missing the same
 * key concurrently both evaluate (the results are deterministic and
 * identical) and the second insert is dropped, so misses() counts
 * inner evaluations performed, which can exceed the number of
 * distinct keys under contention. clear() is the one exception: it
 * must not run concurrently with evaluations (it resets the layer
 * registry that in-flight lookups have already consulted).
 *
 * SHARD SIZING: the shard count is fixed per epoch (construction to
 * clear()) and chosen by contentionAwareShardCount() — a multiple of
 * the pool width, escalated when the process-wide
 * `cache.shard_contention` metric shows past epochs queueing on
 * shard locks. clear() re-applies the policy from this instance's
 * own contention ratio, which is the one point where resizing is
 * safe (clear() already requires quiescence).
 *
 * BATCH PROTOCOL: the probeBatch()/insertBatch()/accountBatch()
 * primitives let a caller holding MANY keys amortize locking — each
 * shard is locked once per batch instead of once per key, and the
 * caller merges results computed outside any lock (the thread-local
 * views of sched/parallel_evaluator.cc). Counter semantics are
 * preserved exactly: accountBatch(lookups, misses) produces the same
 * hit/miss totals the per-key path would have.
 */
class CachingEvaluator
{
  public:
    /** Fewest shards contentionAwareShardCount() will pick. */
    static constexpr std::size_t minShardCount = 16;

    /** Most shards contentionAwareShardCount() will pick. */
    static constexpr std::size_t maxShardCount = 512;

    /** Collision-free (config grid indices, layer id) pair. */
    struct BatchKey
    {
        std::uint64_t config;
        std::uint32_t layer;

        bool operator==(const BatchKey &other) const
        {
            return config == other.config && layer == other.layer;
        }
    };

    /** splitmix64-style mix over both fields; also picks the shard. */
    struct BatchKeyHash
    {
        std::size_t operator()(const BatchKey &key) const;
    };

    /** Wrap a default-constructed Evaluator. */
    CachingEvaluator();

    /** Wrap an evaluator with explicit cost-model parameters. */
    explicit CachingEvaluator(const Evaluator &inner);

    /** Wrap @p inner with an explicit shard count (tests/benches);
     *  clamped to [minShardCount, maxShardCount]. */
    CachingEvaluator(const Evaluator &inner, std::size_t shardCount);

    /**
     * The contention-aware shard-count policy: a multiple of
     * ThreadPool::defaultThreadCount(), escalated while the
     * process-wide `cache.shard_contention` / (`cache.hit` +
     * `cache.miss`) ratio from prior epochs stays high, clamped to
     * [minShardCount, maxShardCount] and rounded up to a power of
     * two (the shard selector is a mask-friendly modulo).
     */
    static std::size_t contentionAwareShardCount();

    /** Memoized variant of Evaluator::evaluateLayer. */
    EvalResult evaluateLayer(const AcceleratorConfig &arch,
                             const LayerShape &layer) const;

    /** Memoized per-layer sum, like Evaluator::evaluateWorkload. */
    EvalResult evaluateWorkload(const AcceleratorConfig &arch,
                                const std::vector<LayerShape>
                                    &layers) const;

    /** @name Batch protocol (see class comment)
     *
     * The canonical sequence, per (layer, key-set) batch:
     *   1. snapConfig() each config, layerKey() the layer, build
     *      BatchKeys with batchKey();
     *   2. probeBatch() — one locked pass filling cached results;
     *   3. evaluate the missing keys OUTSIDE any lock (thread-local
     *      result views, e.g. via Evaluator::evaluateLayerBatch);
     *   4. insertBatch() the freshly computed entries;
     *   5. accountBatch(lookups, misses) once per batch.
     */
    /** @{ */

    /** Snap every hardware parameter to its design-space grid point
     *  (the cache key is the grid index). */
    AcceleratorConfig snapConfig(const AcceleratorConfig &arch) const;

    /** Registry id of @p layer (registering it if new). Stable until
     *  clear(). */
    std::uint32_t layerKey(const LayerShape &layer) const
        VAESA_EXCLUDES(registryMutex_);

    /** Key for a SNAPPED config and a layerKey() id. */
    BatchKey batchKey(const AcceleratorConfig &snapped,
                      std::uint32_t layerId) const;

    /** Config half of batchKey() for a SNAPPED config — hoist this
     *  once per config when keying it against many layers (the key
     *  is layer-independent; batchKey() just pairs it with the
     *  layer id). */
    std::uint64_t snappedConfigKey(
        const AcceleratorConfig &snapped) const
    {
        return configKey(snapped);
    }

    /**
     * Locked-once-per-shard lookup of keys [0, n): found[i] is
     * nonzero iff keys[i] was cached, in which case results[i] holds
     * the cached value. Does NOT touch the hit/miss counters — call
     * accountBatch() once the batch completes.
     */
    void probeBatch(const BatchKey *keys, std::size_t n,
                    EvalResult *results,
                    unsigned char *found) const;

    /**
     * Locked-once-per-shard insert of n freshly computed entries;
     * entries whose key raced in via another thread are dropped
     * (results are deterministic, so both copies are identical).
     * Does NOT touch the counters.
     */
    void insertBatch(const BatchKey *keys, const EvalResult *results,
                     std::size_t n) const;

    /**
     * Fold one batch into the hit/miss counters: @p lookups keys
     * were probed, @p misses of them were evaluated by the caller.
     * Identical totals to the per-key path (hits = lookups - misses,
     * and misses still count inner evaluations performed).
     */
    void accountBatch(std::uint64_t lookups,
                      std::uint64_t misses) const;

    /** @} */

    /** Number of cache hits so far. */
    std::uint64_t hits() const { return hits_.value(); }

    /** Number of cache misses (real inner evaluations) so far. */
    std::uint64_t misses() const { return misses_.value(); }

    /** Entries dropped by clear() over this instance's lifetime. */
    std::uint64_t evictions() const { return evictions_.value(); }

    /**
     * Shard-lock acquisitions that found the lock already held
     * (summed over shards). A rising ratio of contention() to
     * hits()+misses() means the shard count no longer matches the
     * thread count.
     */
    std::uint64_t contention() const;

    /** Number of independently locked memo-table shards this epoch. */
    std::size_t shardCount() const { return shardCount_; }

    /**
     * Drop all cached entries, the layer registry, and both
     * counters, then re-apply the contention-aware shard policy to
     * this instance's own observed ratio (the only safe resize
     * point). NOT safe concurrently with evaluateLayer(); quiesce
     * the pool first.
     */
    void clear() VAESA_EXCLUDES(registryMutex_);

    /** The wrapped evaluator. */
    const Evaluator &inner() const { return inner_; }

  private:
    /** One independently locked slice of the memo table. */
    struct Shard
    {
        mutable Mutex shardMutex;
        std::unordered_map<BatchKey, EvalResult, BatchKeyHash> entries
            VAESA_GUARDED_BY(shardMutex);
        /** Lock acquisitions that had to wait (try_lock failed). */
        mutable metrics::Counter contention;
    };

    /** Lock shard.shardMutex, counting contended acquisitions. */
    static void lockShard(const Shard &shard)
        VAESA_ACQUIRE(shard.shardMutex);

    std::uint64_t configKey(const AcceleratorConfig &arch) const;

    Evaluator inner_;
    /** Append-only shape registry; shared lock to scan, unique to
     *  append. Registered ids are stable until clear(). */
    mutable SharedMutex registryMutex_;
    mutable std::vector<LayerShape> layerRegistry_
        VAESA_GUARDED_BY(registryMutex_);
    /** Shard array; the count is fixed between clear() epochs (Shard
     *  holds a Mutex, so the array is heap-built in place and only
     *  ever swapped at the quiescent clear() point). */
    mutable std::unique_ptr<Shard[]> shards_;
    std::size_t shardCount_;
    // Sharded metrics counters (util/metrics.hh) instead of ad-hoc
    // atomics: same relaxed-increment semantics, but writers on
    // different cores stop bouncing one cache line, and the values
    // are mirrored into the process-wide registry ("cache.*") for
    // the run manifest.
    mutable metrics::Counter hits_;
    mutable metrics::Counter misses_;
    mutable metrics::Counter evictions_;
};

} // namespace vaesa

#endif // VAESA_SCHED_CACHING_EVALUATOR_HH
