#include "sched/parallel_evaluator.hh"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "util/fault.hh"

namespace vaesa {

namespace {

/** Serial-order roll-up shared by every workload-sum path: summing
 *  happens here, on one thread, in layer order, so parallel layer
 *  scoring cannot perturb floating-point association. */
EvalResult
rollUp(const std::vector<EvalResult> &perLayer)
{
    EvalResult total;
    total.valid = true;
    for (const EvalResult &r : perLayer) {
        if (!r.valid) {
            total.valid = false;
            total.latencyCycles = 0.0;
            total.energyPj = 0.0;
            total.edp = 0.0;
            return total;
        }
        total.latencyCycles += r.latencyCycles;
        total.energyPj += r.energyPj;
    }
    total.edp = total.latencyCycles * total.energyPj;
    return total;
}

/** splitmix64 finalizer (value-hash for config dedup). */
std::uint64_t
mixConfigWord(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Value hash over the six hardware parameters, for deduplicating
 *  EXACT config duplicates (no snapping: two off-grid configs that
 *  would snap together may still evaluate differently on a plain
 *  Evaluator, so only bytewise-equal configs may share a result). */
struct ConfigHash
{
    std::size_t operator()(const AcceleratorConfig &config) const
    {
        std::uint64_t h = 0;
        for (int p = 0; p < numHwParams; ++p) {
            h = mixConfigWord(
                h ^ static_cast<std::uint64_t>(
                        config.value(static_cast<HwParam>(p))));
        }
        return static_cast<std::size_t>(h);
    }
};

/**
 * Evaluate configs [0, n) against one layer across the pool in
 * work-stealing chunks: workers claim [cursor, cursor+chunk) slices
 * off a shared atomic, each slice running through the SoA batch cost
 * model into its own disjoint span of `results` (the thread-local
 * view; no lock, no sharing). The "batch_chunk" fault site AND the
 * optional cancellation token fire at the claim point, BEFORE the
 * chunk computes, so an injected kill or an expired deadline
 * surfaces as an exception from parallelFor after in-flight chunks
 * finish — callers must not merge or account anything when this
 * throws (the all-or-nothing batch contract).
 */
void
stealingLayerBatch(const Evaluator &evaluator,
                   const AcceleratorConfig *configs, std::size_t n,
                   const LayerShape &layer, EvalResult *results,
                   ThreadPool &pool, const CancelToken *cancel)
{
    if (n == 0)
        return;
    const std::size_t workers =
        std::max<std::size_t>(1, pool.threadCount());
    const std::size_t chunk = chunkSizeFor(n, workers);
    if (n <= chunk) {
        // Too small to be worth a fan-out; the calling thread scores
        // it directly (still one checkpoint per batch).
        faultCheck("batch_chunk");
        if (cancel)
            cancel->check("batch_chunk");
        evaluator.evaluateLayerBatch(configs, n, layer, results);
        return;
    }
    std::atomic<std::size_t> cursor{0};
    pool.parallelFor(workers, [&](std::size_t) {
        for (;;) {
            const std::size_t begin = cursor.fetch_add(chunk);
            if (begin >= n)
                break;
            faultCheck("batch_chunk");
            if (cancel)
                cancel->check("batch_chunk");
            const std::size_t end = std::min(n, begin + chunk);
            evaluator.evaluateLayerBatch(configs + begin, end - begin,
                                         layer, results + begin);
        }
    });
}

/**
 * Shared body of the two free evaluateConfigBatch overloads. When
 * @p counts is empty every layer weighs exactly 1.0, reproducing the
 * un-counted overload bit for bit; otherwise layer li's
 * latency/energy enter each surviving config's totals scaled by
 * counts[li] (occurrence-weighted whole-network sums).
 */
std::vector<EvalResult>
configBatchImpl(const Evaluator &evaluator,
                const std::vector<AcceleratorConfig> &configs,
                const std::vector<LayerShape> &layers,
                const std::vector<std::int64_t> &counts,
                ThreadPool &pool)
{
    const std::size_t n = configs.size();
    std::vector<EvalResult> totals(n);
    for (EvalResult &t : totals)
        t.valid = true;

    // Alive mask: configs drop out at their first invalid layer, so
    // each config's roll-up sees exactly the serial loop's layer
    // prefix (same sums, same early-exit semantics).
    std::vector<std::uint32_t> alive(n);
    std::iota(alive.begin(), alive.end(), 0);

    std::vector<AcceleratorConfig> uniques;
    std::vector<std::uint32_t> slotOf;
    std::vector<EvalResult> uniqueResults;
    for (std::size_t li = 0; li < layers.size(); ++li) {
        if (alive.empty())
            break;
        const LayerShape &layer = layers[li];
        const double weight =
            counts.empty() ? 1.0 : static_cast<double>(counts[li]);

        // Within-batch dedup on exact config value: evaluation is
        // deterministic, so duplicates share one scored result.
        uniques.clear();
        slotOf.assign(alive.size(), 0);
        std::unordered_map<AcceleratorConfig, std::uint32_t,
                           ConfigHash>
            uniqueOf;
        uniqueOf.reserve(alive.size());
        for (std::size_t j = 0; j < alive.size(); ++j) {
            const auto [it, inserted] = uniqueOf.emplace(
                configs[alive[j]],
                static_cast<std::uint32_t>(uniques.size()));
            if (inserted)
                uniques.push_back(configs[alive[j]]);
            slotOf[j] = it->second;
        }

        uniqueResults.assign(uniques.size(), EvalResult{});
        stealingLayerBatch(evaluator, uniques.data(), uniques.size(),
                           layer, uniqueResults.data(), pool,
                           nullptr);

        // Accumulate in input order on this thread.
        std::vector<std::uint32_t> next;
        next.reserve(alive.size());
        for (std::size_t j = 0; j < alive.size(); ++j) {
            const EvalResult &r = uniqueResults[slotOf[j]];
            EvalResult &t = totals[alive[j]];
            if (!r.valid) {
                t = EvalResult{};
                continue;
            }
            t.latencyCycles += weight * r.latencyCycles;
            t.energyPj += weight * r.energyPj;
            next.push_back(alive[j]);
        }
        alive.swap(next);
    }

    for (EvalResult &t : totals) {
        if (t.valid)
            t.edp = t.latencyCycles * t.energyPj;
    }
    return totals;
}

} // namespace

std::size_t
chunkSizeFor(std::size_t items, std::size_t threads)
{
    // The floor of 8 must never hand out a chunk larger than the
    // batch itself (a 3-item batch gets one 3-item chunk, not an
    // 8-item one), and a 0-item batch yields chunk 1 so callers
    // dividing by the chunk size never see zero.
    const std::size_t floorChunk =
        std::min<std::size_t>(8, std::max<std::size_t>(items, 1));
    const std::size_t target =
        items / (std::max<std::size_t>(1, threads) * 8);
    return std::clamp<std::size_t>(target, floorChunk, 256);
}

EvalResult
evaluateWorkloadParallel(const Evaluator &evaluator,
                         const AcceleratorConfig &arch,
                         const std::vector<LayerShape> &layers,
                         ThreadPool &pool)
{
    std::vector<EvalResult> perLayer(layers.size());
    pool.parallelFor(layers.size(), [&](std::size_t i) {
        perLayer[i] = evaluator.evaluateLayer(arch, layers[i]);
    });
    return rollUp(perLayer);
}

std::vector<EvalResult>
evaluateConfigBatch(const Evaluator &evaluator,
                    const std::vector<AcceleratorConfig> &configs,
                    const std::vector<LayerShape> &layers,
                    ThreadPool &pool)
{
    return configBatchImpl(evaluator, configs, layers, {}, pool);
}

std::vector<EvalResult>
evaluateConfigBatch(const Evaluator &evaluator,
                    const std::vector<AcceleratorConfig> &configs,
                    const Workload &workload, ThreadPool &pool)
{
    return configBatchImpl(evaluator, configs, workload.layers,
                           workload.counts, pool);
}

ParallelEvaluator::ParallelEvaluator(const CachingEvaluator &cache,
                                     ThreadPool &pool)
    : cache_(&cache), pool_(&pool)
{
}

void
ParallelEvaluator::scoreLayerSubset(const AcceleratorConfig *snapped,
                                    const std::uint64_t *configKeys,
                                    const std::uint32_t *idx,
                                    std::size_t m,
                                    const LayerShape &layer,
                                    EvalResult *results) const
{
    if (m == 0)
        return;
    const CachingEvaluator &cache = *cache_;
    const std::uint32_t layerId = cache.layerKey(layer);

    // Pair the hoisted per-config key halves with this layer's id;
    // the snap/pack work itself happened once, at batch entry.
    std::vector<CachingEvaluator::BatchKey> keys(m);
    for (std::size_t j = 0; j < m; ++j)
        keys[j] = CachingEvaluator::BatchKey{configKeys[idx[j]],
                                             layerId};

    // Probe: each shard locked once for the whole batch.
    std::vector<EvalResult> local(m);
    std::vector<unsigned char> found(m, 0);
    cache.probeBatch(keys.data(), m, local.data(), found.data());

    // Dedup the misses (duplicate keys share one evaluation; the
    // serial path would have hit the cache for the repeats, so the
    // hit/miss accounting below still matches it exactly).
    std::unordered_map<CachingEvaluator::BatchKey, std::uint32_t,
                       CachingEvaluator::BatchKeyHash>
        uniqueOf;
    std::vector<std::uint32_t> uniqueRep;
    std::vector<std::uint32_t> missSlot(m, 0);
    for (std::size_t j = 0; j < m; ++j) {
        if (found[j])
            continue;
        const auto [it, inserted] = uniqueOf.emplace(
            keys[j], static_cast<std::uint32_t>(uniqueRep.size()));
        if (inserted)
            uniqueRep.push_back(static_cast<std::uint32_t>(j));
        missSlot[j] = it->second;
    }

    const std::size_t u = uniqueRep.size();
    if (u > 0) {
        std::vector<AcceleratorConfig> uniqueConfigs(u);
        std::vector<CachingEvaluator::BatchKey> uniqueKeys(u);
        for (std::size_t k = 0; k < u; ++k) {
            uniqueConfigs[k] = snapped[idx[uniqueRep[k]]];
            uniqueKeys[k] = keys[uniqueRep[k]];
        }
        // Evaluate outside any lock; throws (an injected batch_chunk
        // fault or an expired cancellation token) propagate from
        // here and skip the merge and accounting below —
        // all-or-nothing.
        std::vector<EvalResult> uniqueResults(u);
        stealingLayerBatch(cache.inner(), uniqueConfigs.data(), u,
                           layer, uniqueResults.data(), *pool_,
                           cancel_);

        // Merge the thread-local views once, at batch end.
        cache.insertBatch(uniqueKeys.data(), uniqueResults.data(), u);
        for (std::size_t j = 0; j < m; ++j) {
            if (!found[j])
                local[j] = uniqueResults[missSlot[j]];
        }
    }
    cache.accountBatch(m, u);

    for (std::size_t j = 0; j < m; ++j)
        results[idx[j]] = local[j];
}

std::vector<EvalResult>
ParallelEvaluator::evaluateBatch(
    const std::vector<AcceleratorConfig> &configs,
    const std::vector<LayerShape> &workload) const
{
    return evaluateConfigBatch(configs, workload, nullptr, nullptr);
}

std::vector<EvalResult>
ParallelEvaluator::evaluateConfigBatch(
    const std::vector<AcceleratorConfig> &configs,
    const std::vector<LayerShape> &workload,
    const CancelToken *const *itemTokens,
    BatchItemStatus *statuses) const
{
    const std::size_t n = configs.size();
    std::vector<EvalResult> totals(n);
    for (EvalResult &t : totals)
        t.valid = true;
    if (statuses != nullptr)
        std::fill_n(statuses, n, BatchItemStatus::Ok);

    // Alive mask: a config invalid at layer L stops looking up
    // layers past L, exactly like the serial per-config early exit —
    // this is what keeps cache hit/miss totals identical to the
    // serial path, not just the sums.
    std::vector<std::uint32_t> alive(n);
    std::iota(alive.begin(), alive.end(), 0);

    // Per-item deadlines drop expired items at each layer boundary
    // (including before the first): only the item leaves the batch —
    // its mates keep scoring, and the layers already merged stay in
    // the cache, exactly as a solo request cancelled between layers
    // would leave them.
    const auto dropExpired = [&] {
        if (itemTokens == nullptr)
            return;
        std::vector<std::uint32_t> keep;
        keep.reserve(alive.size());
        for (const std::uint32_t i : alive) {
            const CancelToken *token = itemTokens[i];
            if (token != nullptr && token->expired()) {
                totals[i] = EvalResult{};
                if (statuses != nullptr)
                    statuses[i] = BatchItemStatus::DeadlineExpired;
            } else {
                keep.push_back(i);
            }
        }
        alive.swap(keep);
    };

    // Hoist the layer-independent per-config work: snap each config
    // to its grid point and pack its 59-bit key half ONCE, instead
    // of re-deriving both inside every one of the L layer passes.
    std::vector<AcceleratorConfig> snapped(n);
    std::vector<std::uint64_t> cfgKeys(n);
    for (std::size_t i = 0; i < n; ++i) {
        snapped[i] = cache_->snapConfig(configs[i]);
        cfgKeys[i] = cache_->snappedConfigKey(snapped[i]);
    }

    std::vector<EvalResult> layerResults(n);
    for (const LayerShape &layer : workload) {
        dropExpired();
        if (alive.empty())
            break;
        scoreLayerSubset(snapped.data(), cfgKeys.data(),
                         alive.data(), alive.size(), layer,
                         layerResults.data());

        std::vector<std::uint32_t> next;
        next.reserve(alive.size());
        for (const std::uint32_t i : alive) {
            const EvalResult &r = layerResults[i];
            EvalResult &t = totals[i];
            if (!r.valid) {
                t = EvalResult{};
                continue;
            }
            t.latencyCycles += r.latencyCycles;
            t.energyPj += r.energyPj;
            next.push_back(i);
        }
        alive.swap(next);
    }

    for (EvalResult &t : totals) {
        if (t.valid)
            t.edp = t.latencyCycles * t.energyPj;
    }
    return totals;
}

std::vector<EvalResult>
ParallelEvaluator::evaluateLayerBatch(
    const std::vector<AcceleratorConfig> &configs,
    const LayerShape &layer) const
{
    const std::size_t n = configs.size();
    std::vector<EvalResult> results(n);
    if (configs.empty())
        return results;
    std::vector<AcceleratorConfig> snapped(n);
    std::vector<std::uint64_t> cfgKeys(n);
    for (std::size_t i = 0; i < n; ++i) {
        snapped[i] = cache_->snapConfig(configs[i]);
        cfgKeys[i] = cache_->snappedConfigKey(snapped[i]);
    }
    std::vector<std::uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    scoreLayerSubset(snapped.data(), cfgKeys.data(), idx.data(),
                     idx.size(), layer, results.data());
    return results;
}

EvalResult
ParallelEvaluator::evaluateWorkload(
    const AcceleratorConfig &arch,
    const std::vector<LayerShape> &layers) const
{
    std::vector<EvalResult> perLayer(layers.size());
    pool_->parallelFor(layers.size(), [&](std::size_t i) {
        perLayer[i] = cache_->evaluateLayer(arch, layers[i]);
    });
    return rollUp(perLayer);
}

} // namespace vaesa
