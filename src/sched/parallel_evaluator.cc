#include "sched/parallel_evaluator.hh"

namespace vaesa {

namespace {

/** Serial-order roll-up shared by every workload-sum path: summing
 *  happens here, on one thread, in layer order, so parallel layer
 *  scoring cannot perturb floating-point association. */
EvalResult
rollUp(const std::vector<EvalResult> &perLayer)
{
    EvalResult total;
    total.valid = true;
    for (const EvalResult &r : perLayer) {
        if (!r.valid) {
            total.valid = false;
            total.latencyCycles = 0.0;
            total.energyPj = 0.0;
            total.edp = 0.0;
            return total;
        }
        total.latencyCycles += r.latencyCycles;
        total.energyPj += r.energyPj;
    }
    total.edp = total.latencyCycles * total.energyPj;
    return total;
}

} // namespace

EvalResult
evaluateWorkloadParallel(const Evaluator &evaluator,
                         const AcceleratorConfig &arch,
                         const std::vector<LayerShape> &layers,
                         ThreadPool &pool)
{
    std::vector<EvalResult> perLayer(layers.size());
    pool.parallelFor(layers.size(), [&](std::size_t i) {
        perLayer[i] = evaluator.evaluateLayer(arch, layers[i]);
    });
    return rollUp(perLayer);
}

ParallelEvaluator::ParallelEvaluator(const CachingEvaluator &cache,
                                     ThreadPool &pool)
    : cache_(&cache), pool_(&pool)
{
}

std::vector<EvalResult>
ParallelEvaluator::evaluateBatch(
    const std::vector<AcceleratorConfig> &configs,
    const std::vector<LayerShape> &workload) const
{
    std::vector<EvalResult> results(configs.size());
    pool_->parallelFor(configs.size(), [&](std::size_t i) {
        results[i] = cache_->evaluateWorkload(configs[i], workload);
    });
    return results;
}

std::vector<EvalResult>
ParallelEvaluator::evaluateLayerBatch(
    const std::vector<AcceleratorConfig> &configs,
    const LayerShape &layer) const
{
    std::vector<EvalResult> results(configs.size());
    pool_->parallelFor(configs.size(), [&](std::size_t i) {
        results[i] = cache_->evaluateLayer(configs[i], layer);
    });
    return results;
}

EvalResult
ParallelEvaluator::evaluateWorkload(
    const AcceleratorConfig &arch,
    const std::vector<LayerShape> &layers) const
{
    std::vector<EvalResult> perLayer(layers.size());
    pool_->parallelFor(layers.size(), [&](std::size_t i) {
        perLayer[i] = cache_->evaluateLayer(arch, layers[i]);
    });
    return rollUp(perLayer);
}

} // namespace vaesa
