#include "sched/random_mapper.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace vaesa {

namespace {

/** Log-uniform integer in [1, hi]. */
std::int64_t
logUniform(Rng &rng, std::int64_t hi)
{
    if (hi <= 1)
        return 1;
    const double exponent =
        rng.uniform(0.0, std::log2(static_cast<double>(hi)));
    return std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::llround(std::exp2(exponent))),
        1, hi);
}

} // namespace

RandomMapper::RandomMapper(const CostModel &model,
                           const Options &options)
    : model_(model), options_(options)
{
}

std::optional<Mapping>
RandomMapper::sampleMapping(const AcceleratorConfig &arch,
                            const LayerShape &layer, Rng &rng) const
{
    if (!designSpace().isValid(arch) || !layer.isSane())
        return std::nullopt;
    const auto dims = layerDims(layer);

    Mapping m;
    m.spatialK = logUniform(
        rng, std::min<std::int64_t>(arch.numPes, dims[DimK]));
    m.spatialC = logUniform(
        rng, std::min<std::int64_t>(arch.lanesPerPe(), dims[DimC]));

    const std::int64_t max_k_tile = ceilDiv(dims[DimK], m.spatialK);
    for (int d = 0; d < numDims; ++d) {
        const std::int64_t cap =
            (d == DimK) ? max_k_tile : dims[d];
        m.tilePe[d] = logUniform(rng, cap);
    }
    m.tilePe[DimC] = std::max(m.tilePe[DimC], m.spatialC);

    // Shrink-to-fit the per-PE tile: halve the largest growable
    // dimension until all three PE buffers accept it.
    auto pe_fits = [&]() {
        std::string reason;
        Mapping probe = m;
        for (int d = 0; d < numDims; ++d)
            probe.tileGb[d] =
                std::min(dims[d], probe.arrayTilePe(d));
        return model_.checkMapping(arch, layer, probe, &reason) ||
               reason.find("global") != std::string::npos;
    };
    for (int guard = 0; guard < 256 && !pe_fits(); ++guard) {
        int largest = -1;
        std::int64_t size = 1;
        for (int d = 0; d < numDims; ++d) {
            const std::int64_t floor_d =
                (d == DimC) ? m.spatialC : 1;
            if (m.tilePe[d] > floor_d && m.tilePe[d] >= size) {
                size = m.tilePe[d];
                largest = d;
            }
        }
        if (largest < 0) {
            if (m.spatialC > 1) {
                m.spatialC = std::max<std::int64_t>(
                    1, m.spatialC / 2);
                m.tilePe[DimC] =
                    std::max(m.tilePe[DimC] / 2, m.spatialC);
                continue;
            }
            return std::nullopt;
        }
        const std::int64_t floor_d =
            (largest == DimC) ? m.spatialC : 1;
        m.tilePe[largest] =
            std::max(floor_d, m.tilePe[largest] / 2);
    }

    // Global-buffer tile: start at the array tile, take random
    // doubling steps while they fit.
    for (int d = 0; d < numDims; ++d)
        m.tileGb[d] = std::min(dims[d], m.arrayTilePe(d));
    auto gb_fits = [&]() {
        std::string reason;
        return model_.checkMapping(arch, layer, m, &reason);
    };
    if (!gb_fits()) {
        // Shrink the K split as the scheduler does.
        while (!gb_fits() &&
               (m.spatialK > 1 || m.tilePe[DimK] > 1)) {
            if (m.tilePe[DimK] > 1)
                m.tilePe[DimK] = std::max<std::int64_t>(
                    1, m.tilePe[DimK] / 2);
            else
                m.spatialK = std::max<std::int64_t>(
                    1, m.spatialK / 2);
            m.tileGb[DimK] =
                std::min(dims[DimK], m.arrayTilePe(DimK));
        }
        for (int d : {DimC, DimQ, DimP, DimS, DimR}) {
            while (!gb_fits() && m.tilePe[d] > 1) {
                m.tilePe[d] = std::max<std::int64_t>(
                    1, m.tilePe[d] / 2);
                if (d == DimC)
                    m.spatialC =
                        std::min(m.spatialC, m.tilePe[DimC]);
                m.tileGb[d] = std::min(dims[d], m.tilePe[d]);
            }
        }
        if (!gb_fits())
            return std::nullopt;
    }
    for (int step = 0; step < 16; ++step) {
        const int d =
            std::array{DimP, DimQ, DimC, DimK}[rng.index(4)];
        if (m.tileGb[d] >= dims[d])
            continue;
        Mapping grown = m;
        grown.tileGb[d] = std::min(dims[d], m.tileGb[d] * 2);
        std::string reason;
        if (model_.checkMapping(arch, layer, grown, &reason))
            m = grown;
    }
    return m;
}

std::optional<Mapping>
RandomMapper::search(const AcceleratorConfig &arch,
                     const LayerShape &layer, Rng &rng) const
{
    std::optional<Mapping> best;
    double best_edp = 0.0;
    std::size_t rejects = 0;
    std::size_t accepted = 0;
    while (accepted < options_.samples) {
        const auto mapping = sampleMapping(arch, layer, rng);
        if (!mapping) {
            if (++rejects >
                options_.maxRejectsPerSample * options_.samples) {
                break;
            }
            continue;
        }
        ++accepted;
        const CostResult cost =
            model_.evaluate(arch, layer, *mapping);
        if (!cost.valid)
            continue;
        if (!best || cost.edp() < best_edp) {
            best = mapping;
            best_edp = cost.edp();
        }
    }
    return best;
}

} // namespace vaesa
