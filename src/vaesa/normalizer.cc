#include "vaesa/normalizer.hh"

#include <algorithm>
#include <cstdint>

#include "util/logging.hh"

namespace vaesa {

namespace {

// Keeps scaled values strictly below 1 and guards constant columns.
constexpr double spanPad = 1e-9;

} // namespace

void
Normalizer::fit(const Matrix &data)
{
    if (data.rows() == 0 || data.cols() == 0)
        panic("Normalizer::fit on empty data");
    const std::size_t d = data.cols();
    lo_.assign(d, 0.0);
    span_.assign(d, 1.0);
    for (std::size_t c = 0; c < d; ++c) {
        double mn = data(0, c);
        double mx = data(0, c);
        for (std::size_t r = 1; r < data.rows(); ++r) {
            mn = std::min(mn, data(r, c));
            mx = std::max(mx, data(r, c));
        }
        lo_[c] = mn;
        span_[c] = std::max(mx - mn, spanPad) * (1.0 + spanPad);
    }
}

std::vector<double>
Normalizer::transform(const std::vector<double> &row) const
{
    if (row.size() != lo_.size())
        panic("Normalizer::transform: width ", row.size(), " != ",
              lo_.size());
    std::vector<double> out(row.size());
    for (std::size_t c = 0; c < row.size(); ++c)
        out[c] = (row[c] - lo_[c]) / span_[c];
    return out;
}

Matrix
Normalizer::transform(const Matrix &data) const
{
    if (data.cols() != lo_.size())
        panic("Normalizer::transform: width mismatch");
    Matrix out = data;
    for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = 0; c < out.cols(); ++c)
            out(r, c) = (out(r, c) - lo_[c]) / span_[c];
    return out;
}

std::vector<double>
Normalizer::inverse(const std::vector<double> &row) const
{
    std::vector<double> out;
    inverseInto(row, out);
    return out;
}

void
Normalizer::inverseInto(const std::vector<double> &row,
                        std::vector<double> &out) const
{
    if (row.size() != lo_.size())
        panic("Normalizer::inverse: width mismatch");
    out.resize(row.size());
    for (std::size_t c = 0; c < row.size(); ++c)
        out[c] = row[c] * span_[c] + lo_[c];
}

Matrix
Normalizer::inverse(const Matrix &data) const
{
    if (data.cols() != lo_.size())
        panic("Normalizer::inverse: width mismatch");
    Matrix out = data;
    for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = 0; c < out.cols(); ++c)
            out(r, c) = out(r, c) * span_[c] + lo_[c];
    return out;
}

double
Normalizer::lower(std::size_t col) const
{
    if (col >= lo_.size())
        panic("Normalizer::lower: column out of range");
    return lo_[col];
}

double
Normalizer::upper(std::size_t col) const
{
    if (col >= lo_.size())
        panic("Normalizer::upper: column out of range");
    return lo_[col] + span_[col];
}

void
Normalizer::setBounds(const std::vector<double> &lo,
                      const std::vector<double> &hi)
{
    if (lo.size() != hi.size() || lo.empty())
        panic("Normalizer::setBounds: bad bound vectors");
    lo_ = lo;
    span_.resize(lo.size());
    for (std::size_t c = 0; c < lo.size(); ++c) {
        if (hi[c] < lo[c])
            panic("Normalizer::setBounds: hi < lo in column ", c);
        span_[c] = std::max(hi[c] - lo[c], spanPad) * (1.0 + spanPad);
    }
}

void
Normalizer::serialize(ByteBuffer &out) const
{
    out.putU64(lo_.size());
    out.putBytes(lo_.data(), lo_.size() * sizeof(double));
    out.putBytes(span_.data(), span_.size() * sizeof(double));
}

Expected<Normalizer>
Normalizer::deserialize(ByteReader &in)
{
    const std::uint64_t d = in.getU64();
    if (in.failed() || d > (1u << 20))
        return makeLoadError(LoadError::Kind::Malformed, "", 0,
                             "corrupt normalizer dimension");
    Normalizer norm;
    norm.lo_.resize(d);
    norm.span_.resize(d);
    if (!in.getBytes(norm.lo_.data(), d * sizeof(double)) ||
        !in.getBytes(norm.span_.data(), d * sizeof(double)))
        return makeLoadError(LoadError::Kind::Truncated, "", 0,
                             "truncated normalizer payload");
    return norm;
}

} // namespace vaesa
