/**
 * @file
 * Dataset construction for the VAE training pipeline (Section III-B3):
 * (hardware features, layer features, log-latency, log-energy) tuples
 * gathered by random/grid sampling of the design space, with only
 * valid (mappable) points retained.
 */

#ifndef VAESA_VAESA_DATASET_HH
#define VAESA_VAESA_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/design_space.hh"
#include "sched/evaluator.hh"
#include "tensor/matrix.hh"
#include "util/rng.hh"
#include "vaesa/normalizer.hh"
#include "workload/layer.hh"

namespace vaesa {

/** One training tuple. */
struct DataSample
{
    /** The sampled configuration. */
    AcceleratorConfig config;

    /** Index of the layer in the builder's layer pool. */
    std::size_t layerIndex = 0;

    /** log2 hardware features (6). */
    std::vector<double> hwFeatures;

    /** log2 layer features (8). */
    std::vector<double> layerFeatures;

    /** log2 of latency in cycles. */
    double logLatency = 0.0;

    /** log2 of energy in pJ. */
    double logEnergy = 0.0;
};

/**
 * An assembled dataset with fitted normalizers and matrix views.
 * Hardware-feature normalization uses the design-space grid bounds
 * (dataset-independent, so decode round-trips exactly); layer features
 * and labels use dataset extrema.
 */
class Dataset
{
  public:
    /** Build matrices and fit normalizers from samples. */
    Dataset(std::vector<DataSample> samples,
            std::vector<LayerShape> layer_pool);

    /** Number of samples. */
    std::size_t size() const { return samples_.size(); }

    /** The raw samples. */
    const std::vector<DataSample> &samples() const { return samples_; }

    /** The layer pool the samples index into. */
    const std::vector<LayerShape> &layerPool() const { return pool_; }

    /** Normalized hardware features, (n x 6) in [0,1). */
    const Matrix &hwFeatures() const { return hw_; }

    /** Normalized layer features, (n x 8) in [0,1). */
    const Matrix &layerFeatures() const { return layer_; }

    /** Normalized log-latency labels, (n x 1). */
    const Matrix &latencyLabels() const { return latency_; }

    /** Normalized log-energy labels, (n x 1). */
    const Matrix &energyLabels() const { return energy_; }

    /** Hardware-feature normalizer (grid bounds). */
    const Normalizer &hwNormalizer() const { return hwNorm_; }

    /** Layer-feature normalizer (dataset extrema). */
    const Normalizer &layerNormalizer() const { return layerNorm_; }

    /** Latency-label normalizer. */
    const Normalizer &latencyNormalizer() const { return latNorm_; }

    /** Energy-label normalizer. */
    const Normalizer &energyNormalizer() const { return enNorm_; }

    /** EDP (cycles * pJ) of sample i, from its log labels. */
    double sampleEdp(std::size_t i) const;

    /** Index of the sample with the largest EDP. */
    std::size_t worstSampleIndex() const;

    /** Index of the sample with the smallest EDP. */
    std::size_t bestSampleIndex() const;

  private:
    std::vector<DataSample> samples_;
    std::vector<LayerShape> pool_;
    Matrix hw_;
    Matrix layer_;
    Matrix latency_;
    Matrix energy_;
    Normalizer hwNorm_;
    Normalizer layerNorm_;
    Normalizer latNorm_;
    Normalizer enNorm_;
};

/** Randomized dataset builder over a layer pool. */
class DatasetBuilder
{
  public:
    /**
     * @param evaluator scoring backend (borrowed; must outlive this).
     * @param layer_pool layers paired with sampled configurations.
     */
    DatasetBuilder(const Evaluator &evaluator,
                   std::vector<LayerShape> layer_pool);

    /**
     * Bias layer draws by positive relative weights (one per pool
     * layer) instead of the default uniform pick — the mixed-workload
     * training path feeds mixLayerPool()'s traffic-weighted
     * occurrence rates through here so BERT's per-head GEMMs appear
     * in proportion to how often the mix actually runs them. Without
     * this call (or with an empty vector) build() keeps its original
     * uniform rng.index() draw, bit-identical to older datasets.
     * fatal() on a size mismatch or a non-positive/non-finite weight.
     */
    void setLayerWeights(std::vector<double> weights);

    /**
     * Draw (config, layer) pairs at random — layers uniformly, or by
     * setLayerWeights() when given — keep the valid ones, and
     * assemble a Dataset.
     * @param target_samples number of valid samples to gather.
     * @param rng seeded generator.
     * @param max_attempts_factor give up after target * factor draws.
     */
    Dataset build(std::size_t target_samples, Rng &rng,
                  std::size_t max_attempts_factor = 20) const;

  private:
    const Evaluator &evaluator_;
    std::vector<LayerShape> pool_;
    /** Cumulative weight per pool layer; empty = uniform draws. */
    std::vector<double> cumulativeWeights_;
};

} // namespace vaesa

#endif // VAESA_VAESA_DATASET_HH
