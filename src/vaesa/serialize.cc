#include "vaesa/serialize.hh"

#include <cmath>
#include <cstdint>

#include "nn/serialize.hh"
#include "util/atomic_io.hh"
#include "util/logging.hh"

namespace vaesa {

namespace {

constexpr std::uint32_t frameworkMagic = 0x56534657; // "VSFW"
constexpr std::uint32_t frameworkVersion = 2;

/**
 * Largest layer width a snapshot may declare. Constructing the model
 * allocates width * width weight matrices, so dimensions have to be
 * bounded BEFORE the VaesaFramework constructor runs -- a hostile
 * but CRC-valid options record (found by fuzzing) could otherwise
 * drive a multi-terabyte (or size_t-overflowing) allocation.
 */
constexpr std::size_t maxLayerWidth = std::size_t{1} << 16;

bool
saneWidth(std::size_t width)
{
    return width >= 1 && width <= maxLayerWidth;
}

bool
saneWidths(const std::vector<std::size_t> &widths)
{
    for (std::size_t w : widths)
        if (!saneWidth(w))
            return false;
    return true;
}

void
putSizes(ByteBuffer &out, const std::vector<std::size_t> &sizes)
{
    out.putU64(sizes.size());
    for (std::size_t s : sizes)
        out.putU64(s);
}

bool
getSizes(ByteReader &in, std::vector<std::size_t> &sizes)
{
    const std::uint64_t n = in.getU64();
    if (in.failed() || n > 64)
        return false;
    sizes.resize(n);
    for (auto &s : sizes)
        s = static_cast<std::size_t>(in.getU64());
    return !in.failed();
}

/** Load one snapshot file; no fallback (loadFramework adds that). */
Expected<std::unique_ptr<VaesaFramework>>
loadFrameworkFile(const std::string &path)
{
    Expected<std::string> bytes = readFileBytes(path);
    if (!bytes)
        return bytes.error();
    RecordReader in(bytes.value(), path);
    std::uint32_t version = 0;
    if (auto err = in.readHeader(frameworkMagic, frameworkVersion,
                                 frameworkVersion, &version))
        return *err;

    Expected<std::string> options_record = in.readRecord();
    if (!options_record)
        return options_record.error();
    ByteReader options_reader(options_record.value().data(),
                              options_record.value().size());
    FrameworkOptions options;
    options.vae.inputDim =
        static_cast<std::size_t>(options_reader.getU64());
    if (!getSizes(options_reader, options.vae.hiddenDims))
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt VAE hidden-layer list");
    options.vae.latentDim =
        static_cast<std::size_t>(options_reader.getU64());
    options.vae.leakySlope = options_reader.getF64();
    if (!getSizes(options_reader, options.predictorHidden) ||
        !options_reader.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt snapshot options record");
    if (!saneWidth(options.vae.inputDim) ||
        !saneWidth(options.vae.latentDim) ||
        !saneWidths(options.vae.hiddenDims) ||
        !saneWidths(options.predictorHidden))
        return in.makeError(LoadError::Kind::Malformed,
                            "implausible model dimension in snapshot "
                            "options (limit " +
                                std::to_string(maxLayerWidth) + ")");
    if (!std::isfinite(options.vae.leakySlope))
        return in.makeError(LoadError::Kind::Malformed,
                            "non-finite leaky-ReLU slope in snapshot "
                            "options");

    Expected<std::string> norm_record = in.readRecord();
    if (!norm_record)
        return norm_record.error();
    ByteReader norm_reader(norm_record.value().data(),
                           norm_record.value().size());
    Normalizer norms[4];
    for (Normalizer &norm : norms) {
        Expected<Normalizer> loaded =
            Normalizer::deserialize(norm_reader);
        if (!loaded)
            return in.makeError(loaded.error().kind,
                                loaded.error().message);
        norm = loaded.value();
    }
    if (!norm_reader.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "trailing bytes in normalizer record");

    auto framework = std::make_unique<VaesaFramework>(
        options, /*seed=*/0, norms[0], norms[1], norms[2], norms[3]);
    if (auto err = nn::readParameterRecords(in,
                                            framework->parameters()))
        return *err;
    if (!in.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "trailing bytes after last parameter");
    return framework;
}

} // namespace

std::optional<LoadError>
saveFramework(const std::string &path, VaesaFramework &framework)
{
    RecordWriter out(frameworkMagic, frameworkVersion);

    const FrameworkOptions &options = framework.frameworkOptions();
    ByteBuffer options_payload;
    options_payload.putU64(options.vae.inputDim);
    putSizes(options_payload, options.vae.hiddenDims);
    options_payload.putU64(options.vae.latentDim);
    options_payload.putF64(options.vae.leakySlope);
    putSizes(options_payload, options.predictorHidden);
    out.writeRecord(options_payload);

    ByteBuffer norm_payload;
    framework.hwNormalizer().serialize(norm_payload);
    framework.layerNormalizer().serialize(norm_payload);
    framework.latencyNormalizer().serialize(norm_payload);
    framework.energyNormalizer().serialize(norm_payload);
    out.writeRecord(norm_payload);

    nn::writeParameterRecords(out, framework.parameters());
    return atomicWriteFileWithRotation(path, out.bytes());
}

Expected<std::unique_ptr<VaesaFramework>>
loadFramework(const std::string &path)
{
    return loadWithFallback<std::unique_ptr<VaesaFramework>>(
        path, loadFrameworkFile);
}

} // namespace vaesa
