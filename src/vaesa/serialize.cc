#include "vaesa/serialize.hh"

#include <cstdint>
#include <fstream>

#include "nn/serialize.hh"
#include "util/logging.hh"

namespace vaesa {

namespace {

constexpr std::uint32_t frameworkMagic = 0x56534657; // "VSFW"
constexpr std::uint32_t frameworkVersion = 1;

void
writeU64(std::ostream &out, std::uint64_t value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

std::uint64_t
readU64(std::istream &in)
{
    std::uint64_t value = 0;
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return value;
}

void
writeF64(std::ostream &out, double value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

double
readF64(std::istream &in)
{
    double value = 0.0;
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return value;
}

void
writeSizes(std::ostream &out, const std::vector<std::size_t> &sizes)
{
    writeU64(out, sizes.size());
    for (std::size_t s : sizes)
        writeU64(out, s);
}

std::vector<std::size_t>
readSizes(std::istream &in)
{
    const std::uint64_t n = readU64(in);
    if (n > 64)
        fatal("loadFramework: corrupt layer-size list");
    std::vector<std::size_t> sizes(n);
    for (auto &s : sizes)
        s = static_cast<std::size_t>(readU64(in));
    return sizes;
}

} // namespace

bool
saveFramework(const std::string &path, VaesaFramework &framework)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        warn("saveFramework: cannot open '", path, "'");
        return false;
    }
    out.write(reinterpret_cast<const char *>(&frameworkMagic),
              sizeof(frameworkMagic));
    out.write(reinterpret_cast<const char *>(&frameworkVersion),
              sizeof(frameworkVersion));

    const FrameworkOptions &options = framework.frameworkOptions();
    writeU64(out, options.vae.inputDim);
    writeSizes(out, options.vae.hiddenDims);
    writeU64(out, options.vae.latentDim);
    writeF64(out, options.vae.leakySlope);
    writeSizes(out, options.predictorHidden);

    framework.hwNormalizer().serialize(out);
    framework.layerNormalizer().serialize(out);
    framework.latencyNormalizer().serialize(out);
    framework.energyNormalizer().serialize(out);

    nn::saveParametersToStream(out, framework.parameters());
    return static_cast<bool>(out);
}

std::unique_ptr<VaesaFramework>
loadFramework(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return nullptr;
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (magic != frameworkMagic)
        fatal("loadFramework: '", path,
              "' is not a VAESA framework snapshot");
    if (version != frameworkVersion)
        fatal("loadFramework: unsupported snapshot version ",
              version);

    FrameworkOptions options;
    options.vae.inputDim = static_cast<std::size_t>(readU64(in));
    options.vae.hiddenDims = readSizes(in);
    options.vae.latentDim = static_cast<std::size_t>(readU64(in));
    options.vae.leakySlope = readF64(in);
    options.predictorHidden = readSizes(in);
    if (!in)
        fatal("loadFramework: truncated snapshot header");

    const Normalizer hw = Normalizer::deserialize(in);
    const Normalizer layer = Normalizer::deserialize(in);
    const Normalizer lat = Normalizer::deserialize(in);
    const Normalizer en = Normalizer::deserialize(in);

    auto framework = std::make_unique<VaesaFramework>(
        options, /*seed=*/0, hw, layer, lat, en);
    nn::loadParametersFromStream(in, framework->parameters());
    return framework;
}

} // namespace vaesa
