/**
 * @file
 * Latent-space design space exploration (Figure 6): the latent-box
 * Objective for vae_bo, the predictor-driven vae_gd flow, the
 * input-space gd baseline, and the worst->best interpolation study
 * (Figures 7/8).
 */

#ifndef VAESA_VAESA_LATENT_DSE_HH
#define VAESA_VAESA_LATENT_DSE_HH

#include <vector>

#include "dse/gd.hh"
#include "dse/objective.hh"
#include "vaesa/framework.hh"

namespace vaesa {

/**
 * Objective over the latent box [-radius, radius]^latentDim: decode,
 * schedule, simulate, return workload EDP (Figure 6a).
 */
class LatentObjective : public Objective
{
  public:
    /**
     * @param framework trained VAESA instance (borrowed).
     * @param evaluator scoring backend (borrowed).
     * @param layers workload layers.
     * @param radius half-width of the latent search box; the KL term
     *        concentrates encodings near the origin, so 3 sigma
     *        covers effectively all of the learned distribution.
     */
    LatentObjective(VaesaFramework &framework,
                    const Evaluator &evaluator,
                    std::vector<LayerShape> layers,
                    double radius = 3.0,
                    Metric metric = Metric::Edp);

    std::size_t dim() const override;
    std::vector<double> lowerBounds() const override;
    std::vector<double> upperBounds() const override;
    double evaluate(const std::vector<double> &x) override;

    /**
     * Fan the per-layer cost-model queries of each evaluate() out
     * across the pool (the decode stays on the calling thread; the
     * roll-up is bit-identical to the serial sum). Pass nullptr to
     * go back to serial. Note this keeps threadSafeEvaluate() false:
     * the VAE decode mutates framework buffers, so whole-objective
     * fan-out stays forbidden — the parallelism lives one level
     * down, inside the workload sum.
     */
    void setPool(ThreadPool *pool) { pool_ = pool; }

    /** Decode a latent point to its configuration. */
    AcceleratorConfig decode(const std::vector<double> &z);

    /** The metric being minimized. */
    Metric metric() const { return metric_; }

  private:
    VaesaFramework &framework_;
    const Evaluator &evaluator_;
    std::vector<LayerShape> layers_;
    double radius_;
    Metric metric_;
    ThreadPool *pool_ = nullptr;
};

/** Tunables of the vae_gd / gd flows (Section IV-D). */
struct VaeGdOptions
{
    /** Gradient steps per start point. */
    std::size_t steps = 100;

    /** Step size. */
    double learningRate = 0.05;

    /** Momentum coefficient. */
    double momentum = 0.9;

    /** Stddev of the random latent starting points. */
    double startSigma = 1.0;

    /** Latent box half-width for projection. */
    double radius = 3.0;

    /**
     * Weight of a Gaussian-prior (MAP) term added to the latent
     * surrogate: minimize pred(z) + 0.5 * priorWeight * |z|^2.
     * LeakyReLU predictors are piecewise linear, so without the
     * prior the surrogate's minimum always sits on the box boundary
     * where the decoder extrapolates poorly; the prior keeps the
     * descent inside the region the VAE actually learned. Set to 0
     * for the raw surrogate. Ignored by the input-space gd baseline
     * (its box is the whole design space, so extrapolation is not an
     * issue there).
     */
    double priorWeight = 0.1;

    /**
     * Independent GD starts screened per simulated sample: the
     * endpoint with the best *predicted* score is the one decoded
     * and simulated. Screening costs only predictor evaluations.
     * CAUTION: enabled screening systematically selects the points
     * where the predictor is most over-optimistic (surrogate
     * exploitation), which measurably *hurts* real EDP -- see the
     * ablation in EXPERIMENTS.md. Disabled (1) by default.
     */
    std::size_t screenStarts = 1;
};

/**
 * One vae_gd sample: descend the predictor surface from a random
 * latent start, decode the optimized point, and score it for real.
 * Returns the trace of decoded-and-evaluated samples (one per start).
 *
 * @param framework trained VAESA instance.
 * @param evaluator scoring backend.
 * @param layer target layer (the GD study optimizes single layers).
 * @param starts number of random starts (= simulator samples).
 */
SearchTrace vaeGdSearch(VaesaFramework &framework,
                        const Evaluator &evaluator,
                        const LayerShape &layer, std::size_t starts,
                        const VaeGdOptions &options, Rng &rng);

/**
 * Real EDP of the decoded design after each requested number of GD
 * steps, averaged over random starts (Figure 13).
 *
 * @param step_marks step counts to sample (e.g.\ {0, 100, 200}).
 * @return mean real EDP at each mark, in mark order.
 */
std::vector<double> vaeGdStepStudy(VaesaFramework &framework,
                                   const Evaluator &evaluator,
                                   const LayerShape &layer,
                                   std::size_t starts,
                                   const std::vector<std::size_t>
                                       &step_marks,
                                   const VaeGdOptions &options,
                                   Rng &rng);

/**
 * The paper's input-space gd baseline: a separately trained predictor
 * pair over the normalized 6-D input box; GD optimizes the continuous
 * input, which is then rounded to the grid and evaluated.
 */
class InputGdBaseline
{
  public:
    /**
     * Train the standalone predictor pair on the dataset.
     * @param data training set.
     * @param hidden predictor hidden widths.
     * @param train training hyperparameters.
     * @param seed init/shuffle seed.
     */
    InputGdBaseline(const Dataset &data,
                    const std::vector<std::size_t> &hidden,
                    const TrainOptions &train, std::uint64_t seed);

    /**
     * Run GD from random starts in the input box; decode (round to
     * grid) and evaluate each optimized point.
     */
    SearchTrace search(const Evaluator &evaluator,
                       const LayerShape &layer, std::size_t starts,
                       const VaeGdOptions &options, Rng &rng);

    /** Predictor-sum score over the input box, with gradient. */
    double predictScore(const std::vector<double> &x,
                        const std::vector<double> &layer_feats,
                        std::vector<double> *grad_x = nullptr);

    /** Layer-feature normalizer used at training time. */
    const Normalizer &layerNormalizer() const { return layerNorm_; }

  private:
    std::unique_ptr<Predictor> latencyPred_;
    std::unique_ptr<Predictor> energyPred_;
    Normalizer hwNorm_;
    Normalizer layerNorm_;
};

/** One point of the interpolation study (Figures 7/8). */
struct InterpolationPoint
{
    /** Position t along the worst->best axis (t = i/N; t > 1 is the
     *  overshoot region). */
    double t = 0.0;

    /** The interpolated latent point. */
    std::vector<double> z;

    /** Predicted EDP at z. */
    double predictedEdp = 0.0;

    /** Real EDP of the decoded configuration (invalidScore when the
     *  decoded design cannot be mapped). */
    double realEdp = 0.0;
};

/**
 * Interpolate between the encodings of the dataset's worst and best
 * samples and report predicted vs real EDP along the axis.
 *
 * @param layer layer whose features condition the predictors.
 * @param segments number N of interpolation steps between z0 and z1.
 * @param overshoot additional steps past the best point (j > N).
 */
std::vector<InterpolationPoint> interpolationStudy(
    VaesaFramework &framework, const Evaluator &evaluator,
    const Dataset &data, const LayerShape &layer,
    std::size_t segments, std::size_t overshoot);

} // namespace vaesa

#endif // VAESA_VAESA_LATENT_DSE_HH
