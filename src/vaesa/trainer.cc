#include "vaesa/trainer.hh"

#include <algorithm>

#include <cmath>

#include "nn/loss.hh"
#include "nn/optim.hh"
#include "util/contracts.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/trace.hh"
#include "vaesa/checkpoint.hh"

namespace vaesa {

namespace {

/** Gather the rows of src listed in idx[begin, end) into out. */
void
gatherRowsInto(const Matrix &src, const std::vector<std::size_t> &idx,
               std::size_t begin, std::size_t end, Matrix &out)
{
    const std::size_t cols = src.cols();
    out.resizeBuffer(end - begin, cols);
    for (std::size_t i = begin; i < end; ++i) {
        const double *from = src.data() + idx[i] * cols;
        std::copy(from, from + cols,
                  out.data() + (i - begin) * cols);
    }
}

/** Training-loop observability instruments, resolved once. */
struct TrainMetrics
{
    metrics::Counter &epochs = metrics::counter("train.epochs");
    metrics::Gauge &reconLoss = metrics::gauge("train.recon_loss");
    metrics::Gauge &kldLoss = metrics::gauge("train.kld_loss");
    metrics::Gauge &latencyLoss =
        metrics::gauge("train.latency_loss");
    metrics::Gauge &energyLoss = metrics::gauge("train.energy_loss");
    metrics::Gauge &totalLoss = metrics::gauge("train.total_loss");
    metrics::Gauge &gradNorm = metrics::gauge("train.grad_norm");
    metrics::Histogram &epochNs =
        metrics::histogram("train.epoch_ns");
    metrics::Histogram &checkpointNs =
        metrics::histogram("train.checkpoint_ns");
};

TrainMetrics &
trainMetrics()
{
    static TrainMetrics m;
    return m;
}

/** L2 norm over every accumulated parameter gradient. */
double
gradientNorm(const std::vector<nn::Parameter *> &params)
{
    double sumSq = 0.0;
    for (const nn::Parameter *p : params) {
        const double *g = p->grad.data();
        for (std::size_t i = 0; i < p->grad.size(); ++i)
            sumSq += g[i] * g[i];
    }
    return std::sqrt(sumSq);
}

} // namespace

Trainer::Trainer(Vae &vae, Predictor &latency, Predictor &energy,
                 const TrainOptions &options)
    : vae_(vae), latency_(latency), energy_(energy), options_(options)
{
    if (latency_.options().designDim != vae_.latentDim() ||
        energy_.options().designDim != vae_.latentDim()) {
        fatal("Trainer: predictor designDim must equal the VAE latent "
              "dimensionality");
    }
    std::vector<nn::Parameter *> params = vae_.parameters();
    for (nn::Parameter *p : latency_.parameters())
        params.push_back(p);
    for (nn::Parameter *p : energy_.parameters())
        params.push_back(p);
    optimizer_ = std::make_unique<nn::Adam>(std::move(params),
                                            options_.learningRate);
}

EpochStats
Trainer::runEpoch(const Matrix &hw, const Matrix &layer,
                  const Matrix &lat_labels, const Matrix &en_labels,
                  Rng &rng, bool update)
{
    const std::size_t n = hw.rows();
    if (layer.rows() != n || lat_labels.rows() != n ||
        en_labels.rows() != n) {
        fatal("Trainer: inconsistent row counts across matrices");
    }
    if (update) {
        rng.permutationInto(n, orderBuf_);
    } else {
        orderBuf_.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            orderBuf_[i] = i;
    }

    EpochStats stats;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < n;
         begin += options_.batchSize) {
        const std::size_t end =
            std::min(n, begin + options_.batchSize);
        gatherRowsInto(hw, orderBuf_, begin, end, xBuf_);
        gatherRowsInto(layer, orderBuf_, begin, end, featsBuf_);
        gatherRowsInto(lat_labels, orderBuf_, begin, end, yLatBuf_);
        gatherRowsInto(en_labels, orderBuf_, begin, end, yEnBuf_);

        vae_.forwardInto(xBuf_, rng, update, fr_);
        const Matrix &pred_lat = latency_.forward(fr_.z, featsBuf_);
        const Matrix &pred_en = energy_.forward(fr_.z, featsBuf_);

        nn::mseLossInto(fr_.recon, xBuf_, reconLoss_);
        nn::gaussianKldInto(fr_.mu, fr_.logvar, kldLoss_);
        nn::mseLossInto(pred_lat, yLatBuf_, latLoss_);
        nn::mseLossInto(pred_en, yEnBuf_, enLoss_);

        // A NaN born in any loss term poisons the whole epoch mean
        // and, through Adam, every parameter; catch it at the batch
        // where it first appears.
        VAESA_CHECK_FINITE(reconLoss_.value,
                           "reconstruction loss, batch at row ",
                           begin);
        VAESA_CHECK_FINITE(kldLoss_.value, "KLD loss, batch at row ",
                           begin);
        VAESA_CHECK_FINITE(latLoss_.value,
                           "latency-predictor loss, batch at row ",
                           begin);
        VAESA_CHECK_FINITE(enLoss_.value,
                           "energy-predictor loss, batch at row ",
                           begin);

        stats.reconLoss += reconLoss_.value;
        stats.kldLoss += kldLoss_.value;
        stats.latencyLoss += latLoss_.value;
        stats.energyLoss += enLoss_.value;
        ++batches;

        if (update) {
            optimizer_->zeroGrad();

            // The loss gradients live in member buffers, so they can
            // be scaled in place and fed straight to the backward
            // passes.
            latLoss_.grad.scale(options_.predictorWeight);
            enLoss_.grad.scale(options_.predictorWeight);
            gradZBuf_.copyFrom(latency_.backward(latLoss_.grad));
            gradZBuf_.add(energy_.backward(enLoss_.grad));
            VAESA_CHECK_FINITE_ALL(gradZBuf_,
                                   "predictor gradient into z, batch "
                                   "at row ", begin);

            kldLoss_.gradMu.scale(options_.kldWeight);
            kldLoss_.gradLogvar.scale(options_.kldWeight);

            vae_.backward(fr_, reconLoss_.grad, kldLoss_.gradMu,
                          kldLoss_.gradLogvar, gradZBuf_);
            optimizer_->step();
        }
    }

    if (batches > 0) {
        const double inv = 1.0 / static_cast<double>(batches);
        stats.reconLoss *= inv;
        stats.kldLoss *= inv;
        stats.latencyLoss *= inv;
        stats.energyLoss *= inv;
    }
    stats.totalLoss = stats.reconLoss +
                      options_.kldWeight * stats.kldLoss +
                      options_.predictorWeight *
                          (stats.latencyLoss + stats.energyLoss);
    return stats;
}

std::vector<EpochStats>
Trainer::train(const Dataset &data, Rng &rng)
{
    return train(data.hwFeatures(), data.layerFeatures(),
                 data.latencyLabels(), data.energyLabels(), rng);
}

std::vector<EpochStats>
Trainer::train(const Matrix &hw_features, const Matrix &layer_features,
               const Matrix &latency_labels,
               const Matrix &energy_labels, Rng &rng)
{
    if (options_.checkpointEvery == 0)
        fatal("Trainer: checkpointEvery must be >= 1");
    const bool checkpointing = !options_.checkpointPath.empty();

    std::vector<EpochStats> history;
    history.reserve(options_.epochs);
    std::size_t start_epoch = 0;

    if (checkpointing) {
        Expected<TrainCheckpoint> resumed =
            loadTrainCheckpoint(options_.checkpointPath, *optimizer_);
        if (resumed) {
            // Checkpoints are cut at epoch boundaries with the full
            // RNG state, so continuing from one replays the exact
            // stream an uninterrupted run would have drawn.
            start_epoch = static_cast<std::size_t>(
                resumed.value().epochsDone);
            history = std::move(resumed.value().history);
            rng.setState(resumed.value().rng);
            inform("resuming training from '",
                   options_.checkpointPath, "' at epoch ",
                   start_epoch, "/", options_.epochs);
        } else if (resumed.error().kind !=
                   LoadError::Kind::OpenFailed) {
            warn("ignoring unusable checkpoint: ",
                 resumed.error().describe());
        }
    }

    TrainMetrics &tm = trainMetrics();
    for (std::size_t epoch = start_epoch; epoch < options_.epochs;
         ++epoch) {
        // Cooperative stop (SIGTERM et al.): cut at the epoch
        // boundary, persist the completed epochs, and return. The
        // epoch-boundary checkpoint below already covered this state
        // when checkpointEvery == 1; writing it unconditionally here
        // makes the guarantee hold for any cadence.
        if (options_.stopFlag != nullptr &&
            options_.stopFlag->load(std::memory_order_relaxed)) {
            if (checkpointing) {
                TrainCheckpoint checkpoint;
                checkpoint.epochsDone = epoch;
                checkpoint.history = history;
                checkpoint.rng = rng.state();
                if (auto err = saveTrainCheckpoint(
                        options_.checkpointPath, checkpoint,
                        *optimizer_))
                    warn("stop checkpoint save failed: ",
                         err->describe());
            }
            inform("training stopped at epoch boundary ", epoch,
                   "/", options_.epochs);
            return history;
        }
        faultCheck("train_epoch");
        const bool instrument = metrics::metricsEnabled();
        const std::uint64_t epoch_t0 =
            instrument ? metrics::monotonicNowNs() : 0;
        {
            const trace::Span span("train.epoch");
            history.push_back(runEpoch(hw_features, layer_features,
                                       latency_labels, energy_labels,
                                       rng, true));
        }
        tm.epochs.inc();
        const EpochStats &stats = history.back();
        tm.reconLoss.set(stats.reconLoss);
        tm.kldLoss.set(stats.kldLoss);
        tm.latencyLoss.set(stats.latencyLoss);
        tm.energyLoss.set(stats.energyLoss);
        tm.totalLoss.set(stats.totalLoss);
        if (instrument) {
            tm.epochNs.observe(metrics::monotonicNowNs() - epoch_t0);
            // The last minibatch's gradients are still in the
            // accumulators; their norm is the standard divergence
            // early-warning signal. O(parameters), so gated.
            tm.gradNorm.set(gradientNorm(optimizer_->params()));
        }
        debugLog("epoch ", epoch, " recon=",
                 history.back().reconLoss, " kld=",
                 history.back().kldLoss, " lat=",
                 history.back().latencyLoss, " en=",
                 history.back().energyLoss);
        if (checkpointing &&
            ((epoch + 1) % options_.checkpointEvery == 0 ||
             epoch + 1 == options_.epochs)) {
            TrainCheckpoint checkpoint;
            checkpoint.epochsDone = epoch + 1;
            checkpoint.history = history;
            checkpoint.rng = rng.state();
            const std::uint64_t ckpt_t0 =
                instrument ? metrics::monotonicNowNs() : 0;
            {
                const trace::Span span("train.checkpoint");
                if (auto err = saveTrainCheckpoint(
                        options_.checkpointPath, checkpoint,
                        *optimizer_))
                    warn("checkpoint save failed: ",
                         err->describe());
            }
            if (instrument)
                tm.checkpointNs.observe(metrics::monotonicNowNs() -
                                        ckpt_t0);
        }
    }
    return history;
}

EpochStats
Trainer::evaluate(const Dataset &data, Rng &rng)
{
    return runEpoch(data.hwFeatures(), data.layerFeatures(),
                    data.latencyLabels(), data.energyLabels(), rng,
                    false);
}

PredictorTrainer::PredictorTrainer(Predictor &predictor,
                                   const TrainOptions &options)
    : predictor_(predictor), options_(options)
{
    optimizer_ = std::make_unique<nn::Adam>(predictor_.parameters(),
                                            options_.learningRate);
}

std::vector<double>
PredictorTrainer::train(const Matrix &design, const Matrix &layer_feats,
                        const Matrix &labels, Rng &rng)
{
    if (design.rows() != layer_feats.rows() ||
        design.rows() != labels.rows()) {
        fatal("PredictorTrainer: inconsistent row counts");
    }
    const std::size_t n = design.rows();
    std::vector<double> history;
    history.reserve(options_.epochs);

    for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
        rng.permutationInto(n, orderBuf_);
        double epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t begin = 0; begin < n;
             begin += options_.batchSize) {
            const std::size_t end =
                std::min(n, begin + options_.batchSize);
            gatherRowsInto(design, orderBuf_, begin, end, xBuf_);
            gatherRowsInto(layer_feats, orderBuf_, begin, end,
                           featsBuf_);
            gatherRowsInto(labels, orderBuf_, begin, end, yBuf_);

            const Matrix &pred = predictor_.forward(xBuf_, featsBuf_);
            nn::mseLossInto(pred, yBuf_, lossBuf_);
            epoch_loss += lossBuf_.value;
            ++batches;

            optimizer_->zeroGrad();
            predictor_.backward(lossBuf_.grad);
            optimizer_->step();
        }
        history.push_back(batches ? epoch_loss /
                                        static_cast<double>(batches)
                                  : 0.0);
    }
    return history;
}

} // namespace vaesa
