/**
 * @file
 * End-to-end training of the VAESA pipeline (Figure 3, Eq. 1-2):
 *   L = L_recon + alpha * L_kld + L_latency + L_energy,
 * with predictor gradients flowing through the sampled z into the
 * encoder. Also provides a plain supervised trainer for standalone
 * predictors (the input-space gd baseline).
 */

#ifndef VAESA_VAESA_TRAINER_HH
#define VAESA_VAESA_TRAINER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/loss.hh"
#include "nn/optim.hh"
#include "util/rng.hh"
#include "vaesa/dataset.hh"
#include "vaesa/predictor.hh"
#include "vaesa/vae.hh"

namespace vaesa {

/** Training hyperparameters. */
struct TrainOptions
{
    /** Passes over the dataset. */
    std::size_t epochs = 30;

    /** Minibatch size. */
    std::size_t batchSize = 64;

    /** Adam learning rate. */
    double learningRate = 1e-3;

    /** Weight alpha on the KLD term (Eq. 1; paper default 1e-4). */
    double kldWeight = 1e-4;

    /** Weight on the summed predictor MSE losses (Eq. 2). */
    double predictorWeight = 1.0;

    /**
     * When non-empty, write a crash-safe training checkpoint to this
     * path at epoch boundaries, and resume from it automatically when
     * one exists. A resumed run is bit-identical to an uninterrupted
     * one with the same seed.
     */
    std::string checkpointPath;

    /** Checkpoint after every Nth completed epoch (must be >= 1). */
    std::size_t checkpointEvery = 1;

    /**
     * Optional cooperative stop flag (borrowed; e.g. set from a
     * SIGTERM handler). Checked at epoch boundaries only, so a stop
     * never tears a half-applied optimizer step: training writes a
     * final checkpoint for the completed epochs (when checkpointing)
     * and returns the truncated history. Resuming from that
     * checkpoint is bit-identical to a run that was never stopped.
     */
    const std::atomic<bool> *stopFlag = nullptr;
};

/** Per-epoch mean losses. */
struct EpochStats
{
    /** Reconstruction MSE. */
    double reconLoss = 0.0;

    /** Unweighted KLD. */
    double kldLoss = 0.0;

    /** Latency-predictor MSE. */
    double latencyLoss = 0.0;

    /** Energy-predictor MSE. */
    double energyLoss = 0.0;

    /** Weighted total (Eq. 2). */
    double totalLoss = 0.0;

    /** Exact equality (for resume tests). */
    bool operator==(const EpochStats &other) const = default;
};

/** Joint VAE + predictor trainer. */
class Trainer
{
  public:
    /**
     * @param vae model to train (borrowed).
     * @param latency latency head (borrowed; designDim == latentDim).
     * @param energy energy head (borrowed).
     * @param options hyperparameters.
     */
    Trainer(Vae &vae, Predictor &latency, Predictor &energy,
            const TrainOptions &options);

    /**
     * Train to convergence of the fixed epoch budget.
     * @param data training set.
     * @param rng minibatch shuffling + reparameterization noise.
     * @return per-epoch loss statistics.
     */
    std::vector<EpochStats> train(const Dataset &data, Rng &rng);

    /**
     * Matrix-level variant: train on already-normalized batches.
     * Used by VaesaFramework::fineTune, which must normalize new
     * data with the *original* normalizers rather than the new
     * dataset's.
     */
    std::vector<EpochStats> train(const Matrix &hw_features,
                                  const Matrix &layer_features,
                                  const Matrix &latency_labels,
                                  const Matrix &energy_labels,
                                  Rng &rng);

    /** Run one evaluation pass (no sampling, no updates). */
    EpochStats evaluate(const Dataset &data, Rng &rng);

    /**
     * One pass over already-shuffled matrices; updates parameters
     * when update is true. Public so tests can assert that the
     * steady-state step loop is allocation-free: every per-batch
     * temporary lives in a member buffer reused across batches and
     * epochs.
     */
    EpochStats runEpoch(const Matrix &hw, const Matrix &layer,
                        const Matrix &lat, const Matrix &en,
                        Rng &rng, bool update);

  private:
    Vae &vae_;
    Predictor &latency_;
    Predictor &energy_;
    TrainOptions options_;
    std::unique_ptr<nn::Adam> optimizer_;

    // Step-loop scratch, reused across batches (allocation-free at a
    // steady batch size).
    std::vector<std::size_t> orderBuf_;
    Matrix xBuf_;
    Matrix featsBuf_;
    Matrix yLatBuf_;
    Matrix yEnBuf_;
    Vae::ForwardResult fr_;
    nn::LossResult reconLoss_;
    nn::LossResult latLoss_;
    nn::LossResult enLoss_;
    nn::KldResult kldLoss_;
    Matrix gradZBuf_;
};

/** Supervised trainer for a standalone predictor (gd baseline). */
class PredictorTrainer
{
  public:
    /**
     * @param predictor head over (normalized hw features, layer
     *        features); designDim must equal numHwParams.
     */
    PredictorTrainer(Predictor &predictor, const TrainOptions &options);

    /**
     * Train against one label matrix (latency or energy).
     * @param design (n x designDim) normalized design features.
     * @param layer_feats (n x layerDim) normalized layer features.
     * @param labels (n x 1) normalized labels.
     * @return per-epoch MSE.
     */
    std::vector<double> train(const Matrix &design,
                              const Matrix &layer_feats,
                              const Matrix &labels, Rng &rng);

  private:
    Predictor &predictor_;
    TrainOptions options_;
    std::unique_ptr<nn::Adam> optimizer_;

    // Step-loop scratch, reused across batches.
    std::vector<std::size_t> orderBuf_;
    Matrix xBuf_;
    Matrix featsBuf_;
    Matrix yBuf_;
    nn::LossResult lossBuf_;
};

} // namespace vaesa

#endif // VAESA_VAESA_TRAINER_HH
