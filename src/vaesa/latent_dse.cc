#include "vaesa/latent_dse.hh"

#include <cmath>

#include "sched/parallel_evaluator.hh"
#include "util/logging.hh"
#include "util/numeric.hh"

namespace vaesa {

LatentObjective::LatentObjective(VaesaFramework &framework,
                                 const Evaluator &evaluator,
                                 std::vector<LayerShape> layers,
                                 double radius, Metric metric)
    : framework_(framework), evaluator_(evaluator),
      layers_(std::move(layers)), radius_(radius), metric_(metric)
{
    if (layers_.empty())
        fatal("LatentObjective needs at least one layer");
    if (radius_ <= 0.0)
        fatal("LatentObjective radius must be positive");
}

std::size_t
LatentObjective::dim() const
{
    return framework_.latentDim();
}

std::vector<double>
LatentObjective::lowerBounds() const
{
    return std::vector<double>(dim(), -radius_);
}

std::vector<double>
LatentObjective::upperBounds() const
{
    return std::vector<double>(dim(), radius_);
}

AcceleratorConfig
LatentObjective::decode(const std::vector<double> &z)
{
    return framework_.decodeLatent(z);
}

double
LatentObjective::evaluate(const std::vector<double> &x)
{
    const AcceleratorConfig config = framework_.decodeLatent(x);
    const EvalResult result =
        pool_ ? evaluateWorkloadParallel(evaluator_, config, layers_,
                                         *pool_)
              : evaluator_.evaluateWorkload(config, layers_);
    return metricValue(result, metric_);
}

namespace {

/** Projected-GD options shared by the latent and input flows. */
GdOptions
makeGdOptions(const VaeGdOptions &options, std::size_t dim, double lo,
              double hi)
{
    GdOptions gd;
    gd.learningRate = options.learningRate;
    gd.momentum = options.momentum;
    gd.steps = options.steps;
    gd.lower.assign(dim, lo);
    gd.upper.assign(dim, hi);
    return gd;
}

} // namespace

namespace {

/** Latent surrogate: predictor sum plus the Gaussian-prior term. */
DifferentiableFn
latentSurrogate(VaesaFramework &framework,
                const std::vector<double> &feats, double prior_weight)
{
    return [&framework, feats, prior_weight](
               const std::vector<double> &z,
               std::vector<double> *grad) {
        double score = framework.predictScore(z, feats, grad);
        for (std::size_t d = 0; d < z.size(); ++d) {
            score += 0.5 * prior_weight * z[d] * z[d];
            if (grad)
                (*grad)[d] += prior_weight * z[d];
        }
        return score;
    };
}

} // namespace

SearchTrace
vaeGdSearch(VaesaFramework &framework, const Evaluator &evaluator,
            const LayerShape &layer, std::size_t starts,
            const VaeGdOptions &options, Rng &rng)
{
    const std::size_t dim = framework.latentDim();
    const std::vector<double> feats =
        framework.normalizedLayerFeatures(layer);
    const GradientDescent gd(makeGdOptions(options, dim,
                                           -options.radius,
                                           options.radius));
    const DifferentiableFn surrogate =
        latentSurrogate(framework, feats, options.priorWeight);

    SearchTrace trace;
    const std::size_t screen =
        std::max<std::size_t>(1, options.screenStarts);
    for (std::size_t i = 0; i < starts; ++i) {
        // Screen several descents by predicted score; simulate only
        // the most promising endpoint.
        GdResult best_result;
        double best_score = invalidScore;
        for (std::size_t s = 0; s < screen; ++s) {
            std::vector<double> z0(dim);
            for (double &v : z0)
                v = rng.normal(0.0, options.startSigma);
            GdResult result = gd.run(surrogate, z0);
            if (result.value < best_score) {
                best_score = result.value;
                best_result = std::move(result);
            }
        }
        const AcceleratorConfig config =
            framework.decodeLatent(best_result.x);
        const EvalResult real =
            evaluator.evaluateLayer(config, layer);
        trace.add(best_result.x,
                  real.valid ? real.edp : invalidScore);
    }
    return trace;
}

std::vector<double>
vaeGdStepStudy(VaesaFramework &framework, const Evaluator &evaluator,
               const LayerShape &layer, std::size_t starts,
               const std::vector<std::size_t> &step_marks,
               const VaeGdOptions &options, Rng &rng)
{
    const std::size_t dim = framework.latentDim();
    const std::vector<double> feats =
        framework.normalizedLayerFeatures(layer);
    const DifferentiableFn surrogate =
        latentSurrogate(framework, feats, options.priorWeight);

    // Geometric mean over starts: the paper's 306x/390x improvement
    // factors are ratios of decoded EDPs, which are log-scale data.
    std::vector<double> log_sums(step_marks.size(), 0.0);
    std::vector<std::size_t> counts(step_marks.size(), 0);

    for (std::size_t i = 0; i < starts; ++i) {
        std::vector<double> z0(dim);
        for (double &v : z0)
            v = rng.normal(0.0, options.startSigma);

        for (std::size_t m = 0; m < step_marks.size(); ++m) {
            VaeGdOptions mark_opts = options;
            mark_opts.steps = step_marks[m];
            const GradientDescent gd(makeGdOptions(
                mark_opts, dim, -options.radius, options.radius));
            const GdResult result = gd.run(surrogate, z0);
            const AcceleratorConfig config =
                framework.decodeLatent(result.x);
            const EvalResult real =
                evaluator.evaluateLayer(config, layer);
            if (real.valid && real.edp > 0.0) {
                log_sums[m] += std::log(real.edp);
                ++counts[m];
            }
        }
    }

    std::vector<double> means(step_marks.size(), invalidScore);
    for (std::size_t m = 0; m < step_marks.size(); ++m)
        if (counts[m] > 0)
            means[m] = std::exp(log_sums[m] /
                                static_cast<double>(counts[m]));
    return means;
}

InputGdBaseline::InputGdBaseline(const Dataset &data,
                                 const std::vector<std::size_t> &hidden,
                                 const TrainOptions &train,
                                 std::uint64_t seed)
    : hwNorm_(data.hwNormalizer()), layerNorm_(data.layerNormalizer())
{
    Rng rng(seed);
    PredictorOptions opts;
    opts.designDim = numHwParams;
    opts.layerDim = numLayerFeatures;
    opts.hiddenDims = hidden;
    latencyPred_ = std::make_unique<Predictor>(opts, rng,
                                               "gd.latency");
    energyPred_ = std::make_unique<Predictor>(opts, rng, "gd.energy");

    PredictorTrainer lat_trainer(*latencyPred_, train);
    lat_trainer.train(data.hwFeatures(), data.layerFeatures(),
                      data.latencyLabels(), rng);
    PredictorTrainer en_trainer(*energyPred_, train);
    en_trainer.train(data.hwFeatures(), data.layerFeatures(),
                     data.energyLabels(), rng);
}

double
InputGdBaseline::predictScore(const std::vector<double> &x,
                              const std::vector<double> &layer_feats,
                              std::vector<double> *grad_x)
{
    Matrix xm(1, x.size());
    xm.setRow(0, x);
    Matrix fm(1, layer_feats.size());
    fm.setRow(0, layer_feats);

    const Matrix lat = latencyPred_->forward(xm, fm);
    double score = lat(0, 0);
    Matrix ones(1, 1, 1.0);
    Matrix grad;
    if (grad_x)
        grad = latencyPred_->backward(ones);

    const Matrix en = energyPred_->forward(xm, fm);
    score += en(0, 0);
    if (grad_x) {
        grad.add(energyPred_->backward(ones));
        *grad_x = grad.row(0);
    }
    return score;
}

SearchTrace
InputGdBaseline::search(const Evaluator &evaluator,
                        const LayerShape &layer, std::size_t starts,
                        const VaeGdOptions &options, Rng &rng)
{
    const std::vector<double> feats =
        layerNorm_.transform(layer.toFeatures());
    const GradientDescent gd(
        makeGdOptions(options, numHwParams, 0.0, 1.0));
    const DifferentiableFn surrogate =
        [&](const std::vector<double> &x, std::vector<double> *grad) {
            return predictScore(x, feats, grad);
        };

    SearchTrace trace;
    for (std::size_t i = 0; i < starts; ++i) {
        std::vector<double> x0(numHwParams);
        for (double &v : x0)
            v = rng.uniform();
        const GdResult result = gd.run(surrogate, x0);
        const AcceleratorConfig config = designSpace().fromFeatures(
            hwNorm_.inverse(result.x));
        const EvalResult real =
            evaluator.evaluateLayer(config, layer);
        trace.add(result.x, real.valid ? real.edp : invalidScore);
    }
    return trace;
}

std::vector<InterpolationPoint>
interpolationStudy(VaesaFramework &framework, const Evaluator &evaluator,
                   const Dataset &data, const LayerShape &layer,
                   std::size_t segments, std::size_t overshoot)
{
    if (segments == 0)
        fatal("interpolationStudy needs at least one segment");

    const std::size_t worst = data.worstSampleIndex();
    const std::size_t best = data.bestSampleIndex();
    const std::vector<double> z0 =
        framework.encodeConfig(data.samples()[worst].config);
    const std::vector<double> z1 =
        framework.encodeConfig(data.samples()[best].config);
    const std::vector<double> feats =
        framework.normalizedLayerFeatures(layer);

    std::vector<InterpolationPoint> points;
    const std::size_t total = segments + overshoot;
    points.reserve(total + 1);
    for (std::size_t j = 0; j <= total; ++j) {
        InterpolationPoint pt;
        pt.t = static_cast<double>(j) /
               static_cast<double>(segments);
        pt.z.resize(z0.size());
        for (std::size_t d = 0; d < z0.size(); ++d)
            pt.z[d] = z0[d] + pt.t * (z1[d] - z0[d]);
        pt.predictedEdp = framework.predictedEdp(pt.z, feats);
        const AcceleratorConfig config =
            framework.decodeLatent(pt.z);
        const EvalResult real =
            evaluator.evaluateLayer(config, layer);
        pt.realEdp = real.valid ? real.edp : invalidScore;
        points.push_back(std::move(pt));
    }
    return points;
}

} // namespace vaesa
