/**
 * @file
 * Dataset persistence. The paper's flow grows the training set as
 * DSE explores more designs and retrains or fine-tunes the VAE
 * (Section III-B3); saving/loading datasets makes that workflow
 * possible across processes, and the CSV form doubles as an export
 * for external analysis.
 */

#ifndef VAESA_VAESA_DATASET_IO_HH
#define VAESA_VAESA_DATASET_IO_HH

#include <string>

#include "util/load_error.hh"
#include "vaesa/dataset.hh"

namespace vaesa {

/**
 * Write a dataset to CSV, atomically: one row per sample with the
 * configuration (6 raw parameter values), the layer-pool index, and
 * the log2 latency/energy labels. The layer pool itself is written
 * as a sibling header block (rows starting with "layer").
 * @return nullopt on success, the write error otherwise.
 */
std::optional<LoadError> saveDatasetCsv(const std::string &path,
                                        const Dataset &data);

/**
 * Read a dataset written by saveDatasetCsv(). Normalizers are
 * re-fitted from the loaded samples exactly as the builder would.
 * @return the dataset, or a LoadError carrying the file name and the
 *         1-based line number of the offending row.
 */
Expected<Dataset> loadDatasetCsv(const std::string &path);

/**
 * Merge two datasets over the same layer pool (the grow-and-retrain
 * flow). Normalizers are re-fitted over the union.
 * @return the merged dataset, or ShapeMismatch when the pools differ.
 */
Expected<Dataset> mergeDatasets(const Dataset &a, const Dataset &b);

} // namespace vaesa

#endif // VAESA_VAESA_DATASET_IO_HH
