/**
 * @file
 * Adaptive latent-space BO: the paper's dataset-growth flow
 * (Section III-B3 -- "as we explore more hardware designs during
 * DSE, we can expand the dataset and retrain or fine tune the VAE
 * and predictor models"). Every design the search evaluates is
 * recorded as per-layer training samples; periodically the framework
 * is fine-tuned on the accumulated data, refreshing the decoder
 * manifold around the regions the search is actually visiting. The
 * BO surrogate is warm-started across fine-tunes.
 */

#ifndef VAESA_VAESA_ADAPTIVE_HH
#define VAESA_VAESA_ADAPTIVE_HH

#include <vector>

#include "dse/bo.hh"
#include "vaesa/latent_dse.hh"

namespace vaesa {

/** Tunables of the adaptive flow. */
struct AdaptiveBoOptions
{
    /** Inner BO configuration. */
    BoOptions bo;

    /** Simulator samples between fine-tunes. */
    std::size_t retrainInterval = 50;

    /** Epochs per fine-tune. */
    std::size_t fineTuneEpochs = 4;

    /** Skip a fine-tune when fewer new per-layer samples than this
     *  accumulated since the last one. */
    std::size_t minNewSamples = 32;

    /** Latent box half-width. */
    double radius = 3.0;

    /** Metric to minimize. */
    Metric metric = Metric::Edp;
};

/**
 * Latent-space BO with periodic dataset growth and fine-tuning.
 * Mutates the framework (its weights improve as the search runs).
 */
class AdaptiveVaeBo
{
  public:
    /**
     * @param framework trained instance to search with and fine-tune
     *        (borrowed, mutated).
     * @param evaluator scoring backend (borrowed).
     * @param options flow tunables.
     */
    AdaptiveVaeBo(VaesaFramework &framework,
                  const Evaluator &evaluator,
                  const AdaptiveBoOptions &options);

    /**
     * Minimize the workload metric with a fixed simulator budget.
     * @param layers workload layers.
     * @param samples total decoded-design evaluations.
     * @param rng seeded generator (search + fine-tune shuffling).
     * @return chronological trace over the latent box.
     */
    SearchTrace run(const std::vector<LayerShape> &layers,
                    std::size_t samples, Rng &rng);

    /** Per-layer samples gathered during the last run(). */
    const std::vector<DataSample> &gathered() const
    {
        return gathered_;
    }

    /** Number of fine-tunes performed during the last run(). */
    std::size_t fineTuneCount() const { return fineTunes_; }

  private:
    VaesaFramework &framework_;
    const Evaluator &evaluator_;
    AdaptiveBoOptions options_;
    std::vector<DataSample> gathered_;
    std::size_t fineTunes_ = 0;
};

} // namespace vaesa

#endif // VAESA_VAESA_ADAPTIVE_HH
