#include "vaesa/predictor.hh"

#include "util/logging.hh"

namespace vaesa {

Predictor::Predictor(const PredictorOptions &options, Rng &rng,
                     const std::string &name)
    : options_(options)
{
    net_ = nn::makeMlp(options_.designDim + options_.layerDim,
                       options_.hiddenDims, 1, rng,
                       nn::OutputActivation::None,
                       options_.leakySlope);
    // Prefix parameter names for serialization uniqueness.
    for (nn::Parameter *p : net_->parameters())
        p->name = name + "." + p->name;
}

const Matrix &
Predictor::forward(const Matrix &design, const Matrix &layer_feats)
{
    if (design.rows() != layer_feats.rows())
        panic("Predictor::forward: batch mismatch (", design.rows(),
              " vs ", layer_feats.rows(), ")");
    if (design.cols() != options_.designDim ||
        layer_feats.cols() != options_.layerDim) {
        panic("Predictor::forward: feature width mismatch");
    }
    // The joint (design | layer) batch lives in a member buffer: the
    // net's first Linear caches a view of its input, so the buffer
    // must survive until backward().
    jointBuf_.resizeBuffer(design.rows(),
                           options_.designDim + options_.layerDim);
    for (std::size_t r = 0; r < design.rows(); ++r) {
        for (std::size_t c = 0; c < options_.designDim; ++c)
            jointBuf_(r, c) = design(r, c);
        for (std::size_t c = 0; c < options_.layerDim; ++c)
            jointBuf_(r, options_.designDim + c) = layer_feats(r, c);
    }
    return net_->forward(jointBuf_);
}

const Matrix &
Predictor::backward(const Matrix &grad_out)
{
    const Matrix &grad_joint = net_->backward(grad_out);
    gradDesignBuf_.resizeBuffer(grad_joint.rows(),
                                options_.designDim);
    for (std::size_t r = 0; r < grad_joint.rows(); ++r)
        for (std::size_t c = 0; c < options_.designDim; ++c)
            gradDesignBuf_(r, c) = grad_joint(r, c);
    return gradDesignBuf_;
}

void
Predictor::setTraining(bool training)
{
    net_->setTraining(training);
}

std::vector<nn::Parameter *>
Predictor::parameters()
{
    return net_->parameters();
}

} // namespace vaesa
