#include "vaesa/vae.hh"

#include <cmath>

#include "nn/activation.hh"
#include "util/logging.hh"

namespace vaesa {

Vae::Vae(const VaeOptions &options, Rng &rng)
    : options_(options)
{
    if (options_.latentDim == 0 || options_.inputDim == 0)
        fatal("Vae: zero input or latent dimensionality");

    // Encoder trunk: input -> hidden dims, LeakyReLU throughout
    // (including after the last hidden layer, before the heads).
    // Hidden layers feed LeakyReLUs, so they get the matching
    // Kaiming gain; the mu/logvar heads keep the default.
    encoderTrunk_ = std::make_unique<nn::Sequential>();
    const double hidden_gain =
        nn::Linear::leakyReluGain(options_.leakySlope);
    std::size_t prev = options_.inputDim;
    int index = 0;
    for (std::size_t width : options_.hiddenDims) {
        encoderTrunk_->add(std::make_unique<nn::Linear>(
            prev, width, rng, "enc" + std::to_string(index++),
            hidden_gain));
        encoderTrunk_->add(std::make_unique<nn::LeakyReLU>(
            width, options_.leakySlope));
        prev = width;
    }
    if (options_.hiddenDims.empty())
        fatal("Vae: encoder needs at least one hidden layer");

    muHead_ = std::make_unique<nn::Linear>(
        prev, options_.latentDim, rng, "mu");
    logvarHead_ = std::make_unique<nn::Linear>(
        prev, options_.latentDim, rng, "logvar");

    // Decoder mirrors the encoder; sigmoid output keeps features in
    // (0, 1), matching the normalized input domain.
    std::vector<std::size_t> reversed(options_.hiddenDims.rbegin(),
                                      options_.hiddenDims.rend());
    decoder_ = nn::makeMlp(options_.latentDim, reversed,
                           options_.inputDim, rng,
                           nn::OutputActivation::Sigmoid,
                           options_.leakySlope);
}

Vae::ForwardResult
Vae::forward(const Matrix &x, Rng &rng, bool sample_latent)
{
    ForwardResult fr;
    forwardInto(x, rng, sample_latent, fr);
    return fr;
}

void
Vae::forwardInto(const Matrix &x, Rng &rng, bool sample_latent,
                 ForwardResult &fr)
{
    const Matrix &trunk = encoderTrunk_->forward(x);
    fr.mu.copyFrom(muHead_->forward(trunk));
    fr.logvar.copyFrom(logvarHead_->forward(trunk));

    fr.eps.resizeBuffer(fr.mu.rows(), fr.mu.cols());
    if (sample_latent)
        fr.eps.randomNormal(rng, 0.0, 1.0);
    else
        fr.eps.fill(0.0);

    fr.z.copyFrom(fr.mu);
    for (std::size_t r = 0; r < fr.z.rows(); ++r) {
        for (std::size_t c = 0; c < fr.z.cols(); ++c) {
            fr.z(r, c) += std::exp(0.5 * fr.logvar(r, c)) *
                          fr.eps(r, c);
        }
    }
    fr.recon.copyFrom(decoder_->forward(fr.z));
}

void
Vae::backward(const ForwardResult &fr, const Matrix &grad_recon,
              const Matrix &grad_mu_kld, const Matrix &grad_logvar_kld,
              const Matrix &grad_z_extra)
{
    // Through the decoder into z.
    gradZ_.copyFrom(decoder_->backward(grad_recon));
    if (grad_z_extra.size() > 0)
        gradZ_.add(grad_z_extra);

    // Through reparameterization: z = mu + exp(logvar/2) * eps.
    gradMu_.copyFrom(gradZ_);
    gradMu_.add(grad_mu_kld);
    gradLogvar_.copyFrom(grad_logvar_kld);
    for (std::size_t r = 0; r < gradZ_.rows(); ++r) {
        for (std::size_t c = 0; c < gradZ_.cols(); ++c) {
            gradLogvar_(r, c) +=
                gradZ_(r, c) * fr.eps(r, c) * 0.5 *
                std::exp(0.5 * fr.logvar(r, c));
        }
    }

    // Through the heads into the shared trunk.
    gradTrunk_.copyFrom(muHead_->backward(gradMu_));
    gradTrunk_.add(logvarHead_->backward(gradLogvar_));
    encoderTrunk_->backward(gradTrunk_);
}

Matrix
Vae::encodeMean(const Matrix &x)
{
    // Run in eval mode so no stage caches a view of the (possibly
    // temporary) input; restore the previous mode afterwards.
    if (training_) {
        encoderTrunk_->setTraining(false);
        muHead_->setTraining(false);
    }
    Matrix mean = muHead_->forward(encoderTrunk_->forward(x));
    if (training_) {
        encoderTrunk_->setTraining(true);
        muHead_->setTraining(true);
    }
    return mean;
}

const Matrix &
Vae::decode(const Matrix &z)
{
    return decoder_->forward(z);
}

std::vector<nn::Parameter *>
Vae::parameters()
{
    std::vector<nn::Parameter *> params;
    for (nn::Parameter *p : encoderTrunk_->parameters())
        params.push_back(p);
    for (nn::Parameter *p : muHead_->parameters())
        params.push_back(p);
    for (nn::Parameter *p : logvarHead_->parameters())
        params.push_back(p);
    for (nn::Parameter *p : decoder_->parameters())
        params.push_back(p);
    return params;
}

void
Vae::setTraining(bool training)
{
    training_ = training;
    encoderTrunk_->setTraining(training);
    muHead_->setTraining(training);
    logvarHead_->setTraining(training);
    decoder_->setTraining(training);
}

} // namespace vaesa
