#include "vaesa/vae.hh"

#include <cmath>

#include "nn/activation.hh"
#include "util/logging.hh"

namespace vaesa {

Vae::Vae(const VaeOptions &options, Rng &rng)
    : options_(options)
{
    if (options_.latentDim == 0 || options_.inputDim == 0)
        fatal("Vae: zero input or latent dimensionality");

    // Encoder trunk: input -> hidden dims, LeakyReLU throughout
    // (including after the last hidden layer, before the heads).
    encoderTrunk_ = std::make_unique<nn::Sequential>();
    std::size_t prev = options_.inputDim;
    int index = 0;
    for (std::size_t width : options_.hiddenDims) {
        encoderTrunk_->add(std::make_unique<nn::Linear>(
            prev, width, rng, "enc" + std::to_string(index++)));
        encoderTrunk_->add(std::make_unique<nn::LeakyReLU>(
            width, options_.leakySlope));
        prev = width;
    }
    if (options_.hiddenDims.empty())
        fatal("Vae: encoder needs at least one hidden layer");

    muHead_ = std::make_unique<nn::Linear>(
        prev, options_.latentDim, rng, "mu");
    logvarHead_ = std::make_unique<nn::Linear>(
        prev, options_.latentDim, rng, "logvar");

    // Decoder mirrors the encoder; sigmoid output keeps features in
    // (0, 1), matching the normalized input domain.
    std::vector<std::size_t> reversed(options_.hiddenDims.rbegin(),
                                      options_.hiddenDims.rend());
    decoder_ = nn::makeMlp(options_.latentDim, reversed,
                           options_.inputDim, rng,
                           nn::OutputActivation::Sigmoid,
                           options_.leakySlope);
}

Vae::ForwardResult
Vae::forward(const Matrix &x, Rng &rng, bool sample_latent)
{
    ForwardResult fr;
    trunkOut_ = encoderTrunk_->forward(x);
    fr.mu = muHead_->forward(trunkOut_);
    fr.logvar = logvarHead_->forward(trunkOut_);

    fr.eps = Matrix(fr.mu.rows(), fr.mu.cols());
    if (sample_latent)
        fr.eps.randomNormal(rng, 0.0, 1.0);

    fr.z = fr.mu;
    for (std::size_t r = 0; r < fr.z.rows(); ++r) {
        for (std::size_t c = 0; c < fr.z.cols(); ++c) {
            fr.z(r, c) += std::exp(0.5 * fr.logvar(r, c)) *
                          fr.eps(r, c);
        }
    }
    fr.recon = decoder_->forward(fr.z);
    return fr;
}

void
Vae::backward(const ForwardResult &fr, const Matrix &grad_recon,
              const Matrix &grad_mu_kld, const Matrix &grad_logvar_kld,
              const Matrix &grad_z_extra)
{
    // Through the decoder into z.
    Matrix grad_z = decoder_->backward(grad_recon);
    if (grad_z_extra.size() > 0)
        grad_z.add(grad_z_extra);

    // Through reparameterization: z = mu + exp(logvar/2) * eps.
    Matrix grad_mu = grad_z;
    grad_mu.add(grad_mu_kld);
    Matrix grad_logvar = grad_logvar_kld;
    for (std::size_t r = 0; r < grad_z.rows(); ++r) {
        for (std::size_t c = 0; c < grad_z.cols(); ++c) {
            grad_logvar(r, c) +=
                grad_z(r, c) * fr.eps(r, c) * 0.5 *
                std::exp(0.5 * fr.logvar(r, c));
        }
    }

    // Through the heads into the shared trunk.
    Matrix grad_trunk = muHead_->backward(grad_mu);
    grad_trunk.add(logvarHead_->backward(grad_logvar));
    encoderTrunk_->backward(grad_trunk);
}

Matrix
Vae::encodeMean(const Matrix &x)
{
    return muHead_->forward(encoderTrunk_->forward(x));
}

Matrix
Vae::decode(const Matrix &z)
{
    return decoder_->forward(z);
}

std::vector<nn::Parameter *>
Vae::parameters()
{
    std::vector<nn::Parameter *> params;
    for (nn::Parameter *p : encoderTrunk_->parameters())
        params.push_back(p);
    for (nn::Parameter *p : muHead_->parameters())
        params.push_back(p);
    for (nn::Parameter *p : logvarHead_->parameters())
        params.push_back(p);
    for (nn::Parameter *p : decoder_->parameters())
        params.push_back(p);
    return params;
}

} // namespace vaesa
