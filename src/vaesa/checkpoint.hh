/**
 * @file
 * Crash-safe training checkpoints: everything the Trainer needs to
 * continue a killed run bit-identically to an uninterrupted one --
 * model parameters, optimizer moments, the shuffling/sampling RNG
 * state, and the per-epoch loss history so far.
 *
 * Files are written with last-good rotation (`path` + `path.prev`)
 * and loaded with automatic fallback, so a crash mid-save can never
 * cost more than one checkpoint interval of work.
 */

#ifndef VAESA_VAESA_CHECKPOINT_HH
#define VAESA_VAESA_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/optim.hh"
#include "util/load_error.hh"
#include "util/rng.hh"
#include "vaesa/trainer.hh"

namespace vaesa {

/** Non-tensor part of a training checkpoint. */
struct TrainCheckpoint
{
    /** Epochs fully completed before the snapshot. */
    std::uint64_t epochsDone = 0;

    /** Loss history of the completed epochs. */
    std::vector<EpochStats> history;

    /** RNG state at the epoch boundary. */
    RngState rng;
};

/**
 * Write a training checkpoint (with rotation). The parameters and
 * optimizer state are read from the given optimizer.
 * @return nullopt on success, the write error otherwise.
 */
std::optional<LoadError>
saveTrainCheckpoint(const std::string &path,
                    const TrainCheckpoint &checkpoint,
                    const nn::Optimizer &optimizer);

/**
 * Load a checkpoint written by saveTrainCheckpoint(), with fallback
 * to `path.prev`. On success the optimizer's parameters and internal
 * state are overwritten in place.
 * @return the non-tensor state, or the primary file's error.
 */
Expected<TrainCheckpoint>
loadTrainCheckpoint(const std::string &path, nn::Optimizer &optimizer);

} // namespace vaesa

#endif // VAESA_VAESA_CHECKPOINT_HH
