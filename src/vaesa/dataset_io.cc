#include "vaesa/dataset_io.hh"

#include <fstream>
#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"

namespace vaesa {

namespace {

/** Rebuild a LayerShape from the 8 stored dimensions. */
LayerShape
layerFromFields(const std::string &name,
                const std::array<std::int64_t, 8> &dims)
{
    LayerShape layer;
    layer.name = name;
    layer.r = dims[0];
    layer.s = dims[1];
    layer.p = dims[2];
    layer.q = dims[3];
    layer.c = dims[4];
    layer.k = dims[5];
    layer.strideW = dims[6];
    layer.strideH = dims[7];
    return layer;
}

} // namespace

bool
saveDatasetCsv(const std::string &path, const Dataset &data)
{
    std::ofstream probe(path);
    if (!probe)
        return false;
    probe.close();

    CsvWriter csv(path);
    csv.header({"kind", "name_or_index", "f0", "f1", "f2", "f3",
                "f4", "f5", "f6", "f7"});
    for (const LayerShape &layer : data.layerPool()) {
        csv.row({"layer", layer.name, std::to_string(layer.r),
                 std::to_string(layer.s), std::to_string(layer.p),
                 std::to_string(layer.q), std::to_string(layer.c),
                 std::to_string(layer.k),
                 std::to_string(layer.strideW),
                 std::to_string(layer.strideH)});
    }
    for (const DataSample &s : data.samples()) {
        csv.row({"sample", std::to_string(s.layerIndex),
                 std::to_string(s.config.numPes),
                 std::to_string(s.config.numMacs),
                 std::to_string(s.config.accumBufBytes),
                 std::to_string(s.config.weightBufBytes),
                 std::to_string(s.config.inputBufBytes),
                 std::to_string(s.config.globalBufBytes),
                 CsvWriter::cell(s.logLatency),
                 CsvWriter::cell(s.logEnergy)});
    }
    return true;
}

std::optional<Dataset>
loadDatasetCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;

    std::vector<LayerShape> pool;
    std::vector<DataSample> samples;

    std::string line;
    std::getline(in, line); // header
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::vector<std::string> cells;
        std::string cell;
        while (std::getline(iss, cell, ','))
            cells.push_back(cell);
        if (cells.size() != 10)
            fatal("loadDatasetCsv: malformed row at line ", line_no,
                  " of '", path, "'");
        if (cells[0] == "layer") {
            std::array<std::int64_t, 8> dims{};
            for (int i = 0; i < 8; ++i)
                dims[i] = std::stoll(cells[2 + i]);
            pool.push_back(layerFromFields(cells[1], dims));
        } else if (cells[0] == "sample") {
            DataSample s;
            s.layerIndex =
                static_cast<std::size_t>(std::stoull(cells[1]));
            s.config.numPes = std::stoll(cells[2]);
            s.config.numMacs = std::stoll(cells[3]);
            s.config.accumBufBytes = std::stoll(cells[4]);
            s.config.weightBufBytes = std::stoll(cells[5]);
            s.config.inputBufBytes = std::stoll(cells[6]);
            s.config.globalBufBytes = std::stoll(cells[7]);
            s.logLatency = std::stod(cells[8]);
            s.logEnergy = std::stod(cells[9]);
            samples.push_back(std::move(s));
        } else {
            fatal("loadDatasetCsv: unknown row kind '", cells[0],
                  "' at line ", line_no);
        }
    }
    if (pool.empty() || samples.empty())
        fatal("loadDatasetCsv: '", path,
              "' contains no layers or no samples");

    // Recompute the feature vectors from the loaded configs/layers.
    for (DataSample &s : samples) {
        if (s.layerIndex >= pool.size())
            fatal("loadDatasetCsv: sample references layer ",
                  s.layerIndex, " of ", pool.size());
        s.hwFeatures = designSpace().toFeatures(s.config);
        s.layerFeatures = pool[s.layerIndex].toFeatures();
    }
    return Dataset(std::move(samples), std::move(pool));
}

Dataset
mergeDatasets(const Dataset &a, const Dataset &b)
{
    if (a.layerPool().size() != b.layerPool().size())
        fatal("mergeDatasets: layer pools differ in size");
    for (std::size_t i = 0; i < a.layerPool().size(); ++i) {
        if (!a.layerPool()[i].sameShape(b.layerPool()[i]))
            fatal("mergeDatasets: layer pools differ at index ", i);
    }
    std::vector<DataSample> merged = a.samples();
    merged.insert(merged.end(), b.samples().begin(),
                  b.samples().end());
    return Dataset(std::move(merged), a.layerPool());
}

} // namespace vaesa
