#include "vaesa/dataset_io.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/atomic_io.hh"
#include "util/csv.hh"

namespace vaesa {

namespace {

/** Rebuild a LayerShape from the 8 stored dimensions. */
LayerShape
layerFromFields(const std::string &name,
                const std::array<std::int64_t, 8> &dims)
{
    LayerShape layer;
    layer.name = name;
    layer.r = dims[0];
    layer.s = dims[1];
    layer.p = dims[2];
    layer.q = dims[3];
    layer.c = dims[4];
    layer.k = dims[5];
    layer.strideW = dims[6];
    layer.strideH = dims[7];
    return layer;
}

/** Exception-free integer cell parse (whole cell must be a number). */
bool
parseI64(const std::string &cell, std::int64_t &out)
{
    if (cell.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoll(cell.c_str(), &end, 10);
    // strtoll saturates on overflow; a 20-digit cell must be a load
    // error, not a "valid" 9.2e18 dimension.
    if (errno == ERANGE)
        return false;
    return end == cell.c_str() + cell.size();
}

/** Exception-free double cell parse (whole cell must be a number). */
bool
parseF64(const std::string &cell, double &out)
{
    if (cell.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(cell.c_str(), &end);
    return end == cell.c_str() + cell.size();
}

LoadError
rowError(const std::string &path, std::size_t line,
         const std::string &message)
{
    return makeLoadError(LoadError::Kind::Malformed, path, line,
                         message);
}

} // namespace

std::optional<LoadError>
saveDatasetCsv(const std::string &path, const Dataset &data)
{
    std::string out;
    out += CsvWriter::formatRow({"kind", "name_or_index", "f0", "f1",
                                 "f2", "f3", "f4", "f5", "f6", "f7"});
    for (const LayerShape &layer : data.layerPool()) {
        out += CsvWriter::formatRow(
            {"layer", layer.name, std::to_string(layer.r),
             std::to_string(layer.s), std::to_string(layer.p),
             std::to_string(layer.q), std::to_string(layer.c),
             std::to_string(layer.k), std::to_string(layer.strideW),
             std::to_string(layer.strideH)});
    }
    for (const DataSample &s : data.samples()) {
        out += CsvWriter::formatRow(
            {"sample", std::to_string(s.layerIndex),
             std::to_string(s.config.numPes),
             std::to_string(s.config.numMacs),
             std::to_string(s.config.accumBufBytes),
             std::to_string(s.config.weightBufBytes),
             std::to_string(s.config.inputBufBytes),
             std::to_string(s.config.globalBufBytes),
             CsvWriter::cell(s.logLatency),
             CsvWriter::cell(s.logEnergy)});
    }
    return atomicWriteFile(path, out);
}

Expected<Dataset>
loadDatasetCsv(const std::string &path)
{
    Expected<std::string> bytes = readFileBytes(path);
    if (!bytes)
        return bytes.error();

    std::vector<LayerShape> pool;
    std::vector<DataSample> samples;

    std::istringstream in(bytes.value());
    std::string line;
    std::getline(in, line); // header
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::vector<std::string> cells;
        std::string cell;
        while (std::getline(iss, cell, ','))
            cells.push_back(cell);
        if (cells.size() != 10)
            return rowError(path, line_no,
                            "malformed row: expected 10 cells, got " +
                                std::to_string(cells.size()));
        if (cells[0] == "layer") {
            std::array<std::int64_t, 8> dims{};
            for (int i = 0; i < 8; ++i)
                if (!parseI64(cells[2 + i], dims[i]))
                    return rowError(path, line_no,
                                    "bad layer dimension '" +
                                        cells[2 + i] + "'");
            const LayerShape parsed =
                layerFromFields(cells[1], dims);
            // Hostile-input boundary: the pool feeds straight into
            // cost-model arithmetic, so reject rows the parser-side
            // loaders would reject too.
            if (!parsed.isSane())
                return rowError(path, line_no,
                                "non-positive layer dimension");
            if (const auto oversize = parsed.oversizeReason())
                return rowError(path, line_no, *oversize);
            pool.push_back(parsed);
        } else if (cells[0] == "sample") {
            DataSample s;
            std::int64_t layer_index = 0;
            std::array<std::int64_t, 6> config{};
            if (!parseI64(cells[1], layer_index) || layer_index < 0)
                return rowError(path, line_no,
                                "bad layer index '" + cells[1] + "'");
            for (int i = 0; i < 6; ++i)
                if (!parseI64(cells[2 + i], config[i]))
                    return rowError(path, line_no,
                                    "bad configuration value '" +
                                        cells[2 + i] + "'");
            if (!parseF64(cells[8], s.logLatency) ||
                !parseF64(cells[9], s.logEnergy))
                return rowError(path, line_no, "bad label value");
            s.layerIndex = static_cast<std::size_t>(layer_index);
            s.config.numPes = config[0];
            s.config.numMacs = config[1];
            s.config.accumBufBytes = config[2];
            s.config.weightBufBytes = config[3];
            s.config.inputBufBytes = config[4];
            s.config.globalBufBytes = config[5];
            samples.push_back(std::move(s));
        } else {
            return rowError(path, line_no,
                            "unknown row kind '" + cells[0] + "'");
        }
    }
    if (pool.empty() || samples.empty())
        return makeLoadError(LoadError::Kind::Malformed, path, 0,
                             "contains no layers or no samples");

    // Recompute the feature vectors from the loaded configs/layers.
    for (DataSample &s : samples) {
        if (s.layerIndex >= pool.size())
            return makeLoadError(
                LoadError::Kind::Malformed, path, 0,
                "sample references layer " +
                    std::to_string(s.layerIndex) + " of " +
                    std::to_string(pool.size()));
        s.hwFeatures = designSpace().toFeatures(s.config);
        s.layerFeatures = pool[s.layerIndex].toFeatures();
    }
    return Dataset(std::move(samples), std::move(pool));
}

Expected<Dataset>
mergeDatasets(const Dataset &a, const Dataset &b)
{
    if (a.layerPool().size() != b.layerPool().size())
        return makeLoadError(LoadError::Kind::ShapeMismatch, "", 0,
                             "mergeDatasets: layer pools differ in "
                             "size");
    for (std::size_t i = 0; i < a.layerPool().size(); ++i) {
        if (!a.layerPool()[i].sameShape(b.layerPool()[i]))
            return makeLoadError(
                LoadError::Kind::ShapeMismatch, "", 0,
                "mergeDatasets: layer pools differ at index " +
                    std::to_string(i));
    }
    std::vector<DataSample> merged = a.samples();
    merged.insert(merged.end(), b.samples().begin(),
                  b.samples().end());
    return Dataset(std::move(merged), a.layerPool());
}

} // namespace vaesa
