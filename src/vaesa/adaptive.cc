#include "vaesa/adaptive.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace vaesa {

namespace {

/**
 * Latent objective that records every decoded design's per-layer
 * results as training samples while scoring the workload metric.
 */
class RecordingLatentObjective : public Objective
{
  public:
    RecordingLatentObjective(VaesaFramework &framework,
                             const Evaluator &evaluator,
                             const std::vector<LayerShape> &layers,
                             double radius, Metric metric,
                             std::vector<DataSample> &sink)
        : framework_(framework), evaluator_(evaluator),
          layers_(layers), radius_(radius), metric_(metric),
          sink_(sink)
    {
    }

    std::size_t dim() const override
    {
        return framework_.latentDim();
    }

    std::vector<double> lowerBounds() const override
    {
        return std::vector<double>(dim(), -radius_);
    }

    std::vector<double> upperBounds() const override
    {
        return std::vector<double>(dim(), radius_);
    }

    double
    evaluate(const std::vector<double> &x) override
    {
        const AcceleratorConfig config =
            framework_.decodeLatent(x);
        EvalResult total;
        total.valid = true;
        for (std::size_t li = 0; li < layers_.size(); ++li) {
            const EvalResult r =
                evaluator_.evaluateLayer(config, layers_[li]);
            if (!r.valid) {
                total.valid = false;
                break;
            }
            total.latencyCycles += r.latencyCycles;
            total.energyPj += r.energyPj;

            DataSample sample;
            sample.config = config;
            sample.layerIndex = li;
            sample.hwFeatures = designSpace().toFeatures(config);
            sample.layerFeatures = layers_[li].toFeatures();
            sample.logLatency = log2d(r.latencyCycles);
            sample.logEnergy = log2d(r.energyPj);
            sink_.push_back(std::move(sample));
        }
        total.edp = total.latencyCycles * total.energyPj;
        return metricValue(total, metric_);
    }

  private:
    VaesaFramework &framework_;
    const Evaluator &evaluator_;
    const std::vector<LayerShape> &layers_;
    double radius_;
    Metric metric_;
    std::vector<DataSample> &sink_;
};

} // namespace

AdaptiveVaeBo::AdaptiveVaeBo(VaesaFramework &framework,
                             const Evaluator &evaluator,
                             const AdaptiveBoOptions &options)
    : framework_(framework), evaluator_(evaluator), options_(options)
{
}

SearchTrace
AdaptiveVaeBo::run(const std::vector<LayerShape> &layers,
                   std::size_t samples, Rng &rng)
{
    if (layers.empty())
        fatal("AdaptiveVaeBo::run needs at least one layer");
    gathered_.clear();
    fineTunes_ = 0;

    RecordingLatentObjective objective(framework_, evaluator_,
                                       layers, options_.radius,
                                       options_.metric, gathered_);
    const BayesOpt bo(options_.bo);
    SearchTrace trace;
    std::size_t tuned_until = 0;

    while (trace.points.size() < samples) {
        const std::size_t chunk =
            std::min(options_.retrainInterval,
                     samples - trace.points.size());
        bo.continueRun(objective, trace, chunk, rng);

        const std::size_t fresh = gathered_.size() - tuned_until;
        if (trace.points.size() < samples &&
            fresh >= options_.minNewSamples) {
            // Fine-tune on everything gathered so far (old samples
            // included, so the model does not forget the rest of the
            // space).
            const Dataset growth(gathered_, layers);
            framework_.fineTune(growth, options_.fineTuneEpochs,
                                rng.next());
            tuned_until = gathered_.size();
            ++fineTunes_;
            debugLog("adaptive vae_bo: fine-tune #", fineTunes_,
                     " on ", gathered_.size(), " samples");
        }
    }
    return trace;
}

} // namespace vaesa
