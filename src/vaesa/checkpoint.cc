#include "vaesa/checkpoint.hh"

#include "nn/serialize.hh"
#include "util/atomic_io.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/state_io.hh"

namespace vaesa {

namespace {

constexpr std::uint32_t checkpointMagic = 0x56434B50; // "VCKP"
constexpr std::uint32_t checkpointVersion = 1;

// History entries beyond this are corruption, not training runs.
constexpr std::uint64_t maxHistoryLen = 1u << 24;

void
putEpochStats(ByteBuffer &out, const EpochStats &stats)
{
    out.putF64(stats.reconLoss);
    out.putF64(stats.kldLoss);
    out.putF64(stats.latencyLoss);
    out.putF64(stats.energyLoss);
    out.putF64(stats.totalLoss);
}

EpochStats
getEpochStats(ByteReader &in)
{
    EpochStats stats;
    stats.reconLoss = in.getF64();
    stats.kldLoss = in.getF64();
    stats.latencyLoss = in.getF64();
    stats.energyLoss = in.getF64();
    stats.totalLoss = in.getF64();
    return stats;
}

Expected<TrainCheckpoint>
loadTrainCheckpointFile(const std::string &path,
                        nn::Optimizer &optimizer)
{
    Expected<std::string> bytes = readFileBytes(path);
    if (!bytes)
        return bytes.error();
    RecordReader in(bytes.value(), path);
    std::uint32_t version = 0;
    if (auto err = in.readHeader(checkpointMagic, checkpointVersion,
                                 checkpointVersion, &version))
        return *err;

    Expected<std::string> meta_record = in.readRecord();
    if (!meta_record)
        return meta_record.error();
    ByteReader meta(meta_record.value().data(),
                    meta_record.value().size());
    TrainCheckpoint checkpoint;
    checkpoint.epochsDone = meta.getU64();
    if (!readRngState(meta, checkpoint.rng))
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt RNG state");
    const std::uint64_t history_len = meta.getU64();
    if (meta.failed() || history_len > maxHistoryLen)
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt history length");
    // Each entry is five f64s; a declared length the record cannot
    // possibly back would otherwise drive a huge up-front reserve()
    // from a CRC-valid but hostile file (found by fuzzing).
    if (history_len > meta.remaining() / (5 * sizeof(double)))
        return in.makeError(LoadError::Kind::Malformed,
                            "history length exceeds record payload");
    checkpoint.history.reserve(history_len);
    for (std::uint64_t i = 0; i < history_len; ++i)
        checkpoint.history.push_back(getEpochStats(meta));
    if (meta.failed() || !meta.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt checkpoint metadata record");

    Expected<std::string> optim_record = in.readRecord();
    if (!optim_record)
        return optim_record.error();
    ByteReader optim_reader(optim_record.value().data(),
                            optim_record.value().size());
    if (auto err = optimizer.deserializeState(optim_reader)) {
        err->file = path;
        return *err;
    }
    if (!optim_reader.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "trailing bytes in optimizer record");

    if (auto err = nn::readParameterRecords(in, optimizer.params()))
        return *err;
    if (!in.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "trailing bytes after last parameter");
    return checkpoint;
}

} // namespace

std::optional<LoadError>
saveTrainCheckpoint(const std::string &path,
                    const TrainCheckpoint &checkpoint,
                    const nn::Optimizer &optimizer)
{
    RecordWriter out(checkpointMagic, checkpointVersion);

    ByteBuffer meta;
    meta.putU64(checkpoint.epochsDone);
    putRngState(meta, checkpoint.rng);
    meta.putU64(checkpoint.history.size());
    for (const EpochStats &stats : checkpoint.history)
        putEpochStats(meta, stats);
    out.writeRecord(meta);

    ByteBuffer optim_state;
    optimizer.serializeState(optim_state);
    out.writeRecord(optim_state);

    nn::writeParameterRecords(out, optimizer.params());

    faultCheck("checkpoint_save");
    return atomicWriteFileWithRotation(path, out.bytes());
}

Expected<TrainCheckpoint>
loadTrainCheckpoint(const std::string &path, nn::Optimizer &optimizer)
{
    // A corrupt file can fail mid-parse after overwriting some
    // parameters or moments; snapshot everything first so a failed
    // load leaves the model exactly as it was (fresh-start safe).
    ByteBuffer saved_state;
    optimizer.serializeState(saved_state);
    std::vector<Matrix> saved_params;
    saved_params.reserve(optimizer.params().size());
    for (const nn::Parameter *p : optimizer.params())
        saved_params.push_back(p->value);

    Expected<TrainCheckpoint> result =
        loadWithFallback<TrainCheckpoint>(
            path, [&optimizer](const std::string &file) {
                return loadTrainCheckpointFile(file, optimizer);
            });
    if (!result) {
        ByteReader reader(saved_state.data().data(),
                          saved_state.size());
        if (optimizer.deserializeState(reader))
            panic("loadTrainCheckpoint: rollback failed");
        for (std::size_t i = 0; i < saved_params.size(); ++i)
            optimizer.params()[i]->value = saved_params[i];
    }
    return result;
}

} // namespace vaesa
