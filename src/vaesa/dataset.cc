#include "vaesa/dataset.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace vaesa {

Dataset::Dataset(std::vector<DataSample> samples,
                 std::vector<LayerShape> layer_pool)
    : samples_(std::move(samples)), pool_(std::move(layer_pool))
{
    if (samples_.empty())
        fatal("Dataset constructed with no samples (design space too "
              "hostile or budget too small)");

    const std::size_t n = samples_.size();
    Matrix hw_raw(n, numHwParams);
    Matrix layer_raw(n, numLayerFeatures);
    Matrix lat_raw(n, 1);
    Matrix en_raw(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        hw_raw.setRow(i, samples_[i].hwFeatures);
        layer_raw.setRow(i, samples_[i].layerFeatures);
        lat_raw(i, 0) = samples_[i].logLatency;
        en_raw(i, 0) = samples_[i].logEnergy;
    }

    hwNorm_.setBounds(designSpace().featureLowerBounds(),
                      designSpace().featureUpperBounds());
    layerNorm_.fit(layer_raw);
    latNorm_.fit(lat_raw);
    enNorm_.fit(en_raw);

    hw_ = hwNorm_.transform(hw_raw);
    layer_ = layerNorm_.transform(layer_raw);
    latency_ = latNorm_.transform(lat_raw);
    energy_ = enNorm_.transform(en_raw);
}

double
Dataset::sampleEdp(std::size_t i) const
{
    if (i >= samples_.size())
        panic("Dataset::sampleEdp: index out of range");
    return std::exp2(samples_[i].logLatency + samples_[i].logEnergy);
}

std::size_t
Dataset::worstSampleIndex() const
{
    std::size_t worst = 0;
    double worst_log = -1e300;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const double l =
            samples_[i].logLatency + samples_[i].logEnergy;
        if (l > worst_log) {
            worst_log = l;
            worst = i;
        }
    }
    return worst;
}

std::size_t
Dataset::bestSampleIndex() const
{
    std::size_t best = 0;
    double best_log = 1e300;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const double l =
            samples_[i].logLatency + samples_[i].logEnergy;
        if (l < best_log) {
            best_log = l;
            best = i;
        }
    }
    return best;
}

DatasetBuilder::DatasetBuilder(const Evaluator &evaluator,
                               std::vector<LayerShape> layer_pool)
    : evaluator_(evaluator), pool_(std::move(layer_pool))
{
    if (pool_.empty())
        fatal("DatasetBuilder needs a non-empty layer pool");
}

void
DatasetBuilder::setLayerWeights(std::vector<double> weights)
{
    if (weights.empty()) {
        cumulativeWeights_.clear();
        return;
    }
    if (weights.size() != pool_.size())
        fatal("DatasetBuilder::setLayerWeights: ", weights.size(),
              " weights for ", pool_.size(), " pool layers");
    cumulativeWeights_.resize(weights.size());
    double running = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        if (!(weights[i] > 0.0) || !std::isfinite(weights[i]))
            fatal("DatasetBuilder::setLayerWeights: weight ", i,
                  " must be positive and finite");
        running += weights[i];
        cumulativeWeights_[i] = running;
    }
}

Dataset
DatasetBuilder::build(std::size_t target_samples, Rng &rng,
                      std::size_t max_attempts_factor) const
{
    std::vector<DataSample> samples;
    samples.reserve(target_samples);
    const std::size_t max_attempts =
        target_samples * max_attempts_factor;
    std::size_t attempts = 0;
    std::size_t rejected = 0;

    while (samples.size() < target_samples &&
           attempts < max_attempts) {
        ++attempts;
        const AcceleratorConfig config =
            designSpace().randomConfig(rng);
        std::size_t layer_idx;
        if (cumulativeWeights_.empty()) {
            layer_idx = rng.index(pool_.size());
        } else {
            // Inverse-CDF draw over the cumulative weights; uniform()
            // is in [0,1) so u never reaches the total and the
            // upper_bound is always a valid pool index.
            const double u =
                rng.uniform() * cumulativeWeights_.back();
            layer_idx = static_cast<std::size_t>(
                std::upper_bound(cumulativeWeights_.begin(),
                                 cumulativeWeights_.end(), u) -
                cumulativeWeights_.begin());
            layer_idx = std::min(layer_idx, pool_.size() - 1);
        }
        const LayerShape &layer = pool_[layer_idx];
        const EvalResult result =
            evaluator_.evaluateLayer(config, layer);
        if (!result.valid || result.latencyCycles <= 0.0 ||
            result.energyPj <= 0.0) {
            ++rejected;
            continue;
        }
        DataSample sample;
        sample.config = config;
        sample.layerIndex = layer_idx;
        sample.hwFeatures = designSpace().toFeatures(config);
        sample.layerFeatures = layer.toFeatures();
        sample.logLatency = log2d(result.latencyCycles);
        sample.logEnergy = log2d(result.energyPj);
        samples.push_back(std::move(sample));
    }

    if (samples.size() < target_samples) {
        warn("DatasetBuilder: gathered only ", samples.size(), " of ",
             target_samples, " samples after ", attempts, " draws");
    }
    debugLog("DatasetBuilder: ", samples.size(), " valid samples, ",
             rejected, " rejected draws");
    return Dataset(std::move(samples), pool_);
}

} // namespace vaesa
