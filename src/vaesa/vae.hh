/**
 * @file
 * The variational autoencoder at the heart of VAESA (Figure 2/3):
 * a symmetric LeakyReLU MLP encoder/decoder with Gaussian
 * reparameterization. The encoder trunk feeds two linear heads
 * producing mu and log-variance; the decoder ends in a sigmoid since
 * hardware features are normalized into [0, 1).
 */

#ifndef VAESA_VAESA_VAE_HH
#define VAESA_VAESA_VAE_HH

#include <memory>
#include <vector>

#include "nn/linear.hh"
#include "nn/sequential.hh"
#include "tensor/matrix.hh"
#include "util/rng.hh"

namespace vaesa {

/** Architecture hyperparameters of the VAE. */
struct VaeOptions
{
    /** Width of the input feature vector (6 hardware features). */
    std::size_t inputDim = 6;

    /** Hidden widths of the encoder trunk (decoder mirrors them). */
    std::vector<std::size_t> hiddenDims = {128, 64};

    /** Latent dimensionality z (paper default 4; 2 for plots). */
    std::size_t latentDim = 4;

    /** LeakyReLU negative-side slope. */
    double leakySlope = 0.01;
};

/** Encoder/decoder pair with reparameterized sampling. */
class Vae
{
  public:
    /** Construct with randomly initialized weights. */
    Vae(const VaeOptions &options, Rng &rng);

    /** Cached activations of one forward pass (caller-owned). */
    struct ForwardResult
    {
        /** Encoder means, (batch x latent). */
        Matrix mu;

        /** Encoder log-variances, (batch x latent). */
        Matrix logvar;

        /** Standard-normal noise used by reparameterization. */
        Matrix eps;

        /** Sampled latent z = mu + exp(logvar/2) * eps. */
        Matrix z;

        /** Decoder reconstruction, (batch x input). */
        Matrix recon;
    };

    /**
     * Full training-mode pass: encode, sample, decode.
     * @param x normalized input batch, (batch x input).
     * @param rng noise source for reparameterization.
     * @param sample_latent when false, z = mu (deterministic pass).
     */
    ForwardResult forward(const Matrix &x, Rng &rng,
                          bool sample_latent = true);

    /**
     * forward() into a caller-owned result. The result matrices are
     * reshaped with capacity retention, so repeated passes at a
     * steady batch size allocate nothing. The modules cache a view
     * of x (and of fr.z), so both must stay alive and unmodified
     * until the matching backward() returns.
     */
    void forwardInto(const Matrix &x, Rng &rng, bool sample_latent,
                     ForwardResult &fr);

    /**
     * Back-propagate one training step. Must follow the forward()
     * that produced fr; accumulates parameter gradients.
     *
     * @param fr cached forward activations.
     * @param grad_recon dL/d(recon) from the reconstruction loss.
     * @param grad_mu_kld dL/d(mu) from the (weighted) KLD term.
     * @param grad_logvar_kld dL/d(logvar) from the KLD term.
     * @param grad_z_extra extra dL/dz (from the predictors); may be
     *        empty when no predictor loss is attached.
     */
    void backward(const ForwardResult &fr, const Matrix &grad_recon,
                  const Matrix &grad_mu_kld,
                  const Matrix &grad_logvar_kld,
                  const Matrix &grad_z_extra);

    /** Encode to latent means only (inference path). */
    Matrix encodeMean(const Matrix &x);

    /**
     * Decode latent points to normalized features. Returns a
     * reference to the decoder's output buffer, valid until the
     * decoder runs again. A plain decoder forward in the current
     * train/eval mode: in training mode it replaces the decoder's
     * cached activations, so a subsequent backward() flows through
     * THIS decode (and z must stay alive until then).
     */
    const Matrix &decode(const Matrix &z);

    /** All learnable parameters (encoder, heads, decoder). */
    std::vector<nn::Parameter *> parameters();

    /** Propagate train/eval mode to every submodule. */
    void setTraining(bool training);

    /** Architecture options. */
    const VaeOptions &options() const { return options_; }

    /** Latent dimensionality. */
    std::size_t latentDim() const { return options_.latentDim; }

  private:
    VaeOptions options_;
    bool training_ = true;
    std::unique_ptr<nn::Sequential> encoderTrunk_;
    std::unique_ptr<nn::Linear> muHead_;
    std::unique_ptr<nn::Linear> logvarHead_;
    std::unique_ptr<nn::Sequential> decoder_;
    Matrix gradZ_;
    Matrix gradMu_;
    Matrix gradLogvar_;
    Matrix gradTrunk_;
};

} // namespace vaesa

#endif // VAESA_VAESA_VAE_HH
