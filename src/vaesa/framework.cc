#include "vaesa/framework.hh"

#include <cmath>

#include "nn/loss.hh"
#include "util/stats.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace vaesa {

VaesaFramework::VaesaFramework(const Dataset &data,
                               const FrameworkOptions &options,
                               std::uint64_t seed)
    : options_(options),
      hwNorm_(data.hwNormalizer()),
      layerNorm_(data.layerNormalizer()),
      latNorm_(data.latencyNormalizer()),
      enNorm_(data.energyNormalizer())
{
    Rng rng(seed);
    buildModels(rng);
    Trainer trainer(*vae_, *latencyPred_, *energyPred_,
                    options_.train);
    history_ = trainer.train(data, rng);
}

VaesaFramework::VaesaFramework(const FrameworkOptions &options,
                               std::uint64_t seed,
                               const Normalizer &hw_norm,
                               const Normalizer &layer_norm,
                               const Normalizer &lat_norm,
                               const Normalizer &en_norm)
    : options_(options), hwNorm_(hw_norm), layerNorm_(layer_norm),
      latNorm_(lat_norm), enNorm_(en_norm)
{
    Rng rng(seed);
    buildModels(rng);
}

void
VaesaFramework::buildModels(Rng &rng)
{
    vae_ = std::make_unique<Vae>(options_.vae, rng);

    PredictorOptions pred_opts;
    pred_opts.designDim = options_.vae.latentDim;
    pred_opts.layerDim = numLayerFeatures;
    pred_opts.hiddenDims = options_.predictorHidden;
    pred_opts.leakySlope = options_.vae.leakySlope;
    latencyPred_ = std::make_unique<Predictor>(pred_opts, rng,
                                               "latency");
    energyPred_ = std::make_unique<Predictor>(pred_opts, rng,
                                              "energy");
}

std::vector<EpochStats>
VaesaFramework::fineTune(const Dataset &data, std::size_t epochs,
                         std::uint64_t seed)
{
    // Re-normalize the new samples with this instance's scalers.
    const std::size_t n = data.size();
    Matrix hw_raw(n, numHwParams);
    Matrix layer_raw(n, numLayerFeatures);
    Matrix lat_raw(n, 1);
    Matrix en_raw(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const DataSample &s = data.samples()[i];
        hw_raw.setRow(i, s.hwFeatures);
        layer_raw.setRow(i, s.layerFeatures);
        lat_raw(i, 0) = s.logLatency;
        en_raw(i, 0) = s.logEnergy;
    }

    TrainOptions tune = options_.train;
    tune.epochs = epochs;
    Trainer trainer(*vae_, *latencyPred_, *energyPred_, tune);
    Rng rng(seed);
    const std::vector<EpochStats> tuned = trainer.train(
        hwNorm_.transform(hw_raw), layerNorm_.transform(layer_raw),
        latNorm_.transform(lat_raw), enNorm_.transform(en_raw),
        rng);
    history_.insert(history_.end(), tuned.begin(), tuned.end());
    return tuned;
}

std::vector<double>
VaesaFramework::encodeConfig(const AcceleratorConfig &config)
{
    const std::vector<double> feats =
        hwNorm_.transform(designSpace().toFeatures(config));
    Matrix x(1, feats.size());
    x.setRow(0, feats);
    return vae_->encodeMean(x).row(0);
}

AcceleratorConfig
VaesaFramework::decodeLatent(const std::vector<double> &z)
{
    // Every latent-space driver (BO/GA/random/GD) decodes through
    // here, so this one site covers decode counting + timing for all
    // of them. Runs on the calling thread (latent objectives declare
    // threadSafeEvaluate() == false), which is what lets it reuse
    // the member scratch buffers allocation-free.
    static metrics::Counter &decodesMetric =
        metrics::counter("search.decodes");
    static metrics::Histogram &decodeNsMetric =
        metrics::histogram("search.decode_ns");
    decodesMetric.inc();
    const metrics::ScopedTimer timer(decodeNsMetric);
    if (z.size() != latentDim())
        panic("decodeLatent: latent width ", z.size(), " != ",
              latentDim());
    zBuf_.resizeBuffer(1, z.size());
    zBuf_.setRow(0, z);
    vae_->decode(zBuf_).copyRowInto(0, featsUnitBuf_);
    hwNorm_.inverseInto(featsUnitBuf_, invBuf_);
    return designSpace().fromFeatures(invBuf_);
}

std::vector<double>
VaesaFramework::normalizedLayerFeatures(const LayerShape &layer) const
{
    return layerNorm_.transform(layer.toFeatures());
}

double
VaesaFramework::predictScore(const std::vector<double> &z,
                             const std::vector<double> &layer_feats,
                             std::vector<double> *grad_z)
{
    zBuf_.resizeBuffer(1, z.size());
    zBuf_.setRow(0, z);
    featsBuf_.resizeBuffer(1, layer_feats.size());
    featsBuf_.setRow(0, layer_feats);
    onesBuf_.resizeBuffer(1, 1);
    onesBuf_(0, 0) = 1.0;

    double score = latencyPred_->forward(zBuf_, featsBuf_)(0, 0);
    if (grad_z)
        gradBuf_.copyFrom(latencyPred_->backward(onesBuf_));

    score += energyPred_->forward(zBuf_, featsBuf_)(0, 0);
    if (grad_z) {
        gradBuf_.add(energyPred_->backward(onesBuf_));
        gradBuf_.copyRowInto(0, *grad_z);
    }
    return score;
}

double
VaesaFramework::predictedLatency(const std::vector<double> &z,
                                 const std::vector<double> &layer_feats)
{
    zBuf_.resizeBuffer(1, z.size());
    zBuf_.setRow(0, z);
    featsBuf_.resizeBuffer(1, layer_feats.size());
    featsBuf_.setRow(0, layer_feats);
    const double unit = latencyPred_->forward(zBuf_, featsBuf_)(0, 0);
    return std::exp2(latNorm_.inverse({unit})[0]);
}

double
VaesaFramework::predictedEnergy(const std::vector<double> &z,
                                const std::vector<double> &layer_feats)
{
    zBuf_.resizeBuffer(1, z.size());
    zBuf_.setRow(0, z);
    featsBuf_.resizeBuffer(1, layer_feats.size());
    featsBuf_.setRow(0, layer_feats);
    const double unit = energyPred_->forward(zBuf_, featsBuf_)(0, 0);
    return std::exp2(enNorm_.inverse({unit})[0]);
}

double
VaesaFramework::predictedEdp(const std::vector<double> &z,
                             const std::vector<double> &layer_feats)
{
    return predictedLatency(z, layer_feats) *
           predictedEnergy(z, layer_feats);
}

double
VaesaFramework::reconstructionError(const Dataset &data)
{
    Rng noiseless(0);
    const Vae::ForwardResult fr =
        vae_->forward(data.hwFeatures(), noiseless, false);
    return nn::mseLoss(fr.recon, data.hwFeatures()).value;
}

double
VaesaFramework::latentRadius(const Dataset &data, double quantile)
{
    const Matrix mu = vae_->encodeMean(data.hwFeatures());
    std::vector<double> magnitudes;
    magnitudes.reserve(mu.size());
    for (std::size_t r = 0; r < mu.rows(); ++r)
        for (std::size_t c = 0; c < mu.cols(); ++c)
            magnitudes.push_back(std::fabs(mu(r, c)));
    return 1.2 * percentile(std::move(magnitudes), quantile);
}

std::vector<nn::Parameter *>
VaesaFramework::parameters()
{
    std::vector<nn::Parameter *> params = vae_->parameters();
    for (nn::Parameter *p : latencyPred_->parameters())
        params.push_back(p);
    for (nn::Parameter *p : energyPred_->parameters())
        params.push_back(p);
    return params;
}

} // namespace vaesa
