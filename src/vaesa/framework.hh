/**
 * @file
 * VaesaFramework: the end-to-end public API of the reproduction.
 * Owns a trained VAE + predictor pair together with the dataset's
 * normalizers, and exposes the encode/decode/predict primitives that
 * the latent-space search flows (Figure 6) are built from.
 */

#ifndef VAESA_VAESA_FRAMEWORK_HH
#define VAESA_VAESA_FRAMEWORK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "vaesa/dataset.hh"
#include "vaesa/predictor.hh"
#include "vaesa/trainer.hh"
#include "vaesa/vae.hh"

namespace vaesa {

/** All hyperparameters of a framework instance. */
struct FrameworkOptions
{
    /** VAE architecture. */
    VaeOptions vae;

    /** Predictor hidden widths (designDim is set automatically). */
    std::vector<std::size_t> predictorHidden = {64, 64};

    /** Training hyperparameters. */
    TrainOptions train;
};

/** A trained VAESA instance. */
class VaesaFramework
{
  public:
    /**
     * Construct and train end-to-end on a dataset.
     * @param data training set (normalizers are copied from it).
     * @param options hyperparameters.
     * @param seed controls init, shuffling, and sampling noise.
     */
    VaesaFramework(const Dataset &data, const FrameworkOptions &options,
                   std::uint64_t seed);

    /**
     * Construct an UNTRAINED instance with explicit normalizers --
     * weights are randomly initialized until loadFramework() (or
     * nn::loadParameters) overwrites them. Used to restore saved
     * snapshots without a dataset.
     */
    VaesaFramework(const FrameworkOptions &options, std::uint64_t seed,
                   const Normalizer &hw_norm,
                   const Normalizer &layer_norm,
                   const Normalizer &lat_norm,
                   const Normalizer &en_norm);

    /** Per-epoch training losses. */
    const std::vector<EpochStats> &history() const { return history_; }

    /**
     * Continue training on additional data (the paper's
     * grow-the-dataset-and-fine-tune flow, Section III-B3). The new
     * dataset may have different extrema; its raw samples are
     * re-normalized with THIS instance's normalizers so weights and
     * scalings stay consistent. Optimizer moments restart.
     *
     * @param data new (or merged) dataset over the same layer pool.
     * @param epochs additional epochs.
     * @param seed shuffling/noise seed.
     * @return the per-epoch losses of the fine-tuning run (also
     *         appended to history()).
     */
    std::vector<EpochStats> fineTune(const Dataset &data,
                                     std::size_t epochs,
                                     std::uint64_t seed);

    /** Latent dimensionality. */
    std::size_t latentDim() const { return vae_->latentDim(); }

    /** Encode one configuration to its latent mean. */
    std::vector<double> encodeConfig(const AcceleratorConfig &config);

    /** Decode one latent point to the nearest legal configuration. */
    AcceleratorConfig decodeLatent(const std::vector<double> &z);

    /** Normalized layer-feature row for the predictors. */
    std::vector<double>
    normalizedLayerFeatures(const LayerShape &layer) const;

    /**
     * Predictor-based search score at z for given normalized layer
     * features: the sum of the normalized log-latency and log-energy
     * predictions, a monotone transform of predicted EDP.
     * @param grad_z optional output, d(score)/dz.
     */
    double predictScore(const std::vector<double> &z,
                        const std::vector<double> &layer_feats,
                        std::vector<double> *grad_z = nullptr);

    /** Predicted EDP (cycles x pJ) at z, denormalized. */
    double predictedEdp(const std::vector<double> &z,
                        const std::vector<double> &layer_feats);

    /** Predicted latency (cycles) at z, denormalized. */
    double predictedLatency(const std::vector<double> &z,
                            const std::vector<double> &layer_feats);

    /** Predicted energy (pJ) at z, denormalized. */
    double predictedEnergy(const std::vector<double> &z,
                           const std::vector<double> &layer_feats);

    /** Mean reconstruction MSE over a dataset (deterministic pass). */
    double reconstructionError(const Dataset &data);

    /**
     * Half-width of a latent search box covering the training data's
     * encodings: the given quantile of per-dimension |mu| over the
     * dataset, padded by 20%. Used to size LatentObjective boxes when
     * the KLD weight is too small to pin encodings near N(0, I).
     */
    double latentRadius(const Dataset &data, double quantile = 0.99);

    /** The underlying VAE (e.g.\ for serialization). */
    Vae &vae() { return *vae_; }

    /** The latency head. */
    Predictor &latencyPredictor() { return *latencyPred_; }

    /** The energy head. */
    Predictor &energyPredictor() { return *energyPred_; }

    /** Hardware-feature normalizer (design-space grid bounds). */
    const Normalizer &hwNormalizer() const { return hwNorm_; }

    /** Layer-feature normalizer. */
    const Normalizer &layerNormalizer() const { return layerNorm_; }

    /** Latency-label normalizer. */
    const Normalizer &latencyNormalizer() const { return latNorm_; }

    /** Energy-label normalizer. */
    const Normalizer &energyNormalizer() const { return enNorm_; }

    /** All learnable parameters (for save/load). */
    std::vector<nn::Parameter *> parameters();

    /** Hyperparameters of this instance. */
    const FrameworkOptions &frameworkOptions() const
    {
        return options_;
    }

  private:
    /** Build the (untrained) VAE and predictor heads. */
    void buildModels(Rng &rng);

    FrameworkOptions options_;
    std::unique_ptr<Vae> vae_;
    std::unique_ptr<Predictor> latencyPred_;
    std::unique_ptr<Predictor> energyPred_;
    Normalizer hwNorm_;
    Normalizer layerNorm_;
    Normalizer latNorm_;
    Normalizer enNorm_;
    std::vector<EpochStats> history_;

    // Scratch for the decode/predict hot paths (reused so the
    // LatentObjective evaluation loop is allocation-free after
    // warm-up). NOT thread-safe; latent-space objectives declare
    // threadSafeEvaluate() == false and run on the calling thread.
    Matrix zBuf_;
    Matrix featsBuf_;
    Matrix onesBuf_;
    Matrix gradBuf_;
    std::vector<double> featsUnitBuf_;
    std::vector<double> invBuf_;
};

} // namespace vaesa

#endif // VAESA_VAESA_FRAMEWORK_HH
