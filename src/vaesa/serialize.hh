/**
 * @file
 * Whole-framework snapshots: hyperparameters, the four normalizers,
 * and every learnable parameter in one file, so a trained VAESA
 * instance can be restored in a fresh process without the training
 * dataset (train once, search many times).
 */

#ifndef VAESA_VAESA_SERIALIZE_HH
#define VAESA_VAESA_SERIALIZE_HH

#include <memory>
#include <string>

#include "vaesa/framework.hh"

namespace vaesa {

/**
 * Save a complete framework snapshot.
 * @return true on success (false when the file cannot be written).
 */
bool saveFramework(const std::string &path, VaesaFramework &framework);

/**
 * Restore a snapshot written by saveFramework().
 * @return the restored instance, or nullptr when the file cannot be
 * opened; fatal() on a corrupt or incompatible snapshot.
 */
std::unique_ptr<VaesaFramework>
loadFramework(const std::string &path);

} // namespace vaesa

#endif // VAESA_VAESA_SERIALIZE_HH
