/**
 * @file
 * Whole-framework snapshots: hyperparameters, the four normalizers,
 * and every learnable parameter in one file, so a trained VAESA
 * instance can be restored in a fresh process without the training
 * dataset (train once, search many times).
 *
 * Snapshots use the checksummed record framing, are written with
 * last-good rotation (`path` + `path.prev`), and load with automatic
 * fallback to the rotated copy when the primary is corrupt.
 */

#ifndef VAESA_VAESA_SERIALIZE_HH
#define VAESA_VAESA_SERIALIZE_HH

#include <memory>
#include <string>

#include "util/load_error.hh"
#include "vaesa/framework.hh"

namespace vaesa {

/**
 * Save a complete framework snapshot atomically, rotating any
 * existing snapshot at path to `path.prev` first.
 * @return nullopt on success, the write error otherwise.
 */
std::optional<LoadError> saveFramework(const std::string &path,
                                       VaesaFramework &framework);

/**
 * Restore a snapshot written by saveFramework(). When the primary
 * file is missing or corrupt but `path.prev` loads, the rotated copy
 * is returned and a warning is logged.
 * @return the restored instance, or the error from the primary file.
 */
Expected<std::unique_ptr<VaesaFramework>>
loadFramework(const std::string &path);

} // namespace vaesa

#endif // VAESA_VAESA_SERIALIZE_HH
