/**
 * @file
 * Feature/label normalization (Section IV-A4): values are taken in
 * log2 domain (they span orders of magnitude) and min-max scaled into
 * [0, 1) using dataset extrema. The Normalizer operates on the
 * log-domain values; taking the logarithm is the caller's job (raw
 * hardware/layer features are already log2 by construction).
 */

#ifndef VAESA_VAESA_NORMALIZER_HH
#define VAESA_VAESA_NORMALIZER_HH

#include <vector>

#include "tensor/matrix.hh"
#include "util/atomic_io.hh"

namespace vaesa {

/** Per-column min-max scaler with inverse transform. */
class Normalizer
{
  public:
    Normalizer() = default;

    /** Fit column-wise extrema from a (rows x dim) sample matrix. */
    void fit(const Matrix &data);

    /** Number of columns fitted (0 before fit). */
    std::size_t dim() const { return lo_.size(); }

    /** Scale one row into [0, 1). */
    std::vector<double> transform(const std::vector<double> &row) const;

    /** Scale a whole matrix into [0, 1). */
    Matrix transform(const Matrix &data) const;

    /** Invert the scaling of one row. */
    std::vector<double> inverse(const std::vector<double> &row) const;

    /** inverse() into a caller-owned row (capacity reused). */
    void inverseInto(const std::vector<double> &row,
                     std::vector<double> &out) const;

    /** Invert the scaling of a whole matrix. */
    Matrix inverse(const Matrix &data) const;

    /** Column minimum seen at fit time. */
    double lower(std::size_t col) const;

    /** Column maximum seen at fit time. */
    double upper(std::size_t col) const;

    /**
     * Use explicit bounds instead of fitting (e.g.\ the design-space
     * grid bounds, so decoding is dataset-independent).
     */
    void setBounds(const std::vector<double> &lo,
                   const std::vector<double> &hi);

    /** Append the exact internal state to a record payload. */
    void serialize(ByteBuffer &out) const;

    /** Read state written by serialize(); LoadError on corruption. */
    static Expected<Normalizer> deserialize(ByteReader &in);

    /** Exact state equality (for round-trip tests). */
    bool operator==(const Normalizer &other) const = default;

  private:
    std::vector<double> lo_;
    std::vector<double> span_;
};

} // namespace vaesa

#endif // VAESA_VAESA_NORMALIZER_HH
