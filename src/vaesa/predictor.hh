/**
 * @file
 * Performance predictor heads (Figure 3): MLPs that estimate one
 * normalized log-scale label (latency or energy) from a design
 * representation concatenated with the layer features. With the
 * latent z as the design representation they structure the latent
 * space and drive vae_gd; with the normalized input features they
 * form the paper's input-space gd baseline.
 */

#ifndef VAESA_VAESA_PREDICTOR_HH
#define VAESA_VAESA_PREDICTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.hh"
#include "tensor/matrix.hh"
#include "util/rng.hh"

namespace vaesa {

/** Architecture hyperparameters of a predictor head. */
struct PredictorOptions
{
    /** Width of the design representation (latent or input dims). */
    std::size_t designDim = 4;

    /** Width of the layer-feature vector. */
    std::size_t layerDim = 8;

    /** Hidden widths. */
    std::vector<std::size_t> hiddenDims = {64, 64};

    /** LeakyReLU negative-side slope. */
    double leakySlope = 0.01;
};

/** One scalar-output predictor MLP over (design, layer) features. */
class Predictor
{
  public:
    /**
     * Construct with randomly initialized weights.
     * @param name parameter-name prefix (e.g.\ "latency").
     */
    Predictor(const PredictorOptions &options, Rng &rng,
              const std::string &name);

    /**
     * Predict a (batch x 1) label from design and layer batches of
     * equal row counts. Returns a reference to the net's output
     * buffer, valid until this predictor runs forward again.
     */
    const Matrix &forward(const Matrix &design,
                          const Matrix &layer_feats);

    /**
     * Back-propagate through the cached forward pass; accumulates
     * parameter gradients.
     * @param grad_out dL/d(prediction), (batch x 1).
     * @return dL/d(design), (batch x designDim) -- layer-feature
     *         gradients are discarded (layer features are inputs).
     *         Reference into a member buffer, valid until the next
     *         backward.
     */
    const Matrix &backward(const Matrix &grad_out);

    /** Learnable parameters. */
    std::vector<nn::Parameter *> parameters();

    /** Propagate train/eval mode to the underlying MLP. */
    void setTraining(bool training);

    /** Options of this head. */
    const PredictorOptions &options() const { return options_; }

  private:
    PredictorOptions options_;
    std::unique_ptr<nn::Sequential> net_;
    Matrix jointBuf_;
    Matrix gradDesignBuf_;
};

} // namespace vaesa

#endif // VAESA_VAESA_PREDICTOR_HH
