#include "serve/protocol.hh"

#include "util/atomic_io.hh"

namespace vaesa {
namespace serve {

namespace {

/** Parse-error shorthand (the wire has no file name or line). */
LoadError
wireError(LoadError::Kind kind, std::string message)
{
    return makeLoadError(kind, "", 0, std::move(message));
}

void
putConfig(ByteBuffer &out, const AcceleratorConfig &config)
{
    for (int p = 0; p < numHwParams; ++p)
        out.putU64(static_cast<std::uint64_t>(
            config.value(static_cast<HwParam>(p))));
}

AcceleratorConfig
getConfig(ByteReader &in)
{
    AcceleratorConfig config;
    for (int p = 0; p < numHwParams; ++p)
        config.setValue(static_cast<HwParam>(p),
                        static_cast<std::int64_t>(in.getU64()));
    return config;
}

} // namespace

const char *
statusName(Status status)
{
    switch (status) {
    case Status::Ok:
        return "OK";
    case Status::RejectedOverload:
        return "REJECTED_OVERLOAD";
    case Status::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    case Status::InvalidRequest:
        return "INVALID_REQUEST";
    case Status::InternalError:
        return "INTERNAL_ERROR";
    case Status::ShuttingDown:
        return "SHUTTING_DOWN";
    case Status::ReloadFailed:
        return "RELOAD_FAILED";
    }
    return "UNKNOWN";
}

// Request payload layout (all fields little-endian):
//   u64 id; u32 type; u32 deadlineMs;
// then per type:
//   Ping/Stats/Shutdown: nothing
//   ScoreConfig:  6 x u64 config values; string workload
//   DecodeLatent: u64 dim; dim x f64; string workload (may be empty)
//   SearchK:      string workload; u32 samples; u32 method; u64 seed
//   Reload:       string path (may be empty = server default)
// A parser consuming fewer or more bytes than the payload holds is a
// framing error (atEnd() must hold).

std::string
serializeRequest(const Request &request)
{
    ByteBuffer out;
    out.putU64(request.id);
    out.putU32(static_cast<std::uint32_t>(request.type));
    out.putU32(request.deadlineMs);
    switch (request.type) {
    case MsgType::Ping:
    case MsgType::Stats:
    case MsgType::Shutdown:
        break;
    case MsgType::ScoreConfig:
        putConfig(out, request.config);
        out.putString(request.workload);
        break;
    case MsgType::DecodeLatent:
        out.putU64(request.latent.size());
        for (double z : request.latent)
            out.putF64(z);
        out.putString(request.workload);
        break;
    case MsgType::SearchK:
        out.putString(request.workload);
        out.putU32(request.samples);
        out.putU32(static_cast<std::uint32_t>(request.method));
        out.putU64(request.seed);
        break;
    case MsgType::Reload:
        out.putString(request.reloadPath);
        break;
    }
    return out.data();
}

Expected<Request>
parseRequest(const std::string &payload)
{
    ByteReader in(payload.data(), payload.size());
    Request request;
    request.id = in.getU64();
    const std::uint32_t rawType = in.getU32();
    request.deadlineMs = in.getU32();
    if (in.failed())
        return wireError(LoadError::Kind::Truncated,
                         "request header truncated");
    if (rawType < static_cast<std::uint32_t>(MsgType::Ping) ||
        rawType > static_cast<std::uint32_t>(MsgType::Shutdown))
        return wireError(LoadError::Kind::Malformed,
                         "unknown request type " +
                             std::to_string(rawType));
    request.type = static_cast<MsgType>(rawType);

    switch (request.type) {
    case MsgType::Ping:
    case MsgType::Stats:
    case MsgType::Shutdown:
        break;
    case MsgType::ScoreConfig:
        request.config = getConfig(in);
        request.workload = in.getString(maxWorkloadNameLen);
        break;
    case MsgType::DecodeLatent: {
        const std::uint64_t dim = in.getU64();
        if (in.failed() || dim == 0 || dim > maxLatentDim)
            return wireError(LoadError::Kind::Malformed,
                             "latent dimension out of range");
        request.latent.resize(static_cast<std::size_t>(dim));
        for (double &z : request.latent)
            z = in.getF64();
        request.workload = in.getString(maxWorkloadNameLen);
        break;
    }
    case MsgType::SearchK: {
        request.workload = in.getString(maxWorkloadNameLen);
        request.samples = in.getU32();
        const std::uint32_t rawMethod = in.getU32();
        request.seed = in.getU64();
        if (in.failed())
            return wireError(LoadError::Kind::Truncated,
                             "search request truncated");
        if (request.samples == 0 ||
            request.samples > maxSearchSamplesWire)
            return wireError(LoadError::Kind::Malformed,
                             "sample budget out of range");
        if (rawMethod >
            static_cast<std::uint32_t>(SearchMethod::LatentRandom))
            return wireError(LoadError::Kind::Malformed,
                             "unknown search method " +
                                 std::to_string(rawMethod));
        request.method = static_cast<SearchMethod>(rawMethod);
        break;
    }
    case MsgType::Reload:
        request.reloadPath = in.getString(maxPathLen);
        break;
    }
    if (in.failed())
        return wireError(LoadError::Kind::Truncated,
                         "request body truncated");
    if (!in.atEnd())
        return wireError(LoadError::Kind::Malformed,
                         "trailing bytes after request body");
    return request;
}

// Response payload layout:
//   u64 id; u32 type; u32 status; string message;
//   u32 valid; f64 latency; f64 energy; f64 edp;
//   6 x u64 config; u64 dim; dim x f64 bestPoint; f64 bestValue;
//   u64 evals; u64 generation; u64 cacheHits; u64 cacheMisses

std::string
serializeResponse(const Response &response)
{
    ByteBuffer out;
    out.putU64(response.id);
    out.putU32(static_cast<std::uint32_t>(response.type));
    out.putU32(static_cast<std::uint32_t>(response.status));
    out.putString(response.message);
    out.putU32(response.valid ? 1 : 0);
    out.putF64(response.latencyCycles);
    out.putF64(response.energyPj);
    out.putF64(response.edp);
    putConfig(out, response.config);
    out.putU64(response.bestPoint.size());
    for (double x : response.bestPoint)
        out.putF64(x);
    out.putF64(response.bestValue);
    out.putU64(response.evals);
    out.putU64(response.generation);
    out.putU64(response.cacheHits);
    out.putU64(response.cacheMisses);
    return out.data();
}

Expected<Response>
parseResponse(const std::string &payload)
{
    ByteReader in(payload.data(), payload.size());
    Response response;
    response.id = in.getU64();
    const std::uint32_t rawType = in.getU32();
    const std::uint32_t rawStatus = in.getU32();
    response.message = in.getString(maxMessageLen);
    response.valid = in.getU32() != 0;
    response.latencyCycles = in.getF64();
    response.energyPj = in.getF64();
    response.edp = in.getF64();
    response.config = getConfig(in);
    const std::uint64_t dim = in.getU64();
    if (in.failed() || dim > maxLatentDim)
        return wireError(LoadError::Kind::Malformed,
                         "response best-point dimension out of range");
    response.bestPoint.resize(static_cast<std::size_t>(dim));
    for (double &x : response.bestPoint)
        x = in.getF64();
    response.bestValue = in.getF64();
    response.evals = in.getU64();
    response.generation = in.getU64();
    response.cacheHits = in.getU64();
    response.cacheMisses = in.getU64();
    if (in.failed())
        return wireError(LoadError::Kind::Truncated,
                         "response truncated");
    if (!in.atEnd())
        return wireError(LoadError::Kind::Malformed,
                         "trailing bytes after response body");
    if (rawType < static_cast<std::uint32_t>(MsgType::Ping) ||
        rawType > static_cast<std::uint32_t>(MsgType::Shutdown))
        return wireError(LoadError::Kind::Malformed,
                         "unknown response type");
    if (rawStatus >
        static_cast<std::uint32_t>(Status::ReloadFailed))
        return wireError(LoadError::Kind::Malformed,
                         "unknown response status");
    response.type = static_cast<MsgType>(rawType);
    response.status = static_cast<Status>(rawStatus);
    return response;
}

std::string
frameMessage(const std::string &payload)
{
    RecordWriter writer(wireMagic, wireVersion);
    ByteBuffer body;
    body.putBytes(payload.data(), payload.size());
    writer.writeRecord(body);
    return writer.bytes();
}

Expected<std::string>
unwrapFrame(const std::string &frame)
{
    if (frame.size() > maxFrameBytes)
        return wireError(LoadError::Kind::Malformed,
                         "frame exceeds size cap");
    RecordReader reader(frame, "wire");
    std::uint32_t version = 0;
    if (auto err = reader.readHeader(wireMagic, wireVersion,
                                     wireVersion, &version))
        return *err;
    Expected<std::string> payload = reader.readRecord();
    if (!payload)
        return payload.error();
    if (!reader.atEnd())
        return wireError(LoadError::Kind::Malformed,
                         "more than one record in frame");
    return payload;
}

} // namespace serve
} // namespace vaesa
