#include "serve/batcher.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/fault.hh"
#include "util/metrics.hh"

namespace vaesa {
namespace serve {

namespace {

/** Instrument references resolved once (registry refs are stable). */
struct BatcherMetrics
{
    metrics::Histogram &batchSize =
        metrics::histogram("serve.batch_size");
    metrics::Histogram &batchWaitNs =
        metrics::histogram("serve.batch_wait_ns");
    metrics::Counter &batches = metrics::counter("serve.batches");
    metrics::Counter &requeues =
        metrics::counter("serve.batch_requeues");
    metrics::Counter &expired =
        metrics::counter("serve.batch_expired");
};

BatcherMetrics &
batcherMetrics()
{
    static BatcherMetrics m;
    return m;
}

} // namespace

ScoreBatcher::ScoreBatcher(const CachingEvaluator &cache,
                           ThreadPool &evalPool,
                           const BatcherOptions &options,
                           const CancelToken *drain,
                           std::function<std::size_t()> loadHint)
    : cache_(&cache), evalPool_(&evalPool), options_(options),
      drain_(drain), loadHint_(std::move(loadHint))
{
    if (options_.maxBatch == 0)
        options_.maxBatch = 1;
}

EvalResult
ScoreBatcher::score(const std::string &workload,
                    const std::vector<LayerShape> &layers,
                    const AcceleratorConfig &config,
                    const CancelToken *token)
{
    BatcherMetrics &bm = batcherMetrics();
    Item item;
    item.config = &config;
    item.token = token;
    item.enqueueNs = metrics::monotonicNowNs();

    if (options_.batchWindowUs == 0) {
        // Batching DISABLED: dispatch this request by itself,
        // bypassing the queue entirely — the pre-batcher per-request
        // path, with the same fault/deadline/metrics semantics (the
        // A/B baseline the load bench compares against).
        Group *soloGroup = nullptr;
        {
            const MutexLock lock(coalesceMutex_);
            Group &group = groups_[workload];
            group.layers = &layers;
            soloGroup = &group;
        }
        item.taken = true;
        runBatch(*soloGroup, layers, {&item}, &item);
        if (item.deadline)
            throw DeadlineExceeded("serve_batch");
        if (!item.error.empty())
            throw std::runtime_error(item.error);
        return item.result;
    }

    Group *groupPtr = nullptr;
    bool fillNotify = false;
    {
        const MutexLock lock(coalesceMutex_);
        Group &group = groups_[workload];
        groupPtr = &group;
        group.layers = &layers;
        if (group.pending.empty())
            group.windowOpenNs = item.enqueueNs;
        group.pending.push_back(&item);
        // Wake the window-waiting leader ONLY when this enqueue
        // fills the batch (the one cutoff it re-checks). Anything
        // broader is a thundering herd: on a saturated box every
        // notify_all context-switches through all the parked
        // followers, and that wakeup churn costs more than the
        // coalescing saves.
        fillNotify = group.hasLeader &&
                     group.pending.size() >= closeTarget();
    }
    // Notify AFTER unlocking: a wakee that finds the mutex still
    // held parks again on the mutex — two context switches instead
    // of one, per wakee, on every batch.
    if (fillNotify)
        wake_.notify_all();
    Group &group = *groupPtr;

    // Group fields are protected by coalesceMutex_ by convention
    // (the struct is private, every access below sits in a MutexLock
    // scope); only the groups_ map itself carries the TSA guard.
    const auto queued = [&group, &item] {
        return std::find(group.pending.begin(), group.pending.end(),
                         &item) != group.pending.end();
    };

    try {
        for (;;) {
            std::vector<Item *> batch;
            const std::vector<LayerShape> *batchLayers = nullptr;
            bool leftovers = false;
            {
                const MutexLock lock(coalesceMutex_);
                while (!item.done && batch.empty()) {
                    if (!group.hasLeader && queued()) {
                        // First queued awake thread leads; its own
                        // item rides in the front maxBatch slice or
                        // a follow-up round.
                        group.hasLeader = true;
                        collectBatch(group, &batch);
                        batchLayers = group.layers;
                        leftovers = !group.pending.empty();
                        continue;
                    }
                    if (queued() && item.token != nullptr &&
                        item.token->expired()) {
                        // Self-serve the deadline while still
                        // queued: leave the queue, never join a
                        // batch, and never disturb one.
                        group.pending.erase(
                            std::find(group.pending.begin(),
                                      group.pending.end(), &item));
                        item.deadline = true;
                        item.done = true;
                        bm.expired.inc();
                        break;
                    }
                    // Follower: publishes / promotions notify; the
                    // slice only bounds our own deadline-check
                    // cadence, so it can be coarse — short slices
                    // wake every parked follower several times per
                    // batch for nothing.
                    wake_.wait_for(coalesceMutex_,
                                   std::chrono::milliseconds(5));
                }
            }
            if (batch.empty())
                break; // answered (by a leader or our own deadline)
            // Wake the leftovers (outside the lock) so one of them
            // promotes itself leader and can collect — and even
            // evaluate — a second batch while this one scores.
            if (leftovers)
                wake_.notify_all();
            runBatch(group, *batchLayers, batch, &item);
        }
    } catch (...) {
        // Unwinding (the serve_batch leader kill, or anything
        // unexpected): our stack-allocated item must not stay
        // reachable. Unhook it if queued; if a concurrent leader
        // owns it, wait the batch out before the frame dies.
        const MutexLock lock(coalesceMutex_);
        const auto it = std::find(group.pending.begin(),
                                  group.pending.end(), &item);
        if (it != group.pending.end())
            group.pending.erase(it);
        while (item.taken && !item.done)
            wake_.wait_for(coalesceMutex_,
                           std::chrono::milliseconds(1));
        throw;
    }

    if (item.deadline)
        throw DeadlineExceeded("serve_batch");
    if (!item.error.empty())
        throw std::runtime_error(item.error);
    return item.result;
}

std::size_t
ScoreBatcher::closeTarget() const
{
    // The window exists to let the rest of the CURRENT wavefront
    // arrive. Once every connection that could still coalesce has an
    // item queued, waiting longer is pure idle tail — close early.
    // maxBatch stays the hard take cap either way.
    std::size_t target = options_.maxBatch;
    if (loadHint_)
        target = std::min(
            target, std::max<std::size_t>(1, loadHint_()));
    return target;
}

void
ScoreBatcher::collectBatch(Group &group, std::vector<Item *> *batch)
{
    const std::uint64_t windowNs = options_.batchWindowUs * 1000ull;
    // An idle server (nobody else who could coalesce) answers at
    // unbatched latency: no window wait.
    const bool idle = loadHint_ && loadHint_() <= 1;
    if (windowNs != 0 && !idle) {
        // Hold the batch open (measured from the OLDEST queued
        // item) for late arrivals; a full wavefront (closeTarget), a
        // drain, a quiet queue, or the window closing ends the wait.
        // The quiet-queue close matters most: one straggling
        // connection must not make every batch pay the whole window
        // in wall-clock — once arrivals stop for a gap, take what
        // coalesced and let the straggler open the next batch.
        const std::uint64_t gapNs = std::clamp<std::uint64_t>(
            windowNs / 4, 10'000, 100'000);
        std::size_t lastSize = group.pending.size();
        for (;;) {
            if (group.pending.size() >= closeTarget())
                break;
            if (drain_ != nullptr && drain_->expired())
                break;
            const std::uint64_t now = metrics::monotonicNowNs();
            const std::uint64_t closeNs =
                group.windowOpenNs + windowNs;
            if (now >= closeNs)
                break;
            wake_.wait_for(coalesceMutex_,
                           std::chrono::nanoseconds(
                               std::min(closeNs - now, gapNs)));
            if (group.pending.size() == lastSize)
                break; // queue went quiet
            lastSize = group.pending.size();
        }
    }
    const std::size_t take =
        std::min(group.pending.size(), options_.maxBatch);
    batch->assign(group.pending.begin(),
                  group.pending.begin() +
                      static_cast<std::ptrdiff_t>(take));
    group.pending.erase(group.pending.begin(),
                        group.pending.begin() +
                            static_cast<std::ptrdiff_t>(take));
    for (Item *it : *batch)
        it->taken = true;
    // Leadership ends with the take: leftover items' threads promote
    // a new leader (score() wakes them once the lock drops — items
    // are disjoint and the cache is thread-safe, so a second batch
    // can even evaluate while this one is still scoring). No
    // leftovers means nobody needs waking until this one publishes.
    group.hasLeader = false;
    if (!group.pending.empty())
        group.windowOpenNs = group.pending.front()->enqueueNs;
}

void
ScoreBatcher::runBatch(Group &group,
                       const std::vector<LayerShape> &layers,
                       const std::vector<Item *> &batch, Item *self)
{
    BatcherMetrics &bm = batcherMetrics();
    const std::uint64_t startNs = metrics::monotonicNowNs();
    bm.batches.inc();
    bm.batchSize.observe(batch.size());
    for (const Item *it : batch)
        bm.batchWaitNs.observe(startNs - it->enqueueNs);

    // Batch-boundary deadline check: an already-expired item answers
    // DEADLINE_EXCEEDED and never joins the dispatch. Its mates are
    // untouched either way.
    std::vector<Item *> live;
    std::vector<Item *> lapsed;
    live.reserve(batch.size());
    for (Item *it : batch) {
        if (it->token != nullptr && it->token->expired())
            lapsed.push_back(it);
        else
            live.push_back(it);
    }
    bm.expired.inc(lapsed.size());

    std::vector<AcceleratorConfig> configs;
    std::vector<const CancelToken *> tokens;
    configs.reserve(live.size());
    tokens.reserve(live.size());
    for (const Item *it : live) {
        configs.push_back(*it->config);
        tokens.push_back(it->token);
    }
    std::vector<BatchItemStatus> status(live.size(),
                                        BatchItemStatus::Ok);
    std::vector<EvalResult> results;

    bool drained = false;
    std::string failure;
    try {
        for (Item *it : live)
            ++it->attempts;
        faultCheck("serve_batch");
        ParallelEvaluator evaluator(*cache_, *evalPool_);
        // The drain token governs the WHOLE batch at chunk claims
        // (the all-or-nothing exit); per-item tokens drop only their
        // own item at layer boundaries.
        evaluator.setCancelToken(drain_);
        if (!live.empty())
            results = evaluator.evaluateConfigBatch(
                configs, layers, tokens.data(), status.data());
    } catch (const InjectedFault &) {
        // The leader's connection dies at this site — but ONLY the
        // leader's. Mates go back to the head of the queue in
        // arrival order for the next leader (a mate that already
        // faulted once before answers an error instead of looping).
        {
            const MutexLock lock(coalesceMutex_);
            for (Item *it : lapsed) {
                it->taken = false;
                it->deadline = true;
                it->done = true;
            }
            for (auto rit = live.rbegin(); rit != live.rend();
                 ++rit) {
                Item *it = *rit;
                it->taken = false;
                if (it == self)
                    continue; // exits score() through the rethrow
                if (it->attempts >= 2) {
                    it->error = "coalesced batch evaluation failed";
                    it->done = true;
                    continue;
                }
                group.pending.push_front(it);
                bm.requeues.inc();
            }
            if (!group.pending.empty())
                group.windowOpenNs = group.pending.front()->enqueueNs;
        }
        wake_.notify_all();
        throw;
    } catch (const DeadlineExceeded &) {
        // The drain token cancelled the batch mid-flight; everyone
        // still live answers DEADLINE_EXCEEDED (cache untouched by
        // the all-or-nothing exit).
        drained = true;
    } catch (const std::exception &e) {
        // A real evaluation failure is not connection-specific:
        // re-dispatching would fail the same way, so every live item
        // (the leader included) answers INTERNAL_ERROR.
        failure = e.what();
    }

    {
        const MutexLock lock(coalesceMutex_);
        for (Item *it : lapsed) {
            it->taken = false;
            it->deadline = true;
            it->done = true;
        }
        for (std::size_t i = 0; i < live.size(); ++i) {
            Item *it = live[i];
            it->taken = false;
            if (drained ||
                status[i] == BatchItemStatus::DeadlineExpired) {
                it->deadline = true;
            } else if (!failure.empty()) {
                it->error = failure;
            } else {
                it->result = results[i];
            }
            it->done = true;
        }
    }
    // Publish-then-notify with the lock DROPPED: every follower in
    // this batch wakes exactly once and finds its answer ready,
    // instead of waking into a held mutex and parking again.
    wake_.notify_all();
}

} // namespace serve
} // namespace vaesa
