/**
 * @file
 * Server-side micro-batching for ScoreConfig traffic: concurrent
 * scoring requests coalesce into ONE SoA batch against the shared
 * cost-model cache instead of N per-request evaluator dispatches, so
 * a loaded server amortizes snap/probe/evaluate/merge across the
 * whole wavefront (the PR 7 batch pipeline, which is ~9x the serial
 * per-config loop even single-threaded) while an idle server keeps
 * its sub-millisecond single-request latency.
 *
 * DESIGN — leader/follower, no dedicated batching thread:
 *  - every request thread enqueues its stack-allocated Item into the
 *    per-workload queue; the first queued thread appoints itself
 *    LEADER, waits out the coalesce window (skipped when the server
 *    is otherwise idle, when the window is 0, or once maxBatch items
 *    are queued), takes up to maxBatch items FIFO, and evaluates
 *    them as one batch with the queue lock RELEASED;
 *  - the other threads are FOLLOWERS: they sleep on the same
 *    condition variable until their Item is answered, self-serving
 *    their own deadline while still queued and promoting themselves
 *    to leader if they find the queue leaderless.
 *
 * DEADLINES: an item whose token expires while queued (or by drain
 * time) answers DEADLINE_EXCEEDED without ever joining a batch; an
 * item expiring mid-batch is dropped at the next layer boundary
 * (sched/parallel_evaluator.hh per-item-token entry point). Neither
 * cancels batch-mates. The server DRAIN token cancels whole batches
 * through the all-or-nothing chunk-claim exit.
 *
 * FAULTS: the "serve_batch" site fires in the leader before its
 * batch dispatches. The leader rethrows (killing only its own
 * connection, like every serve_* site) after re-queuing its
 * batch-mates for the next leader, so a killed connection mid-batch
 * never poisons the cache (all-or-nothing batch exit) nor its
 * mates' responses (they re-batch and answer normally).
 */

#ifndef VAESA_SERVE_BATCHER_HH
#define VAESA_SERVE_BATCHER_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sched/parallel_evaluator.hh"
#include "util/deadline.hh"
#include "util/sync.hh"
#include "util/thread_pool.hh"

namespace vaesa {
namespace serve {

/** Coalescing knobs (surfaced as --batch-window-us / --max-batch). */
struct BatcherOptions
{
    /** How long a leader holds the batch open for late arrivals, in
     *  microseconds. 0 disables coalescing ENTIRELY: every request
     *  bypasses the queue and dispatches by itself (the pre-batcher
     *  per-request path, kept as the A/B baseline). */
    std::uint32_t batchWindowUs = 50;

    /** Most items one coalesced batch may carry. */
    std::size_t maxBatch = 64;
};

/**
 * The coalescing queue. One instance per Server, shared by every
 * service-pool handler; score() is safe to call concurrently and
 * blocks until the calling request's item is answered (bounded by
 * the window plus one batch evaluation, or the caller's deadline).
 *
 * score() either returns the scored result or throws:
 *  - DeadlineExceeded — the caller's token (or the drain token)
 *    expired before its item completed a batch;
 *  - InjectedFault — this caller was the leader whose dispatch hit
 *    the "serve_batch" site (batch-mates are unaffected);
 *  - std::runtime_error — the evaluation itself failed twice.
 */
class ScoreBatcher
{
  public:
    /**
     * @param cache     shared memo cache (borrowed, outlives this)
     * @param evalPool  pool batch evaluations fan out on (borrowed)
     * @param options   window / size knobs
     * @param drain     server drain token; cancels whole batches
     *                  (borrowed, may be null)
     * @param loadHint  returns a current-load estimate (e.g. active
     *                  connections); a leader skips the coalesce
     *                  window when it reports <= 1 so an idle server
     *                  answers at unbatched latency. May be empty
     *                  (= always wait the window).
     */
    ScoreBatcher(const CachingEvaluator &cache, ThreadPool &evalPool,
                 const BatcherOptions &options,
                 const CancelToken *drain,
                 std::function<std::size_t()> loadHint);

    ScoreBatcher(const ScoreBatcher &) = delete;
    ScoreBatcher &operator=(const ScoreBatcher &) = delete;

    /**
     * Score @p config on @p layers, coalescing with any concurrent
     * score() calls naming the same @p workload. @p layers must be
     * the stable per-workload vector owned by the server (borrowed
     * for the life of the call, shared across the whole group).
     * @p token is the caller's cancel token (may be null).
     */
    EvalResult score(const std::string &workload,
                     const std::vector<LayerShape> &layers,
                     const AcceleratorConfig &config,
                     const CancelToken *token);

  private:
    /** One request, stack-allocated in its caller's score() frame
     *  and linked into the group queue by pointer. */
    struct Item
    {
        const AcceleratorConfig *config = nullptr;
        const CancelToken *token = nullptr;
        /** Enqueue timestamp (serve.batch_wait_ns origin). */
        std::uint64_t enqueueNs = 0;
        /** Batches this item has been dispatched into (a re-queued
         *  item that fails again answers an error, not a loop). */
        int attempts = 0;
        /** Owned by a leader's in-flight batch (not queued, not yet
         *  answered) — an unwinding caller must wait this out. */
        bool taken = false;
        /** Answered: exactly one of result / deadline / error below
         *  is authoritative once this flips. */
        bool done = false;
        /** Answer is DEADLINE_EXCEEDED. */
        bool deadline = false;
        /** Non-empty: answer is an internal evaluation error. */
        std::string error;
        EvalResult result;
    };

    /** Per-workload coalescing state. */
    struct Group
    {
        /** The server-owned layer vector every queued item shares. */
        const std::vector<LayerShape> *layers = nullptr;
        /** FIFO of waiting items (never owns them). */
        std::deque<Item *> pending;
        /** A leader is collecting/draining this group. */
        bool hasLeader = false;
        /** Enqueue time of the oldest pending item — the coalesce
         *  window is measured from here. */
        std::uint64_t windowOpenNs = 0;
    };

    /** Queue size at which a leader stops holding the window open:
     *  min(maxBatch, current load hint) — once everyone who could
     *  still coalesce is queued, more waiting is pure idle tail. */
    std::size_t closeTarget() const;

    /** As the fresh leader of @p group (hasLeader just flipped on):
     *  wait out the coalesce window (skipped when idle / window 0 /
     *  batch already full / draining), then take up to maxBatch
     *  items FIFO into @p batch, hand leadership back, and wake the
     *  leftovers so one of them promotes itself. */
    void collectBatch(Group &group, std::vector<Item *> *batch)
        VAESA_REQUIRES(coalesceMutex_);

    /** Evaluate @p batch as one SoA dispatch (called UNLOCKED) and
     *  publish every answer. A leader-killing injected fault
     *  re-queues the batch-mates for the next leader, then rethrows
     *  (@p self exits score() through the exception). */
    void runBatch(Group &group,
                  const std::vector<LayerShape> &layers,
                  const std::vector<Item *> &batch, Item *self)
        VAESA_EXCLUDES(coalesceMutex_);

    const CachingEvaluator *cache_;
    ThreadPool *evalPool_;
    BatcherOptions options_;
    const CancelToken *drain_;
    std::function<std::size_t()> loadHint_;

    mutable Mutex coalesceMutex_;
    /** Signals enqueues, publishes, and leadership handoffs; waits
     *  directly on the annotated mutex (the thread_pool.cc idiom). */
    std::condition_variable_any wake_;
    /** Keyed by workload name; groups are never erased (the name set
     *  is the server's fixed workload registry). */
    std::map<std::string, Group> groups_ VAESA_GUARDED_BY(
        coalesceMutex_);
};

} // namespace serve
} // namespace vaesa

#endif // VAESA_SERVE_BATCHER_HH
