/**
 * @file
 * Wire protocol of the vaesa_serve daemon: CRC-framed,
 * length-prefixed binary messages over a Unix or loopback TCP
 * stream.
 *
 * Every message travels as ONE record of the checksummed record
 * framing from util/atomic_io.hh:
 *
 *   frame  := magic:u32 version:u32 payloadSize:u32 crc32:u32 payload
 *
 * i.e. a complete framed "file" image holding exactly one record, so
 * the wire format and the on-disk formats share a single framing
 * implementation (and a single fuzz surface -- tools/fuzz fuzzes
 * unwrapFrame() + parseRequest() directly). Corruption anywhere in a
 * frame is detected before any field is interpreted.
 *
 * Payloads are little-endian ByteBuffer layouts with hostile-input
 * caps on every variable-length field; parseRequest()/parseResponse()
 * never trust a length they did not bound first. All parse entry
 * points return Expected<> -- a malformed frame is a structured
 * error, never a crash or an allocation bomb.
 */

#ifndef VAESA_SERVE_PROTOCOL_HH
#define VAESA_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/design_space.hh"
#include "util/load_error.hh"

namespace vaesa {
namespace serve {

/** Frame magic: "VSRV". */
constexpr std::uint32_t wireMagic = 0x56535256u;

/** Current protocol version. */
constexpr std::uint32_t wireVersion = 1;

/** Hard cap on one frame (header + record + payload) on the wire. */
constexpr std::size_t maxFrameBytes = 1u << 20;

/** Largest latent vector a request may carry. */
constexpr std::size_t maxLatentDim = 64;

/** Longest workload name a request may carry. */
constexpr std::size_t maxWorkloadNameLen = 64;

/** Longest checkpoint path a reload request may carry. */
constexpr std::size_t maxPathLen = 4096;

/** Longest human-readable message in a response. */
constexpr std::size_t maxMessageLen = 4096;

/** Largest per-request sample budget the wire format accepts (the
 *  server clamps further via its own options). */
constexpr std::uint32_t maxSearchSamplesWire = 1u << 20;

/** Request kinds. */
enum class MsgType : std::uint32_t {
    /** Liveness check; echoes Ok. */
    Ping = 1,

    /** Score one accelerator configuration on a named workload. */
    ScoreConfig = 2,

    /** Decode a latent point to a configuration (and score it when
     *  a workload name is given). Requires a loaded model. */
    DecodeLatent = 3,

    /** Run a bounded search and return the best design found. */
    SearchK = 4,

    /** Validate + atomically swap in a new model checkpoint. */
    Reload = 5,

    /** Serving counters (cache hits/misses, model generation). */
    Stats = 6,

    /** Ask the daemon to drain and exit. */
    Shutdown = 7,
};

/** Search algorithms selectable by SearchK. */
enum class SearchMethod : std::uint32_t {
    /** Uniform random over the 6-D input box. */
    Random = 0,

    /** Bayesian optimization over the input box. */
    Bo = 1,

    /** Random search over the model's latent box (needs a model). */
    LatentRandom = 2,
};

/** Response status codes (the structured part of every reply). */
enum class Status : std::uint32_t {
    /** Request served completely. */
    Ok = 0,

    /** Admission control turned the request away; retry later. */
    RejectedOverload = 1,

    /** The deadline expired; any result fields are best-so-far. */
    DeadlineExceeded = 2,

    /** The request was well-framed but semantically invalid. */
    InvalidRequest = 3,

    /** The server failed internally; the connection stays usable. */
    InternalError = 4,

    /** The daemon is draining and accepts no further work. */
    ShuttingDown = 5,

    /** Reload validation failed; the old model keeps serving. */
    ReloadFailed = 6,
};

/** Human-readable status name (stable, for logs and manifests). */
const char *statusName(Status status);

/** One decoded request. Fields are zero/empty unless the type uses
 *  them (see the per-type layout in protocol.cc). */
struct Request
{
    /** Client-chosen id, echoed verbatim in the response. */
    std::uint64_t id = 0;

    /** Request kind. */
    MsgType type = MsgType::Ping;

    /** Per-request deadline in milliseconds; 0 means none. */
    std::uint32_t deadlineMs = 0;

    /** ScoreConfig: the configuration to score. */
    AcceleratorConfig config;

    /** DecodeLatent: the latent point. */
    std::vector<double> latent;

    /** ScoreConfig/DecodeLatent/SearchK: workload name (may be empty
     *  for DecodeLatent, meaning decode without scoring). */
    std::string workload;

    /** SearchK: evaluation budget. */
    std::uint32_t samples = 0;

    /** SearchK: algorithm. */
    SearchMethod method = SearchMethod::Random;

    /** SearchK: rng seed. */
    std::uint64_t seed = 0;

    /** Reload: checkpoint path (empty = the server's startup path). */
    std::string reloadPath;
};

/** One decoded response. Every response carries the full body; the
 *  fields a request type does not produce are zero. */
struct Response
{
    /** Echo of Request::id (0 for unsolicited rejections). */
    std::uint64_t id = 0;

    /** Echo of the request type (Ping for unsolicited replies). */
    MsgType type = MsgType::Ping;

    /** Outcome. */
    Status status = Status::Ok;

    /** Human-readable detail (error text, stats rendering). */
    std::string message;

    /** ScoreConfig/DecodeLatent: whether the design mapped. */
    bool valid = false;

    /** ScoreConfig/DecodeLatent: total latency in cycles. */
    double latencyCycles = 0.0;

    /** ScoreConfig/DecodeLatent: total energy in pJ. */
    double energyPj = 0.0;

    /** ScoreConfig/DecodeLatent: energy-delay product. */
    double edp = 0.0;

    /** DecodeLatent/SearchK: the decoded / best configuration. */
    AcceleratorConfig config;

    /** SearchK: best point found (box or latent coordinates). */
    std::vector<double> bestPoint;

    /** SearchK: best objective value found. */
    double bestValue = 0.0;

    /** SearchK: evaluations actually performed. */
    std::uint64_t evals = 0;

    /** Stats/Reload: model generation currently serving. */
    std::uint64_t generation = 0;

    /** Stats: cache hits so far. */
    std::uint64_t cacheHits = 0;

    /** Stats: cache misses so far. */
    std::uint64_t cacheMisses = 0;
};

/** Serialize a request payload (no framing). */
std::string serializeRequest(const Request &request);

/** Serialize a response payload (no framing). */
std::string serializeResponse(const Response &response);

/**
 * Parse one request payload (the bytes unwrapFrame() returned).
 * Every variable-length field is bounds-checked; trailing bytes are
 * corruption.
 */
Expected<Request> parseRequest(const std::string &payload);

/** Parse one response payload. */
Expected<Response> parseResponse(const std::string &payload);

/** Wrap a payload into a complete one-record frame image. */
std::string frameMessage(const std::string &payload);

/**
 * Validate a complete frame image (magic, version, record CRC,
 * exactly one record) and return its payload. This is the single
 * framing validator shared by the socket layer and the fuzz target.
 */
Expected<std::string> unwrapFrame(const std::string &frame);

} // namespace serve
} // namespace vaesa

#endif // VAESA_SERVE_PROTOCOL_HH
