#include "serve/model_bundle.hh"

#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "vaesa/serialize.hh"

namespace vaesa {
namespace serve {

ModelRegistry::ModelRegistry()
{
    const MutexLock lock(bundleMutex_);
    current_ = std::make_shared<ModelBundle>();
}

std::shared_ptr<ModelBundle>
ModelRegistry::current() const
{
    const MutexLock lock(bundleMutex_);
    return current_;
}

std::optional<LoadError>
ModelRegistry::reload(const std::string &path)
{
    static metrics::Counter &reloads =
        metrics::counter("serve.reloads");
    static metrics::Counter &reloadFailures =
        metrics::counter("serve.reload_failures");

    // Build the full candidate off-lock: loading trains nothing but
    // still allocates and checksums every record, and a slow disk
    // must not stall in-flight requests pinning the current bundle.
    Expected<std::unique_ptr<VaesaFramework>> loaded =
        loadFramework(path);
    if (!loaded) {
        reloadFailures.inc();
        return loaded.error();
    }

    // Validate the candidate end-to-end before it can serve: a
    // decode through the real scratch-buffer path proves the
    // weights, normalizers, and design-space wiring agree. The
    // `serve_reload` fault site models a checkpoint that loads but
    // fails this validation.
    try {
        faultCheck("serve_reload");
        VaesaFramework &fw = *loaded.value();
        const std::vector<double> origin(fw.latentDim(), 0.0);
        (void)fw.decodeLatent(origin);
    } catch (const std::exception &e) {
        reloadFailures.inc();
        return makeLoadError(LoadError::Kind::ShapeMismatch, path, 0,
                             std::string("reload validation: ") +
                                 e.what());
    }

    auto next = std::make_shared<ModelBundle>();
    next->framework = std::move(loaded.value());
    next->path = path;
    {
        const MutexLock lock(bundleMutex_);
        next->generation = current_->generation + 1;
        current_ = next;
    }
    reloads.inc();
    inform("serving model generation ", next->generation, " from '",
           path, "'");
    return std::nullopt;
}

std::uint64_t
ModelRegistry::generation() const
{
    const MutexLock lock(bundleMutex_);
    return current_->generation;
}

} // namespace serve
} // namespace vaesa
