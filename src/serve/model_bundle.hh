/**
 * @file
 * RCU-style ownership of the serving model: requests pin the bundle
 * they started with via shared_ptr, reloads validate a candidate
 * checkpoint completely and then swap one pointer under a short
 * lock. In-flight requests keep scoring against the generation they
 * started on; the old bundle is freed when its last request drops
 * the reference. A failed reload (missing file, corrupt record, the
 * injected `serve_reload` fault) leaves the serving bundle
 * untouched, bit for bit.
 */

#ifndef VAESA_SERVE_MODEL_BUNDLE_HH
#define VAESA_SERVE_MODEL_BUNDLE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "util/sync.hh"
#include "vaesa/framework.hh"

namespace vaesa {
namespace serve {

/**
 * One immutable-identity serving model. The framework's
 * decode/predict scratch buffers are NOT thread-safe, so every
 * model call on a bundle holds modelMutex; requests that only need
 * the cache-backed cost model never touch it.
 */
struct ModelBundle
{
    /** The loaded model; null in model-less serving mode. */
    std::unique_ptr<VaesaFramework> framework;

    /** Serializes access to the framework's scratch buffers. */
    mutable Mutex modelMutex;

    /** Checkpoint path this bundle was loaded from (may be empty). */
    std::string path;

    /** Monotonic reload counter; 0 = the model-less boot bundle. */
    std::uint64_t generation = 0;

    /** True when a model is available. */
    bool hasModel() const { return framework != nullptr; }
};

/**
 * Holder of the current bundle. current() is a cheap pinned read;
 * reload() builds and validates a complete replacement off-lock and
 * swaps it in atomically on success only.
 */
class ModelRegistry
{
  public:
    /** Starts with an empty (model-less) generation-0 bundle. */
    ModelRegistry();

    /** Pin the bundle currently serving. Never null. */
    std::shared_ptr<ModelBundle> current() const
        VAESA_EXCLUDES(bundleMutex_);

    /**
     * Load @p path, validate it end-to-end, and swap it in as the
     * next generation. On ANY failure -- including the
     * `serve_reload` fault site, which models a checkpoint that
     * passes loading but must still be rejected -- the previous
     * bundle keeps serving unchanged.
     * @return nullopt on success, the reason otherwise.
     */
    std::optional<LoadError> reload(const std::string &path)
        VAESA_EXCLUDES(bundleMutex_);

    /** Generation of the bundle currently serving. */
    std::uint64_t generation() const VAESA_EXCLUDES(bundleMutex_);

  private:
    mutable Mutex bundleMutex_;
    std::shared_ptr<ModelBundle> current_
        VAESA_GUARDED_BY(bundleMutex_);
};

} // namespace serve
} // namespace vaesa

#endif // VAESA_SERVE_MODEL_BUNDLE_HH
