/**
 * @file
 * Minimal socket layer for the serve daemon: RAII descriptors,
 * Unix/loopback-TCP listeners, and framed send/receive.
 *
 * This header's implementation (net.cc) is the ONLY translation unit
 * in the tree allowed to touch raw POSIX socket calls -- vaesa_check
 * enforces the confinement, the same way raw std::thread is confined
 * to the thread pool. Everything above this layer speaks in complete
 * protocol frames and Expected<> errors.
 *
 * Fault sites (deterministic, ctest-drivable via VAESA_FAULT):
 *   serve_accept       an accept() that fails mid-storm
 *   serve_frame_read   a connection dying mid-request
 *   serve_frame_write  a connection dying mid-response
 */

#ifndef VAESA_SERVE_NET_HH
#define VAESA_SERVE_NET_HH

#include <cstdint>
#include <optional>
#include <string>

#include "util/deadline.hh"
#include "util/load_error.hh"

namespace vaesa {
namespace serve {

/** Move-only RAII owner of one socket descriptor. */
class Socket
{
  public:
    /** An empty (invalid) socket. */
    Socket() = default;

    /** Take ownership of @p fd (-1 = invalid). */
    explicit Socket(int fd) : fd_(fd) {}

    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }

    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    /** The raw descriptor (-1 when invalid). */
    int fd() const { return fd_; }

    /** True when a descriptor is owned. */
    bool valid() const { return fd_ >= 0; }

    /** Close the descriptor now (idempotent). */
    void close();

  private:
    int fd_ = -1;
};

/** Bind + listen on a Unix-domain socket path (unlinking any stale
 *  socket file first). */
Expected<Socket> listenUnix(const std::string &path);

/** Bind + listen on loopback TCP. @param port 0 picks an ephemeral
 *  port; read it back with boundPort(). */
Expected<Socket> listenTcp(std::uint16_t port);

/** The local port a TCP listener actually bound. */
Expected<std::uint16_t> boundPort(const Socket &listener);

/** Connect to a Unix-domain listener. */
Expected<Socket> connectUnix(const std::string &path);

/** Connect to a loopback TCP listener. */
Expected<Socket> connectTcp(std::uint16_t port);

/**
 * Wait until @p socket is readable.
 * @return 1 ready, 0 timeout, -1 error/hangup-with-nothing-to-read.
 */
int waitReadable(const Socket &socket, int timeoutMs);

/** Accept one pending connection (call after waitReadable() said
 *  ready). Hits the `serve_accept` fault site. */
Expected<Socket> acceptConnection(const Socket &listener);

/**
 * Send one complete frame image. Hits `serve_frame_write` first, so
 * a test can kill any response mid-write. Partial sends are retried
 * until the frame is fully on the wire.
 */
std::optional<LoadError> sendFrame(const Socket &socket,
                                   const std::string &frame);

/**
 * Receive one complete frame image (16-byte frame prefix, then the
 * payload). Blocks in poll() slices of at most @p sliceMs so the
 * @p cancel token (when given) is observed between slices -- a
 * draining server stops waiting on idle connections promptly.
 *
 * The idle timeout is accounted against the MONOTONIC CLOCK, not by
 * counting slices: poll/recv interruptions (EINTR, EAGAIN) are
 * charged the real time they consumed, so a signal-stormed
 * connection neither times out early nor overstays -- each of the
 * two reads (prefix, payload) ends within [timeoutMs, timeoutMs +
 * one slice) of its last byte of progress.
 *
 * @return the frame bytes; OpenFailed with message "closed" on a
 *         clean peer close before any byte, Truncated on a mid-frame
 *         close, OpenFailed "timeout" after @p timeoutMs of silence,
 *         OpenFailed "cancelled" when the token expired. Hits
 *         `serve_frame_read` first.
 */
Expected<std::string> recvFrame(const Socket &socket, int timeoutMs,
                                const CancelToken *cancel = nullptr,
                                int sliceMs = 100);

} // namespace serve
} // namespace vaesa

#endif // VAESA_SERVE_NET_HH
