#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>

#include "dse/bo.hh"
#include "dse/objective.hh"
#include "dse/random_search.hh"
#include "sched/parallel_evaluator.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "workload/zoo.hh"

namespace vaesa {
namespace serve {

namespace {

/** Serving instruments, resolved once. */
struct ServeMetrics
{
    metrics::Counter &connections =
        metrics::counter("serve.connections");
    metrics::Counter &requests = metrics::counter("serve.requests");
    metrics::Counter &rejectedOverload =
        metrics::counter("serve.rejected_overload");
    metrics::Counter &deadlineExceeded =
        metrics::counter("serve.deadline_exceeded");
    metrics::Counter &invalidRequests =
        metrics::counter("serve.invalid_requests");
    metrics::Counter &killedConnections =
        metrics::counter("serve.killed_connections");
    metrics::Counter &acceptFailures =
        metrics::counter("serve.accept_failures");
    metrics::Histogram &requestNs =
        metrics::histogram("serve.request_ns");
    /** Time spent answering connections the accept loop turned away
     *  — the one reply path outside handleConnection's request
     *  timer, so overload rejections stay latency-observable too. */
    metrics::Histogram &rejectNs =
        metrics::histogram("serve.reject_ns");
};

ServeMetrics &
serveMetrics()
{
    static ServeMetrics m;
    return m;
}

/**
 * Input-space objective of one serve request: decodes [0,1]^6 box
 * points exactly like the paper's `random`/`bo` baselines but scores
 * through the SHARED memo cache with a per-request ParallelEvaluator
 * view, so every request warms the cache for the next one and a
 * deadline firing mid-batch takes the pipeline's all-or-nothing exit
 * (no partial merge, no counter drift). A batch killed by its
 * deadline scores invalidScore so the driver reaches its own
 * boundary check and returns the partial best-so-far trace instead
 * of unwinding past it.
 */
class ServeObjective : public Objective
{
  public:
    ServeObjective(const CachingEvaluator &cache, ThreadPool &pool,
                   const std::vector<LayerShape> &layers,
                   const CancelToken *cancel)
        : decoder_(cache.inner(), layers), cache_(cache),
          layers_(layers), batch_(cache, pool)
    {
        batch_.setCancelToken(cancel);
    }

    std::size_t dim() const override { return decoder_.dim(); }

    std::vector<double>
    lowerBounds() const override
    {
        return decoder_.lowerBounds();
    }

    std::vector<double>
    upperBounds() const override
    {
        return decoder_.upperBounds();
    }

    double
    evaluate(const std::vector<double> &x) override
    {
        return metricValue(
            cache_.evaluateWorkload(decoder_.decode(x), layers_),
            Metric::Edp);
    }

    bool threadSafeEvaluate() const override { return true; }

    std::vector<double>
    evaluateBatch(const std::vector<std::vector<double>> &xs,
                  ThreadPool *) override
    {
        std::vector<AcceleratorConfig> configs;
        configs.reserve(xs.size());
        for (const std::vector<double> &x : xs)
            configs.push_back(decoder_.decode(x));
        std::vector<double> out(xs.size(), invalidScore);
        try {
            const std::vector<EvalResult> results =
                batch_.evaluateBatch(configs, layers_);
            for (std::size_t i = 0; i < xs.size(); ++i)
                out[i] = metricValue(results[i], Metric::Edp);
        } catch (const DeadlineExceeded &) {
            // The batch died at the deadline AFTER the all-or-nothing
            // exit left the cache untouched; the invalid scores are a
            // placeholder tail the driver's boundary check cuts off.
        }
        return out;
    }

    /** Decode a box point to its discrete configuration. */
    AcceleratorConfig
    decode(const std::vector<double> &x) const
    {
        return decoder_.decode(x);
    }

  private:
    InputSpaceObjective decoder_;
    const CachingEvaluator &cache_;
    const std::vector<LayerShape> &layers_;
    ParallelEvaluator batch_;
};

/**
 * Latent-space objective of one serve request: decode through the
 * pinned model bundle (scratch buffers serialized by modelMutex,
 * released before any cache lock per the lock-order table), score
 * through the shared cache. Not thread-safe by declaration, so
 * drivers keep it on the calling thread.
 */
class LatentServeObjective : public Objective
{
  public:
    LatentServeObjective(std::shared_ptr<ModelBundle> bundle,
                         const CachingEvaluator &cache,
                         const std::vector<LayerShape> &layers,
                         double radius)
        : bundle_(std::move(bundle)), cache_(cache), layers_(layers),
          dim_(bundle_->framework->latentDim()), radius_(radius)
    {
    }

    std::size_t dim() const override { return dim_; }

    std::vector<double>
    lowerBounds() const override
    {
        return std::vector<double>(dim_, -radius_);
    }

    std::vector<double>
    upperBounds() const override
    {
        return std::vector<double>(dim_, radius_);
    }

    double
    evaluate(const std::vector<double> &z) override
    {
        AcceleratorConfig config;
        {
            const MutexLock lock(bundle_->modelMutex);
            config = bundle_->framework->decodeLatent(z);
        }
        return metricValue(cache_.evaluateWorkload(config, layers_),
                           Metric::Edp);
    }

    /** Decode one latent point (for reporting the best config). */
    AcceleratorConfig
    decode(const std::vector<double> &z) const
    {
        const MutexLock lock(bundle_->modelMutex);
        return bundle_->framework->decodeLatent(z);
    }

  private:
    std::shared_ptr<ModelBundle> bundle_;
    const CachingEvaluator &cache_;
    const std::vector<LayerShape> &layers_;
    std::size_t dim_;
    double radius_;
};

/** Decrements a counter on scope exit (connection/search slots). */
class SlotGuard
{
  public:
    explicit SlotGuard(std::atomic<std::size_t> &count)
        : count_(count)
    {
    }

    ~SlotGuard() { count_.fetch_sub(1); }

    SlotGuard(const SlotGuard &) = delete;
    SlotGuard &operator=(const SlotGuard &) = delete;

  private:
    std::atomic<std::size_t> &count_;
};

} // namespace

Server::Server(const ServeOptions &options)
    : options_(options), evalPool_(options.evalThreads),
      servicePool_(std::max<std::size_t>(1, options.serviceThreads)),
      batcher_(cache_, evalPool_,
               BatcherOptions{options.batchWindowUs, options.maxBatch},
               &drainToken_,
               [this] { return activeConns_.load(); })
{
    for (Workload &w : trainingWorkloads())
        workloads_[w.name] = std::move(w.layers);
    // Zoo workloads carry occurrence counts; the per-request score
    // path sums plain layer vectors, so expand each shape by its
    // count to keep whole-network totals exact. The shared cache
    // collapses the repeats to one evaluation per unique shape.
    for (const Workload &w : zooWorkloads()) {
        std::vector<LayerShape> seq;
        seq.reserve(static_cast<std::size_t>(w.totalLayers()));
        for (std::size_t i = 0; i < w.layers.size(); ++i)
            seq.insert(seq.end(),
                       static_cast<std::size_t>(w.countOf(i)),
                       w.layers[i]);
        workloads_[w.name] = std::move(seq);
    }
}

Server::~Server()
{
    // Pools join in member destruction order (service first, so no
    // handler can touch the eval pool after it drains).
    servicePool_.shutdown();
    evalPool_.shutdown();
}

std::optional<LoadError>
Server::start()
{
    if (!options_.modelPath.empty()) {
        if (auto err = models_.reload(options_.modelPath))
            return err;
    }
    Expected<Socket> listener =
        options_.unixPath.empty() ? listenTcp(options_.tcpPort)
                                  : listenUnix(options_.unixPath);
    if (!listener)
        return listener.error();
    listener_ = std::move(listener.value());
    if (options_.unixPath.empty()) {
        Expected<std::uint16_t> port = boundPort(listener_);
        if (!port)
            return port.error();
        port_ = port.value();
    }
    inform("vaesa_serve listening on ",
           options_.unixPath.empty()
               ? "tcp port " + std::to_string(port_)
               : "unix socket " + options_.unixPath);
    return std::nullopt;
}

int
Server::serve()
{
    ServeMetrics &sm = serveMetrics();
    std::vector<std::future<void>> handlers;
    auto reapFinished = [&handlers]() {
        handlers.erase(
            std::remove_if(
                handlers.begin(), handlers.end(),
                [](std::future<void> &f) {
                    return f.wait_for(std::chrono::seconds(0)) ==
                           std::future_status::ready;
                }),
            handlers.end());
    };

    while (!shutdownRequested_.load(std::memory_order_relaxed)) {
        if (reloadRequested_.exchange(false)) {
            if (options_.modelPath.empty())
                warn("reload requested but no model path "
                     "configured; ignoring");
            else if (auto err = models_.reload(options_.modelPath))
                warn("hot reload failed, keeping generation ",
                     models_.generation(), ": ", err->describe());
        }

        const int ready = waitReadable(listener_, 100);
        if (ready < 0) {
            warn("listener poll failed; draining");
            requestShutdown();
            break;
        }
        if (ready == 0) {
            reapFinished();
            continue;
        }

        try {
            Expected<Socket> conn = acceptConnection(listener_);
            if (!conn) {
                sm.acceptFailures.inc();
                continue;
            }
            if (activeConns_.load() >= options_.maxConnections) {
                // Admission control: a structured rejection, never a
                // silent drop and never unbounded queueing.
                Response rejection;
                rejection.status = Status::RejectedOverload;
                rejection.message =
                    "server at connection capacity; retry later";
                sm.rejectedOverload.inc();
                const metrics::ScopedTimer timer(sm.rejectNs);
                (void)sendFrame(conn.value(),
                                frameMessage(
                                    serializeResponse(rejection)));
                continue;
            }
            activeConns_.fetch_add(1);
            auto sock =
                std::make_shared<Socket>(std::move(conn.value()));
            try {
                handlers.push_back(servicePool_.submit(
                    [this, sock]() {
                        handleConnection(std::move(*sock));
                    }));
            } catch (const std::runtime_error &) {
                // Lost the race against our own drain; undo.
                activeConns_.fetch_sub(1);
            }
        } catch (const InjectedFault &) {
            // A failed accept (or a rejection response dying on the
            // wire) costs one connection, never the daemon.
            sm.acceptFailures.inc();
        }
        reapFinished();
    }

    // Drain: stop admitting (the loop above has exited), cancel
    // in-flight work, and wait for every handler to notice. Handlers
    // observe the token between recv slices and at batch/iteration
    // boundaries, so this converges within one slice plus one chunk.
    drainToken_.cancel();
    for (std::future<void> &f : handlers)
        f.wait();
    servicePool_.shutdown();
    evalPool_.shutdown();
    listener_.close();

    if (!options_.manifestPath.empty()) {
        metrics::ManifestInfo info;
        info.tool = "vaesa_serve";
        info.command = "serve";
        info.commandLine = options_.unixPath.empty()
                               ? "tcp:" + std::to_string(port_)
                               : "unix:" + options_.unixPath;
        metrics::writeManifest(options_.manifestPath, info);
    }
    inform("vaesa_serve drained cleanly");
    return 0;
}

void
Server::requestShutdown()
{
    shutdownRequested_.store(true, std::memory_order_relaxed);
}

void
Server::requestReload()
{
    reloadRequested_.store(true, std::memory_order_relaxed);
}

std::uint64_t
Server::rejectedCount() const
{
    return serveMetrics().rejectedOverload.value();
}

void
Server::handleConnection(Socket sock)
{
    ServeMetrics &sm = serveMetrics();
    const SlotGuard slot(activeConns_);
    sm.connections.inc();
    try {
        while (!drainToken_.expired()) {
            Expected<std::string> frame =
                recvFrame(sock, static_cast<int>(
                                    options_.idleTimeoutMs),
                          &drainToken_);
            if (!frame)
                break; // closed / idle timeout / drain

            Expected<std::string> payload =
                unwrapFrame(frame.value());
            if (!payload) {
                // CRC or framing damage: the stream can no longer
                // be trusted to be record-aligned, so answer once
                // and hang up.
                sm.invalidRequests.inc();
                Response err;
                err.status = Status::InvalidRequest;
                err.message = payload.error().describe();
                (void)sendFrame(
                    sock, frameMessage(serializeResponse(err)));
                break;
            }

            Expected<Request> parsed = parseRequest(payload.value());
            if (!parsed) {
                // The frame was intact, so the stream stays aligned;
                // reject this request and keep the connection.
                sm.invalidRequests.inc();
                Response err;
                err.status = Status::InvalidRequest;
                err.message = parsed.error().describe();
                if (sendFrame(sock,
                              frameMessage(serializeResponse(err))))
                    break;
                continue;
            }

            bool closeAfter = false;
            const metrics::ScopedTimer timer(sm.requestNs);
            Response resp = dispatch(parsed.value(), &closeAfter);
            if (sendFrame(sock,
                          frameMessage(serializeResponse(resp))) ||
                closeAfter)
                break;
        }
    } catch (const InjectedFault &) {
        // Kill-mid-request: the connection dies where the fault
        // fired; shared state saw either a complete request or none
        // of it (the batch pipeline's all-or-nothing exit).
        sm.killedConnections.inc();
    } catch (const std::exception &e) {
        warn("connection handler died: ", e.what());
        sm.killedConnections.inc();
    }
}

Response
Server::dispatch(const Request &request, bool *closeAfter)
{
    ServeMetrics &sm = serveMetrics();
    sm.requests.inc();
    Response resp;
    resp.id = request.id;
    resp.type = request.type;

    CancelToken token;
    token.chainTo(&drainToken_);
    if (request.deadlineMs != 0)
        token.setDeadlineAfterMs(
            std::min(request.deadlineMs, options_.maxDeadlineMs));

    try {
        switch (request.type) {
        case MsgType::Ping:
            resp.status = Status::Ok;
            break;
        case MsgType::ScoreConfig:
            handleScore(request, token, &resp);
            break;
        case MsgType::DecodeLatent:
            handleDecode(request, token, &resp);
            break;
        case MsgType::SearchK:
            handleSearch(request, token, &resp);
            break;
        case MsgType::Reload:
            handleReload(request, &resp);
            break;
        case MsgType::Stats:
            handleStats(&resp);
            break;
        case MsgType::Shutdown:
            resp.status = Status::Ok;
            resp.message = "draining";
            requestShutdown();
            *closeAfter = true;
            break;
        }
    } catch (const DeadlineExceeded &) {
        resp.status = Status::DeadlineExceeded;
        resp.message = "deadline expired";
    } catch (const InjectedFault &) {
        throw; // kill-mid-request propagates to the connection level
    } catch (const std::exception &e) {
        resp.status = Status::InternalError;
        resp.message = e.what();
    }

    if (resp.status == Status::DeadlineExceeded)
        sm.deadlineExceeded.inc();
    else if (resp.status == Status::InvalidRequest)
        sm.invalidRequests.inc();
    else if (resp.status == Status::RejectedOverload)
        sm.rejectedOverload.inc();
    return resp;
}

const std::vector<LayerShape> *
Server::findWorkload(const std::string &name, Response *resp)
{
    const auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        resp->status = Status::InvalidRequest;
        resp->message = "unknown workload '" + name + "'";
        return nullptr;
    }
    return &it->second;
}

void
Server::handleScore(const Request &request, CancelToken &token,
                    Response *resp)
{
    const std::vector<LayerShape> *layers =
        findWorkload(request.workload, resp);
    if (!layers)
        return;
    token.check("score_admit");
    // All ScoreConfig scoring funnels through the coalescing
    // batcher (lint-enforced: the SoA batch entry point is called
    // only from serve/batcher.cc), so concurrent requests share one
    // dispatch while a lone request passes straight through.
    const EvalResult result =
        batcher_.score(request.workload, *layers, request.config,
                       &token);
    resp->valid = result.valid;
    resp->latencyCycles = result.latencyCycles;
    resp->energyPj = result.energyPj;
    resp->edp = result.edp;
    resp->config = cache_.snapConfig(request.config);
    resp->status = Status::Ok;
}

void
Server::handleDecode(const Request &request, CancelToken &token,
                     Response *resp)
{
    const std::shared_ptr<ModelBundle> bundle = models_.current();
    resp->generation = bundle->generation;
    if (!bundle->hasModel()) {
        resp->status = Status::InvalidRequest;
        resp->message = "no model loaded";
        return;
    }
    if (request.latent.size() != bundle->framework->latentDim()) {
        resp->status = Status::InvalidRequest;
        resp->message =
            "latent dimension mismatch: got " +
            std::to_string(request.latent.size()) + ", model has " +
            std::to_string(bundle->framework->latentDim());
        return;
    }
    token.check("decode_admit");
    {
        const MutexLock lock(bundle->modelMutex);
        resp->config = bundle->framework->decodeLatent(request.latent);
    }
    if (!request.workload.empty()) {
        const std::vector<LayerShape> *layers =
            findWorkload(request.workload, resp);
        if (!layers)
            return;
        // Decoded-config scoring rides the same coalescing queue as
        // ScoreConfig: a DecodeLatent burst batches with the score
        // traffic of the same workload.
        const EvalResult result = batcher_.score(
            request.workload, *layers, resp->config, &token);
        resp->valid = result.valid;
        resp->latencyCycles = result.latencyCycles;
        resp->energyPj = result.energyPj;
        resp->edp = result.edp;
    }
    resp->status = Status::Ok;
}

void
Server::handleSearch(const Request &request, CancelToken &token,
                     Response *resp)
{
    const std::vector<LayerShape> *layers =
        findWorkload(request.workload, resp);
    if (!layers)
        return;

    // Max-in-flight semaphore: long searches are the requests that
    // can wedge the eval pool, so they get their own bound below the
    // connection-level one.
    std::size_t inflight = searchInflight_.load();
    do {
        if (inflight >= options_.maxInflightSearch) {
            resp->status = Status::RejectedOverload;
            resp->message = "search slots exhausted; retry later";
            return;
        }
    } while (!searchInflight_.compare_exchange_weak(inflight,
                                                    inflight + 1));
    const SlotGuard slot(searchInflight_);

    const std::size_t samples =
        std::min<std::size_t>(request.samples,
                              options_.maxSearchSamples);
    Rng rng(request.seed);
    SearchTrace trace;

    switch (request.method) {
    case SearchMethod::Random: {
        ServeObjective objective(cache_, evalPool_, *layers, &token);
        trace = RandomSearch().run(objective, samples, rng,
                                   &evalPool_, nullptr, &token);
        if (!trace.bestPoint().empty())
            resp->config = objective.decode(trace.bestPoint());
        break;
    }
    case SearchMethod::Bo: {
        ServeObjective objective(cache_, evalPool_, *layers, &token);
        trace = BayesOpt().run(objective, samples, rng, &evalPool_,
                               nullptr, &token);
        if (!trace.bestPoint().empty())
            resp->config = objective.decode(trace.bestPoint());
        break;
    }
    case SearchMethod::LatentRandom: {
        const std::shared_ptr<ModelBundle> bundle =
            models_.current();
        resp->generation = bundle->generation;
        if (!bundle->hasModel()) {
            resp->status = Status::InvalidRequest;
            resp->message = "no model loaded for latent search";
            return;
        }
        LatentServeObjective objective(bundle, cache_, *layers,
                                       options_.latentRadius);
        trace = RandomSearch().run(objective, samples, rng, nullptr,
                                   nullptr, &token);
        if (!trace.bestPoint().empty())
            resp->config = objective.decode(trace.bestPoint());
        break;
    }
    }

    resp->evals = trace.points.size();
    resp->bestValue = trace.best();
    resp->bestPoint = trace.bestPoint();
    resp->valid = std::isfinite(resp->bestValue);
    resp->status = (token.expired() && trace.points.size() < samples)
                       ? Status::DeadlineExceeded
                       : Status::Ok;
    if (resp->status == Status::DeadlineExceeded)
        resp->message = "partial best-so-far after " +
                        std::to_string(trace.points.size()) + "/" +
                        std::to_string(samples) + " samples";
}

void
Server::handleReload(const Request &request, Response *resp)
{
    const std::string path = request.reloadPath.empty()
                                 ? options_.modelPath
                                 : request.reloadPath;
    if (path.empty()) {
        resp->status = Status::InvalidRequest;
        resp->message = "no checkpoint path configured or given";
        return;
    }
    if (auto err = models_.reload(path)) {
        resp->status = Status::ReloadFailed;
        resp->message = err->describe();
    } else {
        resp->status = Status::Ok;
    }
    resp->generation = models_.generation();
}

void
Server::handleStats(Response *resp)
{
    resp->cacheHits = cache_.hits();
    resp->cacheMisses = cache_.misses();
    resp->generation = models_.generation();
    resp->evals = cache_.inner().evaluationCount();
    resp->message =
        "hits=" + std::to_string(resp->cacheHits) +
        " misses=" + std::to_string(resp->cacheMisses) +
        " evals=" + std::to_string(resp->evals) +
        " generation=" + std::to_string(resp->generation) +
        " connections=" + std::to_string(activeConns_.load());
    resp->status = Status::Ok;
}

} // namespace serve
} // namespace vaesa
