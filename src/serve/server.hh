/**
 * @file
 * The vaesa_serve daemon core: a deadline-aware, overload-safe
 * DSE-as-a-service front end over the cost-model + search stack.
 *
 * ARCHITECTURE. One accept loop (the thread calling serve()) admits
 * connections and hands each to a handler task on the SERVICE pool;
 * handlers parse framed requests and run them against the shared
 * sharded CachingEvaluator, fanning bulk cost-model work onto a
 * separate EVAL pool through per-request ParallelEvaluator views.
 * Two pools because ParallelEvaluator must not run inside its own
 * pool's tasks (ThreadPool::parallelFor is non-reentrant): service
 * workers block on eval-pool batches, never on their own queue.
 *
 * ADMISSION CONTROL. Connections beyond maxConnections receive an
 * unsolicited REJECTED_OVERLOAD response and are closed before any
 * work is queued (the service pool's queue stays bounded by
 * construction); SearchK requests additionally take a slot from a
 * max-in-flight counting semaphore sized off the eval pool, so one
 * client cannot wedge every worker behind long searches.
 *
 * DEADLINES + DRAIN. Every request gets a CancelToken chained to the
 * server's drain token; expiry is observed at batch chunk claims and
 * search iteration boundaries, producing partial best-so-far results
 * with DEADLINE_EXCEEDED and leaving the cache exactly as a
 * never-started request (the batch pipeline's all-or-nothing exit).
 * requestShutdown() (SIGTERM/SIGINT) stops admission, cancels
 * in-flight work through the same token, drains both pools, flushes
 * the metrics manifest, and serve() returns 0.
 *
 * HOT RELOAD. The serving model lives in an RCU ModelRegistry:
 * requestReload() (SIGHUP) or a Reload request validates the new
 * checkpoint completely before an atomic pointer swap; in-flight
 * requests finish on the generation they started with and a failed
 * reload (including the `serve_reload` fault) changes nothing.
 */

#ifndef VAESA_SERVE_SERVER_HH
#define VAESA_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sched/caching_evaluator.hh"
#include "serve/batcher.hh"
#include "serve/model_bundle.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "util/deadline.hh"
#include "util/thread_pool.hh"
#include "workload/networks.hh"

namespace vaesa {
namespace serve {

/** Daemon configuration. */
struct ServeOptions
{
    /** Serve on this Unix socket path when non-empty... */
    std::string unixPath;

    /** ...otherwise on loopback TCP (0 picks an ephemeral port,
     *  read back with Server::port()). */
    std::uint16_t tcpPort = 0;

    /** Eval-pool workers (0 = ThreadPool::defaultThreadCount()). */
    std::size_t evalThreads = 0;

    /** Service-pool workers = concurrently served connections. */
    std::size_t serviceThreads = 4;

    /** Admission bound on accepted-and-unfinished connections;
     *  beyond it new connections get REJECTED_OVERLOAD. */
    std::size_t maxConnections = 8;

    /** Max concurrently running SearchK requests. */
    std::size_t maxInflightSearch = 2;

    /** Hard cap applied to per-request deadlines. */
    std::uint32_t maxDeadlineMs = 300000;

    /** Per-connection idle timeout before the server hangs up. */
    std::uint32_t idleTimeoutMs = 10000;

    /** Server-side clamp on one SearchK sample budget. */
    std::uint32_t maxSearchSamples = 4096;

    /** Optional model checkpoint served at boot and on SIGHUP. */
    std::string modelPath;

    /** When non-empty, the metrics manifest is flushed here during
     *  drain. */
    std::string manifestPath;

    /** Half-width of the latent search box for LatentRandom. */
    double latentRadius = 2.5;

    /** ScoreConfig coalesce window in microseconds (see
     *  serve/batcher.hh): how long the first request of a wavefront
     *  holds the batch open for late arrivals. 0 disables
     *  coalescing waits; an otherwise-idle server always skips the
     *  window regardless. */
    std::uint32_t batchWindowUs = 50;

    /** Most requests one coalesced ScoreConfig batch may carry. */
    std::size_t maxBatch = 64;
};

/** The daemon. Construct, start(), then serve() on some thread. */
class Server
{
  public:
    explicit Server(const ServeOptions &options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Load the boot model (when configured) and bind the listener.
     *  @return nullopt on success; the daemon must not serve
     *  otherwise. */
    std::optional<LoadError> start();

    /**
     * Run the accept loop until requestShutdown(), then drain:
     * cancel in-flight work, join both pools, flush the manifest.
     * @return process exit code (0 on a clean drain).
     */
    int serve();

    /** Begin a graceful drain (async-signal-safe: one atomic). */
    void requestShutdown();

    /** Ask the accept loop to hot-reload options().modelPath
     *  (async-signal-safe: one atomic). */
    void requestReload();

    /** Bound TCP port after start() (0 in Unix-socket mode). */
    std::uint16_t port() const { return port_; }

    /** The options in use. */
    const ServeOptions &options() const { return options_; }

    /** The shared memo cache (test/bench introspection). */
    const CachingEvaluator &cache() const { return cache_; }

    /** The model registry (test introspection). */
    ModelRegistry &models() { return models_; }

    /** Connections rejected by admission control so far. */
    std::uint64_t rejectedCount() const;

  private:
    void handleConnection(Socket sock);

    /** Run one parsed request; never throws except InjectedFault
     *  (which kills the connection, not the server). */
    Response dispatch(const Request &request, bool *closeAfter);

    void handleScore(const Request &request, CancelToken &token,
                     Response *resp);
    void handleDecode(const Request &request, CancelToken &token,
                      Response *resp);
    void handleSearch(const Request &request, CancelToken &token,
                      Response *resp);
    void handleReload(const Request &request, Response *resp);
    void handleStats(Response *resp);

    const std::vector<LayerShape> *findWorkload(
        const std::string &name, Response *resp);

    ServeOptions options_;
    CachingEvaluator cache_;
    ThreadPool evalPool_;
    ThreadPool servicePool_;
    ModelRegistry models_;
    std::map<std::string, std::vector<LayerShape>> workloads_;
    Socket listener_;
    std::uint16_t port_ = 0;
    CancelToken drainToken_;
    std::atomic<bool> shutdownRequested_{false};
    std::atomic<bool> reloadRequested_{false};
    std::atomic<std::size_t> activeConns_{0};
    std::atomic<std::size_t> searchInflight_{0};
    /** Coalesces concurrent ScoreConfig traffic into SoA batches;
     *  declared after cache_/evalPool_/drainToken_/activeConns_
     *  (it borrows all four at construction). */
    ScoreBatcher batcher_;
};

} // namespace serve
} // namespace vaesa

#endif // VAESA_SERVE_SERVER_HH
