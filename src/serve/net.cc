#include "serve/net.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.hh"
#include "util/fault.hh"
#include "util/metrics.hh"

namespace vaesa {
namespace serve {

namespace {

LoadError
netError(LoadError::Kind kind, const std::string &what)
{
    return makeLoadError(kind, "", 0,
                         what + ": " + std::strerror(errno));
}

LoadError
netFailure(LoadError::Kind kind, std::string message)
{
    return makeLoadError(kind, "", 0, std::move(message));
}

/**
 * Read exactly n bytes, polling in slices so cancellation and the
 * overall timeout are both observed between reads. The idle budget
 * is recomputed from the monotonic clock on every wakeup: poll/recv
 * interruptions (EINTR / EAGAIN / spurious readiness) consume real
 * elapsed time rather than being charged a whole slice (a signal
 * storm used to burn the budget in microseconds) or no time at all
 * (an interrupted recv used to restart the slice and could overstay
 * the deadline indefinitely). Progress still resets the idle clock —
 * timeoutMs bounds the wait since the LAST byte, not the whole read.
 */
std::optional<LoadError>
readExactly(const Socket &socket, char *dst, std::size_t n,
            int timeoutMs, const CancelToken *cancel, int sliceMs,
            bool *sawAnyByte)
{
    std::size_t got = 0;
    const std::uint64_t budgetNs =
        static_cast<std::uint64_t>(timeoutMs) * 1000000ull;
    std::uint64_t idleSinceNs = metrics::monotonicNowNs();
    while (got < n) {
        if (cancel && cancel->expired())
            return netFailure(LoadError::Kind::OpenFailed,
                              "cancelled");
        const std::uint64_t idleNs =
            metrics::monotonicNowNs() - idleSinceNs;
        if (idleNs >= budgetNs)
            return netFailure(LoadError::Kind::OpenFailed,
                              "timeout");
        // Poll the remaining budget, still sliced for cancellation
        // checks; floor 1 ms so a sub-millisecond remainder blocks
        // instead of spinning (the clock check above ends it).
        const int remainMs =
            static_cast<int>((budgetNs - idleNs) / 1000000ull);
        const int ready = waitReadable(
            socket,
            std::clamp(remainMs, 1, std::max(1, sliceMs)));
        if (ready < 0)
            return netFailure(LoadError::Kind::OpenFailed,
                              "poll failed on connection");
        if (ready == 0)
            continue; // timeout or EINTR: the clock above decides
        const ssize_t r = ::recv(socket.fd(), dst + got, n - got, 0);
        if (r == 0) {
            return netFailure(got == 0 && !*sawAnyByte
                                  ? LoadError::Kind::OpenFailed
                                  : LoadError::Kind::Truncated,
                              got == 0 && !*sawAnyByte
                                  ? "closed"
                                  : "connection closed mid-frame");
        }
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue; // elapsed time stays charged
            return netError(LoadError::Kind::OpenFailed, "recv");
        }
        got += static_cast<std::size_t>(r);
        *sawAnyByte = true;
        idleSinceNs = metrics::monotonicNowNs(); // progress resets
    }
    return std::nullopt;
}

std::uint32_t
loadU32(const char *bytes)
{
    std::uint32_t value = 0;
    std::memcpy(&value, bytes, sizeof(value));
    return value;
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Expected<Socket>
listenUnix(const std::string &path)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() + 1 > sizeof(addr.sun_path))
        return netFailure(LoadError::Kind::OpenFailed,
                          "unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        return netError(LoadError::Kind::OpenFailed, "socket");
    ::unlink(path.c_str());
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return netError(LoadError::Kind::OpenFailed,
                        "bind " + path);
    if (::listen(sock.fd(), 64) != 0)
        return netError(LoadError::Kind::OpenFailed, "listen");
    return sock;
}

Expected<Socket>
listenTcp(std::uint16_t port)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return netError(LoadError::Kind::OpenFailed, "socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return netError(LoadError::Kind::OpenFailed, "bind tcp");
    if (::listen(sock.fd(), 64) != 0)
        return netError(LoadError::Kind::OpenFailed, "listen");
    return sock;
}

Expected<std::uint16_t>
boundPort(const Socket &listener)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(listener.fd(),
                      reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return netError(LoadError::Kind::OpenFailed, "getsockname");
    return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Expected<Socket>
connectUnix(const std::string &path)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() + 1 > sizeof(addr.sun_path))
        return netFailure(LoadError::Kind::OpenFailed,
                          "unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        return netError(LoadError::Kind::OpenFailed, "socket");
    if (::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return netError(LoadError::Kind::OpenFailed,
                        "connect " + path);
    return sock;
}

Expected<Socket>
connectTcp(std::uint16_t port)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return netError(LoadError::Kind::OpenFailed, "socket");
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return netError(LoadError::Kind::OpenFailed, "connect tcp");
    return sock;
}

int
waitReadable(const Socket &socket, int timeoutMs)
{
    pollfd pfd;
    pfd.fd = socket.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeoutMs);
    if (rc < 0)
        return errno == EINTR ? 0 : -1;
    if (rc == 0)
        return 0;
    // Treat a pure error/hangup with no pending data as an error;
    // POLLIN | POLLHUP means buffered bytes remain readable.
    if ((pfd.revents & POLLIN) != 0)
        return 1;
    return -1;
}

Expected<Socket>
acceptConnection(const Socket &listener)
{
    faultCheck("serve_accept");
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0)
        return netError(LoadError::Kind::OpenFailed, "accept");
    return Socket(fd);
}

std::optional<LoadError>
sendFrame(const Socket &socket, const std::string &frame)
{
    faultCheck("serve_frame_write");
    if (frame.size() > maxFrameBytes)
        return netFailure(LoadError::Kind::Malformed,
                          "frame exceeds size cap");
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t r = ::send(socket.fd(), frame.data() + sent,
                                 frame.size() - sent, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return netError(LoadError::Kind::WriteFailed, "send");
        }
        sent += static_cast<std::size_t>(r);
    }
    return std::nullopt;
}

Expected<std::string>
recvFrame(const Socket &socket, int timeoutMs,
          const CancelToken *cancel, int sliceMs)
{
    faultCheck("serve_frame_read");
    if (sliceMs <= 0)
        sliceMs = 100;
    if (timeoutMs <= 0)
        timeoutMs = sliceMs;

    // Frame prefix: magic, version, payloadSize, crc (4 x u32).
    constexpr std::size_t prefixBytes = 16;
    std::string frame(prefixBytes, '\0');
    bool sawAnyByte = false;
    if (auto err = readExactly(socket, frame.data(), prefixBytes,
                               timeoutMs, cancel, sliceMs,
                               &sawAnyByte))
        return *err;

    if (loadU32(frame.data()) != wireMagic)
        return netFailure(LoadError::Kind::BadMagic,
                          "bad frame magic");
    const std::uint32_t payloadSize = loadU32(frame.data() + 8);
    if (prefixBytes + static_cast<std::size_t>(payloadSize) >
        maxFrameBytes)
        return netFailure(LoadError::Kind::Malformed,
                          "frame exceeds size cap");

    frame.resize(prefixBytes + payloadSize);
    if (auto err = readExactly(socket, frame.data() + prefixBytes,
                               payloadSize, timeoutMs, cancel,
                               sliceMs, &sawAnyByte))
        return *err;
    return frame;
}

} // namespace serve
} // namespace vaesa
