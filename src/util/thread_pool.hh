/**
 * @file
 * Fixed-size worker thread pool — the repo's ONLY sanctioned home for
 * raw std::thread (enforced by tools/check). Every parallel subsystem
 * (the parallel evaluation layer, batch candidate scoring, parallel
 * workload roll-ups) schedules work through this pool so thread
 * counts stay centrally controlled via VAESA_THREADS and TSan runs
 * exercise one concurrency substrate instead of many.
 */

#ifndef VAESA_UTIL_THREAD_POOL_HH
#define VAESA_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/sync.hh"

namespace vaesa {

/**
 * A fixed set of worker threads consuming a FIFO task queue.
 *
 * Tasks never run on the caller's thread: submit() enqueues and
 * returns a future, parallelFor() enqueues one contiguous chunk per
 * worker and blocks until all chunks finish. Exceptions thrown by
 * task bodies are captured and rethrown on the waiting thread (for
 * parallelFor, the pending exception of the lowest-index chunk wins,
 * matching what a serial loop would have thrown first).
 *
 * parallelFor() must not be called from inside a pool task: a worker
 * waiting on its own queue would deadlock the pool. Keep nesting in
 * the caller — parallelize the outermost loop only.
 */
class ThreadPool
{
  public:
    /**
     * Start the workers.
     * @param threads worker count; 0 means defaultThreadCount().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers after draining the queue. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 once shutdown() joined them). */
    std::size_t threadCount() const { return threads_; }

    /**
     * Stop accepting work, drain the already-queued tasks, and join
     * every worker. Idempotent; safe to call from multiple threads
     * (exactly one joins). After shutdown() begins, submit() and
     * parallelFor() throw instead of enqueueing — a draining daemon
     * must be able to race a late submit against its own shutdown
     * without aborting the process.
     */
    void shutdown() VAESA_EXCLUDES(queueMutex_);

    /** True once shutdown() (or destruction) has begun. */
    bool stopping() const VAESA_EXCLUDES(queueMutex_);

    /**
     * Enqueue one task; the future rethrows anything it throws.
     * Throws std::runtime_error if the pool is stopping (see
     * shutdown()).
     */
    std::future<void> submit(std::function<void()> task)
        VAESA_EXCLUDES(queueMutex_);

    /**
     * Run body(i) for every i in [0, n) across the workers in
     * contiguous chunks; blocks until every index ran. Rethrows the
     * first (lowest-chunk) exception after all chunks finished, so
     * no index is silently skipped mid-flight.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Worker count used when a pool is built with threads == 0: the
     * VAESA_THREADS env var when set (must be >= 1), otherwise
     * std::thread::hardware_concurrency(), never less than 1.
     */
    static std::size_t defaultThreadCount();

  private:
    void workerLoop() VAESA_EXCLUDES(queueMutex_);

    std::vector<std::thread> workers_;
    std::size_t threads_ = 0;
    mutable Mutex queueMutex_;
    std::deque<std::packaged_task<void()>> queue_
        VAESA_GUARDED_BY(queueMutex_);
    bool stopping_ VAESA_GUARDED_BY(queueMutex_) = false;
    bool joined_ VAESA_GUARDED_BY(queueMutex_) = false;
    // _any flavour: it waits on the annotated vaesa::Mutex directly
    // (BasicLockable), so the guarded wait loop stays visible to the
    // thread-safety analysis.
    std::condition_variable_any wake_;
};

/**
 * Process-wide shared pool (lazily started with defaultThreadCount()
 * workers). Benches and examples use this; library code takes an
 * explicit ThreadPool* so tests control the worker count.
 */
ThreadPool &globalThreadPool();

} // namespace vaesa

#endif // VAESA_UTIL_THREAD_POOL_HH
