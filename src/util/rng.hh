/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in VAESA (dataset sampling, weight init,
 * reparameterization noise, BO candidate generation, GD restarts) draws
 * from an explicitly seeded Rng so experiments are reproducible and can
 * be averaged over seeds, matching the paper's methodology.
 */

#ifndef VAESA_UTIL_RNG_HH
#define VAESA_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace vaesa {

/**
 * Complete serializable state of an Rng. Restoring it resumes the
 * stream bit-for-bit (including the Box-Muller cached normal), which
 * is what makes killed-and-resumed runs identical to uninterrupted
 * ones.
 */
struct RngState
{
    /** xoshiro256++ state words. */
    std::uint64_t words[4] = {0, 0, 0, 0};

    /** Whether a second Box-Muller normal is cached. */
    bool hasCachedNormal = false;

    /** The cached normal (meaningful only when flagged). */
    double cachedNormal = 0.0;

    /** Exact equality (for resume tests). */
    bool operator==(const RngState &other) const = default;
};

/**
 * A small, fast, explicitly-seeded random number generator.
 *
 * Implements xoshiro256++ with splitmix64 seeding. Provides the handful
 * of distributions the framework needs: uniform doubles, uniform
 * integers, standard normals (Box-Muller with caching), and Fisher-Yates
 * shuffles.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t index(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal sample, N(0, 1). */
    double normal();

    /** Normal sample with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /** permutation() into a caller-owned vector (capacity reused). */
    void permutationInto(std::size_t n, std::vector<std::size_t> &out);

    /** Spawn an independent child generator (for parallel streams). */
    Rng split();

    /** Snapshot the full generator state (for checkpoints). */
    RngState state() const;

    /** Restore a snapshot taken by state(). */
    void setState(const RngState &state);

  private:
    std::uint64_t state_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace vaesa

#endif // VAESA_UTIL_RNG_HH
