#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"

namespace vaesa {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path), path_(path)
{
    if (!out_)
        fatal("cannot open CSV output file '", path, "'");
}

void
CsvWriter::header(const std::vector<std::string> &names)
{
    writeRow(names);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    writeRow(cells);
}

void
CsvWriter::rowValues(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(cell(v));
    writeRow(cells);
}

std::string
CsvWriter::cell(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

std::string
CsvWriter::formatRow(const std::vector<std::string> &cells)
{
    std::string out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out += ',';
        const std::string &c = cells[i];
        if (c.find_first_of(",\"\n") != std::string::npos) {
            out += '"';
            for (char ch : c) {
                if (ch == '"')
                    out += '"';
                out += ch;
            }
            out += '"';
        } else {
            out += c;
        }
    }
    out += '\n';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    out_ << formatRow(cells);
    if (!out_)
        fatal("failed writing CSV file '", path_, "'");
}

} // namespace vaesa
