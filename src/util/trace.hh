/**
 * @file
 * Scoped RAII trace spans serialized to Chrome `chrome://tracing`
 * JSON (also loadable in Perfetto). A Span records wall time between
 * construction and destruction; completed spans land in a bounded
 * process-wide buffer that writeChromeTrace() dumps through the
 * crash-safe atomicWriteFile() path.
 *
 * Tracing is off by default: a disabled Span costs one relaxed bool
 * load and touches no clock. Span names must be string literals (or
 * otherwise outlive the process) — the collector stores the pointer,
 * not a copy, so the hot path never allocates. The buffer is capped
 * at maxEvents; spans past the cap are counted in "trace.dropped"
 * rather than grown into unbounded memory.
 */

#ifndef VAESA_UTIL_TRACE_HH
#define VAESA_UTIL_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace vaesa::trace {

/** Hard cap on buffered completed spans. */
constexpr std::size_t maxEvents = 1u << 20;

/** True when span collection is active (default: off). */
bool traceEnabled();

/** Turn span collection on or off process-wide. */
void setTraceEnabled(bool enabled);

/** Completed spans currently buffered. */
std::size_t eventCount();

/** Spans dropped because the buffer was full. */
std::uint64_t droppedCount();

/** Discard all buffered spans (tests and between-run reuse). */
void clear();

/**
 * Scoped span: timestamps its scope and records one complete ("ph":
 * "X") event at destruction. Enabled-ness is latched at construction
 * so a span open across a setTraceEnabled() flip stays consistent.
 */
class Span
{
  public:
    /** @param name event label; MUST outlive the process (literal). */
    explicit Span(const char *name);

    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_;
    std::uint64_t startNs_;
    bool armed_;
};

/**
 * Serialize buffered spans as Chrome trace-event JSON (object format
 * with a "traceEvents" array; timestamps in microseconds, durations
 * preserved to sub-microsecond as fractions) and atomically write
 * them to path. @return true on success (failures are warn()ed).
 */
bool writeChromeTrace(const std::string &path);

/** The serialized trace JSON (exposed for schema tests). */
std::string chromeTraceJson();

} // namespace vaesa::trace

#endif // VAESA_UTIL_TRACE_HH
