/**
 * @file
 * Environment-variable scaling knobs.
 *
 * Default experiment sizes are chosen to finish on a small machine; the
 * VAESA_* variables scale them toward paper scale (500 K dataset, 2000
 * BO samples, 3-5 seeds) without recompiling.
 */

#ifndef VAESA_UTIL_ENV_HH
#define VAESA_UTIL_ENV_HH

#include <cstdint>
#include <string>

namespace vaesa {

/** Integer env var with default; fatal() if set but unparseable. */
std::int64_t envInt(const std::string &name, std::int64_t fallback);

/** Double env var with default; fatal() if set but unparseable. */
double envDouble(const std::string &name, double fallback);

/** String env var with default. */
std::string envString(const std::string &name, const std::string &fallback);

} // namespace vaesa

#endif // VAESA_UTIL_ENV_HH
