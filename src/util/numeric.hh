/**
 * @file
 * Small integer/number-theory helpers shared by the scheduler and the
 * design-space code: prime factorization, divisor enumeration, rounding
 * to discrete grids, and ceiling division.
 */

#ifndef VAESA_UTIL_NUMERIC_HH
#define VAESA_UTIL_NUMERIC_HH

#include <cstdint>
#include <vector>

namespace vaesa {

/** Ceiling division for non-negative integers. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** True when x is a power of two (x > 0). */
constexpr bool
isPowerOfTwo(std::int64_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

/** Prime factorization of n >= 1, as a sorted multiset of factors. */
std::vector<std::int64_t> primeFactors(std::int64_t n);

/** All divisors of n >= 1, in ascending order. */
std::vector<std::int64_t> divisors(std::int64_t n);

/**
 * Largest divisor of n that is <= cap (always >= 1).
 * Used to pick the biggest tile of a loop dimension that fits a bound.
 */
std::int64_t largestDivisorAtMost(std::int64_t n, std::int64_t cap);

/** log2 of a double, defined for x > 0. */
double log2d(double x);

/** Clamp a double into [lo, hi]. */
double clampd(double x, double lo, double hi);

} // namespace vaesa

#endif // VAESA_UTIL_NUMERIC_HH
