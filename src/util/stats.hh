/**
 * @file
 * Summary statistics used to report experiment results.
 *
 * The paper reports every experiment as mean +/- standard deviation over
 * several random seeds; Summary collects exactly that, plus extrema and
 * percentiles for convergence-curve bands.
 */

#ifndef VAESA_UTIL_STATS_HH
#define VAESA_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace vaesa {

/**
 * Incremental summary of a sample set: count, mean, variance (Welford),
 * min and max. Cheap to copy, no stored samples.
 */
class Summary
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations added. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (NaN with fewer than two samples —
     *  undefined, not zero; report it as "n/a"). */
    double variance() const;

    /** Sample standard deviation (NaN with fewer than two samples). */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** Sample standard deviation of a vector (NaN with fewer than 2
 *  items — undefined, not zero; report it as "n/a"). */
double stddev(const std::vector<double> &xs);

/** Geometric mean; requires strictly positive entries. */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile of a copy-sorted sample.
 * @param q quantile in [0, 1].
 */
double percentile(std::vector<double> xs, double q);

/**
 * Running minimum of a series: out[i] = min(xs[0..i]). Used to turn raw
 * search traces into best-so-far convergence curves (Figure 11).
 */
std::vector<double> runningMin(const std::vector<double> &xs);

/**
 * Pearson correlation coefficient of two equal-length samples.
 * Returns 0 when either sample is constant.
 */
double correlation(const std::vector<double> &xs,
                   const std::vector<double> &ys);

} // namespace vaesa

#endif // VAESA_UTIL_STATS_HH
