/**
 * @file
 * Deterministic fault injection, so every failure path in the
 * robustness layer is exercisable from a plain ctest instead of
 * requiring a real crash, disk error, or numerical blow-up.
 *
 * Production code plants named fault sites at the places that can
 * fail in the field (`faultCheck("io_write")` before a file write,
 * `faultMaybeNan("eval_nan", v)` on an evaluation result, epoch /
 * generation / iteration boundaries in the long-running loops). A
 * disarmed site is a single relaxed atomic load -- effectively free.
 *
 * Faults are armed either programmatically (tests) or through the
 * VAESA_FAULT environment variable, a comma-separated list of
 * `site:N` entries meaning "the Nth hit of `site` fires once":
 *
 *   VAESA_FAULT=io_write:3,eval_nan:17
 *
 * fails the 3rd I/O write and injects a NaN into the 17th
 * evaluation. Firing is deterministic: the same program with the
 * same spec fails at exactly the same operation every run.
 */

#ifndef VAESA_UTIL_FAULT_HH
#define VAESA_UTIL_FAULT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "util/sync.hh"

namespace vaesa {

/** Thrown when an armed fault site fires in throwing mode. */
class InjectedFault : public std::runtime_error
{
  public:
    /** @param site the fault site that fired. */
    explicit InjectedFault(const std::string &site)
        : std::runtime_error("injected fault at site '" + site + "'"),
          site_(site)
    {
    }

    /** The fault site that fired. */
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/**
 * Process-wide registry of armed fault sites and their hit counters.
 * Thread-safe: sites may be hit from pool workers.
 */
class FaultInjector
{
  public:
    /** The process-wide instance (parses VAESA_FAULT once). */
    static FaultInjector &instance();

    /**
     * Arm a site: its nth hit (1-based) fires exactly once.
     * Re-arming a site resets its hit counter.
     */
    void arm(const std::string &site, std::uint64_t nth);

    /** Disarm every site and reset all hit counters. */
    void reset();

    /**
     * Count a hit of the site; true exactly when this hit is the
     * armed one. Unarmed sites return false without locking.
     */
    bool shouldFire(const char *site);

    /** Count a hit; throw InjectedFault when it fires. */
    void check(const char *site);

    /** Count a hit; return NaN instead of value when it fires. */
    double maybeNan(const char *site, double value);

    /** Hits recorded for a site since the last arm/reset. */
    std::uint64_t hitCount(const std::string &site) const;

    /**
     * Parse a VAESA_FAULT-style spec into this registry.
     * @return empty string on success, a description of the first
     *         malformed entry otherwise (registry unchanged on error).
     */
    std::string configure(const std::string &spec);

  private:
    FaultInjector();

    struct Plan
    {
        std::uint64_t nth = 0;   // 1-based firing hit; 0 = disarmed
        std::uint64_t hits = 0;  // hits since arming
        bool fired = false;      // fire-once latch
    };

    mutable Mutex faultMutex_;
    std::map<std::string, Plan> plans_ VAESA_GUARDED_BY(faultMutex_);
    std::atomic<bool> anyArmed_{false};
};

/** Shorthand: count a hit of site, throwing InjectedFault on fire. */
inline void
faultCheck(const char *site)
{
    FaultInjector::instance().check(site);
}

/** Shorthand: count a hit of site, NaN-poisoning value on fire. */
inline double
faultMaybeNan(const char *site, double value)
{
    return FaultInjector::instance().maybeNan(site, value);
}

} // namespace vaesa

#endif // VAESA_UTIL_FAULT_HH
