#include "util/logging.hh"

#include <cstring>

namespace vaesa {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("VAESA_LOG");
    if (!env)
        return LogLevel::Warn;
    if (!std::strcmp(env, "silent"))
        return LogLevel::Silent;
    if (!std::strcmp(env, "warn"))
        return LogLevel::Warn;
    if (!std::strcmp(env, "info"))
        return LogLevel::Info;
    if (!std::strcmp(env, "debug"))
        return LogLevel::Debug;
    return LogLevel::Warn;
}

LogLevel globalLevel = initialLevel();

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[vaesa:%s] %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail

} // namespace vaesa
