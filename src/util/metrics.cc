#include "util/metrics.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>

#include "util/atomic_io.hh"
#include "util/logging.hh"
#include "util/sync.hh"

#ifndef VAESA_GIT_DESCRIBE
#define VAESA_GIT_DESCRIBE "unknown"
#endif

namespace vaesa::metrics {

namespace {

std::atomic<bool> enabled{false};

/**
 * Registry backing store. node-based maps keep instrument addresses
 * stable forever; instruments are never erased, so references stay
 * valid across resetAll(). Leaked on purpose: instrument sites cache
 * references in function-local statics whose destruction order
 * against this singleton would otherwise be undefined.
 */
struct Registry
{
    Mutex metricsMutex;
    std::map<std::string, std::unique_ptr<Counter>> counters
        VAESA_GUARDED_BY(metricsMutex);
    std::map<std::string, std::unique_ptr<Gauge>> gauges
        VAESA_GUARDED_BY(metricsMutex);
    std::map<std::string, std::unique_ptr<Histogram>> histograms
        VAESA_GUARDED_BY(metricsMutex);
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

void
appendEscaped(std::string &out, const std::string &text)
{
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendJsonString(std::string &out, const std::string &text)
{
    out += '"';
    appendEscaped(out, text);
    out += '"';
}

void
appendU64(std::string &out, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
}

void
appendDouble(std::string &out, double value)
{
    char buf[64];
    // %.17g round-trips doubles; NaN/Inf are not valid JSON, so map
    // them to null (gauges start life as 0.0, this is belt-and-braces).
    if (value != value) {
        out += "null";
        return;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

} // namespace

bool
metricsEnabled()
{
    return enabled.load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool on)
{
    enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
monotonicNowNs()
{
    // One fixed epoch per process so timestamps from every thread are
    // mutually comparable (and trace spans sort monotonically).
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

unsigned
threadSlot()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed) %
        Counter::numSlots;
    return slot;
}

void
Histogram::observe(std::uint64_t value)
{
    const unsigned bucket =
        value == 0 ? 0
                   : static_cast<unsigned>(std::bit_width(value));
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::min() const
{
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucketCount(unsigned i) const
{
    return i < numBuckets
               ? buckets_[i].load(std::memory_order_relaxed)
               : 0;
}

std::uint64_t
Histogram::bucketLowerBound(unsigned i)
{
    if (i == 0)
        return 0;
    return std::uint64_t{1} << (i - 1);
}

std::uint64_t
Histogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < numBuckets; ++i) {
        seen += bucketCount(i);
        if (seen > rank) {
            // Upper bound of the bucket, clamped to the observed max.
            const std::uint64_t hi =
                i + 1 < numBuckets ? bucketLowerBound(i + 1) - 1
                                   : ~std::uint64_t{0};
            return std::min(hi, max());
        }
    }
    return max();
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

Counter &
counter(const std::string &name)
{
    Registry &r = registry();
    const MutexLock lock(r.metricsMutex);
    auto &slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &r = registry();
    const MutexLock lock(r.metricsMutex);
    auto &slot = r.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
histogram(const std::string &name)
{
    Registry &r = registry();
    const MutexLock lock(r.metricsMutex);
    auto &slot = r.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<MetricSample>
snapshot()
{
    Registry &r = registry();
    const MutexLock lock(r.metricsMutex);
    std::vector<MetricSample> out;
    out.reserve(r.counters.size() + r.gauges.size() +
                r.histograms.size());
    for (const auto &[name, c] : r.counters)
        out.push_back({name, "counter", c->value(), 0.0, nullptr});
    for (const auto &[name, g] : r.gauges)
        out.push_back({name, "gauge", 0, g->value(), nullptr});
    for (const auto &[name, h] : r.histograms)
        out.push_back({name, "histogram", 0, 0.0, h.get()});
    return out;
}

void
resetAll()
{
    Registry &r = registry();
    const MutexLock lock(r.metricsMutex);
    for (auto &[name, c] : r.counters)
        c->reset();
    for (auto &[name, g] : r.gauges)
        g->reset();
    for (auto &[name, h] : r.histograms)
        h->reset();
}

const char *
gitDescribe()
{
    return VAESA_GIT_DESCRIBE;
}

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
manifestJson(const ManifestInfo &info)
{
    std::string out;
    out.reserve(4096);
    out += "{\n  \"schema_version\": 1,\n  \"tool\": ";
    appendJsonString(out, info.tool);
    out += ",\n  \"command\": ";
    appendJsonString(out, info.command);
    out += ",\n  \"command_line\": ";
    appendJsonString(out, info.commandLine);
    out += ",\n  \"config_hash\": ";
    char hash[32];
    std::snprintf(hash, sizeof(hash), "\"%016" PRIx64 "\"",
                  fnv1a(info.commandLine));
    out += hash;
    out += ",\n  \"seed\": ";
    appendU64(out, info.seed);
    out += ",\n  \"git_describe\": ";
    appendJsonString(out, gitDescribe());

    std::string counters;
    std::string gauges;
    std::string histograms;
    for (const MetricSample &sample : snapshot()) {
        if (sample.kind == "counter") {
            counters += counters.empty() ? "\n    " : ",\n    ";
            appendJsonString(counters, sample.name);
            counters += ": ";
            appendU64(counters, sample.count);
        } else if (sample.kind == "gauge") {
            gauges += gauges.empty() ? "\n    " : ",\n    ";
            appendJsonString(gauges, sample.name);
            gauges += ": ";
            appendDouble(gauges, sample.value);
        } else {
            const Histogram &h = *sample.histogram;
            histograms += histograms.empty() ? "\n    " : ",\n    ";
            appendJsonString(histograms, sample.name);
            histograms += ": {\"count\": ";
            appendU64(histograms, h.count());
            histograms += ", \"sum\": ";
            appendU64(histograms, h.sum());
            histograms += ", \"min\": ";
            appendU64(histograms, h.min());
            histograms += ", \"max\": ";
            appendU64(histograms, h.max());
            histograms += ", \"p50\": ";
            appendU64(histograms, h.quantile(0.5));
            histograms += ", \"p90\": ";
            appendU64(histograms, h.quantile(0.9));
            histograms += ", \"p99\": ";
            appendU64(histograms, h.quantile(0.99));
            histograms += ", \"buckets\": [";
            bool first = true;
            for (unsigned i = 0; i < Histogram::numBuckets; ++i) {
                if (h.bucketCount(i) == 0)
                    continue;
                if (!first)
                    histograms += ", ";
                first = false;
                histograms += "[";
                appendU64(histograms,
                          Histogram::bucketLowerBound(i));
                histograms += ", ";
                appendU64(histograms, h.bucketCount(i));
                histograms += "]";
            }
            histograms += "]}";
        }
    }
    out += ",\n  \"counters\": {" + counters +
           (counters.empty() ? "}" : "\n  }");
    out += ",\n  \"gauges\": {" + gauges +
           (gauges.empty() ? "}" : "\n  }");
    out += ",\n  \"histograms\": {" + histograms +
           (histograms.empty() ? "}" : "\n  }");
    out += "\n}\n";
    return out;
}

bool
writeManifest(const std::string &path, const ManifestInfo &info)
{
    if (auto err = atomicWriteFile(path, manifestJson(info))) {
        warn("metrics manifest write failed: ", err->describe());
        return false;
    }
    return true;
}

} // namespace vaesa::metrics
