#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace vaesa {

namespace {

/** splitmix64 step, used to expand the seed into the xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::index(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::index called with n == 0");
    // Rejection-free modulo is fine here; bias is negligible for the
    // small n used throughout (grid sizes << 2^64).
    return next() % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (hi < lo)
        panic("Rng::range called with hi < lo");
    return lo + static_cast<std::int64_t>(
        index(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller transform; u1 is kept away from 0 to avoid log(0).
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm;
    permutationInto(n, perm);
    return perm;
}

void
Rng::permutationInto(std::size_t n, std::vector<std::size_t> &out)
{
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = index(i);
        std::swap(out[i - 1], out[j]);
    }
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA5A5A5A55A5A5A5Aull);
}

RngState
Rng::state() const
{
    RngState snapshot;
    for (int i = 0; i < 4; ++i)
        snapshot.words[i] = state_[i];
    snapshot.hasCachedNormal = hasCachedNormal_;
    snapshot.cachedNormal = cachedNormal_;
    return snapshot;
}

void
Rng::setState(const RngState &state)
{
    for (int i = 0; i < 4; ++i)
        state_[i] = state.words[i];
    hasCachedNormal_ = state.hasCachedNormal;
    cachedNormal_ = state.cachedNormal;
}

} // namespace vaesa
