#include "util/contracts.hh"

#include <sstream>

namespace vaesa {

void
contractFail(const char *kind, const char *expr, const char *file,
             int line, const std::string &message)
{
    std::ostringstream oss;
    oss << kind << " violated at " << file << ":" << line << ": "
        << expr;
    if (!message.empty())
        oss << " (" << message << ")";
    const std::string what = oss.str();
    warn("contract: ", what);
    throw ContractViolation(what);
}

bool
contractChecksActive()
{
    // Reflects the VAESA_CHECKS setting the vaesa libraries were
    // compiled with (this TU is compiled into vaesa_util).
    return VAESA_CHECKS != 0;
}

} // namespace vaesa
