/**
 * @file
 * Per-request deadlines and cooperative cancellation. A CancelToken
 * is owned by the initiator of a unit of work (a serve request, a
 * drain sequence, a test) and observed — never blocked on — at the
 * natural checkpoint boundaries of the work it governs: batch chunk
 * claims in the parallel evaluator, iteration boundaries in the
 * search drivers, frame boundaries in the serve connection loop.
 *
 * Expiry is the OR of three conditions: an explicit cancel() call, a
 * monotonic-clock deadline, and the expiry of an optional parent
 * token (serve chains every per-request token to the server's drain
 * token, so one cancel() reaches every in-flight request). All reads
 * are lock-free; the token allocates nothing.
 *
 * Time comes from metrics::monotonicNowNs(), which is ungated (the
 * metricsEnabled() switch gates only instrument timing), so deadlines
 * work whether or not observability is on.
 */

#ifndef VAESA_UTIL_DEADLINE_HH
#define VAESA_UTIL_DEADLINE_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/metrics.hh"

namespace vaesa {

/**
 * Thrown by checkpoints that must unwind on expiry (the parallel
 * evaluator's chunk loop). Callers that own a trace or partial
 * result catch this and degrade to best-so-far instead of failing.
 */
class DeadlineExceeded : public std::runtime_error
{
  public:
    explicit DeadlineExceeded(const std::string &where)
        : std::runtime_error("deadline exceeded: " + where)
    {
    }
};

/**
 * Cooperative cancellation handle. Configure (deadline, parent)
 * before sharing the token across threads; cancel() and the
 * observers are safe concurrently after that. Non-copyable — workers
 * hold `const CancelToken *`.
 */
class CancelToken
{
  public:
    /** A token that never expires until cancel() or a parent fires. */
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Arm an absolute deadline, monotonicNowNs() epoch. */
    void setDeadlineNs(std::uint64_t absoluteNs)
    {
        deadlineNs_ = absoluteNs;
    }

    /** Arm a deadline @p ms from now; 0 ms expires immediately. */
    void setDeadlineAfterMs(std::uint64_t ms)
    {
        deadlineNs_ = metrics::monotonicNowNs() + ms * 1000000ull;
    }

    /**
     * Chain to a parent whose expiry implies this token's expiry.
     * The parent must outlive this token.
     */
    void chainTo(const CancelToken *parent) { parent_ = parent; }

    /** Fire the token explicitly (idempotent, thread-safe). */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /** True once cancel() was called on this token itself. */
    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** True when cancelled, past deadline, or the parent expired. */
    bool expired() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        if (deadlineNs_ != 0 &&
            metrics::monotonicNowNs() >= deadlineNs_)
            return true;
        return parent_ != nullptr && parent_->expired();
    }

    /**
     * Nanoseconds until the deadline; 0 when expired. Tokens with no
     * deadline (and no expired ancestor) report the max value, so
     * min()-combining with an I/O timeout stays correct.
     */
    std::uint64_t remainingNs() const
    {
        if (expired())
            return 0;
        if (deadlineNs_ == 0)
            return ~0ull;
        const std::uint64_t now = metrics::monotonicNowNs();
        return now >= deadlineNs_ ? 0 : deadlineNs_ - now;
    }

    /** Throw DeadlineExceeded tagged with @p where when expired. */
    void check(const char *where) const
    {
        if (expired())
            throw DeadlineExceeded(where);
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::uint64_t deadlineNs_ = 0;
    const CancelToken *parent_ = nullptr;
};

} // namespace vaesa

#endif // VAESA_UTIL_DEADLINE_HH
