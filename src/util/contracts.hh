/**
 * @file
 * Runtime contract checks for the layer boundaries of the pipeline.
 *
 * VAESA_EXPECT() states a precondition, VAESA_ENSURE() a
 * postcondition, and VAESA_CHECK_FINITE() rejects NaN/Inf scalars at
 * the numeric boundaries (losses, gradients, cost-model outputs).
 * Latent-space DSE is numerically fragile: a NaN produced inside one
 * subsystem otherwise only surfaces three subsystems later as a flat
 * BO curve, so these checks fail fast where the bad value is born.
 *
 * The checks compile to ((void)0) unless the translation unit is
 * built with VAESA_CHECKS=1 (the `VAESA_CHECKS` CMake option; ON by
 * default in Debug and in the sanitizer presets, OFF in plain
 * Release). A violation throws ContractViolation rather than
 * aborting, so a long-running server can catch it at the request
 * boundary and fail one request instead of the process; uncaught it
 * still terminates loudly like panic().
 */

#ifndef VAESA_UTIL_CONTRACTS_HH
#define VAESA_UTIL_CONTRACTS_HH

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/logging.hh"

namespace vaesa {

/**
 * Thrown on a failed VAESA_EXPECT/VAESA_ENSURE/VAESA_CHECK_FINITE.
 * Derives from std::logic_error: a violation is a programming error
 * or corrupted input, never a recoverable condition of the algorithm.
 */
class ContractViolation : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/**
 * Report a failed contract: logs the violation and throws
 * ContractViolation. Out of line so the check macros stay small.
 */
[[noreturn]] void contractFail(const char *kind, const char *expr,
                               const char *file, int line,
                               const std::string &message);

/**
 * True when the vaesa libraries themselves were compiled with
 * VAESA_CHECKS=1. Tests use this to skip library-boundary contract
 * tests in builds where the checks are compiled out. (A test TU can
 * still force the macros on locally by defining VAESA_CHECKS before
 * including this header.)
 */
bool contractChecksActive();

namespace detail {

/** True when every element of a Matrix-like object is finite. */
template <typename M>
bool
allFinite(const M &m)
{
    const double *p = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        if (!std::isfinite(p[i]))
            return false;
    return true;
}

} // namespace detail

} // namespace vaesa

#if !defined(VAESA_CHECKS)
#define VAESA_CHECKS 0
#endif

#if VAESA_CHECKS

#define VAESA_CONTRACT_IMPL_(kind, cond, ...)                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::vaesa::contractFail(                                      \
                kind, #cond, __FILE__, __LINE__,                        \
                ::vaesa::detail::concat("" __VA_OPT__(, ) __VA_ARGS__));\
        }                                                               \
    } while (false)

/** Precondition: must hold on entry; extra args describe the context. */
#define VAESA_EXPECT(cond, ...)                                         \
    VAESA_CONTRACT_IMPL_("precondition", cond, __VA_ARGS__)

/** Postcondition: must hold on the produced result. */
#define VAESA_ENSURE(cond, ...)                                         \
    VAESA_CONTRACT_IMPL_("postcondition", cond, __VA_ARGS__)

/** Reject a NaN/Inf scalar (evaluates `value` exactly once). */
#define VAESA_CHECK_FINITE(value, ...)                                  \
    do {                                                                \
        const double vaesa_cf_value_ =                                  \
            static_cast<double>(value);                                 \
        if (!std::isfinite(vaesa_cf_value_)) {                          \
            ::vaesa::contractFail(                                      \
                "finite-check", #value, __FILE__, __LINE__,             \
                ::vaesa::detail::concat(                                \
                    "value=", vaesa_cf_value_                           \
                    __VA_OPT__(, " ", ) __VA_ARGS__));                  \
        }                                                               \
    } while (false)

/** Reject a Matrix (or Matrix-like) containing any NaN/Inf element. */
#define VAESA_CHECK_FINITE_ALL(matrix, ...)                             \
    do {                                                                \
        if (!::vaesa::detail::allFinite(matrix)) {                      \
            ::vaesa::contractFail(                                      \
                "finite-check", #matrix, __FILE__, __LINE__,            \
                ::vaesa::detail::concat(                                \
                    "non-finite element" __VA_OPT__(, " ", )            \
                    __VA_ARGS__));                                      \
        }                                                               \
    } while (false)

#else

#define VAESA_EXPECT(cond, ...) ((void)0)
#define VAESA_ENSURE(cond, ...) ((void)0)
#define VAESA_CHECK_FINITE(value, ...) ((void)0)
#define VAESA_CHECK_FINITE_ALL(matrix, ...) ((void)0)

#endif // VAESA_CHECKS

#endif // VAESA_UTIL_CONTRACTS_HH
