#include "util/atomic_io.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/fault.hh"
#include "util/logging.hh"

namespace vaesa {

namespace {

namespace fs = std::filesystem;

/** Lazily-built CRC-32 lookup table (IEEE polynomial, reflected). */
const std::uint32_t *
crcTable()
{
    static const auto table = [] {
        std::vector<std::uint32_t> t(256);
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table.data();
}

/** Append a little-endian u32 to a byte string. */
void
appendU32(std::string &out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xFFu));
}

/** Decode a little-endian u32 from 4 raw bytes. */
std::uint32_t
decodeU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    const std::uint32_t *table = crcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

void
ByteBuffer::putU32(std::uint32_t value)
{
    appendU32(bytes_, value);
}

void
ByteBuffer::putU64(std::uint64_t value)
{
    appendU32(bytes_, static_cast<std::uint32_t>(value));
    appendU32(bytes_, static_cast<std::uint32_t>(value >> 32));
}

void
ByteBuffer::putF64(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    putU64(bits);
}

void
ByteBuffer::putString(const std::string &value)
{
    putU64(value.size());
    bytes_.append(value);
}

void
ByteBuffer::putBytes(const void *data, std::size_t size)
{
    bytes_.append(static_cast<const char *>(data), size);
}

ByteReader::ByteReader(const void *data, std::size_t size)
    : data_(static_cast<const unsigned char *>(data)), size_(size)
{
}

std::uint32_t
ByteReader::getU32()
{
    if (failed_ || size_ - cursor_ < 4) {
        failed_ = true;
        return 0;
    }
    const std::uint32_t value = decodeU32(data_ + cursor_);
    cursor_ += 4;
    return value;
}

std::uint64_t
ByteReader::getU64()
{
    const std::uint64_t lo = getU32();
    const std::uint64_t hi = getU32();
    return lo | (hi << 32);
}

double
ByteReader::getF64()
{
    const std::uint64_t bits = getU64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return failed_ ? 0.0 : value;
}

std::string
ByteReader::getString(std::size_t maxLen)
{
    const std::uint64_t len = getU64();
    if (failed_ || len > maxLen || size_ - cursor_ < len) {
        failed_ = true;
        return {};
    }
    std::string value(reinterpret_cast<const char *>(data_ + cursor_),
                      static_cast<std::size_t>(len));
    cursor_ += static_cast<std::size_t>(len);
    return value;
}

bool
ByteReader::getBytes(void *dst, std::size_t size)
{
    if (failed_ || size_ - cursor_ < size) {
        failed_ = true;
        return false;
    }
    std::memcpy(dst, data_ + cursor_, size);
    cursor_ += size;
    return true;
}

RecordWriter::RecordWriter(std::uint32_t magic, std::uint32_t version)
{
    appendU32(out_, magic);
    appendU32(out_, version);
}

void
RecordWriter::writeRecord(const ByteBuffer &payload)
{
    if (payload.size() > maxRecordPayload)
        panic("RecordWriter: record payload of ", payload.size(),
              " bytes exceeds the ", maxRecordPayload, " cap");
    appendU32(out_, static_cast<std::uint32_t>(payload.size()));
    appendU32(out_, crc32(payload.data().data(), payload.size()));
    out_.append(payload.data());
}

RecordReader::RecordReader(const std::string &bytes, std::string file)
    : bytes_(bytes), file_(std::move(file))
{
}

LoadError
RecordReader::makeError(LoadError::Kind kind,
                        const std::string &message) const
{
    return makeLoadError(kind, file_, 0, message);
}

std::optional<LoadError>
RecordReader::readHeader(std::uint32_t magic, std::uint32_t minVersion,
                         std::uint32_t maxVersion,
                         std::uint32_t *version)
{
    if (bytes_.size() < 8)
        return makeError(LoadError::Kind::Truncated,
                         "file too short for a format header");
    const auto *p =
        reinterpret_cast<const unsigned char *>(bytes_.data());
    const std::uint32_t gotMagic = decodeU32(p);
    const std::uint32_t gotVersion = decodeU32(p + 4);
    if (gotMagic != magic)
        return makeError(LoadError::Kind::BadMagic,
                         "magic word mismatch (not the expected "
                         "format, or the header is corrupt)");
    if (gotVersion < minVersion || gotVersion > maxVersion)
        return makeError(LoadError::Kind::BadVersion,
                         "unsupported format version " +
                             std::to_string(gotVersion));
    if (version)
        *version = gotVersion;
    cursor_ = 8;
    return std::nullopt;
}

Expected<std::string>
RecordReader::readRecord()
{
    if (bytes_.size() - cursor_ < 8)
        return makeError(LoadError::Kind::Truncated,
                         "input ends inside a record frame");
    const auto *p =
        reinterpret_cast<const unsigned char *>(bytes_.data()) +
        cursor_;
    const std::uint32_t size = decodeU32(p);
    const std::uint32_t crc = decodeU32(p + 4);
    if (size > maxRecordPayload)
        return makeError(LoadError::Kind::Malformed,
                         "record length " + std::to_string(size) +
                             " exceeds the format cap (corrupt "
                             "length field)");
    if (bytes_.size() - cursor_ - 8 < size)
        return makeError(LoadError::Kind::Truncated,
                         "input ends inside a record payload");
    const char *payload = bytes_.data() + cursor_ + 8;
    if (crc32(payload, size) != crc)
        return makeError(LoadError::Kind::BadChecksum,
                         "record checksum mismatch (corrupt "
                         "payload)");
    cursor_ += 8 + size;
    return std::string(payload, size);
}

Expected<std::string>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return makeLoadError(LoadError::Kind::OpenFailed, path, 0,
                             "cannot open file for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        return makeLoadError(LoadError::Kind::OpenFailed, path, 0,
                             "read error while loading file");
    return buffer.str();
}

std::optional<LoadError>
atomicWriteFile(const std::string &path, const std::string &bytes)
{
    const std::string temp = path + ".tmp";
    {
        // The fault site models a crash inside the data write: the
        // temp file may be torn, but `path` is never touched.
        faultCheck("io_write");
        std::FILE *f = std::fopen(temp.c_str(), "wb");
        if (!f)
            return makeLoadError(LoadError::Kind::WriteFailed, temp,
                                 0, "cannot open temp file: " +
                                        std::string(
                                            std::strerror(errno)));
        const std::size_t written =
            bytes.empty() ? 0
                          : std::fwrite(bytes.data(), 1, bytes.size(),
                                        f);
        const bool flushed = std::fflush(f) == 0;
        const bool synced = ::fsync(fileno(f)) == 0;
        const bool closed = std::fclose(f) == 0;
        if (written != bytes.size() || !flushed || !synced ||
            !closed) {
            std::remove(temp.c_str());
            return makeLoadError(LoadError::Kind::WriteFailed, temp,
                                 0, "short write or flush failure");
        }
    }
    std::error_code ec;
    fs::rename(temp, path, ec);
    if (ec) {
        std::remove(temp.c_str());
        return makeLoadError(LoadError::Kind::WriteFailed, path, 0,
                             "rename failed: " + ec.message());
    }
    return std::nullopt;
}

std::string
previousCheckpointPath(const std::string &path)
{
    return path + ".prev";
}

std::optional<LoadError>
atomicWriteFileWithRotation(const std::string &path,
                            const std::string &bytes)
{
    // Write the new checkpoint fully (to a distinct temp so a crash
    // here leaves both existing copies intact), then rotate: primary
    // becomes .prev, the new file becomes primary. Every intermediate
    // state keeps at least one complete checkpoint loadable via the
    // primary-then-.prev fallback.
    const std::string staged = path + ".next";
    if (auto err = atomicWriteFile(staged, bytes))
        return err;

    std::error_code ec;
    if (fs::exists(path, ec)) {
        faultCheck("checkpoint_rotate");
        fs::rename(path, previousCheckpointPath(path), ec);
        if (ec)
            return makeLoadError(LoadError::Kind::WriteFailed, path,
                                 0, "rotation rename failed: " +
                                        ec.message());
    }
    fs::rename(staged, path, ec);
    if (ec)
        return makeLoadError(LoadError::Kind::WriteFailed, path, 0,
                             "final rename failed: " + ec.message());
    return std::nullopt;
}

} // namespace vaesa
