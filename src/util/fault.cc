#include "util/fault.hh"

#include <cstdlib>
#include <limits>

#include "util/logging.hh"

namespace vaesa {

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::FaultInjector()
{
    const char *spec = std::getenv("VAESA_FAULT");
    if (spec && *spec) {
        const std::string problem = configure(spec);
        if (!problem.empty())
            fatal("VAESA_FAULT: ", problem,
                  " (expected site:N[,site:N...])");
        inform("fault injection armed from VAESA_FAULT='", spec,
               "'");
    }
}

std::string
FaultInjector::configure(const std::string &spec)
{
    std::map<std::string, Plan> parsed;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(begin, end - begin);
        begin = end + 1;
        if (entry.empty()) {
            if (end == spec.size())
                break;
            continue;
        }
        const std::size_t colon = entry.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= entry.size())
            return "malformed entry '" + entry + "'";
        const std::string site = entry.substr(0, colon);
        const std::string count = entry.substr(colon + 1);
        char *parse_end = nullptr;
        const unsigned long long nth =
            std::strtoull(count.c_str(), &parse_end, 10);
        if (parse_end == count.c_str() || *parse_end || nth == 0)
            return "bad hit count in '" + entry + "'";
        Plan plan;
        plan.nth = nth;
        parsed[site] = plan;
        if (end == spec.size())
            break;
    }
    const MutexLock lock(faultMutex_);
    for (auto &[site, plan] : parsed)
        plans_[site] = plan;
    anyArmed_.store(!plans_.empty(), std::memory_order_release);
    return {};
}

void
FaultInjector::arm(const std::string &site, std::uint64_t nth)
{
    if (nth == 0)
        panic("FaultInjector::arm: hit count must be >= 1");
    const MutexLock lock(faultMutex_);
    Plan plan;
    plan.nth = nth;
    plans_[site] = plan;
    anyArmed_.store(true, std::memory_order_release);
}

void
FaultInjector::reset()
{
    const MutexLock lock(faultMutex_);
    plans_.clear();
    anyArmed_.store(false, std::memory_order_release);
}

bool
FaultInjector::shouldFire(const char *site)
{
    if (!anyArmed_.load(std::memory_order_acquire))
        return false;
    const MutexLock lock(faultMutex_);
    const auto it = plans_.find(site);
    if (it == plans_.end())
        return false;
    Plan &plan = it->second;
    ++plan.hits;
    if (!plan.fired && plan.hits == plan.nth) {
        plan.fired = true;
        return true;
    }
    return false;
}

void
FaultInjector::check(const char *site)
{
    if (shouldFire(site)) {
        warn("fault injection: firing at site '", site, "'");
        throw InjectedFault(site);
    }
}

double
FaultInjector::maybeNan(const char *site, double value)
{
    if (shouldFire(site)) {
        warn("fault injection: NaN-poisoning site '", site, "'");
        return std::numeric_limits<double>::quiet_NaN();
    }
    return value;
}

std::uint64_t
FaultInjector::hitCount(const std::string &site) const
{
    const MutexLock lock(faultMutex_);
    const auto it = plans_.find(site);
    return it == plans_.end() ? 0 : it->second.hits;
}

} // namespace vaesa
