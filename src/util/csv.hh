/**
 * @file
 * Minimal CSV emission for experiment artifacts. Every bench binary can
 * drop its table/series to a CSV next to stdout so figures can be
 * re-plotted outside the harness.
 */

#ifndef VAESA_UTIL_CSV_HH
#define VAESA_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace vaesa {

/**
 * Row-at-a-time CSV writer. Values are formatted with enough precision
 * to round-trip doubles; strings containing separators are quoted.
 */
class CsvWriter
{
  public:
    /** Open (truncate) the target file; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write the header row. */
    void header(const std::vector<std::string> &names);

    /** Write one row of already-formatted cells. */
    void row(const std::vector<std::string> &cells);

    /** Write one row of doubles. */
    void rowValues(const std::vector<double> &values);

    /** Format a double for a CSV cell. */
    static std::string cell(double value);

    /**
     * Format one row (with quoting) as a newline-terminated string,
     * for callers that assemble a CSV in memory — e.g.\ to write it
     * atomically via atomicWriteFile().
     */
    static std::string formatRow(const std::vector<std::string> &cells);

  private:
    void writeRow(const std::vector<std::string> &cells);

    std::ofstream out_;
    std::string path_;
};

} // namespace vaesa

#endif // VAESA_UTIL_CSV_HH
