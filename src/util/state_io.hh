/**
 * @file
 * Binary serialization of RngState for checkpoint payloads. Shared by
 * training checkpoints (vaesa/) and search snapshots (dse/): both must
 * capture the generator exactly so a resumed run draws the same stream
 * as an uninterrupted one.
 */

#ifndef VAESA_UTIL_STATE_IO_HH
#define VAESA_UTIL_STATE_IO_HH

#include "util/atomic_io.hh"
#include "util/rng.hh"

namespace vaesa {

/** Append an RngState to a record payload. */
inline void
putRngState(ByteBuffer &out, const RngState &state)
{
    for (std::uint64_t word : state.words)
        out.putU64(word);
    out.putU32(state.hasCachedNormal ? 1 : 0);
    out.putF64(state.cachedNormal);
}

/**
 * Read an RngState written by putRngState().
 * @return false on payload overrun or an invalid flag byte.
 */
inline bool
readRngState(ByteReader &in, RngState &state)
{
    for (std::uint64_t &word : state.words)
        word = in.getU64();
    const std::uint32_t flag = in.getU32();
    state.cachedNormal = in.getF64();
    if (in.failed() || flag > 1)
        return false;
    state.hasCachedNormal = flag == 1;
    return true;
}

} // namespace vaesa

#endif // VAESA_UTIL_STATE_IO_HH
