#include "util/numeric.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace vaesa {

std::vector<std::int64_t>
primeFactors(std::int64_t n)
{
    if (n < 1)
        panic("primeFactors requires n >= 1, got ", n);
    std::vector<std::int64_t> factors;
    for (std::int64_t p = 2; p * p <= n; ++p) {
        while (n % p == 0) {
            factors.push_back(p);
            n /= p;
        }
    }
    if (n > 1)
        factors.push_back(n);
    return factors;
}

std::vector<std::int64_t>
divisors(std::int64_t n)
{
    if (n < 1)
        panic("divisors requires n >= 1, got ", n);
    std::vector<std::int64_t> divs;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            divs.push_back(d);
            if (d != n / d)
                divs.push_back(n / d);
        }
    }
    std::sort(divs.begin(), divs.end());
    return divs;
}

std::int64_t
largestDivisorAtMost(std::int64_t n, std::int64_t cap)
{
    if (n < 1)
        panic("largestDivisorAtMost requires n >= 1, got ", n);
    if (cap < 1)
        return 1;
    std::int64_t best = 1;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            if (d <= cap)
                best = std::max(best, d);
            if (n / d <= cap)
                best = std::max(best, n / d);
        }
    }
    return best;
}

double
log2d(double x)
{
    if (x <= 0.0)
        panic("log2d requires x > 0, got ", x);
    return std::log2(x);
}

double
clampd(double x, double lo, double hi)
{
    return std::min(std::max(x, lo), hi);
}

} // namespace vaesa
