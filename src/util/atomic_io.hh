/**
 * @file
 * Crash-safe file I/O and the checksummed record framing shared by
 * every binary format in the tree.
 *
 * Writes go write-to-temp + flush + fsync + atomic-rename, so a crash
 * at any instruction leaves either the complete old file or the
 * complete new file -- never a torn one. Checkpoint-style files add
 * one level of rotation (`path` + `path.prev`): the previous good
 * copy survives until the new one is durably in place, and loaders
 * fall back to it when the primary is corrupt or missing.
 *
 * The record framing gives each format the same on-disk skeleton:
 *
 *   file   := header record*
 *   header := magic:u32 version:u32
 *   record := payloadSize:u32 crc32(payload):u32 payload
 *
 * so corruption anywhere (bit flip, truncation, foreign file) is
 * detected at load time and reported as a LoadError instead of being
 * deserialized into silently-wrong tensors.
 */

#ifndef VAESA_UTIL_ATOMIC_IO_HH
#define VAESA_UTIL_ATOMIC_IO_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/load_error.hh"

namespace vaesa {

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range. */
std::uint32_t crc32(const void *data, std::size_t size);

/**
 * Little-endian binary serialization buffer: build a record payload
 * in memory, then hand it to RecordWriter::writeRecord().
 */
class ByteBuffer
{
  public:
    /** Append a 32-bit unsigned value. */
    void putU32(std::uint32_t value);

    /** Append a 64-bit unsigned value. */
    void putU64(std::uint64_t value);

    /** Append a double (IEEE-754 bit pattern). */
    void putF64(double value);

    /** Append a length-prefixed string (u64 length + bytes). */
    void putString(const std::string &value);

    /** Append raw bytes. */
    void putBytes(const void *data, std::size_t size);

    /** The accumulated payload. */
    const std::string &data() const { return bytes_; }

    /** Payload size in bytes. */
    std::size_t size() const { return bytes_.size(); }

  private:
    std::string bytes_;
};

/**
 * Bounds-checked cursor over one record payload. Reads past the end
 * set a sticky failure flag and return zeros; callers check failed()
 * once after a batch of reads instead of after every field.
 */
class ByteReader
{
  public:
    /** Read from an in-memory payload (not owned; must outlive). */
    ByteReader(const void *data, std::size_t size);

    /** Read a 32-bit unsigned value (0 and failed() on overrun). */
    std::uint32_t getU32();

    /** Read a 64-bit unsigned value (0 and failed() on overrun). */
    std::uint64_t getU64();

    /** Read a double (0.0 and failed() on overrun). */
    double getF64();

    /**
     * Read a length-prefixed string. Lengths above maxLen are treated
     * as corruption (failed() is set) so a flipped length byte cannot
     * drive a huge allocation.
     */
    std::string getString(std::size_t maxLen = 1 << 16);

    /** Copy size raw bytes into dst (false + failed() on overrun). */
    bool getBytes(void *dst, std::size_t size);

    /** True once any read ran past the payload end. */
    bool failed() const { return failed_; }

    /** True when the cursor consumed the payload exactly. */
    bool atEnd() const { return !failed_ && cursor_ == size_; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - cursor_; }

  private:
    const unsigned char *data_;
    std::size_t size_;
    std::size_t cursor_ = 0;
    bool failed_ = false;
};

/** Sanity cap on one record's payload (a flipped length field must
 *  not drive a multi-gigabyte allocation). */
constexpr std::uint32_t maxRecordPayload = 1u << 28;

/**
 * Serializer for the framed file layout. Writes the header once,
 * then length+CRC-framed records. All output goes to an in-memory
 * buffer handed to atomicWriteFile() by the caller, so the file
 * appears atomically.
 */
class RecordWriter
{
  public:
    /** Start a framed file with the given magic and version. */
    RecordWriter(std::uint32_t magic, std::uint32_t version);

    /** Append one framed record. */
    void writeRecord(const ByteBuffer &payload);

    /** The complete serialized file image. */
    const std::string &bytes() const { return out_; }

  private:
    std::string out_;
};

/**
 * Deserializer for the framed file layout. Validates the header and
 * then yields one verified payload per readRecord() call.
 */
class RecordReader
{
  public:
    /**
     * Wrap a complete file image.
     * @param bytes file contents (not owned; must outlive).
     * @param file name used in LoadError reports.
     */
    RecordReader(const std::string &bytes, std::string file);

    /**
     * Validate magic/version.
     * @param magic expected magic word.
     * @param minVersion lowest supported version.
     * @param maxVersion highest supported version.
     * @param version out: the version found (when header is intact).
     */
    std::optional<LoadError> readHeader(std::uint32_t magic,
                                        std::uint32_t minVersion,
                                        std::uint32_t maxVersion,
                                        std::uint32_t *version);

    /**
     * Read and verify the next record.
     * @return the payload, or a LoadError on truncation/corruption.
     */
    Expected<std::string> readRecord();

    /** True when every byte of the file has been consumed. */
    bool atEnd() const { return cursor_ == bytes_.size(); }

    /** Build a LoadError naming this reader's file. */
    LoadError makeError(LoadError::Kind kind,
                        const std::string &message) const;

  private:
    const std::string &bytes_;
    std::string file_;
    std::size_t cursor_ = 0;
};

/** Read a whole file into memory (OpenFailed on any problem). */
Expected<std::string> readFileBytes(const std::string &path);

/**
 * Crash-safe whole-file write: the bytes land in `path + ".tmp"`,
 * are flushed and fsync'd, and the temp is atomically renamed onto
 * path. Any failure (including an injected `io_write` fault) leaves
 * the previous file untouched.
 * @return nullopt on success, a WriteFailed LoadError otherwise.
 */
std::optional<LoadError> atomicWriteFile(const std::string &path,
                                         const std::string &bytes);

/**
 * Checkpoint-style write with last-good rotation: the new bytes are
 * written atomically to a temp file, the current `path` (if any) is
 * renamed to `path.prev`, and the temp is renamed to `path`. A crash
 * at any point leaves at least one complete checkpoint on disk.
 */
std::optional<LoadError>
atomicWriteFileWithRotation(const std::string &path,
                            const std::string &bytes);

/** The rotated sibling of a checkpoint path. */
std::string previousCheckpointPath(const std::string &path);

/**
 * Load `path` with automatic fallback to `path.prev`: when the
 * primary is missing or corrupt but the rotated copy loads, the
 * fallback result is returned and a warning is logged. When both
 * fail, the PRIMARY error is returned (it is the authoritative one).
 *
 * @param loader callable: const std::string& -> Expected<T>.
 */
template <typename T, typename Loader>
Expected<T>
loadWithFallback(const std::string &path, Loader &&loader)
{
    Expected<T> primary = loader(path);
    if (primary.ok())
        return primary;
    Expected<T> previous = loader(previousCheckpointPath(path));
    if (previous.ok()) {
        warn("falling back to '", previousCheckpointPath(path),
             "': ", primary.error().describe());
        return previous;
    }
    return primary;
}

} // namespace vaesa

#endif // VAESA_UTIL_ATOMIC_IO_HH
