#include "util/env.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace vaesa {

std::int64_t
envInt(const std::string &name, std::int64_t fallback)
{
    const char *value = std::getenv(name.c_str());
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const long long parsed = std::strtoll(value, &end, 10);
    if (end == value || *end)
        fatal("env var ", name, "='", value, "' is not an integer");
    return parsed;
}

double
envDouble(const std::string &name, double fallback)
{
    const char *value = std::getenv(name.c_str());
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end)
        fatal("env var ", name, "='", value, "' is not a number");
    return parsed;
}

std::string
envString(const std::string &name, const std::string &fallback)
{
    const char *value = std::getenv(name.c_str());
    return (value && *value) ? value : fallback;
}

} // namespace vaesa
