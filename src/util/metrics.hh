/**
 * @file
 * Process-wide, thread-safe metrics: monotonic counters, gauges, and
 * latency histograms with fixed log-spaced (power-of-two) buckets.
 *
 * Design constraints (the PR 2 locking contract extends to here):
 *  - no allocation and no lock on the hot path: increments are relaxed
 *    atomic adds into a per-thread shard, histograms index a fixed
 *    bucket array, and instrument sites cache their registry
 *    references once;
 *  - instruments are valid for the life of the process: the registry
 *    never removes or reallocates an instrument, so references handed
 *    out by counter()/gauge()/histogram() stay stable across
 *    resetAll() and concurrent registration;
 *  - wall-clock reads are the expensive part of timing, so every
 *    timing helper is gated on metricsEnabled() and collapses to a
 *    relaxed bool load when observability is off.
 *
 * This header (and trace.hh) is the only sanctioned place outside
 * benches for steady_clock timing: tools/check bans raw
 * `std::chrono::steady_clock` in src/ outside src/util/, so all
 * instrumentation flows through monotonicNowNs()/ScopedTimer and
 * shows up in the exported run manifest instead of ad-hoc prints.
 */

#ifndef VAESA_UTIL_METRICS_HH
#define VAESA_UTIL_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vaesa::metrics {

/** True when timing instrumentation is active (default: off). */
bool metricsEnabled();

/** Turn timing instrumentation on or off process-wide. */
void setMetricsEnabled(bool enabled);

/** Nanoseconds on the monotonic clock since the first call. */
std::uint64_t monotonicNowNs();

/** Stable per-thread shard index in [0, Counter::numSlots). */
unsigned threadSlot();

/**
 * Monotonic counter. Increments go to a cache-line-padded per-thread
 * shard (picked by threadSlot()), so concurrent writers on different
 * cores do not bounce one line; value() sums the shards. Increments
 * are always live — a counter costs one relaxed add whether or not
 * metricsEnabled() — only *timing* is gated.
 */
class Counter
{
  public:
    /** Number of independently padded increment slots. */
    static constexpr unsigned numSlots = 8;

    /** Add n (relaxed; never decreases). */
    void inc(std::uint64_t n = 1)
    {
        slots_[threadSlot()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum of all shards. */
    std::uint64_t value() const
    {
        std::uint64_t sum = 0;
        for (const Slot &slot : slots_)
            sum += slot.value.load(std::memory_order_relaxed);
        return sum;
    }

    /** Zero every shard (tests and per-instance clear() only). */
    void reset()
    {
        for (Slot &slot : slots_)
            slot.value.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> value{0};
    };

    Slot slots_[numSlots];
};

/** Last-writer-wins double value (loss, queue depth, utilization). */
class Gauge
{
  public:
    /** Set the current value. */
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    /** Add a (possibly negative) delta atomically. */
    void add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(
            cur, cur + delta, std::memory_order_relaxed,
            std::memory_order_relaxed)) {
        }
    }

    /** Current value. */
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset to zero. */
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Latency histogram over fixed log-spaced buckets: observation v
 * lands in bucket floor(log2(v)) + 1 (v == 0 in bucket 0), so bucket
 * i covers [2^(i-1), 2^i). 64 buckets span the full u64 range — no
 * allocation, no lock, and any nanosecond latency fits.
 */
class Histogram
{
  public:
    /** Number of fixed buckets. */
    static constexpr unsigned numBuckets = 65;

    /** Record one observation (relaxed atomics throughout). */
    void observe(std::uint64_t value);

    /** Number of observations. */
    std::uint64_t count() const;

    /** Sum of all observations. */
    std::uint64_t sum() const;

    /** Smallest observation (0 when empty). */
    std::uint64_t min() const;

    /** Largest observation (0 when empty). */
    std::uint64_t max() const;

    /** Observations in bucket i. */
    std::uint64_t bucketCount(unsigned i) const;

    /** Inclusive lower bound of bucket i (0, then 2^(i-1)). */
    static std::uint64_t bucketLowerBound(unsigned i);

    /**
     * Bucket-resolution quantile estimate: the upper bound of the
     * bucket holding the q-th observation (0 when empty).
     * @param q quantile in [0, 1].
     */
    std::uint64_t quantile(double q) const;

    /** Zero all buckets and moments (tests only). */
    void reset();

  private:
    std::atomic<std::uint64_t> buckets_[numBuckets]{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Look up (or create) the named process-wide instrument. References
 * are stable for the process lifetime; call sites should resolve once
 * (static local or member) and reuse. Names are dotted lowercase
 * paths, e.g. "cache.hit" — see docs/OBSERVABILITY.md for the
 * taxonomy.
 */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

/** One exported instrument (snapshot of the registry). */
struct MetricSample
{
    /** Registered dotted name. */
    std::string name;

    /** "counter", "gauge", or "histogram". */
    std::string kind;

    /** Counter value (counters only). */
    std::uint64_t count = 0;

    /** Gauge value (gauges only). */
    double value = 0.0;

    /** The histogram itself (histograms only; borrowed). */
    const Histogram *histogram = nullptr;
};

/** Name-sorted snapshot of every registered instrument. */
std::vector<MetricSample> snapshot();

/** Reset every registered instrument to zero (tests only). */
void resetAll();

/**
 * RAII wall-time recorder: observes the elapsed nanoseconds into the
 * histogram at scope exit. When metricsEnabled() is false the
 * constructor skips the clock read and the destructor does nothing,
 * so a disabled timer costs one relaxed bool load.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist)
        : hist_(hist), armed_(metricsEnabled()),
          startNs_(armed_ ? monotonicNowNs() : 0)
    {
    }

    ~ScopedTimer()
    {
        if (armed_)
            hist_.observe(monotonicNowNs() - startNs_);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram &hist_;
    bool armed_;
    std::uint64_t startNs_;
};

/** `git describe` of the compiled tree ("unknown" outside git). */
const char *gitDescribe();

/** FNV-1a 64-bit hash, used for run-manifest config hashes. */
std::uint64_t fnv1a(const std::string &text);

/** Identity of one run, stamped into the exported manifest. */
struct ManifestInfo
{
    /** Producing tool, e.g. "vaesa_cli". */
    std::string tool;

    /** Subcommand or bench name, e.g. "train". */
    std::string command;

    /** Full command line (joined argv), hashed into configHash. */
    std::string commandLine;

    /** RNG seed of the run. */
    std::uint64_t seed = 0;
};

/**
 * Serialize the versioned run manifest: run identity (tool, command,
 * config hash, seed, git describe) plus every registered counter,
 * gauge, and histogram. Schema documented in docs/OBSERVABILITY.md
 * and locked by tests/util/test_metrics.cc.
 */
std::string manifestJson(const ManifestInfo &info);

/**
 * Write manifestJson() to path via the crash-safe atomicWriteFile()
 * path. @return true on success (failures are warn()ed).
 */
bool writeManifest(const std::string &path, const ManifestInfo &info);

} // namespace vaesa::metrics

#endif // VAESA_UTIL_METRICS_HH
