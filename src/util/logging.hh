/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * inform() prints normal status, warn() flags suspicious-but-survivable
 * conditions, fatal() terminates on user error (bad configuration or
 * arguments), and panic() aborts on internal invariant violations.
 */

#ifndef VAESA_UTIL_LOGGING_HH
#define VAESA_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace vaesa {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Get the process-wide log level (settable via VAESA_LOG env var). */
LogLevel logLevel();

/** Override the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail {

/** Concatenate a parameter pack into one string via a stringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit one formatted log line to stderr. */
void emit(const char *tag, const std::string &msg);

} // namespace detail

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Print a debug message (only with VAESA_LOG=debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug", detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about suspicious but survivable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate due to a user-caused error (bad config, invalid argument).
 * Exits with status 1; does not dump core.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emit("fatal", detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Terminate due to an internal bug (invariant violation). Aborts so a
 * debugger or core dump can capture the state.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit("panic", detail::concat(std::forward<Args>(args)...));
    std::abort();
}

} // namespace vaesa

#endif // VAESA_UTIL_LOGGING_HH
