/**
 * @file
 * Structured error reporting for every loader in the tree.
 *
 * Historically a corrupt checkpoint or a malformed CSV row called
 * fatal() and took the whole process down -- unacceptable once runs
 * last hours and a campaign spans many workers. Loaders now return a
 * LoadError (via Expected<T>) describing what failed and where, so
 * callers can fall back to a previous checkpoint, skip a file, or
 * print a diagnostic and exit cleanly. No loader in src/ may abort
 * the process on bad input.
 */

#ifndef VAESA_UTIL_LOAD_ERROR_HH
#define VAESA_UTIL_LOAD_ERROR_HH

#include <cstddef>
#include <string>
#include <utility>
#include <variant>

#include "util/logging.hh"

namespace vaesa {

/** What a loader found wrong with its input. */
struct LoadError
{
    /** Failure category (stable across message-text changes). */
    enum class Kind {
        /** The file could not be opened or read at all. */
        OpenFailed,

        /** The magic word does not match the expected format. */
        BadMagic,

        /** The format version is not supported by this build. */
        BadVersion,

        /** The input ended before the format says it should. */
        Truncated,

        /** A record checksum does not match its payload. */
        BadChecksum,

        /** Structurally invalid content (bad field, bad row, ...). */
        Malformed,

        /** Content is well-formed but incompatible with the target
         *  (parameter name/shape mismatch, wrong layer pool, ...). */
        ShapeMismatch,

        /** The file could not be written (checkpoint save path). */
        WriteFailed,
    };

    /** Failure category. */
    Kind kind = Kind::Malformed;

    /** File the error occurred in (empty for in-memory streams). */
    std::string file;

    /** 1-based line for text formats; 0 when not applicable. */
    std::size_t line = 0;

    /** Human-readable description of the problem. */
    std::string message;

    /** "file:line: message" (omitting empty parts). */
    std::string
    describe() const
    {
        std::string out;
        if (!file.empty()) {
            out += file;
            if (line > 0)
                out += ":" + std::to_string(line);
            out += ": ";
        }
        out += message;
        return out;
    }
};

/** Build a LoadError in one expression. */
inline LoadError
makeLoadError(LoadError::Kind kind, std::string file, std::size_t line,
              std::string message)
{
    LoadError err;
    err.kind = kind;
    err.file = std::move(file);
    err.line = line;
    err.message = std::move(message);
    return err;
}

/**
 * A value or the LoadError explaining why there is none. The minimal
 * subset of std::expected (C++23) the loaders need, so call sites read
 * as `if (result) use(result.value()) else report(result.error())`.
 */
template <typename T>
class Expected
{
  public:
    /** Success. */
    Expected(T value) : state_(std::move(value)) {}

    /** Failure. */
    Expected(LoadError error) : state_(std::move(error)) {}

    /** True when a value is present. */
    bool ok() const { return std::holds_alternative<T>(state_); }

    /** True when a value is present. */
    explicit operator bool() const { return ok(); }

    /** The value; panics when called on an error. */
    T &
    value()
    {
        if (!ok())
            panic("Expected::value() on error: ",
                  std::get<LoadError>(state_).describe());
        return std::get<T>(state_);
    }

    /** The value; panics when called on an error. */
    const T &
    value() const
    {
        if (!ok())
            panic("Expected::value() on error: ",
                  std::get<LoadError>(state_).describe());
        return std::get<T>(state_);
    }

    /** The error; panics when called on a value. */
    const LoadError &
    error() const
    {
        if (ok())
            panic("Expected::error() on a success value");
        return std::get<LoadError>(state_);
    }

  private:
    std::variant<T, LoadError> state_;
};

} // namespace vaesa

#endif // VAESA_UTIL_LOAD_ERROR_HH
