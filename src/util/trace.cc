#include "util/trace.hh"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "util/atomic_io.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/sync.hh"

namespace vaesa::trace {

namespace {

std::atomic<bool> enabled{false};

struct Event
{
    const char *name;
    std::uint32_t tid;
    std::uint64_t startNs;
    std::uint64_t durNs;
};

/**
 * Completed-span buffer. One mutex is enough: spans are coarse
 * (epochs, search iterations, checkpoint writes), so the lock is
 * taken a few times per second, not per evaluation — and only while
 * tracing is enabled at all.
 */
struct Collector
{
    Mutex traceMutex;
    std::vector<Event> events VAESA_GUARDED_BY(traceMutex);
    std::atomic<std::uint64_t> dropped{0};
};

Collector &
collector()
{
    // Leaked for the same destruction-order reason as the metrics
    // registry: spans may close during static teardown.
    static Collector *c = new Collector;
    return *c;
}

/** Small dense per-thread id for the "tid" field. */
std::uint32_t
traceThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace

bool
traceEnabled()
{
    return enabled.load(std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
    enabled.store(on, std::memory_order_relaxed);
}

std::size_t
eventCount()
{
    Collector &c = collector();
    const MutexLock lock(c.traceMutex);
    return c.events.size();
}

std::uint64_t
droppedCount()
{
    return collector().dropped.load(std::memory_order_relaxed);
}

void
clear()
{
    Collector &c = collector();
    const MutexLock lock(c.traceMutex);
    c.events.clear();
    c.dropped.store(0, std::memory_order_relaxed);
}

Span::Span(const char *name)
    : name_(name), startNs_(0), armed_(traceEnabled())
{
    if (armed_)
        startNs_ = metrics::monotonicNowNs();
}

Span::~Span()
{
    if (!armed_)
        return;
    const std::uint64_t end = metrics::monotonicNowNs();
    Collector &c = collector();
    const MutexLock lock(c.traceMutex);
    if (c.events.size() >= maxEvents) {
        c.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    c.events.push_back(
        {name_, traceThreadId(), startNs_, end - startNs_});
}

std::string
chromeTraceJson()
{
    Collector &c = collector();
    std::vector<Event> events;
    {
        const MutexLock lock(c.traceMutex);
        events = c.events;
    }
    std::string out;
    out.reserve(128 + events.size() * 96);
    out += "{\"traceEvents\": [";
    char buf[256];
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        // Chrome trace "ts"/"dur" are microseconds; emit three
        // decimals to keep nanosecond resolution.
        std::snprintf(buf, sizeof(buf),
                      "%s\n{\"name\": \"%s\", \"ph\": \"X\", "
                      "\"pid\": 1, \"tid\": %" PRIu32
                      ", \"ts\": %" PRIu64 ".%03" PRIu64
                      ", \"dur\": %" PRIu64 ".%03" PRIu64 "}",
                      i ? "," : "", e.name, e.tid,
                      e.startNs / 1000, e.startNs % 1000,
                      e.durNs / 1000, e.durNs % 1000);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "\n], \"displayTimeUnit\": \"ms\", "
                  "\"droppedSpans\": %" PRIu64 "}\n",
                  droppedCount());
    out += buf;
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    if (auto err = atomicWriteFile(path, chromeTraceJson())) {
        warn("trace write failed: ", err->describe());
        return false;
    }
    return true;
}

} // namespace vaesa::trace
