#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace vaesa {

void
Summary::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
Summary::variance() const
{
    // The unbiased estimator divides by n-1, so it is undefined for
    // n < 2. Returning 0 here dressed up "no spread information" as
    // "zero spread" and let single-seed benches print +/- 0.0 as if
    // it were a measured band; NaN forces callers to say "n/a".
    if (count_ < 2)
        return std::numeric_limits<double>::quiet_NaN();
    return m2_ / static_cast<double>(count_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    // Undefined for fewer than two samples; NaN, not 0 (see
    // Summary::variance). NaN-aware consumers: gp.cc guards its
    // standardization scale with !(x > eps); benches print "n/a".
    if (xs.size() < 2)
        return std::numeric_limits<double>::quiet_NaN();
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean requires strictly positive entries");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double q)
{
    if (xs.empty())
        panic("percentile of empty sample");
    if (q < 0.0 || q > 1.0)
        panic("percentile quantile out of [0, 1]");
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

std::vector<double>
runningMin(const std::vector<double> &xs)
{
    std::vector<double> out;
    out.reserve(xs.size());
    double best = std::numeric_limits<double>::infinity();
    for (double x : xs) {
        best = std::min(best, x);
        out.push_back(best);
    }
    return out;
}

double
correlation(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("correlation requires equal-length samples");
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace vaesa
