#include "util/thread_pool.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/env.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace vaesa {

namespace {

/** Pool-wide observability instruments, resolved once. */
struct PoolMetrics
{
    metrics::Counter &tasks = metrics::counter("pool.tasks");
    metrics::Counter &busyNs = metrics::counter("pool.busy_ns");
    metrics::Gauge &queueDepth = metrics::gauge("pool.queue_depth");
    metrics::Histogram &taskNs =
        metrics::histogram("pool.task_ns");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m;
    return m;
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    threads_ = threads;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        const MutexLock lock(queueMutex_);
        stopping_ = true;
        if (joined_)
            return;
        joined_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    threads_ = 0;
}

bool
ThreadPool::stopping() const
{
    const MutexLock lock(queueMutex_);
    return stopping_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            const MutexLock lock(queueMutex_);
            // Explicit predicate loop (not the lambda overload) so
            // the guarded reads happen where the analysis can see
            // the lock is held; wait() releases/reacquires the
            // mutex internally.
            while (!stopping_ && queue_.empty())
                wake_.wait(queueMutex_);
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        PoolMetrics &m = poolMetrics();
        m.queueDepth.add(-1.0);
        // Task latency (and the busy-time counter behind worker
        // utilization) needs two clock reads per task, so it is
        // gated on the process-wide metrics switch.
        if (metrics::metricsEnabled()) {
            const std::uint64_t start = metrics::monotonicNowNs();
            // packaged_task captures any exception into the future.
            task();
            const std::uint64_t ns =
                metrics::monotonicNowNs() - start;
            m.taskNs.observe(ns);
            m.busyNs.inc(ns);
        } else {
            task();
        }
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        const MutexLock lock(queueMutex_);
        if (stopping_)
            throw std::runtime_error(
                "ThreadPool::submit on a stopping pool");
        queue_.push_back(std::move(packaged));
    }
    PoolMetrics &m = poolMetrics();
    m.tasks.inc();
    m.queueDepth.add(1.0);
    wake_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    // max(1, ...): a joined pool has threadCount() == 0, and zero
    // chunks would silently run nothing -- one chunk makes submit()
    // throw its stopping-pool error instead of dropping the work.
    const std::size_t chunks = std::min<std::size_t>(
        n, std::max<std::size_t>(1, threadCount()));
    std::vector<std::future<void>> pending;
    pending.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        // Contiguous chunks; the first (n % chunks) get one extra.
        const std::size_t begin =
            c * (n / chunks) + std::min(c, n % chunks);
        const std::size_t end =
            begin + n / chunks + (c < n % chunks ? 1 : 0);
        pending.push_back(submit([&body, begin, end] {
            for (std::size_t i = begin; i < end; ++i)
                body(i);
        }));
    }
    // Wait for every chunk before rethrowing so no iteration is
    // still touching caller state when the exception unwinds; the
    // lowest-chunk exception is the one a serial loop would have hit
    // first.
    std::exception_ptr first;
    for (std::future<void> &future : pending) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

std::size_t
ThreadPool::defaultThreadCount()
{
    const std::int64_t requested = envInt("VAESA_THREADS", 0);
    if (requested < 0)
        fatal("VAESA_THREADS=", requested, " must be >= 1");
    if (requested > 0)
        return static_cast<std::size_t>(requested);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool &
globalThreadPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace vaesa
