/**
 * @file
 * Capability-annotated synchronization primitives — the repo's ONLY
 * sanctioned home for raw std::mutex / std::shared_mutex / the std
 * lock guards (enforced by tools/check). Library code declares every
 * protected member with VAESA_GUARDED_BY and every locking contract
 * with VAESA_REQUIRES / VAESA_ACQUIRE / VAESA_EXCLUDES, so the `tsa`
 * CMake preset (clang -Werror=thread-safety) proves lock discipline
 * at compile time; under GCC the annotations compile to nothing.
 *
 * The canonical lock-order table lives at the bottom of this header
 * as VAESA_LOCK_ORDER_ENTRY(name, rank) declarations. vaesa_check
 * parses it and flags any nested acquisition whose ranks do not
 * strictly increase, including nesting any mutex the table does not
 * rank at all.
 */

#ifndef VAESA_UTIL_SYNC_HH
#define VAESA_UTIL_SYNC_HH

#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attributes (no-ops everywhere else).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define VAESA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VAESA_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability (a mutex). */
#define VAESA_CAPABILITY(x) VAESA_THREAD_ANNOTATION(capability(x))

/** Marks a RAII type whose lifetime equals a critical section. */
#define VAESA_SCOPED_CAPABILITY VAESA_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be touched while holding the named mutex. */
#define VAESA_GUARDED_BY(x) VAESA_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched while holding the named mutex. */
#define VAESA_PT_GUARDED_BY(x) VAESA_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must already hold the mutex (exclusively). */
#define VAESA_REQUIRES(...) \
    VAESA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must already hold the mutex (shared or exclusive). */
#define VAESA_REQUIRES_SHARED(...) \
    VAESA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the mutex and returns holding it. */
#define VAESA_ACQUIRE(...) \
    VAESA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function acquires the mutex in shared mode. */
#define VAESA_ACQUIRE_SHARED(...) \
    VAESA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the (exclusively held) mutex. */
#define VAESA_RELEASE(...) \
    VAESA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function releases the shared-held mutex. */
#define VAESA_RELEASE_SHARED(...) \
    VAESA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function releases the mutex however it was acquired. */
#define VAESA_RELEASE_GENERIC(...) \
    VAESA_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/** Function acquires the mutex iff it returns the given value. */
#define VAESA_TRY_ACQUIRE(...) \
    VAESA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the mutex (deadlock prevention). */
#define VAESA_EXCLUDES(...) \
    VAESA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Assert (at runtime) that the mutex is held; informs the analysis. */
#define VAESA_ASSERT_CAPABILITY(x) \
    VAESA_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named mutex. */
#define VAESA_RETURN_CAPABILITY(x) \
    VAESA_THREAD_ANNOTATION(lock_returned(x))

/**
 * Opt a function body out of the analysis. Policy: every use MUST
 * carry a one-line justification comment (docs/STATIC_ANALYSIS.md).
 */
#define VAESA_NO_THREAD_SAFETY_ANALYSIS \
    VAESA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vaesa {

/**
 * Exclusive mutex. Prefer the MutexLock guard over manual
 * lock()/unlock(); manual calls exist for adopt-style handoff
 * (see CachingEvaluator::lockShard).
 */
class VAESA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    // Suppression: the bodies manipulate the raw std primitive the
    // analysis cannot model; the interface annotations are the truth.
    void lock() VAESA_ACQUIRE() VAESA_NO_THREAD_SAFETY_ANALYSIS
    {
        raw_.lock();
    }
    bool try_lock() VAESA_TRY_ACQUIRE(true)
        VAESA_NO_THREAD_SAFETY_ANALYSIS
    {
        return raw_.try_lock();
    }
    void unlock() VAESA_RELEASE() VAESA_NO_THREAD_SAFETY_ANALYSIS
    {
        raw_.unlock();
    }

  private:
    std::mutex raw_;
};

/**
 * Reader/writer mutex (std::shared_mutex underneath). Use ReaderLock
 * and WriterLock; there is no manual-locking escape hatch.
 */
class VAESA_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    // Suppression: trivial forwarding to the unannotated std
    // primitive; the interface annotations are the truth.
    void lock() VAESA_ACQUIRE() VAESA_NO_THREAD_SAFETY_ANALYSIS
    {
        raw_.lock();
    }
    void unlock() VAESA_RELEASE() VAESA_NO_THREAD_SAFETY_ANALYSIS
    {
        raw_.unlock();
    }
    void lock_shared() VAESA_ACQUIRE_SHARED()
        VAESA_NO_THREAD_SAFETY_ANALYSIS
    {
        raw_.lock_shared();
    }
    void unlock_shared() VAESA_RELEASE_SHARED()
        VAESA_NO_THREAD_SAFETY_ANALYSIS
    {
        raw_.unlock_shared();
    }

  private:
    std::shared_mutex raw_;
};

/** Tag type selecting the adopting MutexLock constructor. */
struct AdoptLockT
{
    explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT adoptLock{};

/**
 * RAII exclusive critical section over a Mutex. The adopting
 * overload takes ownership of a mutex the caller already locked
 * (e.g. via a contention-counting slow path) without reacquiring.
 */
class VAESA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) VAESA_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }
    MutexLock(Mutex &mutex, AdoptLockT) VAESA_REQUIRES(mutex)
        : mutex_(mutex)
    {
    }
    ~MutexLock() VAESA_RELEASE_GENERIC() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/** RAII shared (reader) critical section over a SharedMutex. */
class VAESA_SCOPED_CAPABILITY ReaderLock
{
  public:
    explicit ReaderLock(SharedMutex &mutex) VAESA_ACQUIRE_SHARED(mutex)
        : mutex_(mutex)
    {
        mutex_.lock_shared();
    }
    ~ReaderLock() VAESA_RELEASE_GENERIC() { mutex_.unlock_shared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mutex_;
};

/** RAII exclusive (writer) critical section over a SharedMutex. */
class VAESA_SCOPED_CAPABILITY WriterLock
{
  public:
    explicit WriterLock(SharedMutex &mutex) VAESA_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~WriterLock() VAESA_RELEASE_GENERIC() { mutex_.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mutex_;
};

} // namespace vaesa

// ---------------------------------------------------------------------------
// Canonical lock-order table.
//
// Ranks strictly increase from outer to inner acquisition: while
// holding a mutex of rank R, only mutexes of rank > R may be
// acquired. vaesa_check parses these entries (the mutex is named by
// the member identifier, which is unique repo-wide) and verifies
// every observed nested guard against them. Adding a mutex to src/
// means adding a row here.
// ---------------------------------------------------------------------------

/** Declares one row of the lock-order table (parsed by vaesa_check). */
#define VAESA_LOCK_ORDER_ENTRY(mutexName, rank) \
    static_assert((rank) > 0, "lock ranks are positive")

// Serve ModelRegistry current-bundle pointer; a short swap/pin lock
// that may be held before any evaluation begins.
VAESA_LOCK_ORDER_ENTRY(bundleMutex_, 4);
// Serve ModelBundle scratch-buffer lock; decode/predict may be
// followed by (never nested under) cache evaluation, but ranking it
// below the cache locks keeps that nesting legal if it ever forms.
VAESA_LOCK_ORDER_ENTRY(modelMutex, 6);
// Serve ScoreBatcher coalescing queue; held only around queue state
// (enqueue / leader take / publish) — a leader drains its batch with
// the lock RELEASED, so this never nests over the cache or pool
// locks today; ranking it above the serve bundle locks and below the
// cache keeps any future nesting service-thread-ordered.
VAESA_LOCK_ORDER_ENTRY(coalesceMutex_, 8);
// CachingEvaluator layer registry; held across shard locks in clear().
VAESA_LOCK_ORDER_ENTRY(registryMutex_, 10);
// CachingEvaluator per-shard entry maps; innermost cache lock.
VAESA_LOCK_ORDER_ENTRY(shardMutex, 20);
// ThreadPool task queue; leaf (never held while running a task).
VAESA_LOCK_ORDER_ENTRY(queueMutex_, 30);
// Metrics registry maps; leaf (instrument ops are lock-free).
VAESA_LOCK_ORDER_ENTRY(metricsMutex, 40);
// Trace collector event buffer; leaf.
VAESA_LOCK_ORDER_ENTRY(traceMutex, 50);
// Fault injector plan table; leaf.
VAESA_LOCK_ORDER_ENTRY(faultMutex_, 60);

#endif // VAESA_UTIL_SYNC_HH
