#include "nn/linear.hh"

#include <cmath>

#include "tensor/kernels/kernels.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace vaesa::nn {

double
Linear::leakyReluGain(double slope)
{
    return std::sqrt(2.0 / (1.0 + slope * slope));
}

Linear::Linear(std::size_t in, std::size_t out, Rng &rng,
               const std::string &name, double init_gain)
    : in_(in), out_(out),
      weight_(out, in, name + ".weight"),
      bias_(1, out, name + ".bias")
{
    if (in == 0 || out == 0)
        panic("Linear layer with zero dimension: ", in, " -> ", out);
    if (!(init_gain > 0.0))
        panic("Linear init gain must be positive, got ", init_gain);
    // Kaiming-uniform: U[-g * sqrt(3 / fan_in), g * sqrt(3 / fan_in)].
    const double bound =
        init_gain * std::sqrt(3.0 / static_cast<double>(in));
    weight_.value.randomUniform(rng, -bound, bound);
    bias_.value.fill(0.0);
}

const Matrix &
Linear::forward(const Matrix &input)
{
    if (input.cols() != in_)
        panic("Linear forward: input width ", input.cols(),
              " != ", in_);
    cachedInput_ = training() ? &input : nullptr;
    Matrix &out = scratch(0, input.rows(), out_);
    kernels::linearForward(input.rows(), in_, out_, input.data(),
                           weight_.value.data(), bias_.value.data(),
                           out.data());
    return out;
}

const Matrix &
Linear::backward(const Matrix &grad_output)
{
    if (cachedInput_ == nullptr)
        panic("Linear backward without a training-mode forward");
    if (grad_output.cols() != out_ ||
        grad_output.rows() != cachedInput_->rows()) {
        panic("Linear backward: grad shape ", grad_output.rows(), "x",
              grad_output.cols(), " does not match forward batch");
    }
    const std::size_t batch = grad_output.rows();
    // dW += gradOut^T * input; db += column sums; dIn = gradOut * W.
    // The accumulate flag lands the weight gradient directly in the
    // Parameter accumulator -- no temporary, no extra pass.
    kernels::gemmTransA(out_, in_, batch, grad_output.data(),
                        cachedInput_->data(), weight_.grad.data(),
                        true);
    kernels::addColSums(grad_output.data(), batch, out_,
                        bias_.grad.data());
    Matrix &grad_in = scratch(1, batch, in_);
    kernels::gemm(batch, in_, out_, grad_output.data(),
                  weight_.value.data(), grad_in.data());
    return grad_in;
}

std::vector<Parameter *>
Linear::parameters()
{
    return {&weight_, &bias_};
}

} // namespace vaesa::nn
