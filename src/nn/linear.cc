#include "nn/linear.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace vaesa::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng &rng,
               const std::string &name)
    : in_(in), out_(out),
      weight_(out, in, name + ".weight"),
      bias_(1, out, name + ".bias")
{
    if (in == 0 || out == 0)
        panic("Linear layer with zero dimension: ", in, " -> ", out);
    // Kaiming-uniform bound for LeakyReLU-style stacks.
    const double bound = std::sqrt(6.0 / static_cast<double>(in));
    weight_.value.randomUniform(rng, -bound, bound);
    bias_.value.fill(0.0);
}

Matrix
Linear::forward(const Matrix &input)
{
    if (input.cols() != in_)
        panic("Linear forward: input width ", input.cols(),
              " != ", in_);
    cachedInput_ = input;
    Matrix out = Matrix::multiplyTransB(input, weight_.value);
    out.addRowVector(bias_.value.row(0));
    return out;
}

Matrix
Linear::backward(const Matrix &grad_output)
{
    if (grad_output.cols() != out_ ||
        grad_output.rows() != cachedInput_.rows()) {
        panic("Linear backward: grad shape ", grad_output.rows(), "x",
              grad_output.cols(), " does not match forward batch");
    }
    // dW = gradOut^T * input; db = column sums; dIn = gradOut * W.
    Matrix grad_w = Matrix::multiplyTransA(grad_output, cachedInput_);
    weight_.grad.add(grad_w);
    const std::vector<double> grad_b = grad_output.colSums();
    for (std::size_t c = 0; c < out_; ++c)
        bias_.grad(0, c) += grad_b[c];
    return Matrix::multiply(grad_output, weight_.value);
}

std::vector<Parameter *>
Linear::parameters()
{
    return {&weight_, &bias_};
}

} // namespace vaesa::nn
