#include "nn/sequential.hh"

#include "nn/activation.hh"
#include "nn/linear.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace vaesa::nn {

void
Sequential::add(std::unique_ptr<Module> module)
{
    if (!stages_.empty() &&
        stages_.back()->outputSize() != module->inputSize()) {
        panic("Sequential: stage width mismatch: ",
              stages_.back()->outputSize(), " -> ", module->inputSize());
    }
    module->setTraining(training());
    module->attachWorkspace(*arena_);
    stages_.push_back(std::move(module));
}

const Matrix &
Sequential::forward(const Matrix &input)
{
    const Matrix *current = &input;
    for (auto &stage : stages_)
        current = &stage->forward(*current);
    return *current;
}

const Matrix &
Sequential::backward(const Matrix &grad_output)
{
    const Matrix *grad = &grad_output;
    for (auto it = stages_.rbegin(); it != stages_.rend(); ++it)
        grad = &(*it)->backward(*grad);
    return *grad;
}

std::vector<Parameter *>
Sequential::parameters()
{
    std::vector<Parameter *> params;
    for (auto &stage : stages_)
        for (Parameter *p : stage->parameters())
            params.push_back(p);
    return params;
}

std::size_t
Sequential::inputSize() const
{
    if (stages_.empty())
        panic("Sequential::inputSize on empty container");
    return stages_.front()->inputSize();
}

std::size_t
Sequential::outputSize() const
{
    if (stages_.empty())
        panic("Sequential::outputSize on empty container");
    return stages_.back()->outputSize();
}

void
Sequential::setTraining(bool training)
{
    Module::setTraining(training);
    for (auto &stage : stages_)
        stage->setTraining(training);
}

void
Sequential::attachWorkspace(kernels::Workspace &arena)
{
    if (!stages_.empty())
        panic("Sequential::attachWorkspace after stages were added");
    arena_ = &arena;
}

std::unique_ptr<Sequential>
makeMlp(std::size_t in, const std::vector<std::size_t> &hidden,
        std::size_t out, Rng &rng, OutputActivation output_act,
        double leaky_slope)
{
    auto net = std::make_unique<Sequential>();
    const double hidden_gain = Linear::leakyReluGain(leaky_slope);
    std::size_t prev = in;
    int index = 0;
    for (std::size_t width : hidden) {
        net->add(std::make_unique<Linear>(
            prev, width, rng, "fc" + std::to_string(index++),
            hidden_gain));
        net->add(std::make_unique<LeakyReLU>(width, leaky_slope));
        prev = width;
    }
    net->add(std::make_unique<Linear>(
        prev, out, rng, "fc" + std::to_string(index)));
    switch (output_act) {
      case OutputActivation::None:
        break;
      case OutputActivation::Sigmoid:
        net->add(std::make_unique<Sigmoid>(out));
        break;
      case OutputActivation::Tanh:
        net->add(std::make_unique<Tanh>(out));
        break;
    }
    return net;
}

} // namespace vaesa::nn
