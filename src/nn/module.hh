/**
 * @file
 * Core abstractions of the neural-network library: learnable
 * parameters and the Module forward/backward interface.
 *
 * The library is deliberately small: VAESA's models are plain MLPs, so
 * a module-based design with explicit backward passes (each module
 * caches whatever its gradient needs) is simpler and faster than a
 * general autodiff tape, and gradients are exact by construction.
 *
 * forward()/backward() return references to module-owned scratch
 * buffers drawn from a kernels::Workspace arena, so a steady-state
 * training step performs no heap allocation. A returned reference is
 * valid until the SAME module runs the same pass again; callers that
 * need the values across another pass must copy them out
 * (Matrix::copyFrom reuses capacity).
 */

#ifndef VAESA_NN_MODULE_HH
#define VAESA_NN_MODULE_HH

#include <memory>
#include <string>
#include <vector>

#include "tensor/kernels/workspace.hh"
#include "tensor/matrix.hh"

namespace vaesa::nn {

/**
 * A learnable tensor with its gradient accumulator.
 *
 * Optimizers own no state inside Parameter; they index parameters by
 * position in the list a model exposes, which is stable for a given
 * architecture.
 */
struct Parameter
{
    /** Construct with a shape; value and grad are zero-initialized. */
    Parameter(std::size_t rows, std::size_t cols, std::string name)
        : value(rows, cols), grad(rows, cols), name(std::move(name))
    {}

    /** Current weights. */
    Matrix value;

    /** Accumulated gradient of the loss w.r.t.\ value. */
    Matrix grad;

    /** Human-readable identifier for debugging and serialization. */
    std::string name;

    /** Reset the gradient accumulator to zero. */
    void zeroGrad() { grad.fill(0.0); }
};

/**
 * Interface of a differentiable computation stage.
 *
 * forward() consumes a (batch x in) matrix and produces (batch x out);
 * backward() consumes dL/d(output) and returns dL/d(input), adding
 * parameter gradients into the module's Parameters. backward() must be
 * called after the forward() whose intermediates it needs, with a
 * matching batch size, and only in training mode: eval-mode forward
 * skips gradient caching entirely (setTraining(false) is the
 * inference fast path) and backward() then panics.
 */
class Module
{
  public:
    virtual ~Module() = default;

    /**
     * Run the stage on a batch; in training mode, caches
     * intermediates for backward.
     * @return reference to the module-owned output buffer, valid
     *         until this module's next forward().
     */
    virtual const Matrix &forward(const Matrix &input) = 0;

    /**
     * Back-propagate through the cached forward pass.
     * @param grad_output dL/d(output), same shape as forward's result.
     * @return dL/d(input) in a module-owned buffer, valid until this
     *         module's next backward().
     */
    virtual const Matrix &backward(const Matrix &grad_output) = 0;

    /** Learnable parameters of this stage (possibly empty). */
    virtual std::vector<Parameter *> parameters() { return {}; }

    /** Number of input features. */
    virtual std::size_t inputSize() const = 0;

    /** Number of output features. */
    virtual std::size_t outputSize() const = 0;

    /**
     * Toggle training mode (the default). Eval mode skips gradient
     * caching; backward() is rejected until training is re-enabled.
     */
    virtual void setTraining(bool training) { training_ = training; }

    /** Whether gradient intermediates are being cached. */
    bool training() const { return training_; }

    /**
     * Bind this module's scratch buffers to a shared arena (a
     * Sequential attaches its stages to one workspace on add()).
     * Must be called before the first forward(); unattached modules
     * fall back to a lazily created private arena.
     */
    virtual void attachWorkspace(kernels::Workspace &arena);

    /** Zero all parameter gradients. */
    void
    zeroGrad()
    {
        for (Parameter *p : parameters())
            p->zeroGrad();
    }

  protected:
    /** Arena slots this module type needs (see scratch()). */
    virtual std::size_t workspaceSlots() const { return 0; }

    /** This module's scratch buffer `index`, shaped rows x cols. */
    Matrix &scratch(std::size_t index, std::size_t rows,
                    std::size_t cols);

  private:
    bool training_ = true;
    kernels::Workspace *arena_ = nullptr;
    std::size_t arenaBase_ = 0;
    std::unique_ptr<kernels::Workspace> privateArena_;
};

} // namespace vaesa::nn

#endif // VAESA_NN_MODULE_HH
