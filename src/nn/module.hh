/**
 * @file
 * Core abstractions of the neural-network library: learnable
 * parameters and the Module forward/backward interface.
 *
 * The library is deliberately small: VAESA's models are plain MLPs, so
 * a module-based design with explicit backward passes (each module
 * caches whatever its gradient needs) is simpler and faster than a
 * general autodiff tape, and gradients are exact by construction.
 */

#ifndef VAESA_NN_MODULE_HH
#define VAESA_NN_MODULE_HH

#include <string>
#include <vector>

#include "tensor/matrix.hh"

namespace vaesa::nn {

/**
 * A learnable tensor with its gradient accumulator.
 *
 * Optimizers own no state inside Parameter; they index parameters by
 * position in the list a model exposes, which is stable for a given
 * architecture.
 */
struct Parameter
{
    /** Construct with a shape; value and grad are zero-initialized. */
    Parameter(std::size_t rows, std::size_t cols, std::string name)
        : value(rows, cols), grad(rows, cols), name(std::move(name))
    {}

    /** Current weights. */
    Matrix value;

    /** Accumulated gradient of the loss w.r.t.\ value. */
    Matrix grad;

    /** Human-readable identifier for debugging and serialization. */
    std::string name;

    /** Reset the gradient accumulator to zero. */
    void zeroGrad() { grad.fill(0.0); }
};

/**
 * Interface of a differentiable computation stage.
 *
 * forward() consumes a (batch x in) matrix and produces (batch x out);
 * backward() consumes dL/d(output) and returns dL/d(input), adding
 * parameter gradients into the module's Parameters. backward() must be
 * called after the forward() whose intermediates it needs, with a
 * matching batch size.
 */
class Module
{
  public:
    virtual ~Module() = default;

    /** Run the stage on a batch; caches intermediates for backward. */
    virtual Matrix forward(const Matrix &input) = 0;

    /**
     * Back-propagate through the cached forward pass.
     * @param grad_output dL/d(output), same shape as forward's result.
     * @return dL/d(input), same shape as forward's argument.
     */
    virtual Matrix backward(const Matrix &grad_output) = 0;

    /** Learnable parameters of this stage (possibly empty). */
    virtual std::vector<Parameter *> parameters() { return {}; }

    /** Number of input features. */
    virtual std::size_t inputSize() const = 0;

    /** Number of output features. */
    virtual std::size_t outputSize() const = 0;

    /** Zero all parameter gradients. */
    void
    zeroGrad()
    {
        for (Parameter *p : parameters())
            p->zeroGrad();
    }
};

} // namespace vaesa::nn

#endif // VAESA_NN_MODULE_HH
