#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>

#include "util/logging.hh"

namespace vaesa::nn {

namespace {

constexpr std::uint32_t magicWord = 0x56414553; // "VAES"

void
writeU64(std::ostream &out, std::uint64_t value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

std::uint64_t
readU64(std::istream &in)
{
    std::uint64_t value = 0;
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return value;
}

} // namespace

void
saveParametersToStream(std::ostream &out,
                       const std::vector<Parameter *> &params)
{
    writeU64(out, params.size());
    for (const Parameter *p : params) {
        writeU64(out, p->name.size());
        out.write(p->name.data(),
                  static_cast<std::streamsize>(p->name.size()));
        writeU64(out, p->value.rows());
        writeU64(out, p->value.cols());
        out.write(reinterpret_cast<const char *>(p->value.data()),
                  static_cast<std::streamsize>(
                      p->value.size() * sizeof(double)));
    }
}

void
loadParametersFromStream(std::istream &in,
                         const std::vector<Parameter *> &params)
{
    const std::uint64_t count = readU64(in);
    if (count != params.size())
        fatal("loadParameters: stream has ", count, " parameters, ",
              "model expects ", params.size());
    for (Parameter *p : params) {
        const std::uint64_t name_len = readU64(in);
        if (!in || name_len > 4096)
            fatal("loadParameters: corrupt parameter stream");
        std::string name(name_len, '\0');
        in.read(name.data(), static_cast<std::streamsize>(name_len));
        if (name != p->name)
            fatal("loadParameters: parameter name mismatch: stream '",
                  name, "' vs model '", p->name, "'");
        const std::uint64_t rows = readU64(in);
        const std::uint64_t cols = readU64(in);
        if (rows != p->value.rows() || cols != p->value.cols())
            fatal("loadParameters: shape mismatch for '", name, "'");
        in.read(reinterpret_cast<char *>(p->value.data()),
                static_cast<std::streamsize>(
                    p->value.size() * sizeof(double)));
    }
    if (!in)
        fatal("loadParameters: truncated parameter stream");
}

bool
saveParameters(const std::string &path,
               const std::vector<Parameter *> &params)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        warn("saveParameters: cannot open '", path, "'");
        return false;
    }
    out.write(reinterpret_cast<const char *>(&magicWord),
              sizeof(magicWord));
    saveParametersToStream(out, params);
    return static_cast<bool>(out);
}

bool
loadParameters(const std::string &path,
               const std::vector<Parameter *> &params)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::uint32_t magic = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    if (magic != magicWord)
        fatal("loadParameters: '", path, "' is not a VAESA model file");
    loadParametersFromStream(in, params);
    return true;
}

} // namespace vaesa::nn
