#include "nn/serialize.hh"

#include <cstdint>

namespace vaesa::nn {

namespace {

constexpr std::size_t maxParameterNameLen = 4096;

} // namespace

void
putMatrix(ByteBuffer &out, const Matrix &matrix)
{
    out.putU64(matrix.rows());
    out.putU64(matrix.cols());
    out.putBytes(matrix.data(), matrix.size() * sizeof(double));
}

bool
readMatrixInto(ByteReader &in, Matrix &matrix)
{
    const std::uint64_t rows = in.getU64();
    const std::uint64_t cols = in.getU64();
    if (in.failed() || rows != matrix.rows() || cols != matrix.cols())
        return false;
    return in.getBytes(matrix.data(), matrix.size() * sizeof(double));
}

void
writeParameterRecords(RecordWriter &out,
                      const std::vector<Parameter *> &params)
{
    ByteBuffer count;
    count.putU64(params.size());
    out.writeRecord(count);
    for (const Parameter *p : params) {
        ByteBuffer payload;
        payload.putString(p->name);
        putMatrix(payload, p->value);
        out.writeRecord(payload);
    }
}

std::optional<LoadError>
readParameterRecords(RecordReader &in,
                     const std::vector<Parameter *> &params)
{
    Expected<std::string> count_record = in.readRecord();
    if (!count_record)
        return count_record.error();
    ByteReader count_reader(count_record.value().data(),
                            count_record.value().size());
    const std::uint64_t count = count_reader.getU64();
    if (count_reader.failed() || !count_reader.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "corrupt parameter count record");
    if (count != params.size())
        return in.makeError(
            LoadError::Kind::ShapeMismatch,
            "file has " + std::to_string(count) + " parameters, model "
            "expects " + std::to_string(params.size()));
    for (Parameter *p : params) {
        Expected<std::string> record = in.readRecord();
        if (!record)
            return record.error();
        ByteReader reader(record.value().data(),
                          record.value().size());
        const std::string name = reader.getString(maxParameterNameLen);
        if (reader.failed())
            return in.makeError(LoadError::Kind::Malformed,
                                "corrupt parameter record");
        if (name != p->name)
            return in.makeError(
                LoadError::Kind::ShapeMismatch,
                "parameter name mismatch: file '" + name +
                "' vs model '" + p->name + "'");
        if (!readMatrixInto(reader, p->value) || !reader.atEnd())
            return in.makeError(
                LoadError::Kind::ShapeMismatch,
                "shape mismatch or corrupt payload for '" + name + "'");
    }
    return std::nullopt;
}

std::optional<LoadError>
saveParameters(const std::string &path,
               const std::vector<Parameter *> &params)
{
    RecordWriter out(parametersMagic, parametersVersion);
    writeParameterRecords(out, params);
    return atomicWriteFile(path, out.bytes());
}

std::optional<LoadError>
loadParameters(const std::string &path,
               const std::vector<Parameter *> &params)
{
    Expected<std::string> bytes = readFileBytes(path);
    if (!bytes)
        return bytes.error();
    RecordReader in(bytes.value(), path);
    std::uint32_t version = 0;
    if (auto err = in.readHeader(parametersMagic, parametersVersion,
                                 parametersVersion, &version))
        return err;
    if (auto err = readParameterRecords(in, params))
        return err;
    if (!in.atEnd())
        return in.makeError(LoadError::Kind::Malformed,
                            "trailing bytes after last parameter");
    return std::nullopt;
}

} // namespace vaesa::nn
