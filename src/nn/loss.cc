#include "nn/loss.hh"

#include <cmath>

#include "util/contracts.hh"
#include "util/logging.hh"

namespace vaesa::nn {

void
mseLossInto(const Matrix &pred, const Matrix &target,
            LossResult &result)
{
    if (pred.rows() != target.rows() || pred.cols() != target.cols())
        panic("mseLoss shape mismatch: ", pred.rows(), "x", pred.cols(),
              " vs ", target.rows(), "x", target.cols());
    const double n = static_cast<double>(pred.size());
    if (n == 0.0)
        panic("mseLoss on empty matrices");

    result.grad.resizeBuffer(pred.rows(), pred.cols());
    double acc = 0.0;
    for (std::size_t r = 0; r < pred.rows(); ++r) {
        for (std::size_t c = 0; c < pred.cols(); ++c) {
            const double diff = pred(r, c) - target(r, c);
            acc += diff * diff;
            result.grad(r, c) = 2.0 * diff / n;
        }
    }
    result.value = acc / n;
    VAESA_CHECK_FINITE(result.value, "MSE loss over ", pred.rows(),
                       "x", pred.cols());
}

LossResult
mseLoss(const Matrix &pred, const Matrix &target)
{
    LossResult result{0.0, Matrix()};
    mseLossInto(pred, target, result);
    return result;
}

void
gaussianKldInto(const Matrix &mu, const Matrix &logvar,
                KldResult &result)
{
    if (mu.rows() != logvar.rows() || mu.cols() != logvar.cols())
        panic("gaussianKld shape mismatch");
    const double batch = static_cast<double>(mu.rows());
    if (batch == 0.0)
        panic("gaussianKld on empty batch");

    result.gradMu.resizeBuffer(mu.rows(), mu.cols());
    result.gradLogvar.resizeBuffer(mu.rows(), mu.cols());
    double acc = 0.0;
    for (std::size_t r = 0; r < mu.rows(); ++r) {
        for (std::size_t c = 0; c < mu.cols(); ++c) {
            const double m = mu(r, c);
            const double lv = logvar(r, c);
            const double ev = std::exp(lv);
            acc += -0.5 * (1.0 + lv - m * m - ev);
            result.gradMu(r, c) = m / batch;
            result.gradLogvar(r, c) = 0.5 * (ev - 1.0) / batch;
        }
    }
    result.value = acc / batch;
    VAESA_CHECK_FINITE(result.value, "Gaussian KLD over batch of ",
                       mu.rows());
}

KldResult
gaussianKld(const Matrix &mu, const Matrix &logvar)
{
    KldResult result{0.0, Matrix(), Matrix()};
    gaussianKldInto(mu, logvar, result);
    return result;
}

} // namespace vaesa::nn
