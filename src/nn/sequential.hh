/**
 * @file
 * Sequential container and MLP convenience builder.
 */

#ifndef VAESA_NN_SEQUENTIAL_HH
#define VAESA_NN_SEQUENTIAL_HH

#include <memory>
#include <vector>

#include "nn/module.hh"
#include "tensor/kernels/workspace.hh"

namespace vaesa {
class Rng;
} // namespace vaesa

namespace vaesa::nn {

/**
 * A chain of modules applied in order; backward runs in reverse.
 * Adjacent widths are validated when modules are appended.
 *
 * The container owns one kernels::Workspace arena; every appended
 * stage binds its scratch buffers to it, so a whole-chain
 * forward/backward is allocation-free once each slot has grown to
 * the largest batch seen. The chain passes buffer references between
 * stages (no copies); a Linear stage's cached input is a view of the
 * previous stage's output buffer, which the reverse-order backward
 * contract keeps intact for exactly as long as it is needed.
 */
class Sequential : public Module
{
  public:
    Sequential() = default;

    /** Append a stage; its input width must match the current output. */
    void add(std::unique_ptr<Module> module);

    const Matrix &forward(const Matrix &input) override;
    const Matrix &backward(const Matrix &grad_output) override;
    std::vector<Parameter *> parameters() override;

    std::size_t inputSize() const override;
    std::size_t outputSize() const override;

    /** Propagated to every stage. */
    void setTraining(bool training) override;

    /** Re-bind every stage to a caller-provided arena. */
    void attachWorkspace(kernels::Workspace &arena) override;

    /** Number of stages. */
    std::size_t stageCount() const { return stages_.size(); }

    /** The arena currently backing the stages' scratch buffers. */
    const kernels::Workspace &workspace() const { return *arena_; }

  private:
    std::vector<std::unique_ptr<Module>> stages_;
    kernels::Workspace ownArena_;
    kernels::Workspace *arena_ = &ownArena_;
};

/** Output nonlinearity choice for makeMlp. */
enum class OutputActivation { None, Sigmoid, Tanh };

/**
 * Build the paper's MLP shape: Linear / LeakyReLU stacks with an
 * optional output nonlinearity.
 *
 * Hidden Linear layers feed a LeakyReLU, so they are initialized
 * with the matching Kaiming gain sqrt(2 / (1 + leaky_slope^2)); the
 * output layer keeps Linear's default gain.
 *
 * @param in input feature width.
 * @param hidden widths of the hidden layers (may be empty).
 * @param out output width.
 * @param rng seeded generator for initialization.
 * @param output_act final nonlinearity.
 * @param leaky_slope LeakyReLU negative-side slope.
 */
std::unique_ptr<Sequential> makeMlp(
    std::size_t in, const std::vector<std::size_t> &hidden,
    std::size_t out, Rng &rng,
    OutputActivation output_act = OutputActivation::None,
    double leaky_slope = 0.01);

} // namespace vaesa::nn

#endif // VAESA_NN_SEQUENTIAL_HH
