/**
 * @file
 * Sequential container and MLP convenience builder.
 */

#ifndef VAESA_NN_SEQUENTIAL_HH
#define VAESA_NN_SEQUENTIAL_HH

#include <memory>
#include <vector>

#include "nn/module.hh"

namespace vaesa {
class Rng;
} // namespace vaesa

namespace vaesa::nn {

/**
 * A chain of modules applied in order; backward runs in reverse.
 * Adjacent widths are validated when modules are appended.
 */
class Sequential : public Module
{
  public:
    Sequential() = default;

    /** Append a stage; its input width must match the current output. */
    void add(std::unique_ptr<Module> module);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;
    std::vector<Parameter *> parameters() override;

    std::size_t inputSize() const override;
    std::size_t outputSize() const override;

    /** Number of stages. */
    std::size_t stageCount() const { return stages_.size(); }

  private:
    std::vector<std::unique_ptr<Module>> stages_;
};

/** Output nonlinearity choice for makeMlp. */
enum class OutputActivation { None, Sigmoid, Tanh };

/**
 * Build the paper's MLP shape: Linear / LeakyReLU stacks with an
 * optional output nonlinearity.
 *
 * @param in input feature width.
 * @param hidden widths of the hidden layers (may be empty).
 * @param out output width.
 * @param rng seeded generator for initialization.
 * @param output_act final nonlinearity.
 * @param leaky_slope LeakyReLU negative-side slope.
 */
std::unique_ptr<Sequential> makeMlp(
    std::size_t in, const std::vector<std::size_t> &hidden,
    std::size_t out, Rng &rng,
    OutputActivation output_act = OutputActivation::None,
    double leaky_slope = 0.01);

} // namespace vaesa::nn

#endif // VAESA_NN_SEQUENTIAL_HH
