/**
 * @file
 * Fully-connected (affine) layer.
 */

#ifndef VAESA_NN_LINEAR_HH
#define VAESA_NN_LINEAR_HH

#include <string>

#include "nn/module.hh"

namespace vaesa {
class Rng;
} // namespace vaesa

namespace vaesa::nn {

/**
 * Affine layer: output = input * W^T + b.
 *
 * W is stored (out x in) so each output neuron's weights are one
 * contiguous row. Initialization is Kaiming-uniform by default (the
 * library targets LeakyReLU stacks).
 */
class Linear : public Module
{
  public:
    /**
     * Construct with Kaiming-uniform init.
     * @param in number of input features.
     * @param out number of output features.
     * @param rng seeded generator for the weight draw.
     * @param name parameter-name prefix.
     */
    Linear(std::size_t in, std::size_t out, Rng &rng,
           const std::string &name = "linear");

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;
    std::vector<Parameter *> parameters() override;

    std::size_t inputSize() const override { return in_; }
    std::size_t outputSize() const override { return out_; }

    /** Weight parameter, (out x in). */
    Parameter &weight() { return weight_; }

    /** Bias parameter, (1 x out). */
    Parameter &bias() { return bias_; }

  private:
    std::size_t in_;
    std::size_t out_;
    Parameter weight_;
    Parameter bias_;
    Matrix cachedInput_;
};

} // namespace vaesa::nn

#endif // VAESA_NN_LINEAR_HH
