/**
 * @file
 * Fully-connected (affine) layer.
 */

#ifndef VAESA_NN_LINEAR_HH
#define VAESA_NN_LINEAR_HH

#include <string>

#include "nn/module.hh"

namespace vaesa {
class Rng;
} // namespace vaesa

namespace vaesa::nn {

/**
 * Affine layer: output = input * W^T + b.
 *
 * W is stored (out x in) so each output neuron's weights are one
 * contiguous row. Initialization is Kaiming-uniform: the bound is
 * gain * sqrt(3 / fan_in), with the gain chosen for the nonlinearity
 * the layer feeds (leakyReluGain() for LeakyReLU stacks; the
 * kDefaultInitGain sqrt(2) keeps heads and output layers on the
 * historical bound).
 *
 * Checkpoint compatibility: the init change is gated behind fresh
 * construction only -- the versioned parameter records
 * (nn/serialize.hh) overwrite both value matrices wholesale on load,
 * so resuming from any existing checkpoint remains bit-identical
 * regardless of how the replacement weights were first drawn.
 */
class Linear : public Module
{
  public:
    /** Kaiming gain for a plain/unknown following nonlinearity. */
    static constexpr double kDefaultInitGain = 1.4142135623730951;

    /** Kaiming gain sqrt(2 / (1 + slope^2)) for LeakyReLU. */
    static double leakyReluGain(double slope);

    /**
     * Construct with Kaiming-uniform init.
     * @param in number of input features.
     * @param out number of output features.
     * @param rng seeded generator for the weight draw.
     * @param name parameter-name prefix.
     * @param init_gain nonlinearity gain scaling the uniform bound.
     */
    Linear(std::size_t in, std::size_t out, Rng &rng,
           const std::string &name = "linear",
           double init_gain = kDefaultInitGain);

    const Matrix &forward(const Matrix &input) override;
    const Matrix &backward(const Matrix &grad_output) override;
    std::vector<Parameter *> parameters() override;

    std::size_t inputSize() const override { return in_; }
    std::size_t outputSize() const override { return out_; }

    /** Weight parameter, (out x in). */
    Parameter &weight() { return weight_; }

    /** Bias parameter, (1 x out). */
    Parameter &bias() { return bias_; }

  protected:
    std::size_t workspaceSlots() const override { return 2; }

  private:
    std::size_t in_;
    std::size_t out_;
    Parameter weight_;
    Parameter bias_;

    /**
     * View of the last training-mode forward input (caller- or
     * arena-owned; the producer's buffer outlives our backward by
     * the reverse-order backward contract). Null in eval mode.
     */
    const Matrix *cachedInput_ = nullptr;
};

} // namespace vaesa::nn

#endif // VAESA_NN_LINEAR_HH
