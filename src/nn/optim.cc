#include "nn/optim.hh"

#include <cmath>

#include "nn/serialize.hh"
#include "util/contracts.hh"
#include "util/logging.hh"

namespace vaesa::nn {

namespace {

/** Shared ShapeMismatch builder for optimizer-state loaders. */
LoadError
stateError(const std::string &message)
{
    return makeLoadError(LoadError::Kind::ShapeMismatch, "", 0,
                         "optimizer state: " + message);
}

} // namespace

Optimizer::Optimizer(std::vector<Parameter *> params)
    : params_(std::move(params))
{
    for (Parameter *p : params_)
        if (!p)
            panic("Optimizer received a null parameter");
}

void
Optimizer::zeroGrad()
{
    for (Parameter *p : params_)
        p->zeroGrad();
}

void
Optimizer::serializeState(ByteBuffer &) const
{}

std::optional<LoadError>
Optimizer::deserializeState(ByteReader &)
{
    return std::nullopt;
}

Sgd::Sgd(std::vector<Parameter *> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum)
{
    velocity_.reserve(params_.size());
    for (Parameter *p : params_)
        velocity_.emplace_back(p->value.rows(), p->value.cols());
}

void
Sgd::step()
{
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter *p = params_[i];
        if (momentum_ != 0.0) {
            velocity_[i].scale(momentum_);
            velocity_[i].addScaled(p->grad, 1.0);
            p->value.addScaled(velocity_[i], -lr_);
        } else {
            p->value.addScaled(p->grad, -lr_);
        }
    }
}

void
Sgd::serializeState(ByteBuffer &out) const
{
    out.putU64(velocity_.size());
    for (const Matrix &v : velocity_)
        putMatrix(out, v);
}

std::optional<LoadError>
Sgd::deserializeState(ByteReader &in)
{
    const std::uint64_t count = in.getU64();
    if (in.failed() || count != velocity_.size())
        return stateError("SGD velocity count mismatch");
    for (Matrix &v : velocity_)
        if (!readMatrixInto(in, v))
            return stateError("SGD velocity shape mismatch");
    return std::nullopt;
}

Adam::Adam(std::vector<Parameter *> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1),
      beta2_(beta2), eps_(eps)
{
    firstMoment_.reserve(params_.size());
    secondMoment_.reserve(params_.size());
    for (Parameter *p : params_) {
        firstMoment_.emplace_back(p->value.rows(), p->value.cols());
        secondMoment_.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
Adam::step()
{
    ++stepCount_;
    const double bc1 = 1.0 - std::pow(beta1_, stepCount_);
    const double bc2 = 1.0 - std::pow(beta2_, stepCount_);
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter *p = params_[i];
        VAESA_CHECK_FINITE_ALL(p->grad, "Adam::step gradient for "
                               "parameter ", i);
        Matrix &m = firstMoment_[i];
        Matrix &v = secondMoment_[i];
        const double *g = p->grad.data();
        double *mp = m.data();
        double *vp = v.data();
        double *w = p->value.data();
        const std::size_t n = p->value.size();
        for (std::size_t k = 0; k < n; ++k) {
            mp[k] = beta1_ * mp[k] + (1.0 - beta1_) * g[k];
            vp[k] = beta2_ * vp[k] + (1.0 - beta2_) * g[k] * g[k];
            const double m_hat = mp[k] / bc1;
            const double v_hat = vp[k] / bc2;
            w[k] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
        }
    }
}

void
Adam::serializeState(ByteBuffer &out) const
{
    out.putU64(static_cast<std::uint64_t>(stepCount_));
    out.putU64(firstMoment_.size());
    for (std::size_t i = 0; i < firstMoment_.size(); ++i) {
        putMatrix(out, firstMoment_[i]);
        putMatrix(out, secondMoment_[i]);
    }
}

std::optional<LoadError>
Adam::deserializeState(ByteReader &in)
{
    const std::uint64_t steps = in.getU64();
    const std::uint64_t count = in.getU64();
    if (in.failed() || count != firstMoment_.size())
        return stateError("Adam moment count mismatch");
    for (std::size_t i = 0; i < firstMoment_.size(); ++i)
        if (!readMatrixInto(in, firstMoment_[i]) ||
            !readMatrixInto(in, secondMoment_[i]))
            return stateError("Adam moment shape mismatch");
    stepCount_ = static_cast<long>(steps);
    return std::nullopt;
}

} // namespace vaesa::nn
