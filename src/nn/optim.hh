/**
 * @file
 * First-order optimizers over Parameter lists: SGD with momentum and
 * Adam (the trainer's default).
 */

#ifndef VAESA_NN_OPTIM_HH
#define VAESA_NN_OPTIM_HH

#include <optional>
#include <vector>

#include "nn/module.hh"
#include "util/atomic_io.hh"

namespace vaesa::nn {

/** Common optimizer interface over an externally-owned parameter set. */
class Optimizer
{
  public:
    /** @param params parameters to update; must outlive the optimizer. */
    explicit Optimizer(std::vector<Parameter *> params);
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Zero every parameter gradient. */
    void zeroGrad();

    /** The managed parameters. */
    const std::vector<Parameter *> &params() const { return params_; }

    /**
     * Append internal state (moment estimates, step counters) to a
     * checkpoint payload, so a resumed run continues the exact update
     * sequence of an uninterrupted one.
     */
    virtual void serializeState(ByteBuffer &out) const;

    /**
     * Restore state written by serializeState() for the same model.
     * @return nullopt on success, ShapeMismatch/Malformed otherwise.
     */
    virtual std::optional<LoadError> deserializeState(ByteReader &in);

  protected:
    std::vector<Parameter *> params_;
};

/** Stochastic gradient descent with classical momentum. */
class Sgd : public Optimizer
{
  public:
    /**
     * @param params parameters to update.
     * @param lr learning rate.
     * @param momentum momentum coefficient (0 disables).
     */
    Sgd(std::vector<Parameter *> params, double lr,
        double momentum = 0.0);

    void step() override;

    /** Current learning rate. */
    double learningRate() const { return lr_; }

    /** Change the learning rate (for schedules). */
    void setLearningRate(double lr) { lr_ = lr; }

    void serializeState(ByteBuffer &out) const override;
    std::optional<LoadError> deserializeState(ByteReader &in) override;

  private:
    double lr_;
    double momentum_;
    std::vector<Matrix> velocity_;
};

/** Adam optimizer (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    /**
     * @param params parameters to update.
     * @param lr learning rate.
     * @param beta1 first-moment decay.
     * @param beta2 second-moment decay.
     * @param eps denominator stabilizer.
     */
    Adam(std::vector<Parameter *> params, double lr = 1e-3,
         double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

    void step() override;

    /** Current learning rate. */
    double learningRate() const { return lr_; }

    /** Change the learning rate (for schedules). */
    void setLearningRate(double lr) { lr_ = lr; }

    void serializeState(ByteBuffer &out) const override;
    std::optional<LoadError> deserializeState(ByteReader &in) override;

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    long stepCount_ = 0;
    std::vector<Matrix> firstMoment_;
    std::vector<Matrix> secondMoment_;
};

} // namespace vaesa::nn

#endif // VAESA_NN_OPTIM_HH
