/**
 * @file
 * Binary save/load of parameter sets so trained VAESA models can be
 * reused across processes (train once, search many times).
 *
 * Files use the shared checksummed record framing (util/atomic_io.hh):
 * a magic/version header followed by one record for the parameter
 * count and one record per parameter (name, shape, row-major payload).
 * Corruption is reported as a LoadError, never a process abort, and
 * writes are atomic (temp + rename).
 */

#ifndef VAESA_NN_SERIALIZE_HH
#define VAESA_NN_SERIALIZE_HH

#include <optional>
#include <string>
#include <vector>

#include "nn/module.hh"
#include "util/atomic_io.hh"

namespace vaesa::nn {

/** Magic word of parameter files ("VAES"). */
constexpr std::uint32_t parametersMagic = 0x56414553;

/** Current parameter-file version (2 = framed records). */
constexpr std::uint32_t parametersVersion = 2;

/** Append a matrix (rows, cols, row-major doubles) to a payload. */
void putMatrix(ByteBuffer &out, const Matrix &matrix);

/**
 * Read a matrix written by putMatrix() into an existing matrix of the
 * expected shape.
 * @return false on shape mismatch or payload overrun.
 */
bool readMatrixInto(ByteReader &in, Matrix &matrix);

/**
 * Append the parameter records (count record, then one record per
 * parameter) to a framed file being built. Used directly by formats
 * that embed parameters among other records (framework snapshots,
 * training checkpoints).
 */
void writeParameterRecords(RecordWriter &out,
                           const std::vector<Parameter *> &params);

/**
 * Read parameter records written by writeParameterRecords() into an
 * existing model. Names and shapes must match the current parameter
 * list exactly.
 * @return nullopt on success; Truncated/BadChecksum/Malformed on
 *         corruption, ShapeMismatch on model/file disagreement.
 */
std::optional<LoadError>
readParameterRecords(RecordReader &in,
                     const std::vector<Parameter *> &params);

/**
 * Save parameter values to a binary file, atomically.
 * @return nullopt on success, the write error otherwise.
 */
std::optional<LoadError>
saveParameters(const std::string &path,
               const std::vector<Parameter *> &params);

/**
 * Load parameter values saved by saveParameters(). Names and shapes
 * must match the current parameter list exactly.
 * @return nullopt on success, a structured error otherwise (the
 *         parameters may be partially overwritten on failure).
 */
std::optional<LoadError>
loadParameters(const std::string &path,
               const std::vector<Parameter *> &params);

} // namespace vaesa::nn

#endif // VAESA_NN_SERIALIZE_HH
