/**
 * @file
 * Binary save/load of parameter sets so trained VAESA models can be
 * reused across processes (train once, search many times).
 */

#ifndef VAESA_NN_SERIALIZE_HH
#define VAESA_NN_SERIALIZE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/module.hh"

namespace vaesa::nn {

/** Stream-based variant of saveParameters (no magic header). */
void saveParametersToStream(std::ostream &out,
                            const std::vector<Parameter *> &params);

/**
 * Stream-based variant of loadParameters (no magic header). Names
 * and shapes must match exactly; fatal() otherwise.
 */
void loadParametersFromStream(std::istream &in,
                              const std::vector<Parameter *> &params);

/**
 * Save parameter values to a binary file. The format records name,
 * shape, and row-major payload per parameter, with a magic header.
 * @return true on success.
 */
bool saveParameters(const std::string &path,
                    const std::vector<Parameter *> &params);

/**
 * Load parameter values saved by saveParameters(). Names and shapes
 * must match the current parameter list exactly; fatal() otherwise.
 * @return true on success, false if the file cannot be opened.
 */
bool loadParameters(const std::string &path,
                    const std::vector<Parameter *> &params);

} // namespace vaesa::nn

#endif // VAESA_NN_SERIALIZE_HH
