/**
 * @file
 * Element-wise activation modules: LeakyReLU (the paper's choice for
 * the VAE and predictor MLPs), Sigmoid (output head for [0,1) features)
 * and Tanh.
 */

#ifndef VAESA_NN_ACTIVATION_HH
#define VAESA_NN_ACTIVATION_HH

#include "nn/module.hh"

namespace vaesa::nn {

/** LeakyReLU: x for x > 0, slope * x otherwise. */
class LeakyReLU : public Module
{
  public:
    /** @param width feature width; @param slope negative-side slope. */
    explicit LeakyReLU(std::size_t width, double slope = 0.01);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

    std::size_t inputSize() const override { return width_; }
    std::size_t outputSize() const override { return width_; }

    /** Negative-side slope. */
    double slope() const { return slope_; }

  private:
    std::size_t width_;
    double slope_;
    Matrix cachedInput_;
};

/** Logistic sigmoid, 1 / (1 + e^-x). */
class Sigmoid : public Module
{
  public:
    explicit Sigmoid(std::size_t width);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

    std::size_t inputSize() const override { return width_; }
    std::size_t outputSize() const override { return width_; }

  private:
    std::size_t width_;
    Matrix cachedOutput_;
};

/** Hyperbolic tangent. */
class Tanh : public Module
{
  public:
    explicit Tanh(std::size_t width);

    Matrix forward(const Matrix &input) override;
    Matrix backward(const Matrix &grad_output) override;

    std::size_t inputSize() const override { return width_; }
    std::size_t outputSize() const override { return width_; }

  private:
    std::size_t width_;
    Matrix cachedOutput_;
};

} // namespace vaesa::nn

#endif // VAESA_NN_ACTIVATION_HH
