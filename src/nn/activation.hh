/**
 * @file
 * Element-wise activation modules: LeakyReLU (the paper's choice for
 * the VAE and predictor MLPs), Sigmoid (output head for [0,1) features)
 * and Tanh.
 *
 * All three cache only their own output buffer: LeakyReLU with slope
 * in (0, 1] is sign-preserving, so its backward branches on the
 * output's sign, and Sigmoid/Tanh derivatives are functions of the
 * output. backward() scales the incoming gradient in a second
 * arena buffer.
 */

#ifndef VAESA_NN_ACTIVATION_HH
#define VAESA_NN_ACTIVATION_HH

#include "nn/module.hh"

namespace vaesa::nn {

/**
 * LeakyReLU: x for x > 0, slope * x otherwise.
 *
 * Forward and backward share the single predicate (value > 0), so
 * at exactly x = 0 both take the slope branch (f(0) = 0, f'(0) =
 * slope) and a NaN input gets slope-scaled in both passes -- the
 * historical mismatch (forward on input > 0, backward on input <= 0)
 * disagreed for NaN.
 */
class LeakyReLU : public Module
{
  public:
    /**
     * @param width feature width.
     * @param slope negative-side slope; must be >= 0 so the
     *        activation never flips a sign (out > 0 iff in > 0,
     *        which backward's output-side branch relies on).
     */
    explicit LeakyReLU(std::size_t width, double slope = 0.01);

    const Matrix &forward(const Matrix &input) override;
    const Matrix &backward(const Matrix &grad_output) override;

    std::size_t inputSize() const override { return width_; }
    std::size_t outputSize() const override { return width_; }

    /** Negative-side slope. */
    double slope() const { return slope_; }

  protected:
    std::size_t workspaceSlots() const override { return 2; }

  private:
    std::size_t width_;
    double slope_;
    std::size_t cachedRows_ = 0;
};

/** Logistic sigmoid, 1 / (1 + e^-x). */
class Sigmoid : public Module
{
  public:
    explicit Sigmoid(std::size_t width);

    const Matrix &forward(const Matrix &input) override;
    const Matrix &backward(const Matrix &grad_output) override;

    std::size_t inputSize() const override { return width_; }
    std::size_t outputSize() const override { return width_; }

  protected:
    std::size_t workspaceSlots() const override { return 2; }

  private:
    std::size_t width_;
    std::size_t cachedRows_ = 0;
};

/** Hyperbolic tangent. */
class Tanh : public Module
{
  public:
    explicit Tanh(std::size_t width);

    const Matrix &forward(const Matrix &input) override;
    const Matrix &backward(const Matrix &grad_output) override;

    std::size_t inputSize() const override { return width_; }
    std::size_t outputSize() const override { return width_; }

  protected:
    std::size_t workspaceSlots() const override { return 2; }

  private:
    std::size_t width_;
    std::size_t cachedRows_ = 0;
};

} // namespace vaesa::nn

#endif // VAESA_NN_ACTIVATION_HH
