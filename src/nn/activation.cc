#include "nn/activation.hh"

#include <cmath>

#include "tensor/kernels/kernels.hh"
#include "util/logging.hh"

namespace vaesa::nn {

namespace {

/** Copy input into slot 0 shaped like it (the activation output). */
Matrix &
copyToScratch(Matrix &dst, const Matrix &src)
{
    std::copy(src.data(), src.data() + src.size(), dst.data());
    return dst;
}

} // namespace

LeakyReLU::LeakyReLU(std::size_t width, double slope)
    : width_(width), slope_(slope)
{
    if (slope < 0.0)
        panic("LeakyReLU slope must be >= 0, got ", slope);
}

const Matrix &
LeakyReLU::forward(const Matrix &input)
{
    if (input.cols() != width_)
        panic("LeakyReLU width mismatch: ", input.cols(), " != ", width_);
    cachedRows_ = input.rows();
    Matrix &out =
        copyToScratch(scratch(0, input.rows(), width_), input);
    kernels::leakyReluForward(out.data(), out.size(), slope_);
    return out;
}

const Matrix &
LeakyReLU::backward(const Matrix &grad_output)
{
    if (!training())
        panic("LeakyReLU backward in eval mode");
    if (grad_output.rows() != cachedRows_ ||
        grad_output.cols() != width_)
        panic("LeakyReLU backward shape mismatch");
    // slope >= 0 keeps the activation sign-preserving, so the cached
    // OUTPUT carries the branch: out > 0 iff in > 0, and NaN inputs
    // (slope-scaled to NaN in forward) fail the > test in both
    // passes. One predicate, one derivative convention: f'(0) =
    // slope.
    const Matrix &out = scratch(0, cachedRows_, width_);
    Matrix &grad =
        copyToScratch(scratch(1, cachedRows_, width_), grad_output);
    kernels::leakyReluBackward(grad.data(), out.data(), grad.size(),
                               slope_);
    return grad;
}

Sigmoid::Sigmoid(std::size_t width)
    : width_(width)
{
}

const Matrix &
Sigmoid::forward(const Matrix &input)
{
    if (input.cols() != width_)
        panic("Sigmoid width mismatch: ", input.cols(), " != ", width_);
    cachedRows_ = input.rows();
    Matrix &out =
        copyToScratch(scratch(0, input.rows(), width_), input);
    kernels::sigmoidForward(out.data(), out.size());
    return out;
}

const Matrix &
Sigmoid::backward(const Matrix &grad_output)
{
    if (!training())
        panic("Sigmoid backward in eval mode");
    if (grad_output.rows() != cachedRows_ ||
        grad_output.cols() != width_)
        panic("Sigmoid backward shape mismatch");
    const Matrix &out = scratch(0, cachedRows_, width_);
    Matrix &grad =
        copyToScratch(scratch(1, cachedRows_, width_), grad_output);
    kernels::sigmoidBackward(grad.data(), out.data(), grad.size());
    return grad;
}

Tanh::Tanh(std::size_t width)
    : width_(width)
{
}

const Matrix &
Tanh::forward(const Matrix &input)
{
    if (input.cols() != width_)
        panic("Tanh width mismatch: ", input.cols(), " != ", width_);
    cachedRows_ = input.rows();
    Matrix &out =
        copyToScratch(scratch(0, input.rows(), width_), input);
    kernels::tanhForward(out.data(), out.size());
    return out;
}

const Matrix &
Tanh::backward(const Matrix &grad_output)
{
    if (!training())
        panic("Tanh backward in eval mode");
    if (grad_output.rows() != cachedRows_ ||
        grad_output.cols() != width_)
        panic("Tanh backward shape mismatch");
    const Matrix &out = scratch(0, cachedRows_, width_);
    Matrix &grad =
        copyToScratch(scratch(1, cachedRows_, width_), grad_output);
    kernels::tanhBackward(grad.data(), out.data(), grad.size());
    return grad;
}

} // namespace vaesa::nn
