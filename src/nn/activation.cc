#include "nn/activation.hh"

#include <cmath>

#include "util/logging.hh"

namespace vaesa::nn {

LeakyReLU::LeakyReLU(std::size_t width, double slope)
    : width_(width), slope_(slope)
{
}

Matrix
LeakyReLU::forward(const Matrix &input)
{
    if (input.cols() != width_)
        panic("LeakyReLU width mismatch: ", input.cols(), " != ", width_);
    cachedInput_ = input;
    Matrix out = input;
    out.apply([this](double x) { return x > 0.0 ? x : slope_ * x; });
    return out;
}

Matrix
LeakyReLU::backward(const Matrix &grad_output)
{
    Matrix grad = grad_output;
    if (grad.rows() != cachedInput_.rows() || grad.cols() != width_)
        panic("LeakyReLU backward shape mismatch");
    for (std::size_t r = 0; r < grad.rows(); ++r)
        for (std::size_t c = 0; c < grad.cols(); ++c)
            if (cachedInput_(r, c) <= 0.0)
                grad(r, c) *= slope_;
    return grad;
}

Sigmoid::Sigmoid(std::size_t width)
    : width_(width)
{
}

Matrix
Sigmoid::forward(const Matrix &input)
{
    if (input.cols() != width_)
        panic("Sigmoid width mismatch: ", input.cols(), " != ", width_);
    Matrix out = input;
    out.apply([](double x) { return 1.0 / (1.0 + std::exp(-x)); });
    cachedOutput_ = out;
    return out;
}

Matrix
Sigmoid::backward(const Matrix &grad_output)
{
    Matrix grad = grad_output;
    if (grad.rows() != cachedOutput_.rows() || grad.cols() != width_)
        panic("Sigmoid backward shape mismatch");
    for (std::size_t r = 0; r < grad.rows(); ++r) {
        for (std::size_t c = 0; c < grad.cols(); ++c) {
            const double y = cachedOutput_(r, c);
            grad(r, c) *= y * (1.0 - y);
        }
    }
    return grad;
}

Tanh::Tanh(std::size_t width)
    : width_(width)
{
}

Matrix
Tanh::forward(const Matrix &input)
{
    if (input.cols() != width_)
        panic("Tanh width mismatch: ", input.cols(), " != ", width_);
    Matrix out = input;
    out.apply([](double x) { return std::tanh(x); });
    cachedOutput_ = out;
    return out;
}

Matrix
Tanh::backward(const Matrix &grad_output)
{
    Matrix grad = grad_output;
    if (grad.rows() != cachedOutput_.rows() || grad.cols() != width_)
        panic("Tanh backward shape mismatch");
    for (std::size_t r = 0; r < grad.rows(); ++r) {
        for (std::size_t c = 0; c < grad.cols(); ++c) {
            const double y = cachedOutput_(r, c);
            grad(r, c) *= 1.0 - y * y;
        }
    }
    return grad;
}

} // namespace vaesa::nn
