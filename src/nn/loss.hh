/**
 * @file
 * Loss functions of the VAESA training objective (Equations 1-2):
 * mean-squared-error reconstruction/prediction losses and the
 * closed-form Gaussian KL divergence.
 */

#ifndef VAESA_NN_LOSS_HH
#define VAESA_NN_LOSS_HH

#include "tensor/matrix.hh"

namespace vaesa::nn {

/** Value and input-gradient of a loss evaluation. */
struct LossResult
{
    /** Scalar loss (already averaged over the batch). */
    double value;

    /** dL/d(prediction), same shape as the prediction. */
    Matrix grad;
};

/**
 * Mean squared error, averaged over all elements:
 * L = mean((pred - target)^2).
 */
LossResult mseLoss(const Matrix &pred, const Matrix &target);

/**
 * mseLoss writing into a caller-owned result; the gradient buffer is
 * reshaped with capacity retention so repeated calls at a steady
 * batch size allocate nothing.
 */
void mseLossInto(const Matrix &pred, const Matrix &target,
                 LossResult &result);

/** Gradients of the Gaussian KLD w.r.t.\ mu and log-variance. */
struct KldResult
{
    /** Scalar KLD averaged over the batch. */
    double value;

    /** dL/d(mu). */
    Matrix gradMu;

    /** dL/d(logvar). */
    Matrix gradLogvar;
};

/**
 * KL divergence of N(mu, diag(exp(logvar))) from N(0, I), closed form,
 * summed over latent dimensions and averaged over the batch:
 * KLD = -0.5 * mean_batch sum_dims(1 + logvar - mu^2 - exp(logvar)).
 */
KldResult gaussianKld(const Matrix &mu, const Matrix &logvar);

/** gaussianKld writing into a caller-owned result (allocation-free
 * at a steady batch size, like mseLossInto). */
void gaussianKldInto(const Matrix &mu, const Matrix &logvar,
                     KldResult &result);

} // namespace vaesa::nn

#endif // VAESA_NN_LOSS_HH
