#include "nn/module.hh"

#include "util/logging.hh"

namespace vaesa::nn {

void
Module::attachWorkspace(kernels::Workspace &arena)
{
    if (privateArena_)
        panic("Module::attachWorkspace after scratch buffers were "
              "already drawn from a private arena");
    arena_ = &arena;
    arenaBase_ = arena.reserveSlots(workspaceSlots());
}

Matrix &
Module::scratch(std::size_t index, std::size_t rows, std::size_t cols)
{
    if (index >= workspaceSlots())
        panic("Module::scratch: slot ", index, " out of ",
              workspaceSlots());
    if (arena_ == nullptr) {
        privateArena_ = std::make_unique<kernels::Workspace>();
        arena_ = privateArena_.get();
        arenaBase_ = arena_->reserveSlots(workspaceSlots());
    }
    return arena_->buffer(arenaBase_ + index, rows, cols);
}

} // namespace vaesa::nn
