#include "workload/networks.hh"

#include "util/contracts.hh"
#include "util/logging.hh"
#include "workload/zoo.hh"

namespace vaesa {

namespace {

/** Shorthand constructor in Table IV column order. */
LayerShape
layer(std::string name, std::int64_t r, std::int64_t s, std::int64_t p,
      std::int64_t q, std::int64_t c, std::int64_t k,
      std::int64_t stride_w = 1, std::int64_t stride_h = 1)
{
    LayerShape shape;
    shape.name = std::move(name);
    shape.r = r;
    shape.s = s;
    shape.p = p;
    shape.q = q;
    shape.c = c;
    shape.k = k;
    shape.strideW = stride_w;
    shape.strideH = stride_h;
    return shape;
}

} // namespace

std::int64_t
Workload::countOf(std::size_t i) const
{
    VAESA_EXPECT(i < layers.size(),
                 "Workload::countOf: index out of range");
    if (counts.empty())
        return 1;
    VAESA_EXPECT(counts.size() == layers.size(),
                 "Workload: counts/layers size mismatch");
    return counts[i];
}

std::int64_t
Workload::totalLayers() const
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < layers.size(); ++i)
        total += countOf(i);
    return total;
}

double
Workload::totalMacs() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < layers.size(); ++i)
        total += static_cast<double>(countOf(i)) * layers[i].macs();
    return total;
}

Workload
countedWorkload(std::string name,
                const std::vector<LayerShape> &sequence)
{
    Workload w;
    w.name = std::move(name);
    w.layers = uniqueLayersCounted(sequence, &w.counts);
    return w;
}

std::vector<LayerShape>
uniqueLayers(const std::vector<LayerShape> &in)
{
    return uniqueLayersCounted(in, nullptr);
}

std::vector<LayerShape>
uniqueLayersCounted(const std::vector<LayerShape> &in,
                    std::vector<std::int64_t> *counts_out)
{
    std::vector<LayerShape> out;
    if (counts_out)
        counts_out->clear();
    for (const LayerShape &candidate : in) {
        bool seen = false;
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (out[i].sameShape(candidate)) {
                seen = true;
                if (counts_out)
                    ++(*counts_out)[i];
                break;
            }
        }
        if (!seen) {
            out.push_back(candidate);
            if (counts_out)
                counts_out->push_back(1);
        }
    }
    return out;
}

std::vector<LayerShape>
alexNetLayers()
{
    return {
        layer("alexnet.conv1", 11, 11, 55, 55, 3, 64, 4, 4),
        layer("alexnet.conv2", 5, 5, 27, 27, 64, 192),
        layer("alexnet.conv3", 3, 3, 13, 13, 192, 384),
        layer("alexnet.conv4", 3, 3, 13, 13, 384, 256),
        layer("alexnet.conv5", 3, 3, 13, 13, 256, 256),
        layer("alexnet.fc6", 1, 1, 1, 1, 9216, 4096),
        layer("alexnet.fc7", 1, 1, 1, 1, 4096, 4096),
        layer("alexnet.fc8", 1, 1, 1, 1, 4096, 1000),
    };
}

std::vector<LayerShape>
resNet50Layers()
{
    // torchvision topology: the stride-2 convolution is the 3x3 inside
    // the first block of each stage. Deduplication of the full 53-conv
    // network yields exactly these 24 unique shapes.
    return {
        layer("resnet50.conv1", 7, 7, 112, 112, 3, 64, 2, 2),
        // Stage 1 at 56x56.
        layer("resnet50.s1.reduce1", 1, 1, 56, 56, 64, 64),
        layer("resnet50.s1.conv3x3", 3, 3, 56, 56, 64, 64),
        layer("resnet50.s1.expand", 1, 1, 56, 56, 64, 256),
        layer("resnet50.s1.reduce2", 1, 1, 56, 56, 256, 64),
        // Stage 2 entering 28x28.
        layer("resnet50.s2.reduce1", 1, 1, 56, 56, 256, 128),
        layer("resnet50.s2.conv3x3s2", 3, 3, 28, 28, 128, 128, 2, 2),
        layer("resnet50.s2.expand", 1, 1, 28, 28, 128, 512),
        layer("resnet50.s2.downsample", 1, 1, 28, 28, 256, 512, 2, 2),
        layer("resnet50.s2.reduce2", 1, 1, 28, 28, 512, 128),
        layer("resnet50.s2.conv3x3", 3, 3, 28, 28, 128, 128),
        // Stage 3 entering 14x14.
        layer("resnet50.s3.reduce1", 1, 1, 28, 28, 512, 256),
        layer("resnet50.s3.conv3x3s2", 3, 3, 14, 14, 256, 256, 2, 2),
        layer("resnet50.s3.expand", 1, 1, 14, 14, 256, 1024),
        layer("resnet50.s3.downsample", 1, 1, 14, 14, 512, 1024, 2, 2),
        layer("resnet50.s3.reduce2", 1, 1, 14, 14, 1024, 256),
        layer("resnet50.s3.conv3x3", 3, 3, 14, 14, 256, 256),
        // Stage 4 entering 7x7.
        layer("resnet50.s4.reduce1", 1, 1, 14, 14, 1024, 512),
        layer("resnet50.s4.conv3x3s2", 3, 3, 7, 7, 512, 512, 2, 2),
        layer("resnet50.s4.expand", 1, 1, 7, 7, 512, 2048),
        layer("resnet50.s4.downsample", 1, 1, 7, 7, 1024, 2048, 2, 2),
        layer("resnet50.s4.reduce2", 1, 1, 7, 7, 2048, 512),
        layer("resnet50.s4.conv3x3", 3, 3, 7, 7, 512, 512),
        // Classifier.
        layer("resnet50.fc", 1, 1, 1, 1, 2048, 1000),
    };
}

std::vector<LayerShape>
resNext50Layers()
{
    // ResNeXt-50-32x4d: the grouped 3x3 convolutions are stored with
    // c equal to the per-group input-channel count (width / 32), which
    // keeps the MAC total exact in the 8-column format.
    return {
        layer("resnext50.conv1", 7, 7, 112, 112, 3, 64, 2, 2),
        // Stage 1 at 56x56, internal width 128 (32 groups x 4).
        layer("resnext50.s1.reduce1", 1, 1, 56, 56, 64, 128),
        layer("resnext50.s1.conv3x3g", 3, 3, 56, 56, 4, 128),
        layer("resnext50.s1.expand", 1, 1, 56, 56, 128, 256),
        layer("resnext50.s1.downsample", 1, 1, 56, 56, 64, 256),
        layer("resnext50.s1.reduce2", 1, 1, 56, 56, 256, 128),
        // Stage 2 entering 28x28, width 256 (32 x 8).
        layer("resnext50.s2.reduce1", 1, 1, 56, 56, 256, 256),
        layer("resnext50.s2.conv3x3gs2", 3, 3, 28, 28, 8, 256, 2, 2),
        layer("resnext50.s2.expand", 1, 1, 28, 28, 256, 512),
        layer("resnext50.s2.downsample", 1, 1, 28, 28, 256, 512, 2, 2),
        layer("resnext50.s2.reduce2", 1, 1, 28, 28, 512, 256),
        layer("resnext50.s2.conv3x3g", 3, 3, 28, 28, 8, 256),
        // Stage 3 entering 14x14, width 512 (32 x 16).
        layer("resnext50.s3.reduce1", 1, 1, 28, 28, 512, 512),
        layer("resnext50.s3.conv3x3gs2", 3, 3, 14, 14, 16, 512, 2, 2),
        layer("resnext50.s3.expand", 1, 1, 14, 14, 512, 1024),
        layer("resnext50.s3.downsample", 1, 1, 14, 14, 512, 1024, 2, 2),
        layer("resnext50.s3.reduce2", 1, 1, 14, 14, 1024, 512),
        layer("resnext50.s3.conv3x3g", 3, 3, 14, 14, 16, 512),
        // Stage 4 entering 7x7, width 1024 (32 x 32).
        layer("resnext50.s4.reduce1", 1, 1, 14, 14, 1024, 1024),
        layer("resnext50.s4.conv3x3gs2", 3, 3, 7, 7, 32, 1024, 2, 2),
        layer("resnext50.s4.expand", 1, 1, 7, 7, 1024, 2048),
        layer("resnext50.s4.downsample", 1, 1, 7, 7, 1024, 2048, 2, 2),
        layer("resnext50.s4.reduce2", 1, 1, 7, 7, 2048, 1024),
        layer("resnext50.s4.conv3x3g", 3, 3, 7, 7, 32, 1024),
        // Classifier.
        layer("resnext50.fc", 1, 1, 1, 1, 2048, 1000),
    };
}

std::vector<LayerShape>
deepBenchLayers()
{
    // DeepBench inference convolutions: the OCR (speech/text) stack on
    // 700x161 spectrogram-like inputs and the face-recognition stack.
    // Output sizes follow floor((in - filter)/stride) + 1.
    return {
        layer("deepbench.ocr1", 5, 20, 348, 71, 1, 32, 2, 2),
        layer("deepbench.ocr2", 5, 10, 172, 35, 32, 32, 2, 2),
        layer("deepbench.text1", 3, 3, 478, 46, 1, 16),
        layer("deepbench.text2", 3, 3, 238, 22, 16, 32),
        layer("deepbench.text3", 3, 3, 118, 10, 32, 64),
        layer("deepbench.text4", 3, 3, 58, 4, 64, 128),
        layer("deepbench.face1", 3, 3, 53, 53, 3, 64, 2, 2),
        layer("deepbench.face2", 3, 3, 52, 52, 64, 64),
        layer("deepbench.face3", 3, 3, 25, 25, 128, 128),
    };
}

std::vector<LayerShape>
gdTestLayers()
{
    // Exactly Table IV of the paper, in row order.
    return {
        layer("gd.layer01", 1, 1, 1, 1, 2208, 1000),
        layer("gd.layer02", 1, 1, 1, 1, 512, 256),
        layer("gd.layer03", 1, 1, 28, 28, 512, 512),
        layer("gd.layer04", 3, 3, 14, 14, 192, 48),
        layer("gd.layer05", 3, 3, 14, 14, 512, 512),
        layer("gd.layer06", 3, 3, 28, 28, 192, 48),
        layer("gd.layer07", 3, 3, 28, 28, 512, 512),
        layer("gd.layer08", 3, 3, 350, 80, 64, 64),
        layer("gd.layer09", 3, 3, 56, 56, 192, 48),
        layer("gd.layer10", 3, 3, 56, 56, 256, 256),
        layer("gd.layer11", 3, 3, 7, 7, 192, 48),
        layer("gd.layer12", 5, 5, 700, 161, 1, 64, 2, 2),
    };
}

std::vector<Workload>
trainingWorkloads()
{
    return {
        {"alexnet", alexNetLayers()},
        {"resnet50", resNet50Layers()},
        {"resnext50", resNext50Layers()},
        {"deepbench", deepBenchLayers()},
    };
}

Workload
workloadByName(const std::string &name)
{
    std::optional<Workload> found = tryWorkloadByName(name);
    if (!found)
        fatal("unknown workload '", name,
              "' (expected alexnet/resnet50/resnext50/deepbench or "
              "a zoo name: bert_base/bert_large/gpt2/mobilenet_v2/"
              "dlrm)");
    return *std::move(found);
}

std::optional<Workload>
tryWorkloadByName(const std::string &name)
{
    for (Workload &w : trainingWorkloads())
        if (w.name == name)
            return std::move(w);
    for (Workload &w : zooWorkloads())
        if (w.name == name)
            return std::move(w);
    return std::nullopt;
}

} // namespace vaesa
