/**
 * @file
 * Text parsing of layer shapes so users can optimize custom networks
 * without recompiling. The format is the paper's Table IV 8-column
 * layout, one layer per line:
 *
 *   # comment lines and blank lines are ignored
 *   [name] R S P Q C K strideW strideH
 *
 * The leading name is optional; unnamed layers get "custom.layerN".
 */

#ifndef VAESA_WORKLOAD_PARSE_HH
#define VAESA_WORKLOAD_PARSE_HH

#include <optional>
#include <string>
#include <vector>

#include "util/load_error.hh"
#include "workload/layer.hh"

namespace vaesa {

/**
 * Parse one layer line.
 * @param line text in the format above.
 * @param default_name name to use when the line has none.
 * @param error out (optional): set to a description when the line is
 *        malformed; untouched otherwise.
 * @return the layer, or nullopt for blank/comment/malformed lines
 *         (malformed sets *error when given).
 */
std::optional<LayerShape> parseLayerLine(const std::string &line,
                                         const std::string
                                             &default_name,
                                         std::string *error = nullptr);

/**
 * Format a layer back into the 8-column line format above (name
 * first). parseLayerLine(formatLayerLine(l)) reproduces l exactly
 * for any in-bounds layer, which is what the zoo round-trip tests
 * pin down.
 */
std::string formatLayerLine(const LayerShape &layer);

/**
 * Parse a whole file of layer lines.
 * @return the layers, or a LoadError carrying the file name and the
 *         1-based line number of the offending line (OpenFailed when
 *         the file cannot be read, Malformed on bad content or zero
 *         layers).
 */
Expected<std::vector<LayerShape>>
parseLayerFile(const std::string &path);

} // namespace vaesa

#endif // VAESA_WORKLOAD_PARSE_HH
