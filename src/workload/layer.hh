/**
 * @file
 * DNN layer shapes in the paper's 8-column format (Table IV):
 * weight width, weight height, output width, output height, input
 * channels, output channels, stride width, stride height. Batch size
 * is 1 throughout, matching the evaluation setup.
 */

#ifndef VAESA_WORKLOAD_LAYER_HH
#define VAESA_WORKLOAD_LAYER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vaesa {

/**
 * One convolutional or fully-connected layer. A fully-connected layer
 * is the special case r = s = p = q = 1 with c/k the feature widths.
 * Grouped convolutions (ResNeXt) are represented with c equal to the
 * per-group input-channel count, which keeps the MAC count exact.
 */
struct LayerShape
{
    /** Human-readable identifier, e.g. "resnet50.conv1". */
    std::string name;

    /** Weight (filter) width R. */
    std::int64_t r = 1;

    /** Weight (filter) height S. */
    std::int64_t s = 1;

    /** Output width P. */
    std::int64_t p = 1;

    /** Output height Q. */
    std::int64_t q = 1;

    /** Input channels C (per group for grouped convolution). */
    std::int64_t c = 1;

    /** Output channels K. */
    std::int64_t k = 1;

    /** Horizontal stride. */
    std::int64_t strideW = 1;

    /** Vertical stride. */
    std::int64_t strideH = 1;

    // Word counts are products of up to six dimensions. On hostile
    // CSV shapes (the same bug class as the Mapping word-count fix:
    // fuzzed or adversarial layer files with dims near INT64_MAX) the
    // int64 products overflow — signed overflow is UB and a wrapped
    // negative count can make an impossibly large layer look cheap —
    // so every factor is widened to double BEFORE multiplying. Each
    // legitimate factor is far below 2^53, so results are exact
    // whenever they matter and merely lose precision (never wrap) on
    // shapes that oversizeReason() rejects anyway.

    /** Total multiply-accumulates: R*S*P*Q*C*K (batch 1). */
    double macs() const;

    /** Number of weight words: R*S*C*K. */
    double weightWords() const;

    /** Number of output words: P*Q*K. */
    double outputWords() const;

    /** Input activation width: (P-1)*strideW + R. */
    double inputW() const;

    /** Input activation height: (Q-1)*strideH + S. */
    double inputH() const;

    /** Number of input words: inputW*inputH*C. */
    double inputWords() const;

    /** True when every dimension is at least 1. */
    bool isSane() const;

    /**
     * Structured rejection for shapes whose derived totals (MACs or
     * any word count) exceed 2^53, the largest range over which the
     * double-domain counts above stay exact integers. Loaders (layer
     * files, dataset CSVs) refuse such shapes with this reason
     * instead of silently feeding saturated math downstream.
     * @return nullopt when the shape is within bounds.
     */
    std::optional<std::string> oversizeReason() const;

    /**
     * Raw feature vector for the predictors: log2 of the eight
     * dimensions in Table IV column order.
     */
    std::vector<double> toFeatures() const;

    /** One-line description in Table IV column order. */
    std::string describe() const;

    /** Shape equality ignoring the name. */
    bool sameShape(const LayerShape &other) const;
};

/** Number of per-layer features fed to the performance predictors. */
constexpr int numLayerFeatures = 8;

} // namespace vaesa

#endif // VAESA_WORKLOAD_LAYER_HH
