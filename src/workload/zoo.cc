#include "workload/zoo.hh"

#include "util/contracts.hh"

namespace vaesa {

namespace {

/** Shorthand constructor in Table IV column order. */
LayerShape
layer(std::string name, std::int64_t r, std::int64_t s, std::int64_t p,
      std::int64_t q, std::int64_t c, std::int64_t k,
      std::int64_t stride_w = 1, std::int64_t stride_h = 1)
{
    LayerShape shape;
    shape.name = std::move(name);
    shape.r = r;
    shape.s = s;
    shape.p = p;
    shape.q = q;
    shape.c = c;
    shape.k = k;
    shape.strideW = stride_w;
    shape.strideH = stride_h;
    return shape;
}

/** A [rows x in] * [in x out] GEMM in FC form (p = rows). */
LayerShape
gemm(std::string name, std::int64_t rows, std::int64_t in,
     std::int64_t out)
{
    return layer(std::move(name), 1, 1, rows, 1, in, out);
}

} // namespace

std::vector<LayerShape>
transformerBlockLayers(const std::string &prefix,
                       const TransformerConfig &config)
{
    const std::int64_t S = config.seqLen;
    const std::int64_t H = config.hidden;
    const std::int64_t A = config.heads;
    const std::int64_t F = config.ffn;
    VAESA_EXPECT(S >= 1 && H >= 1 && A >= 1 && F >= 1,
                 "transformerBlockLayers: non-positive dimension");
    VAESA_EXPECT(H % A == 0,
                 "transformerBlockLayers: heads must divide hidden");
    const std::int64_t head_dim = H / A;

    std::vector<LayerShape> block;
    block.push_back(gemm(prefix + ".qkv", S, H, 3 * H));
    // The score (Q K^T) and context (A V) GEMMs run once per head.
    for (std::int64_t h = 0; h < A; ++h) {
        block.push_back(gemm(prefix + ".attn.score", S, head_dim, S));
        block.push_back(gemm(prefix + ".attn.ctx", S, S, head_dim));
    }
    block.push_back(gemm(prefix + ".attn.out", S, H, H));
    block.push_back(gemm(prefix + ".mlp.up", S, H, F));
    block.push_back(gemm(prefix + ".mlp.down", S, F, H));
    return block;
}

Workload
transformerWorkload(std::string name, const TransformerConfig &config)
{
    VAESA_EXPECT(config.blocks >= 1,
                 "transformerWorkload: need at least one block");
    const std::vector<LayerShape> block =
        transformerBlockLayers(name, config);
    std::vector<LayerShape> sequence;
    sequence.reserve(block.size() *
                     static_cast<std::size_t>(config.blocks));
    for (std::int64_t b = 0; b < config.blocks; ++b)
        sequence.insert(sequence.end(), block.begin(), block.end());

    Workload w = countedWorkload(std::move(name), sequence);
    // Cross-check the generator against the closed form
    // L * (4*S*H^2 + 2*S*H*F + 2*S^2*H).
    const double S = static_cast<double>(config.seqLen);
    const double H = static_cast<double>(config.hidden);
    const double F = static_cast<double>(config.ffn);
    const double L = static_cast<double>(config.blocks);
    const double expected =
        L * (4.0 * S * H * H + 2.0 * S * H * F + 2.0 * S * S * H);
    VAESA_ENSURE(w.totalMacs() == expected,
                 "transformerWorkload: MAC total disagrees with the "
                 "closed form");
    return w;
}

Workload
bertBaseWorkload()
{
    return transformerWorkload("bert_base", {512, 768, 12, 3072, 12});
}

Workload
bertLargeWorkload()
{
    return transformerWorkload("bert_large",
                               {512, 1024, 16, 4096, 24});
}

Workload
gpt2Workload()
{
    return transformerWorkload("gpt2", {1024, 1024, 16, 4096, 24});
}

Workload
mobileNetV2Workload()
{
    // Inverted-residual stages as (expansion t, out channels c,
    // repeats n, first-block stride s) from the MobileNetV2 paper.
    const struct
    {
        std::int64_t t, c, n, s;
    } stages[] = {
        {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1},
    };

    std::vector<LayerShape> seq;
    seq.push_back(
        layer("mobilenet_v2.conv1", 3, 3, 112, 112, 3, 32, 2, 2));
    std::int64_t in_ch = 32;
    std::int64_t res = 112;
    int stage_no = 0;
    for (const auto &stage : stages) {
        ++stage_no;
        for (std::int64_t b = 0; b < stage.n; ++b) {
            const std::int64_t stride = b == 0 ? stage.s : 1;
            const std::int64_t expanded = in_ch * stage.t;
            const std::int64_t out_res = res / stride;
            const std::string prefix = "mobilenet_v2.s" +
                                       std::to_string(stage_no) + "b" +
                                       std::to_string(b + 1);
            // t=1 blocks have no expansion conv.
            if (stage.t != 1)
                seq.push_back(layer(prefix + ".expand", 1, 1, res, res,
                                    in_ch, expanded));
            // Depthwise 3x3 in the per-group-C convention: c is the
            // per-group input-channel count (1), k the channel count.
            seq.push_back(layer(prefix + ".dw", 3, 3, out_res, out_res,
                                1, expanded, stride, stride));
            seq.push_back(layer(prefix + ".project", 1, 1, out_res,
                                out_res, expanded, stage.c));
            in_ch = stage.c;
            res = out_res;
        }
    }
    seq.push_back(
        layer("mobilenet_v2.conv_last", 1, 1, 7, 7, 320, 1280));
    seq.push_back(layer("mobilenet_v2.fc", 1, 1, 1, 1, 1280, 1000));

    Workload w = countedWorkload("mobilenet_v2", seq);
    // 17 inverted-residual blocks (one without expansion) plus stem,
    // head conv and classifier: 53 layer instances.
    VAESA_ENSURE(w.totalLayers() == 53,
                 "mobileNetV2Workload: expected 53 layer instances");
    return w;
}

Workload
dlrmWorkload()
{
    const std::int64_t batch = 2048;
    const std::int64_t bottom[] = {13, 512, 256, 128};
    const std::int64_t top[] = {479, 1024, 1024, 512, 256, 1};

    std::vector<LayerShape> seq;
    for (std::size_t i = 0; i + 1 < std::size(bottom); ++i)
        seq.push_back(gemm("dlrm.bot" + std::to_string(i + 1), batch,
                           bottom[i], bottom[i + 1]));
    for (std::size_t i = 0; i + 1 < std::size(top); ++i)
        seq.push_back(gemm("dlrm.top" + std::to_string(i + 1), batch,
                           top[i], top[i + 1]));
    return countedWorkload("dlrm", seq);
}

std::vector<Workload>
zooWorkloads()
{
    return {
        bertBaseWorkload(),     bertLargeWorkload(), gpt2Workload(),
        mobileNetV2Workload(),  dlrmWorkload(),
    };
}

} // namespace vaesa
