/**
 * @file
 * Programmatic workload zoo beyond the hand-tabulated Table III
 * networks: transformer encoder/decoder stacks (BERT/GPT-class),
 * MobileNetV2's depthwise inverted residuals, and DLRM-style long
 * skinny MLP GEMMs. All generators emit the full layer sequence of
 * the network and reduce it through countedWorkload(), so every
 * Workload carries occurrence counts and totalMacs() equals the
 * whole-network MAC total.
 *
 * Encoding conventions (8-column R S P Q C K strideW strideH):
 *  - A GEMM of shape [M x C] * [C x K] is an FC-style layer with
 *    r=s=q=1, p=M (the batch/sequence dimension), c=C, k=K.
 *  - Depthwise/grouped convolutions store c as the PER-GROUP input
 *    channel count (depthwise: c=1), the same convention as the
 *    ResNeXt grouped 3x3s, which keeps MAC and weight-word totals
 *    exact in the 8-column format.
 *  - Per-head attention GEMMs (QK^T and A*V) appear once per head and
 *    collapse into a single shape with an occurrence count of
 *    heads * blocks.
 */

#ifndef VAESA_WORKLOAD_ZOO_HH
#define VAESA_WORKLOAD_ZOO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/networks.hh"

namespace vaesa {

/** Dimensions of a pre-norm transformer encoder/decoder stack. */
struct TransformerConfig
{
    /** Sequence length S (tokens per forward pass). */
    std::int64_t seqLen = 0;
    /** Model width H. */
    std::int64_t hidden = 0;
    /** Attention heads A; must divide hidden. */
    std::int64_t heads = 0;
    /** MLP inner width F (usually 4H). */
    std::int64_t ffn = 0;
    /** Number of identical blocks L. */
    std::int64_t blocks = 0;
};

/**
 * One transformer block as its full GEMM sequence: fused QKV
 * projection, per-head QK^T score and A*V context GEMMs (heads
 * entries each), attention output projection, and the two MLP GEMMs.
 * Per-block MACs = 4*S*H^2 + 2*S*H*F + 2*S^2*H.
 */
std::vector<LayerShape>
transformerBlockLayers(const std::string &prefix,
                       const TransformerConfig &config);

/** Full stack: blockLayers repeated config.blocks times, counted. */
Workload transformerWorkload(std::string name,
                             const TransformerConfig &config);

/** BERT-base: S=512, H=768, A=12, F=3072, L=12 (~48.3 GMACs). */
Workload bertBaseWorkload();

/** BERT-large: S=512, H=1024, A=16, F=4096, L=24 (~167.5 GMACs). */
Workload bertLargeWorkload();

/** GPT-2 medium-class: S=1024, H=1024, A=16, F=4096, L=24. */
Workload gpt2Workload();

/**
 * MobileNetV2 at 224x224: stem conv, the seven inverted-residual
 * stages of the paper's (t, c, n, s) table, the 1x1 head conv and the
 * classifier FC. Depthwise 3x3s use the per-group-C convention
 * (c=1, k=channels). ~300.8 MMACs over 53 conv/FC instances.
 */
Workload mobileNetV2Workload();

/**
 * DLRM-style recommendation MLPs at batch 2048: bottom tower
 * 13-512-256-128 and top tower 479-1024-1024-512-256-1 as long
 * skinny GEMMs (p=2048 rows, tiny c/k). ~4.84 GMACs.
 */
Workload dlrmWorkload();

/** All five zoo workloads, lookup-able through workloadByName(). */
std::vector<Workload> zooWorkloads();

} // namespace vaesa

#endif // VAESA_WORKLOAD_ZOO_HH
