#include "workload/layer.hh"

#include <sstream>

#include "util/numeric.hh"

namespace vaesa {

namespace {

/** Widen-before-multiply (see the header's overflow note). */
inline double
d(std::int64_t v)
{
    return static_cast<double>(v);
}

/** Largest double range over which integer counts stay exact. */
constexpr double maxExactWords = 9007199254740992.0; // 2^53

} // namespace

double
LayerShape::macs() const
{
    return d(r) * d(s) * d(p) * d(q) * d(c) * d(k);
}

double
LayerShape::weightWords() const
{
    return d(r) * d(s) * d(c) * d(k);
}

double
LayerShape::outputWords() const
{
    return d(p) * d(q) * d(k);
}

double
LayerShape::inputW() const
{
    return d(p - 1) * d(strideW) + d(r);
}

double
LayerShape::inputH() const
{
    return d(q - 1) * d(strideH) + d(s);
}

double
LayerShape::inputWords() const
{
    return inputW() * inputH() * d(c);
}

std::optional<std::string>
LayerShape::oversizeReason() const
{
    const struct
    {
        const char *what;
        double value;
    } totals[] = {
        {"MAC count", macs()},
        {"weight word count", weightWords()},
        {"input word count", inputWords()},
        {"output word count", outputWords()},
    };
    for (const auto &t : totals) {
        if (t.value > maxExactWords) {
            std::ostringstream oss;
            oss << t.what << " " << t.value
                << " exceeds the 2^53 exact-integer bound";
            return oss.str();
        }
    }
    return std::nullopt;
}

bool
LayerShape::isSane() const
{
    return r >= 1 && s >= 1 && p >= 1 && q >= 1 && c >= 1 && k >= 1 &&
           strideW >= 1 && strideH >= 1;
}

std::vector<double>
LayerShape::toFeatures() const
{
    return {
        log2d(static_cast<double>(r)),
        log2d(static_cast<double>(s)),
        log2d(static_cast<double>(p)),
        log2d(static_cast<double>(q)),
        log2d(static_cast<double>(c)),
        log2d(static_cast<double>(k)),
        log2d(static_cast<double>(strideW)),
        log2d(static_cast<double>(strideH)),
    };
}

std::string
LayerShape::describe() const
{
    std::ostringstream oss;
    oss << name << " [" << r << "," << s << "," << p << "," << q << ","
        << c << "," << k << "," << strideW << "," << strideH << "]";
    return oss.str();
}

bool
LayerShape::sameShape(const LayerShape &other) const
{
    return r == other.r && s == other.s && p == other.p &&
           q == other.q && c == other.c && k == other.k &&
           strideW == other.strideW && strideH == other.strideH;
}

} // namespace vaesa
