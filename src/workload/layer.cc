#include "workload/layer.hh"

#include <sstream>

#include "util/numeric.hh"

namespace vaesa {

double
LayerShape::macs() const
{
    return static_cast<double>(r) * static_cast<double>(s) *
           static_cast<double>(p) * static_cast<double>(q) *
           static_cast<double>(c) * static_cast<double>(k);
}

std::int64_t
LayerShape::weightWords() const
{
    return r * s * c * k;
}

std::int64_t
LayerShape::outputWords() const
{
    return p * q * k;
}

std::int64_t
LayerShape::inputW() const
{
    return (p - 1) * strideW + r;
}

std::int64_t
LayerShape::inputH() const
{
    return (q - 1) * strideH + s;
}

std::int64_t
LayerShape::inputWords() const
{
    return inputW() * inputH() * c;
}

bool
LayerShape::isSane() const
{
    return r >= 1 && s >= 1 && p >= 1 && q >= 1 && c >= 1 && k >= 1 &&
           strideW >= 1 && strideH >= 1;
}

std::vector<double>
LayerShape::toFeatures() const
{
    return {
        log2d(static_cast<double>(r)),
        log2d(static_cast<double>(s)),
        log2d(static_cast<double>(p)),
        log2d(static_cast<double>(q)),
        log2d(static_cast<double>(c)),
        log2d(static_cast<double>(k)),
        log2d(static_cast<double>(strideW)),
        log2d(static_cast<double>(strideH)),
    };
}

std::string
LayerShape::describe() const
{
    std::ostringstream oss;
    oss << name << " [" << r << "," << s << "," << p << "," << q << ","
        << c << "," << k << "," << strideW << "," << strideH << "]";
    return oss.str();
}

bool
LayerShape::sameShape(const LayerShape &other) const
{
    return r == other.r && s == other.s && p == other.p &&
           q == other.q && c == other.c && k == other.k &&
           strideW == other.strideW && strideH == other.strideH;
}

} // namespace vaesa
