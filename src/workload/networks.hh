/**
 * @file
 * Built-in DNN workloads (Table III) and the 12 unseen test layers of
 * Table IV. Each network is reduced to its *unique* layer shapes, as
 * in the paper: AlexNet 8, ResNet-50 24, ResNeXt-50-32x4d 25,
 * DeepBench (OCR + face recognition) 9.
 */

#ifndef VAESA_WORKLOAD_NETWORKS_HH
#define VAESA_WORKLOAD_NETWORKS_HH

#include <optional>
#include <string>
#include <vector>

#include "workload/layer.hh"

namespace vaesa {

/** A named set of unique layers optimized as one workload. */
struct Workload
{
    /** Workload name, e.g. "resnet50". */
    std::string name;

    /** Unique layer shapes of the network. */
    std::vector<LayerShape> layers;
};

/** AlexNet's 8 unique layers (5 conv + 3 FC). */
std::vector<LayerShape> alexNetLayers();

/** ResNet-50's 24 unique layers (torchvision topology + FC). */
std::vector<LayerShape> resNet50Layers();

/** ResNeXt-50-32x4d's 25 unique layers (grouped 3x3 as per-group C). */
std::vector<LayerShape> resNext50Layers();

/** DeepBench OCR + face-recognition set, 9 unique layers. */
std::vector<LayerShape> deepBenchLayers();

/** The 12 unseen conv/FC layers of Table IV used in the GD study. */
std::vector<LayerShape> gdTestLayers();

/** The four training/BO workloads of Table III. */
std::vector<Workload> trainingWorkloads();

/** Look up one training workload by name; fatal() if unknown. */
Workload workloadByName(const std::string &name);

/**
 * Non-fatal lookup for callers that must survive hostile input (the
 * serve request path): nullopt on an unknown name instead of
 * terminating the process.
 */
std::optional<Workload> tryWorkloadByName(const std::string &name);

/** Remove duplicate shapes, keeping first occurrences (order stable). */
std::vector<LayerShape> uniqueLayers(const std::vector<LayerShape> &in);

} // namespace vaesa

#endif // VAESA_WORKLOAD_NETWORKS_HH
