/**
 * @file
 * Built-in DNN workloads (Table III) and the 12 unseen test layers of
 * Table IV. Each network is reduced to its *unique* layer shapes, as
 * in the paper: AlexNet 8, ResNet-50 24, ResNeXt-50-32x4d 25,
 * DeepBench (OCR + face recognition) 9.
 */

#ifndef VAESA_WORKLOAD_NETWORKS_HH
#define VAESA_WORKLOAD_NETWORKS_HH

#include <optional>
#include <string>
#include <vector>

#include "workload/layer.hh"

namespace vaesa {

/**
 * A named set of unique layers optimized as one workload.
 *
 * OCCURRENCE COUNTS: real networks repeat shapes (ResNet-50 runs its
 * stage-1 bottleneck 3 times; a BERT block's attention GEMMs run once
 * per head per block), and any whole-network or traffic-weighted
 * objective is wrong if that multiplicity is dropped. `counts[i]` is
 * how many times `layers[i]` occurs in the full network. An EMPTY
 * counts vector means every layer occurs once — the paper's
 * unique-layer mode, which the Table III/IV benches and the four
 * built-in training workloads keep for bit-identical reproduction.
 */
struct Workload
{
    /** Workload name, e.g. "resnet50". */
    std::string name;

    /** Unique layer shapes of the network. */
    std::vector<LayerShape> layers;

    /** Per-layer occurrence counts; empty = every layer once. */
    std::vector<std::int64_t> counts;

    /** Occurrences of layers[i] (1 when counts is empty). */
    std::int64_t countOf(std::size_t i) const;

    /** True when any layer occurs more than once. */
    bool hasCounts() const { return !counts.empty(); }

    /** Total layer instances: sum of counts. */
    std::int64_t totalLayers() const;

    /** Occurrence-weighted MAC total of the full network. */
    double totalMacs() const;
};

/**
 * Build a Workload from a network's FULL layer sequence: shapes are
 * deduplicated in first-occurrence order (like uniqueLayers) and the
 * dropped duplicates become occurrence counts instead of vanishing.
 */
Workload countedWorkload(std::string name,
                         const std::vector<LayerShape> &sequence);

/** AlexNet's 8 unique layers (5 conv + 3 FC). */
std::vector<LayerShape> alexNetLayers();

/** ResNet-50's 24 unique layers (torchvision topology + FC). */
std::vector<LayerShape> resNet50Layers();

/** ResNeXt-50-32x4d's 25 unique layers (grouped 3x3 as per-group C). */
std::vector<LayerShape> resNext50Layers();

/** DeepBench OCR + face-recognition set, 9 unique layers. */
std::vector<LayerShape> deepBenchLayers();

/** The 12 unseen conv/FC layers of Table IV used in the GD study. */
std::vector<LayerShape> gdTestLayers();

/** The four training/BO workloads of Table III. */
std::vector<Workload> trainingWorkloads();

/** Look up one training workload by name; fatal() if unknown. */
Workload workloadByName(const std::string &name);

/**
 * Non-fatal lookup for callers that must survive hostile input (the
 * serve request path): nullopt on an unknown name instead of
 * terminating the process.
 */
std::optional<Workload> tryWorkloadByName(const std::string &name);

/** Remove duplicate shapes, keeping first occurrences (order stable). */
std::vector<LayerShape> uniqueLayers(const std::vector<LayerShape> &in);

/**
 * uniqueLayers plus multiplicity: counts_out[i] (when non-null) is
 * how many input shapes collapsed into output layer i, so
 * occurrence-weighted sums over the result equal plain sums over the
 * full input sequence. uniqueLayers() itself silently dropped this —
 * the multiplicity-loss bug behind wrong whole-network EDP totals.
 */
std::vector<LayerShape>
uniqueLayersCounted(const std::vector<LayerShape> &in,
                    std::vector<std::int64_t> *counts_out);

} // namespace vaesa

#endif // VAESA_WORKLOAD_NETWORKS_HH
