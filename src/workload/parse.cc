#include "workload/parse.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace vaesa {

std::optional<LayerShape>
parseLayerLine(const std::string &line, const std::string &default_name)
{
    // Strip comments and whitespace-only lines.
    std::string body = line;
    const std::size_t hash = body.find('#');
    if (hash != std::string::npos)
        body.erase(hash);
    std::istringstream iss(body);

    std::vector<std::string> tokens;
    std::string token;
    while (iss >> token)
        tokens.push_back(token);
    if (tokens.empty())
        return std::nullopt;

    std::string name = default_name;
    std::size_t first = 0;
    // A leading non-numeric token is the layer name.
    if (!std::isdigit(static_cast<unsigned char>(tokens[0][0]))) {
        name = tokens[0];
        first = 1;
    }
    if (tokens.size() - first != 8)
        fatal("parseLayerLine: expected 8 dimensions (R S P Q C K "
              "strideW strideH), got ",
              tokens.size() - first, " in '", line, "'");

    std::int64_t dims[8];
    for (int i = 0; i < 8; ++i) {
        const std::string &t = tokens[first + i];
        char *end = nullptr;
        dims[i] = std::strtoll(t.c_str(), &end, 10);
        if (end == t.c_str() || *end)
            fatal("parseLayerLine: '", t, "' is not an integer in '",
                  line, "'");
    }

    LayerShape layer;
    layer.name = name;
    layer.r = dims[0];
    layer.s = dims[1];
    layer.p = dims[2];
    layer.q = dims[3];
    layer.c = dims[4];
    layer.k = dims[5];
    layer.strideW = dims[6];
    layer.strideH = dims[7];
    if (!layer.isSane())
        fatal("parseLayerLine: non-positive dimension in '", line,
              "'");
    return layer;
}

std::optional<std::vector<LayerShape>>
parseLayerFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::vector<LayerShape> layers;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto layer = parseLayerLine(
            line, "custom.layer" + std::to_string(layers.size() + 1));
        if (layer)
            layers.push_back(*layer);
    }
    if (layers.empty())
        fatal("parseLayerFile: no layers found in '", path, "'");
    return layers;
}

} // namespace vaesa
