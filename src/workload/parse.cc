#include "workload/parse.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/atomic_io.hh"

namespace vaesa {

namespace {

/** Report a malformed line without aborting the process. */
std::optional<LayerShape>
lineError(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return std::nullopt;
}

/**
 * True when a token is shaped like an integer dimension, INCLUDING a
 * leading sign. A bare isdigit() probe on the first character used to
 * classify "-5" or "+3" as the optional layer *name*, silently
 * shifting all eight dimensions one column right; signed tokens must
 * instead reach the dimension parser, where a negative value gets the
 * proper non-positive-dimension rejection.
 */
bool
looksNumeric(const std::string &token)
{
    std::size_t at = 0;
    if (token[0] == '-' || token[0] == '+')
        at = 1;
    return at < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[at]));
}

} // namespace

std::optional<LayerShape>
parseLayerLine(const std::string &line, const std::string &default_name,
               std::string *error)
{
    // Strip comments and whitespace-only lines.
    std::string body = line;
    const std::size_t hash = body.find('#');
    if (hash != std::string::npos)
        body.erase(hash);
    std::istringstream iss(body);

    std::vector<std::string> tokens;
    std::string token;
    while (iss >> token)
        tokens.push_back(token);
    if (tokens.empty())
        return std::nullopt;

    std::string name = default_name;
    std::size_t first = 0;
    // A leading non-numeric token is the layer name; signed numbers
    // ("-5", "+3") are dimensions, not names (see looksNumeric).
    if (!looksNumeric(tokens[0])) {
        name = tokens[0];
        first = 1;
    }
    if (tokens.size() - first != 8)
        return lineError(
            error, "expected 8 dimensions (R S P Q C K strideW "
                   "strideH), got " +
                       std::to_string(tokens.size() - first) + " in '" +
                       line + "'");

    std::int64_t dims[8];
    for (int i = 0; i < 8; ++i) {
        const std::string &t = tokens[first + i];
        char *end = nullptr;
        errno = 0;
        dims[i] = std::strtoll(t.c_str(), &end, 10);
        if (end == t.c_str() || *end)
            return lineError(error, "'" + t +
                                        "' is not an integer in '" +
                                        line + "'");
        // strtoll saturates to INT64_MIN/MAX on overflow; without
        // the errno check a 20-digit dimension silently became a
        // "valid" 9.2e18 layer.
        if (errno == ERANGE)
            return lineError(error,
                             "'" + t + "' overflows int64 in '" +
                                 line + "'");
    }

    LayerShape layer;
    layer.name = name;
    layer.r = dims[0];
    layer.s = dims[1];
    layer.p = dims[2];
    layer.q = dims[3];
    layer.c = dims[4];
    layer.k = dims[5];
    layer.strideW = dims[6];
    layer.strideH = dims[7];
    if (!layer.isSane())
        return lineError(error,
                         "non-positive dimension in '" + line + "'");
    if (const auto oversize = layer.oversizeReason())
        return lineError(error, *oversize + " in '" + line + "'");
    return layer;
}

std::string
formatLayerLine(const LayerShape &layer)
{
    std::ostringstream oss;
    oss << layer.name << " " << layer.r << " " << layer.s << " "
        << layer.p << " " << layer.q << " " << layer.c << " "
        << layer.k << " " << layer.strideW << " " << layer.strideH;
    return oss.str();
}

Expected<std::vector<LayerShape>>
parseLayerFile(const std::string &path)
{
    Expected<std::string> bytes = readFileBytes(path);
    if (!bytes)
        return bytes.error();

    std::vector<LayerShape> layers;
    std::istringstream in(bytes.value());
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string error;
        const auto layer = parseLayerLine(
            line, "custom.layer" + std::to_string(layers.size() + 1),
            &error);
        if (layer) {
            layers.push_back(*layer);
        } else if (!error.empty()) {
            return makeLoadError(LoadError::Kind::Malformed, path,
                                 line_no, error);
        }
    }
    if (layers.empty())
        return makeLoadError(LoadError::Kind::Malformed, path, 0,
                             "no layers found");
    return layers;
}

} // namespace vaesa
