/**
 * @file
 * Load/latency gate of the vaesa_serve daemon: an in-process server
 * on an ephemeral loopback port, hammered by closed-loop clients
 * with a mixed query stream (cache-warming ScoreConfig, pings,
 * deadline-carrying scores, small bounded searches), plus one
 * overload burst proving admission control answers with structured
 * REJECTED_OVERLOAD instead of hanging or crashing.
 *
 * A second, batched-vs-unbatched A/B phase gates the ScoreBatcher:
 * an identical working-set ScoreConfig stream (shared config pool,
 * identical seeds in both modes) runs against a window-0 server and
 * a coalescing server, interleaved for VAESA_SERVE_AB_TRIALS rounds
 * so CPU frequency drift between the two measurements cancels
 * (best-of per mode). Both modes must answer every request
 * bit-identically, produce zero transport errors, and keep
 * single-client p99 within 10% (+50 us slack) of unbatched.
 *
 * The QPS ratio gate is hardware-aware. Coalescing converts N
 * per-request dispatches into one SoA dispatch; the amortized work
 * (evaluator setup, per-layer scratch, shard locking, and the
 * vectorized cost kernels underneath) only turns into wall-clock
 * QPS when the batch can actually fan out — on the >= 8-thread
 * class where BENCH_par_eval's 9.3x SoA number was established, the
 * full VAESA_SERVE_AB_RATIO (1.5x) gate applies. On smaller hosts
 * the kernel scheduler serializes the handlers either way (measured
 * here: concurrent duplicate misses never overlap, redundancy
 * factor k = 1.00 on one core), so the bench instead enforces that
 * batching never COSTS throughput (ratio >= VAESA_SERVE_AB_MIN_RATIO)
 * while still enforcing every functional gate. The applied bound is
 * recorded in the JSON as ab_ratio_bound / ab_gate.
 *
 * Gates sustained QPS and exact p99 latency, prints the table, and
 * writes bench_out/serve_load.{csv,json} and the checked-in
 * BENCH_serve_load.json. Exits nonzero when a gate fails.
 *
 * Env knobs:
 *   VAESA_SERVE_QUERIES          mixed-phase queries (default 100000)
 *   VAESA_SERVE_CLIENTS          mixed-phase clients (default 4)
 *   VAESA_SERVE_QPS              sustained-QPS gate (default 2000)
 *   VAESA_SERVE_P99_MS           p99 latency gate in ms (default 50)
 *   VAESA_SERVE_BATCH_WINDOW_US  mixed-phase server window (default 50)
 *   VAESA_SERVE_AB               run the A/B phase (default 1)
 *   VAESA_SERVE_AB_CLIENTS       A/B high-concurrency clients (16)
 *   VAESA_SERVE_AB_QUERIES       A/B queries per trial (24000)
 *   VAESA_SERVE_AB_LOW_QUERIES   A/B single-client queries (2000)
 *   VAESA_SERVE_AB_WINDOW_US     A/B batched-mode window (200)
 *   VAESA_SERVE_AB_POOL          A/B working-set size (1024)
 *   VAESA_SERVE_AB_TRIALS        interleaved A/B rounds (default 2)
 *   VAESA_SERVE_AB_RATIO         full-gate QPS ratio (default 1.5,
 *                                applied when >= 8 hw threads)
 *   VAESA_SERVE_AB_MIN_RATIO     small-host no-regression bound
 *                                (default 0.9)
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/env.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace {

using namespace vaesa;
using serve::MsgType;
using serve::Request;
using serve::Response;
using serve::Status;

/** One synchronous request/response round trip. */
Expected<Response>
roundTrip(const serve::Socket &sock, const Request &request)
{
    if (auto err = serve::sendFrame(
            sock, serve::frameMessage(
                      serve::serializeRequest(request))))
        return *err;
    Expected<std::string> frame = serve::recvFrame(sock, 30000);
    if (!frame)
        return frame.error();
    Expected<std::string> payload =
        serve::unwrapFrame(frame.value());
    if (!payload)
        return payload.error();
    return serve::parseResponse(payload.value());
}

/** Per-client tallies. */
struct ClientStats
{
    std::vector<double> latencyMs;
    std::uint64_t ok = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
};

double
percentile(std::vector<double> &values, double p)
{
    if (values.empty())
        return 0.0;
    const std::size_t k = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1));
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(k),
                     values.end());
    return values[k];
}

/** One A/B mode's outcome over an identical ScoreConfig stream. */
struct AbResult
{
    double qps = 0.0;
    double p99Ms = 0.0;
    std::uint64_t errors = 0;
    /** Per-request replies in stream order, for cross-mode
     *  bit-identity (index = client * perClient + i). */
    std::vector<double> edp;
    std::vector<double> latencyCycles;
};

/**
 * Run a sustained pure-ScoreConfig stream against a fresh server
 * configured with @p windowUs. All clients draw from one shared
 * pool of @p poolSize distinct configs (pool and per-client pick
 * order both derive from @p seedBase, so two modes given the same
 * seed score the exact same request stream): first touches miss and
 * pay the full mapping search, steady state revisits the working
 * set — the regime a DSE service actually sustains (search traffic
 * re-scores candidates around promising regions; BENCH_par_eval's
 * cached scenario), and the one where per-request dispatch overhead,
 * which coalescing amortizes, dominates. The mapping search itself
 * is per-(config, layer) and irreducible by batching, so a stream
 * of never-repeating configs measures the search, not the dispatch.
 */
AbResult
runScoreStream(std::uint32_t windowUs, std::size_t clients,
               std::size_t totalQueries, std::size_t poolSize,
               std::uint64_t seedBase)
{
    AbResult result;
    serve::ServeOptions options;
    options.tcpPort = 0;
    options.serviceThreads = clients + 2;
    options.maxConnections = clients + 2;
    options.maxInflightSearch = 2;
    options.batchWindowUs = windowUs;
    // A full client wavefront closes the window early, so a steady
    // closed loop rarely waits the whole window out.
    options.maxBatch = std::max<std::size_t>(clients, 1);
    serve::Server server(options);
    if (auto err = server.start()) {
        std::fprintf(stderr, "A/B server start failed: %s\n",
                     err->describe().c_str());
        result.errors = totalQueries;
        return result;
    }
    ThreadPool serverThread(1);
    auto serveDone =
        serverThread.submit([&server]() { (void)server.serve(); });
    const std::uint16_t port = server.port();

    const std::size_t perClient = totalQueries / clients;
    result.edp.assign(perClient * clients, 0.0);
    result.latencyCycles.assign(perClient * clients, 0.0);
    std::vector<std::vector<double>> latency(clients);
    std::vector<std::uint64_t> errors(clients, 0);

    // The shared working set, identical across both A/B modes.
    std::vector<AcceleratorConfig> pool;
    {
        Rng poolRng(seedBase);
        pool.reserve(std::max<std::size_t>(poolSize, 1));
        for (std::size_t i = 0;
             i < std::max<std::size_t>(poolSize, 1); ++i)
            pool.push_back(designSpace().randomConfig(poolRng));
    }

    ThreadPool clientPool(clients);
    const std::uint64_t t0 = metrics::monotonicNowNs();
    clientPool.parallelFor(clients, [&](std::size_t c) {
        Rng rng(seedBase + 1000 + c);
        Expected<serve::Socket> conn = serve::connectTcp(port);
        if (!conn) {
            errors[c] = perClient;
            return;
        }
        latency[c].reserve(perClient);
        for (std::size_t i = 0; i < perClient; ++i) {
            Request request;
            request.id = c * 1000000 + i;
            request.type = MsgType::ScoreConfig;
            request.workload = "resnet50";
            request.config = pool[rng.index(pool.size())];
            const std::uint64_t r0 = metrics::monotonicNowNs();
            Expected<Response> resp =
                roundTrip(conn.value(), request);
            const std::uint64_t r1 = metrics::monotonicNowNs();
            if (!resp || resp.value().status != Status::Ok) {
                ++errors[c];
                continue;
            }
            latency[c].push_back(
                static_cast<double>(r1 - r0) / 1e6);
            result.edp[c * perClient + i] = resp.value().edp;
            result.latencyCycles[c * perClient + i] =
                resp.value().latencyCycles;
        }
    });
    const double wallSec =
        static_cast<double>(metrics::monotonicNowNs() - t0) / 1e9;

    server.requestShutdown();
    serveDone.wait();
    serverThread.shutdown();
    clientPool.shutdown();

    std::vector<double> all;
    for (std::size_t c = 0; c < clients; ++c) {
        all.insert(all.end(), latency[c].begin(),
                   latency[c].end());
        result.errors += errors[c];
    }
    result.qps =
        static_cast<double>(all.size()) / std::max(wallSec, 1e-9);
    result.p99Ms = percentile(all, 0.99);
    return result;
}

} // namespace

int
main()
{
    const std::size_t totalQueries = static_cast<std::size_t>(
        envInt("VAESA_SERVE_QUERIES", 100000));
    const std::size_t clients = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(envInt("VAESA_SERVE_CLIENTS", 4)));
    const double qpsTarget = envDouble("VAESA_SERVE_QPS", 2000.0);
    const double p99TargetMs = envDouble("VAESA_SERVE_P99_MS", 50.0);
    const std::uint32_t mixedWindowUs = static_cast<std::uint32_t>(
        envInt("VAESA_SERVE_BATCH_WINDOW_US", 50));
    const bool runAb = envInt("VAESA_SERVE_AB", 1) != 0;
    const std::size_t abClients = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               envInt("VAESA_SERVE_AB_CLIENTS", 16)));
    const std::size_t abQueries = static_cast<std::size_t>(
        envInt("VAESA_SERVE_AB_QUERIES", 24000));
    const std::size_t abLowQueries = static_cast<std::size_t>(
        envInt("VAESA_SERVE_AB_LOW_QUERIES", 2000));
    const std::uint32_t abWindowUs = static_cast<std::uint32_t>(
        envInt("VAESA_SERVE_AB_WINDOW_US", 200));
    const std::size_t abPool = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               envInt("VAESA_SERVE_AB_POOL", 1024)));
    const std::size_t abTrials = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               envInt("VAESA_SERVE_AB_TRIALS", 2)));
    const double abRatioTarget =
        envDouble("VAESA_SERVE_AB_RATIO", 1.5);
    const double abMinRatio =
        envDouble("VAESA_SERVE_AB_MIN_RATIO", 0.9);
    // The SoA fan-out needs hardware lanes to turn amortized work
    // into wall-clock QPS (file comment); below the 8-thread class
    // the gate degrades to the no-regression bound.
    const std::size_t abHwThreads = ThreadPool::defaultThreadCount();
    const bool abFullGate = abHwThreads >= 8;
    const double abRatioBound =
        abFullGate ? abRatioTarget : abMinRatio;

    serve::ServeOptions options;
    options.tcpPort = 0; // ephemeral
    options.serviceThreads = clients + 2;
    options.maxConnections = clients + 2;
    options.maxInflightSearch = 2;
    options.batchWindowUs = mixedWindowUs;
    serve::Server server(options);
    if (auto err = server.start()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     err->describe().c_str());
        return 1;
    }

    ThreadPool serverThread(1);
    auto serveDone =
        serverThread.submit([&server]() { (void)server.serve(); });

    // ----- Mixed-load phase ------------------------------------------
    // Closed-loop clients, each on its own connection. The config
    // stream draws from a modest distinct set so the shared cache
    // warms exactly the way a production search service's does.
    ThreadPool clientPool(clients);
    std::vector<ClientStats> stats(clients);
    const std::size_t perClient = totalQueries / clients;
    const std::uint16_t port = server.port();

    const std::uint64_t benchT0 = metrics::monotonicNowNs();
    clientPool.parallelFor(clients, [&](std::size_t c) {
        Rng rng(0x5E24E5ull + c);
        std::vector<AcceleratorConfig> configs;
        for (int i = 0; i < 64; ++i)
            configs.push_back(designSpace().randomConfig(rng));
        Expected<serve::Socket> conn = serve::connectTcp(port);
        if (!conn) {
            stats[c].errors += perClient;
            return;
        }
        ClientStats &my = stats[c];
        my.latencyMs.reserve(perClient);
        for (std::size_t i = 0; i < perClient; ++i) {
            Request request;
            request.id = c * 1000000 + i;
            const std::uint64_t kind = rng.index(100);
            if (kind < 90) {
                request.type = MsgType::ScoreConfig;
                request.workload = "alexnet";
                request.config = configs[rng.index(configs.size())];
                if (kind < 4)
                    request.deadlineMs = 1; // deadline mix
            } else if (kind < 95) {
                request.type = MsgType::Ping;
            } else if (kind < 99) {
                request.type = MsgType::Stats;
            } else {
                request.type = MsgType::SearchK;
                request.workload = "alexnet";
                request.samples = 24;
                request.method = serve::SearchMethod::Random;
                request.seed = rng.next();
                request.deadlineMs = 100;
            }
            const std::uint64_t t0 = metrics::monotonicNowNs();
            Expected<Response> resp = roundTrip(conn.value(),
                                                request);
            const std::uint64_t t1 = metrics::monotonicNowNs();
            if (!resp) {
                ++my.errors;
                continue;
            }
            my.latencyMs.push_back(
                static_cast<double>(t1 - t0) / 1e6);
            switch (resp.value().status) {
            case Status::Ok:
                ++my.ok;
                break;
            case Status::DeadlineExceeded:
                ++my.deadlineExceeded;
                break;
            case Status::RejectedOverload:
                ++my.rejected;
                break;
            default:
                ++my.errors;
                break;
            }
        }
    });
    const double wallSec =
        static_cast<double>(metrics::monotonicNowNs() - benchT0) /
        1e9;

    // ----- Overload burst --------------------------------------------
    // Saturate every connection slot with held-open connections, then
    // knock: each extra connection must get a structured rejection.
    std::uint64_t burstRejections = 0;
    {
        std::vector<serve::Socket> holders;
        for (std::size_t i = 0; i < options.maxConnections + 4;
             ++i) {
            Expected<serve::Socket> conn = serve::connectTcp(port);
            if (!conn)
                continue;
            Expected<std::string> frame =
                serve::recvFrame(conn.value(), 200);
            if (frame) {
                Expected<std::string> payload =
                    serve::unwrapFrame(frame.value());
                if (payload) {
                    Expected<Response> resp =
                        serve::parseResponse(payload.value());
                    if (resp && resp.value().status ==
                                    Status::RejectedOverload) {
                        ++burstRejections;
                        continue;
                    }
                }
            }
            holders.push_back(std::move(conn.value()));
        }
    }

    server.requestShutdown();
    serveDone.wait();
    serverThread.shutdown();
    clientPool.shutdown();

    // ----- Batched-vs-unbatched A/B ----------------------------------
    // High concurrency: the coalesced SoA dispatch must beat N
    // per-request dispatches on sustained QPS. Low concurrency: the
    // idle fast path must keep the unbatched latency profile. Both
    // modes score the identical config stream (same seeds), so the
    // replies must also match bit-for-bit.
    AbResult abUnbatched, abBatched, lowUnbatched, lowBatched;
    bool abBitIdentical = true;
    double abRatio = 0.0;
    std::uint64_t abErrors = 0;
    if (runAb) {
        // Interleave the two modes (U,B,U,B,...) and take each
        // mode's best trial: on a frequency-ramping host a serial
        // U-then-B order hands whichever mode runs warmest a free
        // win; interleaving plus best-of gives both modes a warm
        // shot at the same silicon. Every trial must stay
        // bit-identical to the first — identical seeds mean
        // identical replies, mode and trial regardless.
        for (std::size_t t = 0; t < abTrials; ++t) {
            AbResult u = runScoreStream(0, abClients, abQueries,
                                        abPool, 0xAB0ull);
            AbResult b = runScoreStream(abWindowUs, abClients,
                                        abQueries, abPool, 0xAB0ull);
            abErrors += u.errors + b.errors;
            abBitIdentical =
                abBitIdentical && b.edp == u.edp &&
                b.latencyCycles == u.latencyCycles;
            if (t == 0 || u.qps > abUnbatched.qps)
                abUnbatched = std::move(u);
            if (t == 0 || b.qps > abBatched.qps)
                abBatched = std::move(b);
        }
        lowUnbatched =
            runScoreStream(0, 1, abLowQueries, abPool, 0xAB1ull);
        lowBatched = runScoreStream(abWindowUs, 1, abLowQueries,
                                    abPool, 0xAB1ull);
        abRatio = abUnbatched.qps > 0.0
                      ? abBatched.qps / abUnbatched.qps
                      : 0.0;
        abBitIdentical =
            abBitIdentical && lowBatched.edp == lowUnbatched.edp &&
            lowBatched.latencyCycles == lowUnbatched.latencyCycles;
        abErrors += lowUnbatched.errors + lowBatched.errors;
    }
    // 10% relative with 50 us absolute slack: at sub-ms p99 a few
    // microseconds of scheduler noise should not flip the gate.
    const double lowP99Bound =
        std::max(lowUnbatched.p99Ms * 1.10,
                 lowUnbatched.p99Ms + 0.05);
    const bool abOk =
        !runAb || (abRatio >= abRatioBound && abBitIdentical &&
                   abErrors == 0 && lowBatched.p99Ms <= lowP99Bound);

    // ----- Tallies + gates -------------------------------------------
    std::vector<double> all;
    std::uint64_t ok = 0, deadline = 0, rejected = 0, errors = 0;
    for (const ClientStats &s : stats) {
        all.insert(all.end(), s.latencyMs.begin(),
                   s.latencyMs.end());
        ok += s.ok;
        deadline += s.deadlineExceeded;
        rejected += s.rejected;
        errors += s.errors;
    }
    const std::uint64_t completed = ok + deadline + rejected;
    const double qps = static_cast<double>(completed) / wallSec;
    const double p50 = percentile(all, 0.50);
    const double p99 = percentile(all, 0.99);

    const bool meetsTarget = qps >= qpsTarget &&
                             p99 <= p99TargetMs && errors == 0 &&
                             burstRejections >= 1 && abOk;

    bench::rule();
    std::printf("serve_load: %zu queries, %zu clients, %.1f s "
                "(window %u us)\n",
                totalQueries, clients, wallSec,
                static_cast<unsigned>(mixedWindowUs));
    std::printf("  qps %.0f (target %.0f)  p50 %.3f ms  p99 %.3f ms "
                "(target %.1f)\n",
                qps, qpsTarget, p50, p99, p99TargetMs);
    std::printf("  ok %llu  deadline_exceeded %llu  rejected %llu  "
                "errors %llu  burst_rejections %llu\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(deadline),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(burstRejections));
    if (runAb) {
        std::printf(
            "  A/B @%zu clients: unbatched %.0f qps, batched %.0f "
            "qps, ratio %.2fx (bound %.2fx, %s gate @%zu hw "
            "threads, best of %zu)\n",
            abClients, abUnbatched.qps, abBatched.qps, abRatio,
            abRatioBound,
            abFullGate ? "full" : "no-regression", abHwThreads,
            abTrials);
        std::printf(
            "  A/B @1 client: p99 unbatched %.3f ms, batched %.3f "
            "ms (bound %.3f)  bit_identical %s  ab_errors %llu\n",
            lowUnbatched.p99Ms, lowBatched.p99Ms, lowP99Bound,
            abBitIdentical ? "yes" : "NO",
            static_cast<unsigned long long>(abErrors));
    }

    CsvWriter csv(bench::csvPath("serve_load.csv"));
    csv.header({"queries", "clients", "wall_s", "qps", "p50_ms",
                "p99_ms", "ok", "deadline_exceeded", "rejected",
                "errors", "burst_rejections", "qps_unbatched",
                "qps_batched", "ab_ratio", "p99_low_unbatched_ms",
                "p99_low_batched_ms", "ab_bit_identical"});
    csv.row({std::to_string(completed), std::to_string(clients),
             CsvWriter::cell(wallSec), CsvWriter::cell(qps),
             CsvWriter::cell(p50), CsvWriter::cell(p99),
             std::to_string(ok), std::to_string(deadline),
             std::to_string(rejected), std::to_string(errors),
             std::to_string(burstRejections),
             CsvWriter::cell(abUnbatched.qps),
             CsvWriter::cell(abBatched.qps),
             CsvWriter::cell(abRatio),
             CsvWriter::cell(lowUnbatched.p99Ms),
             CsvWriter::cell(lowBatched.p99Ms),
             abBitIdentical ? "1" : "0"});

    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"serve_load\",\n"
         << "  \"queries\": " << totalQueries << ",\n"
         << "  \"clients\": " << clients << ",\n"
         << "  \"wall_s\": " << wallSec << ",\n"
         << "  \"qps\": " << qps << ",\n"
         << "  \"qps_target\": " << qpsTarget << ",\n"
         << "  \"p50_ms\": " << p50 << ",\n"
         << "  \"p99_ms\": " << p99 << ",\n"
         << "  \"p99_target_ms\": " << p99TargetMs << ",\n"
         << "  \"ok\": " << ok << ",\n"
         << "  \"deadline_exceeded\": " << deadline << ",\n"
         << "  \"rejected_overload\": " << rejected << ",\n"
         << "  \"errors\": " << errors << ",\n"
         << "  \"burst_rejections\": " << burstRejections << ",\n"
         << "  \"batch_window_us\": " << mixedWindowUs << ",\n"
         << "  \"ab\": " << (runAb ? "true" : "false") << ",\n"
         << "  \"ab_clients\": " << abClients << ",\n"
         << "  \"ab_queries\": " << abQueries << ",\n"
         << "  \"ab_window_us\": " << abWindowUs << ",\n"
         << "  \"ab_pool\": " << abPool << ",\n"
         << "  \"ab_trials\": " << abTrials << ",\n"
         << "  \"ab_hw_threads\": " << abHwThreads << ",\n"
         << "  \"qps_unbatched\": " << abUnbatched.qps << ",\n"
         << "  \"qps_batched\": " << abBatched.qps << ",\n"
         << "  \"ab_ratio\": " << abRatio << ",\n"
         << "  \"ab_ratio_target\": " << abRatioTarget << ",\n"
         << "  \"ab_ratio_bound\": " << abRatioBound << ",\n"
         << "  \"ab_gate\": \""
         << (abFullGate ? "full" : "no_regression") << "\",\n"
         << "  \"p99_low_unbatched_ms\": " << lowUnbatched.p99Ms
         << ",\n"
         << "  \"p99_low_batched_ms\": " << lowBatched.p99Ms
         << ",\n"
         << "  \"ab_errors\": " << abErrors << ",\n"
         << "  \"ab_bit_identical\": "
         << (abBitIdentical ? "true" : "false") << ",\n"
         << "  \"meets_target\": "
         << (meetsTarget ? "true" : "false") << "\n}\n";
    std::ofstream(bench::csvPath("serve_load.json")) << json.str();
    std::ofstream(bench::repoRootPath("BENCH_serve_load.json"))
        << json.str();

    std::printf("%s (baseline written to BENCH_serve_load.json)\n",
                meetsTarget ? "meets qps/p99/ab targets"
                            : "MISSES qps/p99/ab targets");
    return meetsTarget ? 0 : 1;
}
