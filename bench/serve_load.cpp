/**
 * @file
 * Load/latency gate of the vaesa_serve daemon: an in-process server
 * on an ephemeral loopback port, hammered by closed-loop clients
 * with a mixed query stream (cache-warming ScoreConfig, pings,
 * deadline-carrying scores, small bounded searches), plus one
 * overload burst proving admission control answers with structured
 * REJECTED_OVERLOAD instead of hanging or crashing.
 *
 * Gates sustained QPS and exact p99 latency, prints the table, and
 * writes bench_out/serve_load.{csv,json} and the checked-in
 * BENCH_serve_load.json. Exits nonzero when a gate fails.
 *
 * Env knobs:
 *   VAESA_SERVE_QUERIES  total queries (default 100000)
 *   VAESA_SERVE_CLIENTS  concurrent client connections (default 4)
 *   VAESA_SERVE_QPS      sustained-QPS gate (default 2000)
 *   VAESA_SERVE_P99_MS   p99 latency gate in ms (default 50)
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/env.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace {

using namespace vaesa;
using serve::MsgType;
using serve::Request;
using serve::Response;
using serve::Status;

/** One synchronous request/response round trip. */
Expected<Response>
roundTrip(const serve::Socket &sock, const Request &request)
{
    if (auto err = serve::sendFrame(
            sock, serve::frameMessage(
                      serve::serializeRequest(request))))
        return *err;
    Expected<std::string> frame = serve::recvFrame(sock, 30000);
    if (!frame)
        return frame.error();
    Expected<std::string> payload =
        serve::unwrapFrame(frame.value());
    if (!payload)
        return payload.error();
    return serve::parseResponse(payload.value());
}

/** Per-client tallies. */
struct ClientStats
{
    std::vector<double> latencyMs;
    std::uint64_t ok = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
};

double
percentile(std::vector<double> &values, double p)
{
    if (values.empty())
        return 0.0;
    const std::size_t k = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1));
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(k),
                     values.end());
    return values[k];
}

} // namespace

int
main()
{
    const std::size_t totalQueries = static_cast<std::size_t>(
        envInt("VAESA_SERVE_QUERIES", 100000));
    const std::size_t clients = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(envInt("VAESA_SERVE_CLIENTS", 4)));
    const double qpsTarget = envDouble("VAESA_SERVE_QPS", 2000.0);
    const double p99TargetMs = envDouble("VAESA_SERVE_P99_MS", 50.0);

    serve::ServeOptions options;
    options.tcpPort = 0; // ephemeral
    options.serviceThreads = clients + 2;
    options.maxConnections = clients + 2;
    options.maxInflightSearch = 2;
    serve::Server server(options);
    if (auto err = server.start()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     err->describe().c_str());
        return 1;
    }

    ThreadPool serverThread(1);
    auto serveDone =
        serverThread.submit([&server]() { (void)server.serve(); });

    // ----- Mixed-load phase ------------------------------------------
    // Closed-loop clients, each on its own connection. The config
    // stream draws from a modest distinct set so the shared cache
    // warms exactly the way a production search service's does.
    ThreadPool clientPool(clients);
    std::vector<ClientStats> stats(clients);
    const std::size_t perClient = totalQueries / clients;
    const std::uint16_t port = server.port();

    const std::uint64_t benchT0 = metrics::monotonicNowNs();
    clientPool.parallelFor(clients, [&](std::size_t c) {
        Rng rng(0x5E24E5ull + c);
        std::vector<AcceleratorConfig> configs;
        for (int i = 0; i < 64; ++i)
            configs.push_back(designSpace().randomConfig(rng));
        Expected<serve::Socket> conn = serve::connectTcp(port);
        if (!conn) {
            stats[c].errors += perClient;
            return;
        }
        ClientStats &my = stats[c];
        my.latencyMs.reserve(perClient);
        for (std::size_t i = 0; i < perClient; ++i) {
            Request request;
            request.id = c * 1000000 + i;
            const std::uint64_t kind = rng.index(100);
            if (kind < 90) {
                request.type = MsgType::ScoreConfig;
                request.workload = "alexnet";
                request.config = configs[rng.index(configs.size())];
                if (kind < 4)
                    request.deadlineMs = 1; // deadline mix
            } else if (kind < 95) {
                request.type = MsgType::Ping;
            } else if (kind < 99) {
                request.type = MsgType::Stats;
            } else {
                request.type = MsgType::SearchK;
                request.workload = "alexnet";
                request.samples = 24;
                request.method = serve::SearchMethod::Random;
                request.seed = rng.next();
                request.deadlineMs = 100;
            }
            const std::uint64_t t0 = metrics::monotonicNowNs();
            Expected<Response> resp = roundTrip(conn.value(),
                                                request);
            const std::uint64_t t1 = metrics::monotonicNowNs();
            if (!resp) {
                ++my.errors;
                continue;
            }
            my.latencyMs.push_back(
                static_cast<double>(t1 - t0) / 1e6);
            switch (resp.value().status) {
            case Status::Ok:
                ++my.ok;
                break;
            case Status::DeadlineExceeded:
                ++my.deadlineExceeded;
                break;
            case Status::RejectedOverload:
                ++my.rejected;
                break;
            default:
                ++my.errors;
                break;
            }
        }
    });
    const double wallSec =
        static_cast<double>(metrics::monotonicNowNs() - benchT0) /
        1e9;

    // ----- Overload burst --------------------------------------------
    // Saturate every connection slot with held-open connections, then
    // knock: each extra connection must get a structured rejection.
    std::uint64_t burstRejections = 0;
    {
        std::vector<serve::Socket> holders;
        for (std::size_t i = 0; i < options.maxConnections + 4;
             ++i) {
            Expected<serve::Socket> conn = serve::connectTcp(port);
            if (!conn)
                continue;
            Expected<std::string> frame =
                serve::recvFrame(conn.value(), 200);
            if (frame) {
                Expected<std::string> payload =
                    serve::unwrapFrame(frame.value());
                if (payload) {
                    Expected<Response> resp =
                        serve::parseResponse(payload.value());
                    if (resp && resp.value().status ==
                                    Status::RejectedOverload) {
                        ++burstRejections;
                        continue;
                    }
                }
            }
            holders.push_back(std::move(conn.value()));
        }
    }

    server.requestShutdown();
    serveDone.wait();
    serverThread.shutdown();
    clientPool.shutdown();

    // ----- Tallies + gates -------------------------------------------
    std::vector<double> all;
    std::uint64_t ok = 0, deadline = 0, rejected = 0, errors = 0;
    for (const ClientStats &s : stats) {
        all.insert(all.end(), s.latencyMs.begin(),
                   s.latencyMs.end());
        ok += s.ok;
        deadline += s.deadlineExceeded;
        rejected += s.rejected;
        errors += s.errors;
    }
    const std::uint64_t completed = ok + deadline + rejected;
    const double qps = static_cast<double>(completed) / wallSec;
    const double p50 = percentile(all, 0.50);
    const double p99 = percentile(all, 0.99);

    const bool meetsTarget = qps >= qpsTarget &&
                             p99 <= p99TargetMs && errors == 0 &&
                             burstRejections >= 1;

    bench::rule();
    std::printf("serve_load: %zu queries, %zu clients, %.1f s\n",
                totalQueries, clients, wallSec);
    std::printf("  qps %.0f (target %.0f)  p50 %.3f ms  p99 %.3f ms "
                "(target %.1f)\n",
                qps, qpsTarget, p50, p99, p99TargetMs);
    std::printf("  ok %llu  deadline_exceeded %llu  rejected %llu  "
                "errors %llu  burst_rejections %llu\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(deadline),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(burstRejections));

    CsvWriter csv(bench::csvPath("serve_load.csv"));
    csv.header({"queries", "clients", "wall_s", "qps", "p50_ms",
                "p99_ms", "ok", "deadline_exceeded", "rejected",
                "errors", "burst_rejections"});
    csv.row({std::to_string(completed), std::to_string(clients),
             CsvWriter::cell(wallSec), CsvWriter::cell(qps),
             CsvWriter::cell(p50), CsvWriter::cell(p99),
             std::to_string(ok), std::to_string(deadline),
             std::to_string(rejected), std::to_string(errors),
             std::to_string(burstRejections)});

    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"serve_load\",\n"
         << "  \"queries\": " << totalQueries << ",\n"
         << "  \"clients\": " << clients << ",\n"
         << "  \"wall_s\": " << wallSec << ",\n"
         << "  \"qps\": " << qps << ",\n"
         << "  \"qps_target\": " << qpsTarget << ",\n"
         << "  \"p50_ms\": " << p50 << ",\n"
         << "  \"p99_ms\": " << p99 << ",\n"
         << "  \"p99_target_ms\": " << p99TargetMs << ",\n"
         << "  \"ok\": " << ok << ",\n"
         << "  \"deadline_exceeded\": " << deadline << ",\n"
         << "  \"rejected_overload\": " << rejected << ",\n"
         << "  \"errors\": " << errors << ",\n"
         << "  \"burst_rejections\": " << burstRejections << ",\n"
         << "  \"meets_target\": "
         << (meetsTarget ? "true" : "false") << "\n}\n";
    std::ofstream(bench::csvPath("serve_load.json")) << json.str();
    std::ofstream(bench::repoRootPath("BENCH_serve_load.json"))
        << json.str();

    std::printf("%s (baseline written to BENCH_serve_load.json)\n",
                meetsTarget ? "meets qps/p99 targets"
                            : "MISSES qps/p99 targets");
    return meetsTarget ? 0 : 1;
}
