/**
 * @file
 * Multi-workload co-design study over the workload zoo: how much EDP
 * does ONE accelerator configuration give up on each zoo network
 * versus a per-workload specialist tuned for that network alone?
 * Specialists run random search on each workload's occurrence-counted
 * EDP; the co-designed configuration runs the same budget on the
 * equal-weight MultiWorkloadObjective over all five. The gate is the
 * geometric-mean EDP ratio (co-designed / specialist) across the zoo:
 * close to 1 means one design serves transformer GEMMs, depthwise
 * stacks and skinny MLPs at little cost; a large ratio would say the
 * zoo demands per-domain silicon.
 *
 * Knobs: VAESA_ZOO_SAMPLES (search budget per objective),
 * VAESA_ZOO_TARGET (geomean-ratio gate), VAESA_THREADS (pool width).
 * Exits nonzero when the gate fails, like the other gated benches.
 */

#include "common.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "dse/multi_workload.hh"
#include "dse/random_search.hh"
#include "util/thread_pool.hh"
#include "workload/zoo.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    banner("Zoo co-design study",
           "one accelerator vs per-workload specialists");

    const auto samples = static_cast<std::size_t>(
        envInt("VAESA_ZOO_SAMPLES", 400));
    // Measured geomean is ~1.02-1.03 across budgets (the co-designed
    // point matches the GEMM specialists and gives up ~10-15% on
    // MobileNetV2's depthwise stack); 1.5 leaves honest headroom
    // while still failing if co-design regresses badly.
    const double target = envDouble("VAESA_ZOO_TARGET", 1.5);
    const auto threads = static_cast<std::size_t>(
        envInt("VAESA_THREADS", 8));

    Evaluator evaluator;
    ThreadPool pool(threads);
    const std::vector<Workload> zoo = zooWorkloads();

    // Specialists: each zoo workload gets its own search at the full
    // budget, from the same seed (the searches are independent).
    const RandomSearch search;
    std::vector<double> specialistEdp(zoo.size());
    for (std::size_t i = 0; i < zoo.size(); ++i) {
        InputSpaceObjective objective(evaluator, zoo[i]);
        Rng rng(91);
        const SearchTrace trace =
            search.run(objective, samples, rng, &pool);
        specialistEdp[i] = trace.best();
        std::printf("specialist %-12s best counted EDP %.4e "
                    "(%zu samples)\n",
                    zoo[i].name.c_str(), specialistEdp[i], samples);
    }

    // Co-design: one search over the equal-weight mix of all five.
    std::vector<std::pair<std::string, double>> namedWeights;
    for (const Workload &w : zoo)
        namedWeights.emplace_back(w.name, 1.0);
    const auto mix = makeTrafficMix(namedWeights);
    if (!mix) {
        std::fprintf(stderr, "mix construction failed: %s\n",
                     mix.error().describe().c_str());
        return 1;
    }
    MultiWorkloadObjective coObjective(evaluator, mix.value());
    Rng coRng(91);
    const SearchTrace coTrace =
        search.run(coObjective, samples, coRng, &pool);
    const std::vector<double> coPoint = coTrace.bestPoint();
    if (coPoint.empty()) {
        std::fprintf(stderr,
                     "co-design search found no valid point\n");
        return 1;
    }
    const AcceleratorConfig coConfig = coObjective.decode(coPoint);

    rule();
    std::printf("%-14s %14s %14s %8s\n", "workload",
                "specialist_edp", "codesign_edp", "ratio");

    CsvWriter csv(csvPath("pareto_zoo.csv"));
    csv.header({"workload", "specialist_edp", "codesign_edp",
                "ratio"});
    std::string rowsJson;
    double logSum = 0.0;
    bool allValid = true;
    for (std::size_t i = 0; i < zoo.size(); ++i) {
        const EvalResult r =
            evaluator.evaluateWorkload(coConfig, zoo[i]);
        const double coEdp = r.valid ? r.edp : invalidScore;
        const double ratio = coEdp / specialistEdp[i];
        allValid = allValid && r.valid &&
                   std::isfinite(specialistEdp[i]);
        if (std::isfinite(ratio) && ratio > 0.0)
            logSum += std::log(ratio);
        std::printf("%-14s %14.4e %14.4e %8.3f\n",
                    zoo[i].name.c_str(), specialistEdp[i], coEdp,
                    ratio);
        csv.row({zoo[i].name, CsvWriter::cell(specialistEdp[i]),
                 CsvWriter::cell(coEdp), CsvWriter::cell(ratio)});
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"workload\": \"%s\", "
                      "\"specialist_edp\": %.6e, "
                      "\"codesign_edp\": %.6e, \"ratio\": %.4f}",
                      zoo[i].name.c_str(), specialistEdp[i], coEdp,
                      ratio);
        rowsJson += (rowsJson.empty() ? "" : ",\n");
        rowsJson += buf;
    }

    const double geomean =
        allValid ? std::exp(logSum / static_cast<double>(zoo.size()))
                 : invalidScore;
    const bool meetsTarget = allValid && geomean <= target;

    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"pareto_zoo\",\n"
         << "  \"samples_per_search\": " << samples << ",\n"
         << "  \"workloads\": " << zoo.size() << ",\n"
         << "  \"geomean_ratio\": " << geomean << ",\n"
         << "  \"target_geomean_ratio\": " << target << ",\n"
         << "  \"meets_target\": "
         << (meetsTarget ? "true" : "false") << ",\n"
         << "  \"per_workload\": [\n"
         << rowsJson << "\n  ]\n}\n";
    std::ofstream(csvPath("pareto_zoo.json")) << json.str();
    std::ofstream(repoRootPath("BENCH_pareto_zoo.json"))
        << json.str();

    rule();
    std::printf("geomean co-design/specialist EDP ratio %.3f vs "
                "%.2f target: %s\n",
                geomean, target, meetsTarget ? "PASS" : "FAIL");
    return meetsTarget ? 0 : 1;
}
