/**
 * @file
 * Ablation (beyond the paper): how wide should the latent search box
 * be for vae_bo? The KLD term concentrates encodings near the
 * origin; a box the size of the data cloud cannot reach the
 * decoder's (often useful) extrapolations, while a huge box wastes
 * the budget where decodes are garbage. Sweeps the box radius as a
 * multiple of VaesaFramework::latentRadius and reports (a) the best
 * decoded EDP reachable by dense random probing of the box and (b)
 * what BO actually achieves with the study budget.
 */

#include "common.hh"

#include <cmath>

#include "dse/bo.hh"
#include "util/stats.hh"
#include "vaesa/latent_dse.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    const Scale scale = readScale();
    banner("Ablation: latent search-box radius",
           "vae_bo on ResNet-50 vs box width");

    Evaluator evaluator;
    const Dataset data =
        buildDataset(evaluator, scale.datasetSize, 42);
    VaesaFramework framework =
        trainFramework(data, 4, scale.epochs, 1e-4, 7);
    const double base = framework.latentRadius(data);
    const Workload resnet = workloadByName("resnet50");

    CsvWriter csv(csvPath("abl_latent_radius.csv"));
    csv.header({"radius_factor", "radius", "probe_best_edp",
                "bo_best_edp"});

    std::printf("base radius (99th pct of |mu|, padded): %.2f\n\n",
                base);
    std::printf("%-14s %-10s %18s %18s\n", "radius factor",
                "radius", "probe best (5k z)", "vae_bo best");

    for (double factor : {0.5, 1.0, 1.5, 2.0, 3.0}) {
        const double radius = base * factor;
        LatentObjective objective(framework, evaluator,
                                  resnet.layers, radius);

        // Dense random probe: an upper bound on what the box holds.
        Rng probe_rng(17);
        double probe_best = invalidScore;
        for (int i = 0; i < 5000; ++i) {
            std::vector<double> z(framework.latentDim());
            for (double &v : z)
                v = probe_rng.uniform(-radius, radius);
            probe_best =
                std::min(probe_best, objective.evaluate(z));
        }

        // BO with the study budget.
        BoOptions bo_options;
        bo_options.uniformCandidates = 1024;
        bo_options.localCandidates = 256;
        Rng bo_rng(17);
        const double bo_best =
            BayesOpt(bo_options)
                .run(objective, scale.searchSamples, bo_rng)
                .best();

        std::printf("%-14.1f %-10.2f %18.4g %18.4g\n", factor,
                    radius, probe_best, bo_best);
        csv.rowValues({factor, radius, probe_best, bo_best});
    }

    rule();
    std::printf("expected: probe-best improves then saturates with "
                "width; BO degrades when the box grows far beyond "
                "the data cloud\n");
    return 0;
}
