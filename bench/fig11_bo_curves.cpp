/**
 * @file
 * Reproduces Figure 11: best-EDP-so-far convergence curves of
 * random search, input-space BO (bo), and latent-space BO (vae_bo)
 * on the four DNN workloads, mean +/- std over seeds. The paper's
 * claim: vae_bo converges fastest and reaches the best design on
 * every workload.
 */

#include "bo_study.hh"

#include <cmath>

#include "dse/objective.hh"
#include "util/stats.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    const Scale scale = readScale();
    banner("Figure 11",
           "EDP convergence: random vs bo vs vae_bo, " +
               std::to_string(scale.seeds) + " seeds, " +
               std::to_string(scale.searchSamples) + " samples");

    std::vector<BoRun> runs =
        runBoStudy(scale.searchSamples, scale.seeds);
    saveBoRuns(runs);

    // Checkpoints at roughly logarithmic spacing.
    std::vector<std::size_t> checkpoints;
    for (std::size_t c : {10, 20, 40, 80, 120, 160, 200, 400, 800,
                          1200, 1600, 2000}) {
        if (c <= scale.searchSamples)
            checkpoints.push_back(c);
    }
    if (checkpoints.empty() ||
        checkpoints.back() != scale.searchSamples) {
        checkpoints.push_back(scale.searchSamples);
    }

    CsvWriter csv(csvPath("fig11_curves.csv"));
    csv.header({"workload", "method", "samples", "mean_best_edp",
                "std_best_edp"});

    for (const Workload &w : trainingWorkloads()) {
        std::printf("\n== %s ==\n", w.name.c_str());
        std::printf("%8s", "samples");
        for (const std::string &m : boMethods)
            std::printf(" %14s +/- std  ", m.c_str());
        std::printf("\n");

        for (std::size_t c : checkpoints) {
            std::printf("%8zu", c);
            for (const std::string &m : boMethods) {
                std::vector<double> bests;
                for (const BoRun &run : runs) {
                    if (run.workload != w.name || run.method != m)
                        continue;
                    double best = invalidScore;
                    for (std::size_t i = 0;
                         i < std::min(c, run.edps.size()); ++i)
                        best = std::min(best, run.edps[i]);
                    bests.push_back(best);
                }
                const double mu = mean(bests);
                // NaN for a single seed: the band is undefined, so
                // both the table and the CSV say "n/a".
                const double sd = stddev(bests);
                std::printf(" %14.4g (%7s) ", mu,
                            sigmaText(sd).c_str());
                csv.row({w.name, m, std::to_string(c),
                         CsvWriter::cell(mu), sigmaText(sd)});
            }
            std::printf("\n");
        }

        // Which method holds the best final design?
        double best_edp = invalidScore;
        std::string best_method;
        for (const std::string &m : boMethods) {
            for (const BoRun &run : runs) {
                if (run.workload != w.name || run.method != m)
                    continue;
                for (double e : run.edps) {
                    if (e < best_edp) {
                        best_edp = e;
                        best_method = m;
                    }
                }
            }
        }
        std::printf("best design found by: %s (EDP %.4g)\n",
                    best_method.c_str(), best_edp);
    }

    rule();
    std::printf("paper claim: vae_bo converges fastest and finds "
                "the optimal design on all four DNNs\n");
    std::printf("curves CSV: bench_out/fig11_curves.csv; raw runs "
                "cached for tab05 in bench_out/fig11_runs.csv\n");
    return 0;
}
