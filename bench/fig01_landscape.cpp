/**
 * @file
 * Reproduces Figure 1: the irregular latency and energy landscapes of
 * ResNet-50 across a 1-D slice of the design space. The accumulation
 * buffer takes a growing share of a fixed 2.7 MB buffer budget (the
 * weight buffer gets the remainder); all other parameters are held
 * constant. The reproduction target is the *shape*: non-monotonic,
 * stair-stepped curves with multiple local minima.
 */

#include "common.hh"

#include <cmath>

int
main()
{
    using namespace vaesa;
    bench::banner("Figure 1",
                  "Latency/energy landscape vs accumulation-buffer "
                  "share of a 2.7 MB budget (ResNet-50)");

    Evaluator evaluator;
    const Workload resnet = workloadByName("resnet50");
    const DesignSpace &ds = designSpace();

    const std::int64_t total_budget = 2700 * 1024; // 2.7 MB
    AcceleratorConfig base;
    base.numPes = 16;
    base.numMacs = 1024;
    base.inputBufBytes = ds.snapValue(HwParam::InputBufBytes,
                                      64 * 1024);
    base.globalBufBytes = ds.snapValue(HwParam::GlobalBufBytes,
                                       128 * 1024);

    CsvWriter csv(bench::csvPath("fig01_landscape.csv"));
    csv.header({"accum_share_pct", "accum_bytes", "weight_bytes",
                "latency_cycles", "energy_pj", "edp"});

    std::printf("%-12s %12s %12s %14s %14s\n", "accum share",
                "accum (KB)", "weight (KB)", "latency (cyc)",
                "energy (pJ)");

    std::vector<double> edps;
    const std::int64_t accum_count = ds.count(HwParam::AccumBufBytes);
    for (std::int64_t idx = 0; idx < accum_count; idx += 2) {
        AcceleratorConfig config = base;
        config.accumBufBytes =
            ds.indexToValue(HwParam::AccumBufBytes, idx);
        config.weightBufBytes = ds.snapValue(
            HwParam::WeightBufBytes,
            total_budget - config.accumBufBytes);

        const EvalResult r =
            evaluator.evaluateWorkload(config, resnet.layers);
        if (!r.valid)
            continue;
        const double share = 100.0 *
                             static_cast<double>(
                                 config.accumBufBytes) /
                             static_cast<double>(total_budget);
        if (idx % 16 == 0) {
            std::printf("%10.2f%% %12lld %12lld %14.4g %14.4g\n",
                        share,
                        static_cast<long long>(
                            config.accumBufBytes / 1024),
                        static_cast<long long>(
                            config.weightBufBytes / 1024),
                        r.latencyCycles, r.energyPj);
        }
        csv.rowValues({share,
                       static_cast<double>(config.accumBufBytes),
                       static_cast<double>(config.weightBufBytes),
                       r.latencyCycles, r.energyPj, r.edp});
        edps.push_back(r.edp);
    }

    // Quantify irregularity: count interior local minima of the EDP
    // slice (the paper's point is that the surface is non-convex).
    int local_minima = 0;
    for (std::size_t i = 1; i + 1 < edps.size(); ++i)
        if (edps[i] < edps[i - 1] && edps[i] < edps[i + 1])
            ++local_minima;
    bench::rule();
    std::printf("points=%zu  EDP range=[%.4g, %.4g]  "
                "interior local minima=%d (non-convex slice)\n",
                edps.size(),
                *std::min_element(edps.begin(), edps.end()),
                *std::max_element(edps.begin(), edps.end()),
                local_minima);
    return 0;
}
