/**
 * @file
 * The shared BO comparison experiment behind Figure 11 and Table V:
 * random search, input-space BO, and latent-space BO (vae_bo) on the
 * four DNN workloads, several seeds each. fig11 prints convergence
 * curves; tab05 summarizes search performance / sample efficiency.
 * The raw per-sample results are cached in bench_out/fig11_runs.csv
 * so tab05 can reuse them instead of re-running the search.
 */

#ifndef VAESA_BENCH_BO_STUDY_HH
#define VAESA_BENCH_BO_STUDY_HH

#include <string>
#include <vector>

#include "common.hh"

namespace vaesa::bench {

/** Method identifiers, in the paper's presentation order. */
inline const std::vector<std::string> boMethods = {"random", "bo",
                                                   "vae_bo"};

/** One search run: the per-sample best-so-far EDP curve. */
struct BoRun
{
    /** Workload name. */
    std::string workload;

    /** Method: random | bo | vae_bo. */
    std::string method;

    /** Seed index. */
    std::size_t seed;

    /** Raw per-sample EDP values (not best-so-far). */
    std::vector<double> edps;
};

/**
 * Run (or reuse) the full study: every workload x method x seed.
 * Trains one 4-D VAESA framework for the vae_bo runs.
 *
 * @param samples per-run evaluation budget.
 * @param seeds runs per (workload, method).
 */
std::vector<BoRun> runBoStudy(std::size_t samples,
                              std::size_t seeds);

/** Persist runs to bench_out/fig11_runs.csv. */
void saveBoRuns(const std::vector<BoRun> &runs);

/**
 * Load cached runs; returns empty when the cache is missing or was
 * produced with a smaller budget/seed count.
 */
std::vector<BoRun> loadBoRuns(std::size_t samples,
                              std::size_t seeds);

} // namespace vaesa::bench

#endif // VAESA_BENCH_BO_STUDY_HH
