/**
 * @file
 * Reproduces Figure 10: the reconstruction-loss term during training
 * for different latent-space dimensionalities. The paper observes
 * that reconstruction accuracy improves with dimensionality but
 * shows diminishing returns beyond 4 dimensions -- the basis for
 * choosing a 4-D latent space.
 */

#include "common.hh"

int
main()
{
    using namespace vaesa;
    const bench::Scale scale = bench::readScale();
    bench::banner("Figure 10",
                  "Reconstruction loss during training vs latent "
                  "dimensionality");

    Evaluator evaluator;
    const Dataset data =
        bench::buildDataset(evaluator, scale.datasetSize, 42);

    const std::size_t dims[] = {1, 2, 3, 4, 6};
    CsvWriter csv(bench::csvPath("fig10_latent_dim.csv"));
    csv.header({"latent_dim", "epoch", "recon_loss"});

    std::vector<double> final_loss;
    std::vector<std::vector<double>> curves;
    for (std::size_t dim : dims) {
        VaesaFramework framework = bench::trainFramework(
            data, dim, scale.epochs, 1e-4, 7);
        std::vector<double> curve;
        std::size_t epoch = 0;
        for (const EpochStats &stats : framework.history()) {
            curve.push_back(stats.reconLoss);
            csv.rowValues({static_cast<double>(dim),
                           static_cast<double>(epoch++),
                           stats.reconLoss});
        }
        curves.push_back(curve);
        final_loss.push_back(framework.reconstructionError(data));
    }

    std::printf("%-12s", "epoch");
    for (std::size_t dim : dims)
        std::printf("   dim=%zu    ", dim);
    std::printf("\n");
    const std::size_t epochs = curves[0].size();
    for (std::size_t e = 0; e < epochs;
         e += std::max<std::size_t>(1, epochs / 10)) {
        std::printf("%-12zu", e);
        for (const auto &curve : curves)
            std::printf(" %9.5f  ", curve[e]);
        std::printf("\n");
    }

    bench::rule();
    std::printf("final reconstruction MSE per dimensionality:\n");
    for (std::size_t i = 0; i < std::size(dims); ++i)
        std::printf("  dim=%zu: %.5f\n", dims[i], final_loss[i]);

    // Diminishing returns: the 1->4 improvement dwarfs 4->6.
    const double gain_small = final_loss[0] - final_loss[3];
    const double gain_large = final_loss[3] - final_loss[4];
    std::printf("\npaper claim: diminishing returns beyond a 4-D "
                "latent space\n");
    std::printf("measured:    1D->4D improves MSE by %.5f; 4D->6D "
                "by %.5f (%s)\n",
                gain_small, gain_large,
                gain_small > 3.0 * std::max(gain_large, 0.0)
                    ? "reproduced"
                    : "check curves");
    return 0;
}
