/**
 * @file
 * Reproduces Figure 5: predicted vs real latency/energy surfaces
 * over a 2-D latent space. The paper inspects the two surfaces
 * visually and finds that inside the data-dense region (radius ~1.5
 * around the origin) the predictor matches the real surface, while
 * far outside it can be off by multiples. This harness samples a
 * latent grid, decodes and evaluates every point, and reports the
 * predicted-vs-real log-domain correlation and median multiplicative
 * error inside and outside the dense region.
 */

#include "common.hh"

#include <cmath>

#include "util/stats.hh"

int
main()
{
    using namespace vaesa;
    const bench::Scale scale = bench::readScale();
    bench::banner("Figure 5",
                  "Predicted vs real performance surface over the "
                  "2-D latent space (ResNet-50 conv)");

    Evaluator evaluator;
    const Dataset data =
        bench::buildDataset(evaluator, scale.datasetSize, 42);
    VaesaFramework framework =
        bench::trainFramework(data, 2, scale.epochs, 1e-4, 7);

    const LayerShape layer = resNet50Layers()[2]; // 3x3 at 56x56
    const std::vector<double> feats =
        framework.normalizedLayerFeatures(layer);
    const double radius = framework.latentRadius(data);
    const double dense_radius = 0.5 * radius;

    CsvWriter csv(bench::csvPath("fig05_predictor_surface.csv"));
    csv.header({"z1", "z2", "pred_latency", "pred_energy",
                "real_latency", "real_energy"});

    std::vector<double> all_pred_lat, all_real_lat;
    std::vector<double> all_pred_en, all_real_en;
    std::vector<double> in_err, out_err;

    const int grid = 21;
    for (int i = 0; i < grid; ++i) {
        for (int j = 0; j < grid; ++j) {
            const double z1 =
                -radius + 2.0 * radius * i / (grid - 1);
            const double z2 =
                -radius + 2.0 * radius * j / (grid - 1);
            const std::vector<double> z{z1, z2};
            const double pred_lat =
                framework.predictedLatency(z, feats);
            const double pred_en =
                framework.predictedEnergy(z, feats);
            const AcceleratorConfig config =
                framework.decodeLatent(z);
            const EvalResult real =
                evaluator.evaluateLayer(config, layer);
            if (!real.valid)
                continue;
            csv.rowValues({z1, z2, pred_lat, pred_en,
                           real.latencyCycles, real.energyPj});

            const double err = std::fabs(
                std::log2(pred_lat * pred_en) -
                std::log2(real.latencyCycles * real.energyPj));
            all_pred_lat.push_back(std::log2(pred_lat));
            all_real_lat.push_back(std::log2(real.latencyCycles));
            all_pred_en.push_back(std::log2(pred_en));
            all_real_en.push_back(std::log2(real.energyPj));
            if (std::hypot(z1, z2) <= dense_radius)
                in_err.push_back(err);
            else
                out_err.push_back(err);
        }
    }

    std::printf("latent box half-width %.2f; dense region radius "
                "%.2f; %zu dense / %zu outer valid grid points\n\n",
                radius, dense_radius, in_err.size(),
                out_err.size());
    std::printf("predicted-vs-real correlation over the surface "
                "(log domain): latency %.3f, energy %.3f\n",
                correlation(all_pred_lat, all_real_lat),
                correlation(all_pred_en, all_real_en));
    const double in_med = percentile(in_err, 0.5);
    const double out_med =
        out_err.empty() ? 0.0 : percentile(out_err, 0.5);
    std::printf("median |log2(pred EDP / real EDP)|: dense %.2f "
                "octaves (%.2fx), outside %.2f octaves (%.2fx)\n",
                in_med, std::exp2(in_med), out_med,
                std::exp2(out_med));

    bench::rule();
    std::printf("paper claim: predictors match the real surface in "
                "the data-dense region;\n"
                "             errors grow (up to ~5x) outside it\n");
    std::printf("measured:    dense-region error %.2fx %s outer "
                "error %.2fx\n",
                std::exp2(in_med),
                in_med <= out_med ? "<=" : ">", std::exp2(out_med));
    return 0;
}
