/**
 * @file
 * Ablation (beyond the paper): the two design choices in this
 * repository's vae_gd flow.
 *
 *   1. Gaussian-prior (MAP) weight on the latent surrogate. The
 *      LeakyReLU predictors are piecewise linear, so the raw
 *      surrogate is minimized on the search-box boundary where the
 *      decoder extrapolates; a small prior keeps descent inside the
 *      learned region.
 *   2. Predictor screening (simulate only the best-predicted of m
 *      endpoints). Intuitively attractive, but it selects exactly
 *      the points where the predictor is most over-optimistic and
 *      *hurts* real EDP -- kept disabled by default.
 *
 * Reports geomean best real EDP at a 10-sample budget over six of
 * the Table IV layers, relative to random search.
 */

#include "common.hh"

#include <cmath>

#include "dse/random_search.hh"
#include "util/stats.hh"
#include "vaesa/latent_dse.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    const Scale scale = readScale();
    banner("Ablation: vae_gd prior weight & screening",
           "geomean best EDP at 10 samples vs random "
           "(>1 means vae_gd wins)");

    Evaluator evaluator;
    const Dataset data =
        buildDataset(evaluator, scale.datasetSize, 42);
    VaesaFramework framework =
        trainFramework(data, 4, scale.epochs, 1e-4, 7);
    const double radius = 1.5 * framework.latentRadius(data);

    const int layer_ids[] = {1, 3, 5, 7, 9, 11};
    const std::size_t budget = 10;

    // Random-search reference.
    double log_random = 0.0;
    for (int li : layer_ids) {
        InputSpaceObjective obj(evaluator, {gdTestLayers()[li]});
        Rng rng(5);
        log_random +=
            std::log(RandomSearch().run(obj, budget, rng).best());
    }
    log_random /= std::size(layer_ids);

    CsvWriter csv(csvPath("abl_gd_prior.csv"));
    csv.header({"prior_weight", "screen_starts", "geomean_edp",
                "ratio_vs_random"});

    auto run_config = [&](double prior, std::size_t screen) {
        double log_gd = 0.0;
        for (int li : layer_ids) {
            VaeGdOptions options;
            options.radius = radius;
            options.priorWeight = prior;
            options.screenStarts = screen;
            Rng rng(5);
            const SearchTrace trace =
                vaeGdSearch(framework, evaluator,
                            gdTestLayers()[li], budget, options,
                            rng);
            log_gd += std::log(trace.best());
        }
        log_gd /= std::size(layer_ids);
        const double geo = std::exp(log_gd);
        const double ratio = std::exp(log_random - log_gd);
        csv.rowValues({prior, static_cast<double>(screen), geo,
                       ratio});
        return ratio;
    };

    std::printf("%-14s %-14s %16s\n", "prior weight",
                "screen starts", "ratio vs random");
    for (double prior : {0.0, 0.05, 0.1, 0.3, 1.0}) {
        const double ratio = run_config(prior, 1);
        std::printf("%-14g %-14d %15.2fx\n", prior, 1, ratio);
    }
    rule();
    for (std::size_t screen : {std::size_t{2}, std::size_t{4}}) {
        const double ratio = run_config(0.1, screen);
        std::printf("%-14g %-14zu %15.2fx\n", 0.1, screen, ratio);
    }

    rule();
    std::printf("expected: ratios peak for prior in [0.05, 0.3]; "
                "screening drives the ratio far below 1\n");
    return 0;
}
