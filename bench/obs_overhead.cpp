/**
 * @file
 * Overhead budget check for the observability layer. Two parts:
 *
 *  1. Microbench: per-op cost of each always-live primitive
 *     (Counter::inc, Gauge::add, Histogram::observe) and of the
 *     disabled gated primitives (metrics::ScopedTimer and
 *     trace::Span with instrumentation off).
 *  2. Macro A/B: a CachingEvaluator batch on resnet50 with
 *     observability disabled vs fully enabled (metrics + tracing).
 *
 * The shipped configuration is "disabled", so the budget that
 * matters is the disabled cost. There is no uninstrumented build to
 * diff against, so the disabled overhead is bounded from the
 * measured per-event cost. On the cache hot path the observability
 * layer adds exactly one Counter::inc per lookup (the global-mirror
 * counter; the per-instance hit/miss counters were plain atomics
 * before and cost the same now), so the bound is
 * (lookups x counter ns) / disabled batch time -- pessimistic, since
 * the microbenched counter cost still includes its loop overhead.
 * The binary exits nonzero when the bound exceeds 2%, so CI fails
 * if instrumentation creeps into a hot path. Results land in
 * bench_out/obs_overhead.csv and the checked-in
 * BENCH_obs_overhead.json at the repo root.
 *
 * Knobs: VAESA_OBS_BATCH (total configs, default 96),
 *        VAESA_OBS_DISTINCT (distinct configs, default 24),
 *        VAESA_OBS_OPS (microbench iterations, default 2000000).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hh"
#include "sched/caching_evaluator.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/trace.hh"

namespace {

using namespace vaesa;

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Deterministic batch with duplicates, same shape as par_eval. */
std::vector<AcceleratorConfig>
overlappingBatch(std::size_t count, std::size_t distinct,
                 std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<AcceleratorConfig> pool;
    pool.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i)
        pool.push_back(designSpace().randomConfig(rng));
    std::vector<AcceleratorConfig> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        batch.push_back(pool[rng.index(distinct)]);
    return batch;
}

/** ns/op of `op` over `iters` runs (the loop itself included). */
template <typename Fn>
double
nsPerOp(std::size_t iters, Fn &&op)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        op(i);
    const auto t1 = std::chrono::steady_clock::now();
    return seconds(t0, t1) * 1e9 / static_cast<double>(iters);
}

/** Time one full batch on a fresh cache (cold, then reused). */
double
batchSeconds(const std::vector<AcceleratorConfig> &batch,
             const std::vector<LayerShape> &layers)
{
    CachingEvaluator cache;
    const auto t0 = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (const AcceleratorConfig &config : batch)
        sink += cache.evaluateWorkload(config, layers).edp;
    const auto t1 = std::chrono::steady_clock::now();
    // Keep the accumulation observable so the loop cannot be elided.
    if (sink == -1.0)
        std::printf("impossible\n");
    return seconds(t0, t1);
}

} // namespace

int
main()
{
    bench::banner("Observability overhead",
                  "disabled-cost budget for metrics + tracing");

    const auto ops = static_cast<std::size_t>(
        envInt("VAESA_OBS_OPS", 2000000));
    const auto batchSize =
        static_cast<std::size_t>(envInt("VAESA_OBS_BATCH", 96));
    const auto distinct =
        static_cast<std::size_t>(envInt("VAESA_OBS_DISTINCT", 24));

    // --- Part 1: primitive microbench -------------------------------
    metrics::setMetricsEnabled(false);
    trace::setTraceEnabled(false);

    metrics::Counter &counter = metrics::counter("bench.obs.counter");
    metrics::Gauge &gauge = metrics::gauge("bench.obs.gauge");
    metrics::Histogram &hist =
        metrics::histogram("bench.obs.hist");

    const double counter_ns =
        nsPerOp(ops, [&](std::size_t) { counter.inc(); });
    const double gauge_ns =
        nsPerOp(ops, [&](std::size_t) { gauge.add(1.0); });
    const double hist_ns = nsPerOp(
        ops, [&](std::size_t i) {
            hist.observe(static_cast<std::uint64_t>(i));
        });
    const double timer_off_ns = nsPerOp(ops, [&](std::size_t) {
        if (metrics::metricsEnabled())
            hist.observe(metrics::monotonicNowNs());
    });
    const double span_off_ns = nsPerOp(
        ops, [&](std::size_t) { trace::Span span("bench.op"); });

    std::printf("%-28s %12s\n", "primitive (disabled state)",
                "ns/op");
    bench::rule();
    std::printf("%-28s %12.2f\n", "Counter::inc", counter_ns);
    std::printf("%-28s %12.2f\n", "Gauge::add", gauge_ns);
    std::printf("%-28s %12.2f\n", "Histogram::observe", hist_ns);
    std::printf("%-28s %12.2f\n", "gated timer (off)", timer_off_ns);
    std::printf("%-28s %12.2f\n", "trace::Span (off)", span_off_ns);
    const double worst_ns =
        std::max({counter_ns, gauge_ns, hist_ns, timer_off_ns,
                  span_off_ns});

    // --- Part 2: macro A/B on a CachingEvaluator batch --------------
    const Workload resnet = workloadByName("resnet50");
    const std::vector<AcceleratorConfig> batch =
        overlappingBatch(batchSize, distinct, 23);

    batchSeconds(batch, resnet.layers); // warm-up (page in code)
    // Min of several runs: the bound divides by this, so timing
    // noise must not fake an over-budget result.
    double off_sec = batchSeconds(batch, resnet.layers);
    for (int run = 0; run < 4; ++run)
        off_sec = std::min(off_sec,
                           batchSeconds(batch, resnet.layers));

    // Count instrumentation events by running once fully enabled.
    metrics::counter("cache.hit").reset();
    metrics::counter("cache.miss").reset();
    metrics::counter("cache.evict").reset();
    metrics::counter("cache.shard_contention").reset();
    metrics::setMetricsEnabled(true);
    trace::setTraceEnabled(true);
    const double on_sec = batchSeconds(batch, resnet.layers);
    metrics::setMetricsEnabled(false);
    trace::setTraceEnabled(false);

    const double lookups = static_cast<double>(
        metrics::counter("cache.hit").value() +
        metrics::counter("cache.miss").value());
    // Net addition per lookup: the one global-mirror Counter::inc
    // (see the file comment). Gated timers and spans on this path
    // cost span_off_ns/timer_off_ns only at epoch/iteration
    // granularity, far off the per-lookup scale.
    const double overhead_disabled_pct =
        100.0 * lookups * counter_ns * 1e-9 / off_sec;
    const double overhead_enabled_pct =
        100.0 * (on_sec - off_sec) / off_sec;

    bench::rule();
    std::printf("batch: %zu configs (%zu distinct) x %zu layers\n",
                batch.size(), distinct, resnet.layers.size());
    std::printf("disabled: %.3f s; enabled: %.3f s "
                "(%.2f%% measured delta)\n",
                off_sec, on_sec, overhead_enabled_pct);
    std::printf("cache lookups: %.0f; worst primitive %.2f ns\n",
                lookups, worst_ns);
    std::printf("disabled overhead bound: %.4f%% (budget 2%%)\n",
                overhead_disabled_pct);

    CsvWriter csv(bench::csvPath("obs_overhead.csv"));
    csv.header({"counter_ns", "gauge_ns", "hist_ns", "timer_off_ns",
                "span_off_ns", "off_sec", "on_sec",
                "overhead_disabled_pct", "overhead_enabled_pct"});
    csv.row({CsvWriter::cell(counter_ns), CsvWriter::cell(gauge_ns),
             CsvWriter::cell(hist_ns), CsvWriter::cell(timer_off_ns),
             CsvWriter::cell(span_off_ns), CsvWriter::cell(off_sec),
             CsvWriter::cell(on_sec),
             CsvWriter::cell(overhead_disabled_pct),
             CsvWriter::cell(overhead_enabled_pct)});

    const bool within_budget = overhead_disabled_pct <= 2.0;
    char body[1024];
    std::snprintf(
        body, sizeof(body),
        "{\n"
        "  \"bench\": \"obs_overhead\",\n"
        "  \"counter_inc_ns\": %.3f,\n"
        "  \"gauge_add_ns\": %.3f,\n"
        "  \"histogram_observe_ns\": %.3f,\n"
        "  \"gated_timer_off_ns\": %.3f,\n"
        "  \"span_off_ns\": %.3f,\n"
        "  \"batch_configs\": %zu,\n"
        "  \"batch_disabled_s\": %.6f,\n"
        "  \"batch_enabled_s\": %.6f,\n"
        "  \"cache_lookups\": %.0f,\n"
        "  \"overhead_disabled_pct\": %.5f,\n"
        "  \"overhead_enabled_pct\": %.3f,\n"
        "  \"budget_pct\": 2.0,\n"
        "  \"within_budget\": %s\n"
        "}\n",
        counter_ns, gauge_ns, hist_ns, timer_off_ns, span_off_ns,
        batch.size(), off_sec, on_sec, lookups,
        overhead_disabled_pct, overhead_enabled_pct,
        within_budget ? "true" : "false");
    std::ofstream(bench::csvPath("obs_overhead.json")) << body;
    std::ofstream(bench::repoRootPath("BENCH_obs_overhead.json"))
        << body;

    bench::rule();
    std::printf("%s (baseline written to BENCH_obs_overhead.json)\n",
                within_budget ? "within budget"
                              : "OVER BUDGET (>2% disabled cost)");
    return within_budget ? 0 : 1;
}
