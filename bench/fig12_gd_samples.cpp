/**
 * @file
 * Reproduces Figure 12: mean EDP of vae_gd vs the input-space gd
 * baseline vs random search over the 12 unseen test layers of Table
 * IV, for small sample budgets (<= 30), several seeds. The paper's
 * claim: vae_gd consistently wins at low budgets (e.g. 16% lower
 * EDP than random at 10 samples).
 */

#include "common.hh"

#include <cmath>

#include "dse/random_search.hh"
#include "util/stats.hh"
#include "vaesa/latent_dse.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    const Scale scale = readScale();
    const std::size_t gd_seeds =
        static_cast<std::size_t>(envInt("VAESA_GD_SEEDS", 5));
    banner("Figure 12",
           "vae_gd vs gd vs random on the 12 unseen layers "
           "(Table IV), " + std::to_string(gd_seeds) + " seeds");

    Evaluator evaluator;
    const Dataset data =
        buildDataset(evaluator, scale.datasetSize, 42);
    VaesaFramework framework =
        trainFramework(data, 4, scale.epochs, 1e-4, 7);
    const double radius =
        1.5 * framework.latentRadius(data);

    TrainOptions baseline_train;
    baseline_train.epochs = scale.epochs;
    InputGdBaseline baseline(data, {64, 64}, baseline_train, 21);

    const std::vector<LayerShape> layers = gdTestLayers();
    const std::size_t budget = 30;
    const std::vector<std::size_t> marks{1, 2, 5, 10, 20, 30};

    // log-EDP best-so-far per (method, layer, seed, sample).
    const std::vector<std::string> methods{"random", "gd", "vae_gd"};
    // curves[method][mark] accumulates log best EDP.
    std::vector<std::vector<std::vector<double>>> logs(
        methods.size(),
        std::vector<std::vector<double>>(marks.size()));

    for (std::size_t li = 0; li < layers.size(); ++li) {
        const LayerShape &layer = layers[li];
        for (std::size_t seed = 0; seed < gd_seeds; ++seed) {
            const std::uint64_t s = 500 * (seed + 1) + li;
            VaeGdOptions gd_options;
            gd_options.steps = 100;
            gd_options.radius = radius;

            Rng rng_vae(s);
            const SearchTrace vae_trace = vaeGdSearch(
                framework, evaluator, layer, budget, gd_options,
                rng_vae);
            Rng rng_gd(s);
            const SearchTrace gd_trace = baseline.search(
                evaluator, layer, budget, gd_options, rng_gd);
            Rng rng_rnd(s);
            InputSpaceObjective input_obj(evaluator, {layer});
            const SearchTrace rnd_trace =
                RandomSearch().run(input_obj, budget, rng_rnd);

            const SearchTrace *traces[] = {&rnd_trace, &gd_trace,
                                           &vae_trace};
            for (std::size_t m = 0; m < methods.size(); ++m) {
                for (std::size_t k = 0; k < marks.size(); ++k) {
                    const double best =
                        traces[m]->bestAfter(marks[k]);
                    if (std::isfinite(best))
                        logs[m][k].push_back(std::log(best));
                }
            }
        }
    }

    CsvWriter csv(csvPath("fig12_gd_samples.csv"));
    csv.header({"samples", "method", "geomean_edp",
                "improvement_vs_random"});

    std::printf("%8s %16s %16s %16s %22s\n", "samples", "random",
                "gd", "vae_gd", "vae_gd vs random");
    double improvement_at_10 = 0.0;
    for (std::size_t k = 0; k < marks.size(); ++k) {
        double geo[3];
        for (std::size_t m = 0; m < methods.size(); ++m) {
            geo[m] = std::exp(mean(logs[m][k]));
            csv.row({std::to_string(marks[k]), methods[m],
                     CsvWriter::cell(geo[m]),
                     CsvWriter::cell(geo[0] / geo[m])});
        }
        const double vs_random = geo[0] / geo[2];
        if (marks[k] == 10)
            improvement_at_10 = vs_random;
        std::printf("%8zu %16.4g %16.4g %16.4g %20.1f%%\n",
                    marks[k], geo[0], geo[1], geo[2],
                    100.0 * (vs_random - 1.0));
    }

    rule();
    std::printf("paper claim: vae_gd beats gd and random for small "
                "budgets; ~16%% lower EDP than random at 10 "
                "samples\n");
    std::printf("measured:    vae_gd EDP advantage vs random at 10 "
                "samples: %.1f%%\n",
                100.0 * (improvement_at_10 - 1.0));
    return 0;
}
