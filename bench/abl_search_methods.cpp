/**
 * @file
 * Library showcase (beyond the paper): all five input-space search
 * drivers -- random, BO, genetic, simulated annealing -- plus
 * latent-space vae_bo on the same workload and budget, with the
 * memoizing evaluator's hit-rate demonstrating how much evaluation
 * work discrete search spaces repeat.
 */

#include "common.hh"

#include <cmath>

#include "dse/bo.hh"
#include "dse/genetic.hh"
#include "dse/random_search.hh"
#include "sched/caching_evaluator.hh"
#include "util/stats.hh"
#include "vaesa/latent_dse.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    const Scale scale = readScale();
    banner("Search-method comparison",
           "random / bo / ga / sa / vae_bo on ResNet-50, " +
               std::to_string(scale.seeds) + " seeds x " +
               std::to_string(scale.searchSamples) + " samples");

    Evaluator evaluator;
    const Dataset data =
        buildDataset(evaluator, scale.datasetSize, 42);
    VaesaFramework framework =
        trainFramework(data, 4, scale.epochs, 1e-4, 7);
    const double radius = 1.5 * framework.latentRadius(data);
    const Workload resnet = workloadByName("resnet50");

    CsvWriter csv(csvPath("abl_search_methods.csv"));
    csv.header({"method", "seed", "best_edp"});

    const char *methods[] = {"random", "bo", "ga", "sa", "vae_bo"};
    std::printf("%-8s %16s %16s %10s\n", "method", "mean best EDP",
                "std", "vs random");
    double random_mean = 0.0;
    for (const char *method : methods) {
        std::vector<double> bests;
        for (std::size_t seed = 0; seed < scale.seeds; ++seed) {
            InputSpaceObjective input_obj(evaluator, resnet.layers);
            LatentObjective latent_obj(framework, evaluator,
                                       resnet.layers, radius);
            Rng rng(3000 + seed);
            SearchTrace trace;
            const std::string m = method;
            if (m == "random") {
                trace = RandomSearch().run(
                    input_obj, scale.searchSamples, rng);
            } else if (m == "bo") {
                trace = BayesOpt().run(input_obj,
                                       scale.searchSamples, rng);
            } else if (m == "ga") {
                trace = GeneticSearch().run(
                    input_obj, scale.searchSamples, rng);
            } else if (m == "sa") {
                trace = SimulatedAnnealing().run(
                    input_obj, scale.searchSamples, rng);
            } else {
                BoOptions bo_options;
                bo_options.uniformCandidates = 1024;
                bo_options.localCandidates = 256;
                trace = BayesOpt(bo_options)
                            .run(latent_obj, scale.searchSamples,
                                 rng);
            }
            bests.push_back(trace.best());
            csv.row({method, std::to_string(seed),
                     CsvWriter::cell(trace.best())});
        }
        const double mu = mean(bests);
        if (std::string(method) == "random")
            random_mean = mu;
        // stddev() is NaN for a single seed; print "n/a", not a
        // fabricated 0.0 band.
        std::printf("%-8s %16.4g %16s %9.2fx\n", method, mu,
                    sigmaText(stddev(bests)).c_str(),
                    random_mean / mu);
    }

    // Demonstrate the memoizing evaluator on a GA run (elitist
    // populations revisit configurations heavily).
    CachingEvaluator cached;
    InputSpaceObjective cached_obj_probe(evaluator, resnet.layers);
    class CachedObjective : public Objective
    {
      public:
        CachedObjective(CachingEvaluator &ce,
                        const std::vector<LayerShape> &layers,
                        InputSpaceObjective &codec)
            : ce_(ce), layers_(layers), codec_(codec)
        {
        }
        std::size_t dim() const override { return codec_.dim(); }
        std::vector<double> lowerBounds() const override
        {
            return codec_.lowerBounds();
        }
        std::vector<double> upperBounds() const override
        {
            return codec_.upperBounds();
        }
        double
        evaluate(const std::vector<double> &x) override
        {
            const EvalResult r = ce_.evaluateWorkload(
                codec_.decode(x), layers_);
            return r.valid ? r.edp : invalidScore;
        }

      private:
        CachingEvaluator &ce_;
        const std::vector<LayerShape> &layers_;
        InputSpaceObjective &codec_;
    } cached_obj(cached, resnet.layers, cached_obj_probe);

    Rng rng(4000);
    GeneticSearch().run(cached_obj, scale.searchSamples, rng);
    const double hit_rate =
        static_cast<double>(cached.hits()) /
        static_cast<double>(cached.hits() + cached.misses());

    rule();
    std::printf("memoizing evaluator on the GA run: %.0f%% of "
                "per-layer evaluations were cache hits\n",
                100.0 * hit_rate);
    return 0;
}
