/**
 * @file
 * google-benchmark microbenchmarks for the framework's kernels:
 * dense GEMM, Cholesky/GP fits, the one-shot scheduler, the
 * analytical cost model, and VAE forward/backward training steps.
 * These quantify the substrate costs behind every experiment (e.g.
 * how many design points per second the evaluator can score).
 */

#include <benchmark/benchmark.h>

#include "dse/gp.hh"
#include "nn/loss.hh"
#include "nn/optim.hh"
#include "nn/sequential.hh"
#include "sched/evaluator.hh"
#include "tensor/linalg.hh"
#include "util/rng.hh"
#include "vaesa/vae.hh"
#include "workload/networks.hh"

namespace {

using namespace vaesa;

void
BM_MatrixMultiply(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    Matrix a(n, n);
    Matrix b(n, n);
    a.randomNormal(rng, 0.0, 1.0);
    b.randomNormal(rng, 0.0, 1.0);
    for (auto _ : state) {
        Matrix c = Matrix::multiply(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatrixMultiply)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void
BM_Cholesky(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    Matrix b(n, n);
    b.randomNormal(rng, 0.0, 1.0);
    Matrix a = Matrix::multiplyTransB(b, b);
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += static_cast<double>(n);
    for (auto _ : state) {
        Matrix lower;
        cholesky(a, lower);
        benchmark::DoNotOptimize(lower.data());
    }
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128)->Arg(256);

void
BM_GpFitPredict(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform(),
                      rng.uniform()});
        ys.push_back(rng.normal());
    }
    for (auto _ : state) {
        GaussianProcess gp;
        gp.fit(xs, ys);
        double acc = 0.0;
        for (int q = 0; q < 64; ++q) {
            acc += gp.predict({rng.uniform(), rng.uniform(),
                               rng.uniform(), rng.uniform()})
                       .mean;
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_GpFitPredict)->Arg(64)->Arg(128)->Arg(192);

void
BM_SchedulerOneShot(benchmark::State &state)
{
    Scheduler sched;
    Rng rng(4);
    const auto layers = resNet50Layers();
    std::size_t mapped = 0;
    for (auto _ : state) {
        const AcceleratorConfig config =
            designSpace().randomConfig(rng);
        const auto mapping =
            sched.schedule(config, layers[mapped % layers.size()]);
        benchmark::DoNotOptimize(mapping);
        ++mapped;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerOneShot);

void
BM_EvaluateWorkload(benchmark::State &state)
{
    Evaluator evaluator;
    Rng rng(5);
    const Workload resnet = workloadByName("resnet50");
    for (auto _ : state) {
        const AcceleratorConfig config =
            designSpace().randomConfig(rng);
        const EvalResult r =
            evaluator.evaluateWorkload(config, resnet.layers);
        benchmark::DoNotOptimize(r.edp);
    }
    state.SetItemsProcessed(state.iterations() *
                            resnet.layers.size());
}
BENCHMARK(BM_EvaluateWorkload);

void
BM_VaeTrainingStep(benchmark::State &state)
{
    const auto batch = static_cast<std::size_t>(state.range(0));
    Rng rng(6);
    VaeOptions options;
    options.latentDim = 4;
    Vae vae(options, rng);
    nn::Adam opt(vae.parameters(), 1e-3);
    Matrix x(batch, options.inputDim);
    x.randomUniform(rng, 0.0, 1.0);

    for (auto _ : state) {
        auto fr = vae.forward(x, rng);
        const nn::LossResult recon = nn::mseLoss(fr.recon, x);
        const nn::KldResult kld =
            nn::gaussianKld(fr.mu, fr.logvar);
        Matrix grad_mu = kld.gradMu;
        grad_mu.scale(1e-4);
        Matrix grad_logvar = kld.gradLogvar;
        grad_logvar.scale(1e-4);
        opt.zeroGrad();
        vae.backward(fr, recon.grad, grad_mu, grad_logvar,
                     Matrix());
        opt.step();
        benchmark::DoNotOptimize(recon.value);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_VaeTrainingStep)->Arg(16)->Arg(64)->Arg(256);

void
BM_MlpForward(benchmark::State &state)
{
    Rng rng(7);
    auto net = nn::makeMlp(12, {64, 64}, 1, rng);
    Matrix x(64, 12);
    x.randomUniform(rng, 0.0, 1.0);
    for (auto _ : state) {
        Matrix out = net->forward(x);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MlpForward);

} // namespace

BENCHMARK_MAIN();
