/**
 * @file
 * Reproduces Figures 7 and 8: interpolation between the encodings of
 * the worst and best training points for 2-D and 4-D latent spaces.
 * The paper projects the predicted EDP (pEDP) onto the worst->best
 * axis and observes (a) a generally negative gradient toward the
 * best point, and (b) for the 2-D space, a local minimum between the
 * endpoints that can trap gradient descent -- motivating the 4-D
 * choice. The overshoot region (t > 1) probes whether descent would
 * stop near the best known point.
 */

#include "common.hh"

#include <cmath>

#include "vaesa/latent_dse.hh"

namespace {

/** Count interior local minima of a series. */
int
localMinima(const std::vector<double> &xs)
{
    int count = 0;
    for (std::size_t i = 1; i + 1 < xs.size(); ++i)
        if (xs[i] < xs[i - 1] && xs[i] < xs[i + 1])
            ++count;
    return count;
}

} // namespace

int
main()
{
    using namespace vaesa;
    const bench::Scale scale = bench::readScale();
    bench::banner("Figures 7/8",
                  "pEDP along the worst->best latent axis "
                  "(2-D vs 4-D latent spaces)");

    Evaluator evaluator;
    const Dataset data =
        bench::buildDataset(evaluator, scale.datasetSize, 42);
    const LayerShape layer = resNet50Layers()[2];
    const std::size_t segments = 20;
    const std::size_t overshoot = 8;

    CsvWriter csv(bench::csvPath("fig07_interpolation.csv"));
    csv.header({"latent_dim", "t", "predicted_edp", "real_edp",
                "l2_worst_best"});

    for (std::size_t latent_dim : {2u, 4u}) {
        VaesaFramework framework = bench::trainFramework(
            data, latent_dim, scale.epochs, 1e-4, 7);
        const auto points =
            interpolationStudy(framework, evaluator, data, layer,
                               segments, overshoot);

        const auto z0 = points.front().z;
        const auto z1 = points[segments].z;
        double l2 = 0.0;
        for (std::size_t d = 0; d < z0.size(); ++d)
            l2 += (z1[d] - z0[d]) * (z1[d] - z0[d]);
        l2 = std::sqrt(l2);

        std::vector<double> curve;
        for (const InterpolationPoint &pt : points) {
            curve.push_back(std::log2(pt.predictedEdp));
            csv.rowValues({static_cast<double>(latent_dim), pt.t,
                           pt.predictedEdp,
                           std::isfinite(pt.realEdp) ? pt.realEdp
                                                     : -1.0,
                           l2});
        }

        const int minima = localMinima(std::vector<double>(
            curve.begin(), curve.begin() + segments + 1));
        std::printf("\n%zu-D latent space | L2(worst, best) = %.2f "
                    "(paper: 0.96 for 2-D, 2.58 for 4-D)\n",
                    latent_dim, l2);
        std::printf("%6s %16s %16s\n", "t", "pred EDP", "real EDP");
        for (std::size_t i = 0; i < points.size(); i += 4) {
            std::printf("%6.2f %16.4g %16.4g\n", points[i].t,
                        points[i].predictedEdp, points[i].realEdp);
        }
        std::printf("pEDP drop worst->best: %.2fx | interior local "
                    "minima on the axis: %d\n",
                    points.front().predictedEdp /
                        points[segments].predictedEdp,
                    minima);
    }

    bench::rule();
    std::printf("paper claim: predicted surface slopes downhill "
                "toward the best point;\n"
                "             2-D shows a trap-prone local minimum, "
                "4-D is smoother\n");
    return 0;
}
