/**
 * @file
 * Reproduces Table II: the hardware design space -- parameter maxima,
 * number of possible discrete values per parameter, and total size.
 */

#include "common.hh"

#include "arch/design_space.hh"

int
main()
{
    using namespace vaesa;
    bench::banner("Table II", "Summary of the design space");

    const DesignSpace &ds = designSpace();
    std::printf("%-22s %12s %18s\n", "Parameter", "Max",
                "# Possible Values");
    CsvWriter csv(bench::csvPath("tab02_design_space.csv"));
    csv.header({"parameter", "max", "count"});

    for (int p = 0; p < numHwParams; ++p) {
        const auto param = static_cast<HwParam>(p);
        const DesignSpace::ParamSpec &spec = ds.spec(param);
        std::string max_str;
        if (param == HwParam::NumPes || param == HwParam::NumMacs) {
            max_str = std::to_string(spec.max);
        } else if (spec.max >= 1024 * 1024) {
            max_str = std::to_string(spec.max / (1024 * 1024)) + " MB";
        } else {
            max_str = std::to_string(spec.max / 1024) + " KB";
        }
        std::printf("%-22s %12s %18lld\n", spec.name.c_str(),
                    max_str.c_str(),
                    static_cast<long long>(spec.count));
        csv.row({spec.name, std::to_string(spec.max),
                 std::to_string(spec.count)});
    }
    bench::rule();
    std::printf("Total design space size: %.3g points "
                "(paper: 3.6e17)\n",
                ds.totalSize());
    return 0;
}
