/**
 * @file
 * Reproduces Table III (training workloads with unique-layer counts)
 * and prints Table IV (the 12 unseen GD test layers) for reference.
 */

#include "common.hh"

int
main()
{
    using namespace vaesa;
    bench::banner("Table III / Table IV", "DNN workload summary");

    std::printf("%-14s %20s %14s\n", "Workload", "# Unique Layers",
                "Total MACs");
    CsvWriter csv(bench::csvPath("tab03_workloads.csv"));
    csv.header({"workload", "unique_layers", "total_macs"});
    for (const Workload &w : trainingWorkloads()) {
        double macs = 0.0;
        for (const LayerShape &l : w.layers)
            macs += l.macs();
        std::printf("%-14s %20zu %14.3g\n", w.name.c_str(),
                    w.layers.size(), macs);
        csv.row({w.name, std::to_string(w.layers.size()),
                 CsvWriter::cell(macs)});
    }

    bench::rule();
    std::printf("Table IV: unseen test layers "
                "(R,S,P,Q,C,K,strideW,strideH)\n");
    int row = 1;
    for (const LayerShape &l : gdTestLayers()) {
        std::printf("%2d. %s\n", row++, l.describe().c_str());
    }
    return 0;
}
