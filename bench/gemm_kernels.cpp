/**
 * @file
 * Kernel-layer speedup study: naive vs blocked GEMM (single thread)
 * and blocked + thread pool, over the layer shapes the Figure 11
 * training runs actually execute (batch 64, VAE hidden {128, 64},
 * latent 4, predictor hidden {64, 64}), plus the full-dataset encode
 * batch.
 *
 * Shapes are (m, k, n) of the linearForward orientation
 * C(m x n) = A(m x k) * B(n x k)^T, i.e. batch x fan_in x fan_out.
 * The "dW" rows time the weight-gradient orientation
 * C(n x k) = G(m x n)^T * A(m x k) of the same layers.
 *
 * The acceptance bar is the geometric-mean single-thread speedup over
 * the compute-bound training shapes (k >= 64, where register tiling
 * pays; the k = 6 input layers are latency-bound and reported but not
 * gated). The binary exits nonzero below the 3x target so CI catches
 * kernel regressions. Results land in bench_out/gemm_kernels.{csv,
 * json} and the checked-in BENCH_gemm_kernels.json.
 *
 * Knobs: VAESA_GEMM_REPS (timing repetitions, default 7),
 *        VAESA_GEMM_MS (target milliseconds per measurement, def 40).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hh"
#include "tensor/kernels/kernels.hh"
#include "tensor/matrix.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace {

using namespace vaesa;

struct Shape
{
    const char *label;
    std::size_t m, k, n;
    bool transA;  // weight-gradient orientation
    bool gated;   // counts toward the speedup target
};

/** One multiply of the shape under the currently selected kernel. */
double
runOnce(const Shape &s, const Matrix &a, const Matrix &b, Matrix &c)
{
    if (s.transA)
        Matrix::multiplyTransAInto(a, b, c);
    else
        Matrix::multiplyTransBInto(a, b, c);
    return c(0, 0);
}

/** Best-of-reps ns per multiply, auto-scaling the inner iterations. */
double
nsPerMultiply(const Shape &s, const Matrix &a, const Matrix &b,
              Matrix &c, std::size_t reps, double target_ms)
{
    // Calibrate the inner loop to roughly target_ms per measurement.
    const auto t0 = std::chrono::steady_clock::now();
    double sink = runOnce(s, a, b, c);
    const auto t1 = std::chrono::steady_clock::now();
    const double once_s =
        std::chrono::duration<double>(t1 - t0).count();
    const auto iters = static_cast<std::size_t>(std::clamp(
        target_ms * 1e-3 / std::max(once_s, 1e-9), 1.0, 1e6));

    double best_s = 1e100;
    for (std::size_t r = 0; r < reps; ++r) {
        const auto r0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < iters; ++i)
            sink += runOnce(s, a, b, c);
        const auto r1 = std::chrono::steady_clock::now();
        best_s = std::min(
            best_s, std::chrono::duration<double>(r1 - r0).count() /
                        static_cast<double>(iters));
    }
    if (sink == -1.0)
        std::printf("impossible\n");
    return best_s * 1e9;
}

} // namespace

int
main()
{
    bench::banner("GEMM kernels",
                  "naive vs blocked vs pooled on training shapes");

    const auto reps =
        static_cast<std::size_t>(envInt("VAESA_GEMM_REPS", 7));
    const double target_ms =
        static_cast<double>(envInt("VAESA_GEMM_MS", 40));

    // Figure 11 training pipeline at batch 64 (see file comment),
    // plus the one-shot dataset encode. transA rows are the dW
    // gradients of the widest layers.
    const std::vector<Shape> shapes = {
        {"enc.in    64x6x128", 64, 6, 128, false, false},
        {"enc.h1    64x128x64", 64, 128, 64, false, true},
        {"dec.h1    64x64x128", 64, 64, 128, false, true},
        {"dec.out   64x128x6", 64, 128, 6, false, false},
        {"pred.h1   64x64x64", 64, 64, 64, false, true},
        {"dW.enc.h1 64x128x64", 64, 128, 64, true, true},
        {"dW.dec.h1 64x64x128", 64, 64, 128, true, true},
        {"encode.ds 2500x6x128", 2500, 6, 128, false, false},
    };

    Rng rng(71);
    std::printf("%-22s %12s %12s %12s %9s\n", "shape (m x k x n)",
                "naive ns", "blocked ns", "pooled ns", "speedup");
    bench::rule();

    ThreadPool pool(4);
    double log_speedup_sum = 0.0;
    std::size_t gated_count = 0;
    std::vector<double> naive_ns(shapes.size());
    std::vector<double> blocked_ns(shapes.size());
    std::vector<double> pooled_ns(shapes.size());

    for (std::size_t i = 0; i < shapes.size(); ++i) {
        const Shape &s = shapes[i];
        // transA: A is (m x n) gradient, B is (m x k) input.
        Matrix a(s.transA ? s.m : s.m, s.transA ? s.n : s.k);
        Matrix b(s.transA ? s.m : s.n, s.k);
        Matrix c(s.transA ? s.n : s.m, s.transA ? s.k : s.n);
        a.randomUniform(rng, -1.0, 1.0);
        b.randomUniform(rng, -1.0, 1.0);

        kernels::setGemmPool(nullptr);
        kernels::setActiveKernel(kernels::KernelKind::Naive);
        naive_ns[i] = nsPerMultiply(s, a, b, c, reps, target_ms);
        kernels::setActiveKernel(kernels::KernelKind::Blocked);
        blocked_ns[i] = nsPerMultiply(s, a, b, c, reps, target_ms);

        kernels::setGemmPool(&pool);
        pooled_ns[i] = nsPerMultiply(s, a, b, c, reps, target_ms);
        kernels::setGemmPool(nullptr);

        const double speedup = naive_ns[i] / blocked_ns[i];
        if (s.gated) {
            log_speedup_sum += std::log(speedup);
            ++gated_count;
        }
        std::printf("%-22s %12.0f %12.0f %12.0f %8.2fx%s\n", s.label,
                    naive_ns[i], blocked_ns[i], pooled_ns[i], speedup,
                    s.gated ? "" : "  (ungated)");
    }

    const double geomean =
        std::exp(log_speedup_sum / static_cast<double>(gated_count));
    const bool meets_target = geomean >= 3.0;

    bench::rule();
    std::printf("single-thread speedup geomean over %zu gated "
                "shapes: %.2fx (target 3x)\n",
                gated_count, geomean);

    CsvWriter csv(bench::csvPath("gemm_kernels.csv"));
    csv.header({"shape", "m", "k", "n", "orientation", "gated",
                "naive_ns", "blocked_ns", "pooled_ns", "speedup"});
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        const Shape &s = shapes[i];
        csv.row({s.label, std::to_string(s.m),
                 std::to_string(s.k), std::to_string(s.n),
                 s.transA ? "transA" : "transB",
                 s.gated ? "1" : "0", CsvWriter::cell(naive_ns[i]),
                 CsvWriter::cell(blocked_ns[i]),
                 CsvWriter::cell(pooled_ns[i]),
                 CsvWriter::cell(naive_ns[i] / blocked_ns[i])});
    }

    std::string body = "{\n  \"bench\": \"gemm_kernels\",\n"
                       "  \"shapes\": [\n";
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        char row[512];
        const Shape &s = shapes[i];
        std::snprintf(
            row, sizeof(row),
            "    {\"label\": \"%s\", \"m\": %zu, \"k\": %zu, "
            "\"n\": %zu, \"gated\": %s, \"naive_ns\": %.0f, "
            "\"blocked_ns\": %.0f, \"pooled_ns\": %.0f, "
            "\"speedup\": %.3f}%s\n",
            s.label, s.m, s.k, s.n, s.gated ? "true" : "false",
            naive_ns[i], blocked_ns[i], pooled_ns[i],
            naive_ns[i] / blocked_ns[i],
            i + 1 < shapes.size() ? "," : "");
        body += row;
    }
    char tail[256];
    std::snprintf(tail, sizeof(tail),
                  "  ],\n  \"speedup_geomean\": %.3f,\n"
                  "  \"target\": 3.0,\n"
                  "  \"meets_target\": %s\n}\n",
                  geomean, meets_target ? "true" : "false");
    body += tail;
    std::ofstream(bench::csvPath("gemm_kernels.json")) << body;
    std::ofstream(bench::repoRootPath("BENCH_gemm_kernels.json"))
        << body;

    bench::rule();
    std::printf("%s (baseline written to BENCH_gemm_kernels.json)\n",
                meets_target ? "meets 3x target"
                             : "BELOW 3x TARGET");
    return meets_target ? 0 : 1;
}
