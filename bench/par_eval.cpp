/**
 * @file
 * Threads-vs-throughput study for the parallel evaluation layer:
 * scores one overlapping config batch on resnet50 serially
 * (CachingEvaluator) and through ParallelEvaluator at 1/2/4/8
 * threads, verifying bit-identical results at every width and
 * reporting speedup and cache hit-rate parity. Drops both a CSV and
 * a baseline JSON (bench_out/par_eval.json) for regression tracking.
 *
 * Knobs: VAESA_PAR_BATCH (total configs, default 192),
 *        VAESA_PAR_DISTINCT (distinct configs, default 48).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common.hh"
#include "sched/parallel_evaluator.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace {

using namespace vaesa;

/** Deterministic batch with duplicates so the cache sees real hits. */
std::vector<AcceleratorConfig>
overlappingBatch(std::size_t count, std::size_t distinct,
                 std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<AcceleratorConfig> pool;
    pool.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i)
        pool.push_back(designSpace().randomConfig(rng));
    std::vector<AcceleratorConfig> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        batch.push_back(pool[rng.index(distinct)]);
    return batch;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
bitIdentical(const std::vector<EvalResult> &a,
             const std::vector<EvalResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].valid != b[i].valid ||
            a[i].latencyCycles != b[i].latencyCycles ||
            a[i].energyPj != b[i].energyPj || a[i].edp != b[i].edp)
            return false;
    return true;
}

} // namespace

int
main()
{
    bench::banner("Parallel evaluation",
                  "serial vs thread-pool batch scoring on resnet50");

    const auto batchSize = static_cast<std::size_t>(
        envInt("VAESA_PAR_BATCH", 192));
    const auto distinct = static_cast<std::size_t>(
        envInt("VAESA_PAR_DISTINCT", 48));
    const Workload resnet = workloadByName("resnet50");
    const std::vector<AcceleratorConfig> batch =
        overlappingBatch(batchSize, distinct, 17);

    // Serial baseline on the caching evaluator.
    CachingEvaluator serialCache;
    const auto s0 = std::chrono::steady_clock::now();
    std::vector<EvalResult> serial;
    serial.reserve(batch.size());
    for (const AcceleratorConfig &config : batch)
        serial.push_back(
            serialCache.evaluateWorkload(config, resnet.layers));
    const auto s1 = std::chrono::steady_clock::now();
    const double serialSec = seconds(s0, s1);
    const double serialLookups = static_cast<double>(
        serialCache.hits() + serialCache.misses());
    const double serialHitRate =
        static_cast<double>(serialCache.hits()) / serialLookups;

    std::printf("batch: %zu configs (%zu distinct) x %zu layers, "
                "serial %.3f s (%.1f configs/s, hit rate %.3f)\n",
                batch.size(), distinct, resnet.layers.size(),
                serialSec,
                static_cast<double>(batch.size()) / serialSec,
                serialHitRate);
    bench::rule();
    std::printf("%8s %10s %12s %9s %9s %14s\n", "threads", "time_s",
                "configs/s", "speedup", "hit_rate", "bit_identical");

    CsvWriter csv(bench::csvPath("par_eval.csv"));
    csv.header({"threads", "time_s", "configs_per_s", "speedup",
                "hit_rate", "bit_identical"});

    std::string rowsJson;
    bool allIdentical = true;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        CachingEvaluator cache;
        ThreadPool pool(threads);
        const ParallelEvaluator parallel(cache, pool);
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<EvalResult> got =
            parallel.evaluateBatch(batch, resnet.layers);
        const auto t1 = std::chrono::steady_clock::now();

        const double sec = seconds(t0, t1);
        const double rate = static_cast<double>(batch.size()) / sec;
        const double speedup = serialSec / sec;
        const double lookups =
            static_cast<double>(cache.hits() + cache.misses());
        const double hitRate =
            static_cast<double>(cache.hits()) / lookups;
        const bool identical = bitIdentical(got, serial);
        allIdentical = allIdentical && identical;

        std::printf("%8zu %10.3f %12.1f %9.2f %9.3f %14s\n", threads,
                    sec, rate, speedup, hitRate,
                    identical ? "yes" : "NO");
        csv.row({std::to_string(threads), CsvWriter::cell(sec),
                 CsvWriter::cell(rate), CsvWriter::cell(speedup),
                 CsvWriter::cell(hitRate), identical ? "1" : "0"});

        char row[256];
        std::snprintf(row, sizeof(row),
                      "    {\"threads\": %zu, \"time_s\": %.6f, "
                      "\"configs_per_s\": %.2f, \"speedup\": %.3f, "
                      "\"hit_rate\": %.4f, \"bit_identical\": %s}",
                      threads, sec, rate, speedup, hitRate,
                      identical ? "true" : "false");
        rowsJson += (rowsJson.empty() ? "" : ",\n");
        rowsJson += row;
    }

    // Baseline JSON for regression tracking across commits: one
    // working copy under bench_out/ and the checked-in snapshot at
    // the repo root.
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"par_eval\",\n"
         << "  \"workload\": \"resnet50\",\n"
         << "  \"batch_configs\": " << batch.size() << ",\n"
         << "  \"distinct_configs\": " << distinct << ",\n"
         << "  \"layers\": " << resnet.layers.size() << ",\n"
         << "  \"serial_time_s\": " << serialSec << ",\n"
         << "  \"serial_hit_rate\": " << serialHitRate << ",\n"
         << "  \"all_bit_identical\": "
         << (allIdentical ? "true" : "false") << ",\n"
         << "  \"runs\": [\n"
         << rowsJson << "\n  ]\n}\n";
    std::ofstream(bench::csvPath("par_eval.json")) << json.str();
    std::ofstream(bench::repoRootPath("BENCH_par_eval.json"))
        << json.str();

    bench::rule();
    std::printf("results %s; baseline written to "
                "BENCH_par_eval.json\n",
                allIdentical ? "bit-identical at every width"
                             : "DIVERGED (bug!)");
    return allIdentical ? 0 : 1;
}
