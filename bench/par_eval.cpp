/**
 * @file
 * Throughput gate for the batch evaluation pipeline: scores one
 * large overlapping config batch on resnet50 through the SAME path
 * the search drivers use — serially per config on a plain Evaluator
 * (the pre-batch driver loop) versus evaluateConfigBatch() at
 * 1/2/4/8 threads (dedup + SoA cost kernels + work-stealing
 * chunks) — and FAILS (nonzero exit) when the 8-thread batch path
 * does not clear the target speedup or any width diverges from the
 * serial values bit-for-bit. The cached ParallelEvaluator path is
 * measured and reported alongside for context, not gated: its
 * serial baseline already amortizes repeats through the cache.
 *
 * Knobs: VAESA_PAR_BATCH (total configs, default 12288),
 *        VAESA_PAR_DISTINCT (distinct configs, default 1024),
 *        VAESA_PAR_TARGET (gated 8-thread speedup, default 6.0).
 *
 * Outputs: bench_out/par_eval.csv, bench_out/par_eval.json, and the
 * checked-in snapshot BENCH_par_eval.json at the repo root.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common.hh"
#include "sched/parallel_evaluator.hh"
#include "util/env.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace {

using namespace vaesa;

/** Deterministic batch with duplicates, mirroring a driver batch
 *  where many candidates decode to the same grid point. */
std::vector<AcceleratorConfig>
overlappingBatch(std::size_t count, std::size_t distinct,
                 std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<AcceleratorConfig> pool;
    pool.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i)
        pool.push_back(designSpace().randomConfig(rng));
    std::vector<AcceleratorConfig> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        batch.push_back(pool[rng.index(distinct)]);
    return batch;
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
bitIdentical(const std::vector<EvalResult> &a,
             const std::vector<EvalResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].valid != b[i].valid ||
            a[i].latencyCycles != b[i].latencyCycles ||
            a[i].energyPj != b[i].energyPj || a[i].edp != b[i].edp)
            return false;
    return true;
}

struct Row
{
    const char *path;
    std::size_t threads;
    double sec;
    double speedup;
    bool identical;
};

} // namespace

int
main()
{
    bench::banner("Parallel evaluation",
                  "driver-path serial vs batch pipeline on resnet50");

    const auto batchSize = static_cast<std::size_t>(
        envInt("VAESA_PAR_BATCH", 12288));
    const auto distinct = static_cast<std::size_t>(
        envInt("VAESA_PAR_DISTINCT", 1024));
    const double target = envDouble("VAESA_PAR_TARGET", 6.0);
    const Workload resnet = workloadByName("resnet50");
    const std::vector<AcceleratorConfig> batch =
        overlappingBatch(batchSize, distinct, 17);

    // GATED baseline: the pre-batch driver loop — one uncached
    // evaluateWorkload() per config, repeats and all. This is what
    // random/GA/BO warm-up actually cost before batch routing.
    Evaluator plain;
    const auto u0 = std::chrono::steady_clock::now();
    std::vector<EvalResult> serial;
    serial.reserve(batch.size());
    for (const AcceleratorConfig &config : batch)
        serial.push_back(plain.evaluateWorkload(config, resnet.layers));
    const auto u1 = std::chrono::steady_clock::now();
    const double serialSec = seconds(u0, u1);

    // Context baseline: the same loop through a warm-capable cache.
    CachingEvaluator serialCache;
    const auto c0 = std::chrono::steady_clock::now();
    std::vector<EvalResult> cachedSerial;
    cachedSerial.reserve(batch.size());
    for (const AcceleratorConfig &config : batch)
        cachedSerial.push_back(
            serialCache.evaluateWorkload(config, resnet.layers));
    const auto c1 = std::chrono::steady_clock::now();
    const double cachedSec = seconds(c0, c1);
    const double cachedHitRate =
        static_cast<double>(serialCache.hits()) /
        static_cast<double>(serialCache.hits() +
                            serialCache.misses());

    std::printf("batch: %zu configs (%zu distinct) x %zu layers\n",
                batch.size(), distinct, resnet.layers.size());
    std::printf("serial driver loop (uncached): %.3f s "
                "(%.1f configs/s) <- gated baseline\n",
                serialSec,
                static_cast<double>(batch.size()) / serialSec);
    std::printf("serial cached loop:            %.3f s "
                "(hit rate %.3f, reported only)\n",
                cachedSec, cachedHitRate);
    bench::rule();
    std::printf("%14s %8s %10s %9s %14s\n", "path", "threads",
                "time_s", "speedup", "bit_identical");

    std::vector<Row> rows;
    bool allIdentical = true;
    double speedupAt8 = 0.0;

    // The driver batch path: uncached evaluateConfigBatch, exactly
    // what InputSpaceObjective::evaluateBatch runs underneath.
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<EvalResult> got =
            evaluateConfigBatch(plain, batch, resnet.layers, pool);
        const auto t1 = std::chrono::steady_clock::now();
        const double sec = seconds(t0, t1);
        const double speedup = serialSec / sec;
        const bool identical = bitIdentical(got, serial);
        allIdentical = allIdentical && identical;
        if (threads == 8)
            speedupAt8 = speedup;
        rows.push_back({"batch", threads, sec, speedup, identical});
        std::printf("%14s %8zu %10.3f %9.2f %14s\n", "batch",
                    threads, sec, speedup, identical ? "yes" : "NO");
    }

    // Context: the cached ParallelEvaluator path (search loops that
    // revisit configs). Speedup is against the CACHED serial loop.
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        CachingEvaluator cache;
        ThreadPool pool(threads);
        const ParallelEvaluator parallel(cache, pool);
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<EvalResult> got =
            parallel.evaluateBatch(batch, resnet.layers);
        const auto t1 = std::chrono::steady_clock::now();
        const double sec = seconds(t0, t1);
        const double speedup = cachedSec / sec;
        const bool identical = bitIdentical(got, serial);
        allIdentical = allIdentical && identical;
        rows.push_back(
            {"batch_cached", threads, sec, speedup, identical});
        std::printf("%14s %8zu %10.3f %9.2f %14s\n", "batch_cached",
                    threads, sec, speedup, identical ? "yes" : "NO");
    }

    CsvWriter csv(bench::csvPath("par_eval.csv"));
    csv.header({"path", "threads", "time_s", "speedup",
                "bit_identical"});
    std::string rowsJson;
    for (const Row &row : rows) {
        csv.row({row.path, std::to_string(row.threads),
                 CsvWriter::cell(row.sec), CsvWriter::cell(row.speedup),
                 row.identical ? "1" : "0"});
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"path\": \"%s\", \"threads\": %zu, "
                      "\"time_s\": %.6f, \"speedup\": %.3f, "
                      "\"bit_identical\": %s}",
                      row.path, row.threads, row.sec, row.speedup,
                      row.identical ? "true" : "false");
        rowsJson += (rowsJson.empty() ? "" : ",\n");
        rowsJson += buf;
    }

    const bool meetsTarget = speedupAt8 >= target;
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"par_eval\",\n"
         << "  \"workload\": \"resnet50\",\n"
         << "  \"batch_configs\": " << batch.size() << ",\n"
         << "  \"distinct_configs\": " << distinct << ",\n"
         << "  \"layers\": " << resnet.layers.size() << ",\n"
         << "  \"serial_uncached_time_s\": " << serialSec << ",\n"
         << "  \"serial_cached_time_s\": " << cachedSec << ",\n"
         << "  \"serial_cached_hit_rate\": " << cachedHitRate << ",\n"
         << "  \"target_speedup_at_8\": " << target << ",\n"
         << "  \"speedup_at_8\": " << speedupAt8 << ",\n"
         << "  \"meets_target\": "
         << (meetsTarget ? "true" : "false") << ",\n"
         << "  \"all_bit_identical\": "
         << (allIdentical ? "true" : "false") << ",\n"
         << "  \"runs\": [\n"
         << rowsJson << "\n  ]\n}\n";
    std::ofstream(bench::csvPath("par_eval.json")) << json.str();
    std::ofstream(bench::repoRootPath("BENCH_par_eval.json"))
        << json.str();

    bench::rule();
    std::printf("8-thread batch speedup %.2fx vs %.2fx target: %s; "
                "results %s\n",
                speedupAt8, target,
                meetsTarget ? "PASS" : "FAIL",
                allIdentical ? "bit-identical at every width"
                             : "DIVERGED (bug!)");
    return (meetsTarget && allIdentical) ? 0 : 1;
}
