/**
 * @file
 * Reproduces Figure 4: visualization of the training data encoded
 * into a 2-D latent space. The paper shows points clearly grouped by
 * feature values (number of MACs, global-buffer size) and by EDP.
 * As the textual analogue of the scatter plots, this harness reports
 * (a) the linear correlation of each latent axis with those
 * quantities and (b) a binned R^2 -- the fraction of each quantity's
 * variance explained by *position* in the latent plane (computed
 * over a 10x10 grid of latent bins), which is the quantitative
 * version of "points are grouped by feature values". The full
 * scatter is dumped to CSV for plotting.
 */

#include "common.hh"

#include <cmath>
#include <algorithm>
#include <map>

#include "util/stats.hh"

namespace {

/**
 * Fraction of variance of y explained by a piecewise-constant
 * predictor over a bins x bins grid of (z1, z2) positions.
 */
double
binnedR2(const std::vector<double> &z1, const std::vector<double> &z2,
         const std::vector<double> &y, int bins)
{
    const auto [z1_min, z1_max] =
        std::minmax_element(z1.begin(), z1.end());
    const auto [z2_min, z2_max] =
        std::minmax_element(z2.begin(), z2.end());
    const double w1 = std::max(*z1_max - *z1_min, 1e-12);
    const double w2 = std::max(*z2_max - *z2_min, 1e-12);

    std::map<int, std::pair<double, int>> cells; // sum, count
    std::vector<int> cell_of(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
        int b1 = static_cast<int>((z1[i] - *z1_min) / w1 * bins);
        int b2 = static_cast<int>((z2[i] - *z2_min) / w2 * bins);
        b1 = std::min(b1, bins - 1);
        b2 = std::min(b2, bins - 1);
        const int cell = b1 * bins + b2;
        cell_of[i] = cell;
        cells[cell].first += y[i];
        cells[cell].second += 1;
    }

    const double y_mean = vaesa::mean(y);
    double ss_tot = 0.0;
    double ss_res = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const auto &[sum, count] = cells[cell_of[i]];
        const double cell_mean = sum / count;
        ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
        ss_res += (y[i] - cell_mean) * (y[i] - cell_mean);
    }
    return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
}

} // namespace

int
main()
{
    using namespace vaesa;
    const bench::Scale scale = bench::readScale();
    bench::banner("Figure 4",
                  "Training data encoded into a 2-D latent space");

    Evaluator evaluator;
    const Dataset data =
        bench::buildDataset(evaluator, scale.datasetSize, 42);
    VaesaFramework framework = bench::trainFramework(
        data, /*latent_dim=*/2, scale.epochs, 1e-4, 7);

    const std::size_t n = std::min<std::size_t>(data.size(), 5000);
    std::vector<double> z1, z2, log_macs, log_gbuf, log_edp;
    CsvWriter csv(bench::csvPath("fig04_latent_space.csv"));
    csv.header({"z1", "z2", "num_macs", "global_buf_bytes", "edp"});

    const Matrix mu = framework.vae().encodeMean(data.hwFeatures());
    for (std::size_t i = 0; i < n; ++i) {
        const DataSample &s = data.samples()[i];
        z1.push_back(mu(i, 0));
        z2.push_back(mu(i, 1));
        log_macs.push_back(
            std::log2(static_cast<double>(s.config.numMacs)));
        log_gbuf.push_back(std::log2(
            static_cast<double>(s.config.globalBufBytes)));
        log_edp.push_back(s.logLatency + s.logEnergy);
        csv.rowValues({mu(i, 0), mu(i, 1),
                       static_cast<double>(s.config.numMacs),
                       static_cast<double>(
                           s.config.globalBufBytes),
                       data.sampleEdp(i)});
    }

    std::printf("%zu encoded points (final recon MSE %.5f)\n\n", n,
                framework.history().back().reconLoss);
    std::printf("%-28s %9s %9s %12s\n", "quantity (log2)",
                "corr z1", "corr z2", "binned R^2");
    const struct
    {
        const char *name;
        const std::vector<double> &values;
    } rows[] = {
        {"number of MAC units", log_macs},
        {"global buffer size", log_gbuf},
        {"EDP (latency x energy)", log_edp},
    };
    bool structured = true;
    for (const auto &row : rows) {
        const double c1 = correlation(z1, row.values);
        const double c2 = correlation(z2, row.values);
        const double r2 = binnedR2(z1, z2, row.values, 10);
        std::printf("%-28s %9.3f %9.3f %12.3f\n", row.name, c1, c2,
                    r2);
        structured &= r2 > 0.25;
    }

    bench::rule();
    std::printf("paper claim: points are grouped by feature values "
                "in the latent space\n");
    std::printf("measured:    latent position %s each quantity "
                "(binned R^2 > 0.25 %s)\n",
                structured ? "explains" : "does NOT explain",
                structured ? "for all three" : "failed");
    std::printf("scatter CSV: bench_out/fig04_latent_space.csv\n");
    return 0;
}
