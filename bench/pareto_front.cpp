/**
 * @file
 * Beyond the paper's figures: the latency/energy trade-off behind
 * the EDP objective. The paper picks EDP "because it allows us to
 * investigate Pareto-optimal design points that trade off latency
 * and energy" (Section IV-A2); this harness makes the trade-off
 * explicit by sweeping random designs on ResNet-50, extracting the
 * (latency, energy) Pareto front, and showing where the EDP-optimal
 * design and per-metric optima sit on it.
 */

#include "common.hh"

#include <cmath>

#include "dse/pareto.hh"
#include "util/stats.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    banner("Pareto study",
           "latency/energy trade-off of ResNet-50 designs");

    Evaluator evaluator;
    const Workload resnet = workloadByName("resnet50");
    const auto sweep =
        static_cast<std::size_t>(envInt("VAESA_PARETO_SWEEP", 4000));

    Rng rng(23);
    std::vector<BiPoint> points;
    std::vector<AcceleratorConfig> configs;
    while (points.size() < sweep) {
        const AcceleratorConfig config =
            designSpace().randomConfig(rng);
        const EvalResult r =
            evaluator.evaluateWorkload(config, resnet.layers);
        if (!r.valid)
            continue;
        points.push_back({r.latencyCycles, r.energyPj});
        configs.push_back(config);
    }

    const std::vector<std::size_t> front = paretoFront(points);

    // Locate the per-metric optima.
    std::size_t best_edp = 0;
    std::size_t best_lat = 0;
    std::size_t best_en = 0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].first * points[i].second <
            points[best_edp].first * points[best_edp].second)
            best_edp = i;
        if (points[i].first < points[best_lat].first)
            best_lat = i;
        if (points[i].second < points[best_en].second)
            best_en = i;
    }

    CsvWriter csv(csvPath("pareto_front.csv"));
    csv.header({"latency_cycles", "energy_pj", "on_front",
                "is_edp_opt"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool on_front = false;
        for (std::size_t f : front)
            on_front |= f == i;
        csv.rowValues({points[i].first, points[i].second,
                       on_front ? 1.0 : 0.0,
                       i == best_edp ? 1.0 : 0.0});
    }

    std::printf("%zu valid designs sampled; Pareto front has %zu "
                "points\n\n",
                points.size(), front.size());
    std::printf("front (decimated):\n%16s %16s\n", "latency",
                "energy");
    const std::size_t stride =
        std::max<std::size_t>(1, front.size() / 12);
    for (std::size_t i = 0; i < front.size(); i += stride) {
        std::printf("%16.4g %16.4g\n", points[front[i]].first,
                    points[front[i]].second);
    }

    double ref_lat = 0.0;
    double ref_en = 0.0;
    for (const BiPoint &p : points) {
        ref_lat = std::max(ref_lat, p.first);
        ref_en = std::max(ref_en, p.second);
    }
    std::vector<BiPoint> front_points;
    for (std::size_t f : front)
        front_points.push_back(points[f]);
    const double hv =
        hypervolume(front_points, {ref_lat, ref_en});

    rule();
    std::printf("hypervolume (vs worst corner): %.4g\n", hv);
    std::printf("latency-optimal design: %s\n",
                configs[best_lat].describe().c_str());
    std::printf("energy-optimal  design: %s\n",
                configs[best_en].describe().c_str());
    std::printf("EDP-optimal     design: %s\n",
                configs[best_edp].describe().c_str());
    std::printf("EDP optimum dominated by some sampled point: %s "
                "(it should sit on/near the front)\n",
                isDominated(points[best_edp], points) ? "yes"
                                                       : "no");
    return 0;
}
