/**
 * @file
 * Ablation (beyond the paper): quality of the one-shot scheduler
 * (CoSA stand-in) against a Timeloop-style random mapping search.
 * The VAESA pipeline evaluates thousands of design points, so the
 * mapper must be both fast and near-optimal; this bench quantifies
 * the EDP gap and the throughput gap between the two on every
 * training layer at three architectures.
 */

#include "common.hh"

#include <chrono>
#include <cmath>

#include "sched/random_mapper.hh"
#include "sched/scheduler.hh"
#include "util/stats.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    banner("Ablation: one-shot scheduler vs random mapping search",
           "EDP ratio (one-shot / searched; <1 means one-shot "
           "wins) and mappings/second");

    CostModel model;
    Scheduler scheduler(model);
    RandomMapper::Options mapper_options;
    mapper_options.samples = static_cast<std::size_t>(
        envInt("VAESA_MAPPER_SAMPLES", 200));
    RandomMapper mapper(model, mapper_options);

    AcceleratorConfig configs[3];
    configs[0] = {16, 1024, 48 * 1024, 1024 * 1024, 64 * 1024,
                  128 * 1024};
    configs[1] = {64, 4096, 96 * 1024, 4 * 1024 * 1024, 256 * 1024,
                  256 * 1024};
    configs[2] = {4, 256, 12 * 1024, 128 * 1024, 16 * 1024,
                  64 * 1024};

    CsvWriter csv(csvPath("abl_mapper.csv"));
    csv.header({"config", "layer", "one_shot_edp", "searched_edp",
                "ratio"});

    std::vector<double> log_ratios;
    double one_shot_seconds = 0.0;
    double search_seconds = 0.0;
    std::size_t mapped = 0;

    Rng rng(13);
    for (int ci = 0; ci < 3; ++ci) {
        const AcceleratorConfig &arch = configs[ci];
        for (const Workload &w : trainingWorkloads()) {
            for (const LayerShape &layer : w.layers) {
                const auto t0 =
                    std::chrono::steady_clock::now();
                const auto one_shot =
                    scheduler.schedule(arch, layer);
                const auto t1 =
                    std::chrono::steady_clock::now();
                const auto searched =
                    mapper.search(arch, layer, rng);
                const auto t2 =
                    std::chrono::steady_clock::now();
                one_shot_seconds +=
                    std::chrono::duration<double>(t1 - t0).count();
                search_seconds +=
                    std::chrono::duration<double>(t2 - t1).count();
                if (!one_shot || !searched)
                    continue;
                const double edp_one =
                    model.evaluate(arch, layer, *one_shot).edp();
                const double edp_search =
                    model.evaluate(arch, layer, *searched).edp();
                const double ratio = edp_one / edp_search;
                log_ratios.push_back(std::log(ratio));
                csv.row({std::to_string(ci), layer.name,
                         CsvWriter::cell(edp_one),
                         CsvWriter::cell(edp_search),
                         CsvWriter::cell(ratio)});
                ++mapped;
            }
        }
    }

    const double geomean = std::exp(mean(log_ratios));
    double wins = 0;
    for (double lr : log_ratios)
        wins += lr <= 0.0;

    std::printf("%zu (arch, layer) pairs mapped by both\n\n",
                mapped);
    std::printf("geomean EDP ratio one-shot/searched: %.3f\n",
                geomean);
    std::printf("one-shot at least as good on %.0f%% of pairs\n",
                100.0 * wins / static_cast<double>(mapped));
    std::printf("time per mapping: one-shot %.1f us, %zu-sample "
                "search %.1f us (%.0fx slower)\n",
                1e6 * one_shot_seconds / mapped,
                mapper_options.samples,
                1e6 * search_seconds / mapped,
                search_seconds / one_shot_seconds);

    rule();
    std::printf("design premise: the one-shot mapper is within a "
                "small factor of search at a fraction of the cost "
                "(CoSA's claim, and what makes 2000-sample DSE "
                "tractable)\n");
    return 0;
}
