#include "common.hh"

#include <cmath>
#include <filesystem>

namespace vaesa::bench {

Scale
readScale()
{
    Scale s;
    s.datasetSize =
        static_cast<std::size_t>(envInt("VAESA_DATASET", 8000));
    s.epochs = static_cast<std::size_t>(envInt("VAESA_EPOCHS", 50));
    s.searchSamples =
        static_cast<std::size_t>(envInt("VAESA_SAMPLES", 200));
    s.seeds = static_cast<std::size_t>(envInt("VAESA_SEEDS", 3));
    s.gdStarts = static_cast<std::size_t>(envInt("VAESA_STARTS", 60));
    return s;
}

std::vector<LayerShape>
fullLayerPool()
{
    std::vector<LayerShape> pool;
    for (const Workload &w : trainingWorkloads())
        pool.insert(pool.end(), w.layers.begin(), w.layers.end());
    return pool;
}

Dataset
buildDataset(const Evaluator &evaluator, std::size_t size,
             std::uint64_t seed)
{
    Rng rng(seed);
    return DatasetBuilder(evaluator, fullLayerPool())
        .build(size, rng);
}

VaesaFramework
trainFramework(const Dataset &data, std::size_t latent_dim,
               std::size_t epochs, double alpha, std::uint64_t seed)
{
    FrameworkOptions options;
    options.vae.latentDim = latent_dim;
    options.vae.hiddenDims = {128, 64};
    options.predictorHidden = {64, 64};
    options.train.epochs = epochs;
    options.train.kldWeight = alpha;
    return VaesaFramework(data, options, seed);
}

std::string
csvPath(const std::string &name)
{
    std::filesystem::create_directories("bench_out");
    return "bench_out/" + name;
}

std::string
repoRootPath(const std::string &name)
{
#ifdef VAESA_SOURCE_ROOT
    return std::string(VAESA_SOURCE_ROOT) + "/" + name;
#else
    return name;
#endif
}

std::string
sigmaText(double sigma)
{
    if (std::isnan(sigma))
        return "n/a";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g", sigma);
    return buf;
}

void
rule()
{
    std::printf("-------------------------------------------------"
                "-----------------------------\n");
}

void
banner(const std::string &experiment, const std::string &what)
{
    rule();
    std::printf("VAESA reproduction | %s\n", experiment.c_str());
    std::printf("%s\n", what.c_str());
    rule();
}

} // namespace vaesa::bench
