/**
 * @file
 * Reproduces Figure 13: real EDP of decoded designs after 0, 100,
 * and 200 gradient-descent steps from random latent starting points
 * (the paper uses 200 starts and reports 306x / 390x improvement at
 * 100 / 200 steps relative to the decoded start points). The scale
 * of the improvement factor depends on how bad random latent starts
 * are; the reproduction target is large monotone improvement before
 * any simulation is run.
 */

#include "common.hh"

#include <cmath>

#include "util/stats.hh"
#include "vaesa/latent_dse.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    const Scale scale = readScale();
    banner("Figure 13",
           "EDP improvement vs number of GD steps over " +
               std::to_string(scale.gdStarts) +
               " random latent starts");

    Evaluator evaluator;
    const Dataset data =
        buildDataset(evaluator, scale.datasetSize, 42);
    VaesaFramework framework =
        trainFramework(data, 4, scale.epochs, 1e-4, 7);

    // Start points are drawn wide (2x the data radius) so that, as
    // in the paper, un-descended decodes are poor designs.
    VaeGdOptions options;
    options.startSigma =
        std::max(2.0, 2.0 * framework.latentRadius(data));
    options.radius = 2.0 * options.startSigma;

    const std::vector<std::size_t> step_marks{0, 100, 200};
    CsvWriter csv(csvPath("fig13_gd_steps.csv"));
    csv.header({"layer", "steps", "geomean_edp", "improvement"});

    std::printf("%-14s %14s %14s %14s %10s %10s\n", "layer",
                "EDP@0", "EDP@100", "EDP@200", "impr@100",
                "impr@200");

    std::vector<double> log_impr_100, log_impr_200;
    Rng rng(99);
    for (const LayerShape &layer : gdTestLayers()) {
        const auto means = vaeGdStepStudy(
            framework, evaluator, layer, scale.gdStarts,
            step_marks, options, rng);
        if (!std::isfinite(means[0]) || !std::isfinite(means[1]) ||
            !std::isfinite(means[2])) {
            std::printf("%-14s  (no valid decodes)\n",
                        layer.name.c_str());
            continue;
        }
        const double impr100 = means[0] / means[1];
        const double impr200 = means[0] / means[2];
        std::printf("%-14s %14.4g %14.4g %14.4g %9.1fx %9.1fx\n",
                    layer.name.c_str(), means[0], means[1],
                    means[2], impr100, impr200);
        for (std::size_t m = 0; m < step_marks.size(); ++m) {
            csv.row({layer.name, std::to_string(step_marks[m]),
                     CsvWriter::cell(means[m]),
                     CsvWriter::cell(means[0] / means[m])});
        }
        log_impr_100.push_back(std::log(impr100));
        log_impr_200.push_back(std::log(impr200));
    }

    const double geo100 = std::exp(mean(log_impr_100));
    const double geo200 = std::exp(mean(log_impr_200));
    rule();
    std::printf("paper: 306x improvement after 100 steps, 390x "
                "after 200 (relative to random starts)\n");
    std::printf("measured (geomean over layers): %.0fx after 100 "
                "steps, %.0fx after 200 steps\n",
                geo100, geo200);
    std::printf("shape check: improvement at 200 >= at 100: %s\n",
                geo200 >= geo100 * 0.99 ? "reproduced"
                                         : "NOT reproduced");
    return 0;
}
