/**
 * @file
 * Shared helpers for the reproduction harness binaries: default
 * experiment sizes (scaled by VAESA_* env vars), dataset/framework
 * construction, and table formatting.
 *
 * Every bench binary prints the rows/series of one paper table or
 * figure to stdout and drops a machine-readable CSV into
 * ./bench_out/ for replotting.
 */

#ifndef VAESA_BENCH_COMMON_HH
#define VAESA_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sched/evaluator.hh"
#include "util/csv.hh"
#include "util/env.hh"
#include "vaesa/framework.hh"
#include "workload/networks.hh"

namespace vaesa::bench {

/** Experiment sizes after applying the VAESA_* env knobs. */
struct Scale
{
    /** Training-set size (paper: 500 K). */
    std::size_t datasetSize;

    /** Training epochs. */
    std::size_t epochs;

    /** Search budget for the BO study (paper: 2000). */
    std::size_t searchSamples;

    /** Random seeds per experiment (paper: 3 for BO, 5 for GD). */
    std::size_t seeds;

    /** GD random starts for Figure 13 (paper: 200). */
    std::size_t gdStarts;
};

/** Read the scale knobs (VAESA_DATASET/EPOCHS/SAMPLES/SEEDS/STARTS). */
Scale readScale();

/** All unique layers of the four training workloads. */
std::vector<LayerShape> fullLayerPool();

/** Build the standard training dataset at the given scale. */
Dataset buildDataset(const Evaluator &evaluator, std::size_t size,
                     std::uint64_t seed);

/** Train a framework with the paper's defaults at a latent dim. */
VaesaFramework trainFramework(const Dataset &data,
                              std::size_t latent_dim,
                              std::size_t epochs, double alpha,
                              std::uint64_t seed);

/** Create ./bench_out/ (if needed) and return the CSV path. */
std::string csvPath(const std::string &name);

/**
 * Path of a checked-in benchmark summary at the repo root (e.g.
 * BENCH_par_eval.json). Resolved via the compile-time source root so
 * the file lands in the tree regardless of the working directory.
 */
std::string repoRootPath(const std::string &name);

/**
 * Format a spread statistic (stddev/variance) for tables and CSVs:
 * "n/a" when the value is NaN (undefined for n < 2 — see
 * util/stats.hh), otherwise "%.3g".
 */
std::string sigmaText(double sigma);

/** Print a rule line. */
void rule();

/** Print the harness banner for one experiment. */
void banner(const std::string &experiment, const std::string &what);

} // namespace vaesa::bench

#endif // VAESA_BENCH_COMMON_HH
