/**
 * @file
 * Ablation: the paper's dataset-growth flow (Section III-B3). Plain
 * vae_bo is limited by the decoder manifold learned from the initial
 * dataset -- on ResNet-50 at reduced scale it plateaus above the bo
 * baseline (see EXPERIMENTS.md, Table V). Adaptive vae_bo fine-tunes
 * the VAE + predictors on the designs evaluated during the search,
 * refreshing the manifold around the visited region. This bench
 * compares plain vs adaptive vae_bo on ResNet-50 across seeds.
 */

#include "common.hh"

#include <algorithm>
#include <cmath>

#include "util/stats.hh"
#include "vaesa/adaptive.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    Scale scale = readScale();
    // Each seed trains two frameworks and runs two full searches;
    // cap the default seed count to keep the sweep affordable.
    scale.seeds = static_cast<std::size_t>(
        envInt("VAESA_ADAPTIVE_SEEDS",
               static_cast<std::int64_t>(std::min<std::size_t>(
                   scale.seeds, 2))));
    banner("Ablation: adaptive (fine-tuning) vae_bo",
           "plain vs adaptive vae_bo on ResNet-50, " +
               std::to_string(scale.seeds) + " seeds x " +
               std::to_string(scale.searchSamples) + " samples");

    Evaluator evaluator;
    const Dataset data =
        buildDataset(evaluator, scale.datasetSize, 42);
    const Workload resnet = workloadByName("resnet50");

    CsvWriter csv(csvPath("abl_adaptive_bo.csv"));
    csv.header({"seed", "variant", "best_edp", "fine_tunes"});

    std::vector<double> plain_best;
    std::vector<double> adaptive_best;
    for (std::size_t seed = 0; seed < scale.seeds; ++seed) {
        // Fresh framework per variant: the adaptive flow mutates it.
        VaesaFramework plain_fw =
            trainFramework(data, 4, scale.epochs, 1e-4, 7 + seed);
        const double radius = 1.5 * plain_fw.latentRadius(data);

        BoOptions bo_options;
        bo_options.uniformCandidates = 1024;
        bo_options.localCandidates = 256;

        LatentObjective plain_obj(plain_fw, evaluator,
                                  resnet.layers, radius);
        Rng rng_plain(900 + seed);
        const double plain = BayesOpt(bo_options)
                                 .run(plain_obj,
                                      scale.searchSamples,
                                      rng_plain)
                                 .best();
        plain_best.push_back(plain);
        csv.row({std::to_string(seed), "plain",
                 CsvWriter::cell(plain), "0"});

        VaesaFramework adaptive_fw =
            trainFramework(data, 4, scale.epochs, 1e-4, 7 + seed);
        AdaptiveBoOptions adaptive_options;
        adaptive_options.bo = bo_options;
        adaptive_options.radius = radius;
        adaptive_options.retrainInterval =
            std::max<std::size_t>(25, scale.searchSamples / 4);
        AdaptiveVaeBo flow(adaptive_fw, evaluator,
                           adaptive_options);
        Rng rng_adaptive(900 + seed);
        const double adaptive =
            flow.run(resnet.layers, scale.searchSamples,
                     rng_adaptive)
                .best();
        adaptive_best.push_back(adaptive);
        csv.row({std::to_string(seed), "adaptive",
                 CsvWriter::cell(adaptive),
                 std::to_string(flow.fineTuneCount())});

        std::printf("seed %zu: plain %.4g, adaptive %.4g (%zu "
                    "fine-tunes)\n",
                    seed, plain, adaptive, flow.fineTuneCount());
    }

    rule();
    const double plain_mean = mean(plain_best);
    const double adaptive_mean = mean(adaptive_best);
    std::printf("mean best EDP: plain %.4g, adaptive %.4g "
                "(%+.1f%%)\n",
                plain_mean, adaptive_mean,
                100.0 * (plain_mean / adaptive_mean - 1.0));
    std::printf("expected: adaptive matches or improves the plain "
                "flow by refreshing the decoder manifold\n");
    return 0;
}
