/**
 * @file
 * Reproduces Table V: search performance (SP) and sample efficiency
 * (SE) of random / bo / vae_bo on the four workloads, both relative
 * to random search.
 *
 *   SP = mean best EDP of random / mean best EDP of the method
 *        (higher is better; 1.00 for random by construction).
 *   SE = samples random needs to reach within 3% of the best-known
 *        EDP / samples the method needs (capped at the budget when
 *        a run never reaches the threshold).
 *
 * Reuses the raw runs cached by fig11_bo_curves when available.
 */

#include "bo_study.hh"

#include <cmath>

#include "dse/objective.hh"
#include "util/stats.hh"

int
main()
{
    using namespace vaesa;
    using namespace vaesa::bench;
    const Scale scale = readScale();
    banner("Table V",
           "Search performance and sample efficiency of DSE "
           "methods");

    std::vector<BoRun> runs =
        loadBoRuns(scale.searchSamples, scale.seeds);
    if (runs.empty()) {
        std::printf("[study] no cached runs; running the BO study "
                    "(%zu samples x %zu seeds)\n",
                    scale.searchSamples, scale.seeds);
        runs = runBoStudy(scale.searchSamples, scale.seeds);
        saveBoRuns(runs);
    } else {
        std::printf("[study] reusing %zu cached runs from "
                    "fig11_bo_curves\n",
                    runs.size());
    }

    CsvWriter csv(csvPath("tab05_bo_summary.csv"));
    csv.header({"workload", "method", "search_performance",
                "sample_efficiency"});

    std::printf("\n%-12s", "Workload");
    for (const std::string &m : boMethods)
        std::printf(" %9s-SP %9s-SE", m.c_str(), m.c_str());
    std::printf("\n");

    double best_sp = 0.0;
    double best_se = 0.0;
    for (const Workload &w : trainingWorkloads()) {
        // "Best known EDP" target: at paper scale (2000 samples) the
        // absolute minimum over all runs is reachable by every
        // method; at reduced budgets it often is not, which would
        // saturate SE at 1.0. Use the strongest method's *mean final
        // best* as the best-known reference so the 3% threshold
        // stays meaningful at any scale.
        double best_known = invalidScore;
        for (const std::string &m : boMethods) {
            std::vector<double> finals;
            for (const BoRun &run : runs) {
                if (run.workload != w.name || run.method != m)
                    continue;
                double best = invalidScore;
                for (double e : run.edps)
                    best = std::min(best, e);
                finals.push_back(best);
            }
            best_known = std::min(best_known, mean(finals));
        }
        const double threshold = best_known * 1.03;

        auto method_stats = [&](const std::string &m) {
            std::vector<double> bests;
            std::vector<double> reach;
            for (const BoRun &run : runs) {
                if (run.workload != w.name || run.method != m)
                    continue;
                double best = invalidScore;
                std::size_t reached = run.edps.size();
                for (std::size_t i = 0; i < run.edps.size(); ++i) {
                    best = std::min(best, run.edps[i]);
                    if (run.edps[i] <= threshold &&
                        reached == run.edps.size()) {
                        reached = i + 1;
                    }
                }
                bests.push_back(best);
                reach.push_back(static_cast<double>(reached));
            }
            return std::make_pair(mean(bests), mean(reach));
        };

        const auto [random_best, random_reach] =
            method_stats("random");
        std::printf("%-12s", w.name.c_str());
        for (const std::string &m : boMethods) {
            const auto [best, reach] = method_stats(m);
            const double sp = random_best / best;
            const double se = random_reach / reach;
            std::printf(" %12.2f %12.2f", sp, se);
            csv.row({w.name, m, CsvWriter::cell(sp),
                     CsvWriter::cell(se)});
            if (m == "vae_bo") {
                best_sp = std::max(best_sp, sp);
                best_se = std::max(best_se, se);
            }
        }
        std::printf("\n");
    }

    rule();
    std::printf("paper: vae_bo SP up to 1.01 (up to 5%% better than "
                "bo), SE up to 4.46 vs random (6.8x vs bo)\n");
    std::printf("measured: vae_bo best SP %.2f, best SE %.2fx vs "
                "random\n",
                best_sp, best_se);
    return 0;
}
