/**
 * @file
 * Reproduces Figure 9: the KLD-weight ablation. Encoders are trained
 * with alpha in {0, 1e-4, 1e-2}. The paper's findings:
 *   - alpha = 0: no variational regularization; encodings spread far
 *     from the origin (discontinuous latent space);
 *   - alpha = 1e-4: continuous but still structured cloud; best
 *     reconstruction of the three;
 *   - alpha = 1e-2: encodings collapse to ~N(0, I), destroying the
 *     structure (reconstruction suffers).
 * The textual analogues reported here: RMS radius of the encoded
 * training data, its correlation with design features, and the
 * reconstruction MSE.
 */

#include "common.hh"

#include <cmath>

#include "util/stats.hh"

int
main()
{
    using namespace vaesa;
    const bench::Scale scale = bench::readScale();
    bench::banner("Figure 9",
                  "Encoder ablation over the KLD weight alpha "
                  "(2-D latent space)");

    Evaluator evaluator;
    const Dataset data =
        bench::buildDataset(evaluator, scale.datasetSize, 42);

    CsvWriter csv(bench::csvPath("fig09_alpha_ablation.csv"));
    csv.header({"alpha", "rms_radius", "recon_mse", "kld",
                "max_feature_corr"});

    std::printf("%-10s %12s %12s %12s %16s\n", "alpha",
                "RMS radius", "recon MSE", "KLD",
                "max |corr(z, feat)|");

    struct Row
    {
        double alpha;
        double radius;
        double recon;
    };
    std::vector<Row> rows;

    for (double alpha : {0.0, 1e-4, 1e-2}) {
        VaesaFramework framework = bench::trainFramework(
            data, 2, scale.epochs, alpha, 7);
        const Matrix mu =
            framework.vae().encodeMean(data.hwFeatures());

        double rms = 0.0;
        std::vector<double> z1, z2;
        for (std::size_t i = 0; i < mu.rows(); ++i) {
            rms += mu(i, 0) * mu(i, 0) + mu(i, 1) * mu(i, 1);
            z1.push_back(mu(i, 0));
            z2.push_back(mu(i, 1));
        }
        rms = std::sqrt(rms / static_cast<double>(mu.rows()));

        // Structure: strongest correlation of any latent axis with
        // any normalized hardware feature.
        double best_corr = 0.0;
        for (int p = 0; p < numHwParams; ++p) {
            std::vector<double> feat;
            for (std::size_t i = 0; i < data.size(); ++i)
                feat.push_back(data.hwFeatures()(i, p));
            best_corr = std::max(
                {best_corr, std::fabs(correlation(z1, feat)),
                 std::fabs(correlation(z2, feat))});
        }

        const double recon = framework.reconstructionError(data);
        const double kld = framework.history().back().kldLoss;
        std::printf("%-10g %12.3f %12.5f %12.3f %16.3f\n", alpha,
                    rms, recon, kld, best_corr);
        csv.rowValues({alpha, rms, recon, kld, best_corr});
        rows.push_back({alpha, rms, recon});
    }

    bench::rule();
    std::printf("paper claims vs measured:\n");
    std::printf("  alpha=0 spreads furthest:        %s "
                "(radii %.2f > %.2f > %.2f)\n",
                (rows[0].radius > rows[1].radius &&
                 rows[1].radius > rows[2].radius)
                    ? "reproduced"
                    : "NOT reproduced",
                rows[0].radius, rows[1].radius, rows[2].radius);
    std::printf("  alpha=1e-2 collapses to ~N(0,1): %s "
                "(radius %.2f vs 1.0)\n",
                rows[2].radius < 2.0 ? "reproduced"
                                     : "NOT reproduced",
                rows[2].radius);
    std::printf("  alpha=1e-4 reconstructs best of {1e-4, 1e-2}: "
                "%s (MSE %.5f vs %.5f)\n",
                rows[1].recon <= rows[2].recon ? "reproduced"
                                               : "NOT reproduced",
                rows[1].recon, rows[2].recon);
    return 0;
}
