#include "bo_study.hh"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "dse/bo.hh"
#include "dse/random_search.hh"
#include "vaesa/latent_dse.hh"

namespace vaesa::bench {

namespace {

constexpr const char *cacheFile = "bench_out/fig11_runs.csv";

} // namespace

std::vector<BoRun>
runBoStudy(std::size_t samples, std::size_t seeds)
{
    const Scale scale = readScale();
    Evaluator evaluator;
    const Dataset data =
        buildDataset(evaluator, scale.datasetSize, 42);
    VaesaFramework framework =
        trainFramework(data, 4, scale.epochs, 1e-4, 7);
    // A wider box than the data cloud lets BO exploit the decoder's
    // extrapolation, which reaches configurations beyond the
    // training distribution (Section III-B5's observation).
    const double radius = 1.5 * framework.latentRadius(data);
    std::printf("[study] framework trained (recon MSE %.5f, latent "
                "radius %.2f)\n",
                framework.history().back().reconLoss, radius);

    std::vector<BoRun> runs;
    for (const Workload &w : trainingWorkloads()) {
        for (std::size_t seed = 0; seed < seeds; ++seed) {
            InputSpaceObjective input_obj(evaluator, w.layers);
            LatentObjective latent_obj(framework, evaluator,
                                       w.layers, radius);

            // The latent box is only 4-D; afford the acquisition a
            // denser candidate set there.
            BoOptions latent_bo;
            latent_bo.uniformCandidates = 1024;
            latent_bo.localCandidates = 256;

            for (const std::string &method : boMethods) {
                Rng rng(1000 * (seed + 1) + 17);
                SearchTrace trace;
                if (method == "random") {
                    trace = RandomSearch().run(input_obj, samples,
                                               rng);
                } else if (method == "bo") {
                    trace = BayesOpt().run(input_obj, samples, rng);
                } else {
                    trace = BayesOpt(latent_bo)
                                .run(latent_obj, samples, rng);
                }
                BoRun run;
                run.workload = w.name;
                run.method = method;
                run.seed = seed;
                for (const TracePoint &p : trace.points)
                    run.edps.push_back(p.value);
                runs.push_back(std::move(run));
            }
            std::printf("[study] %s seed %zu done\n",
                        w.name.c_str(), seed);
        }
    }
    return runs;
}

void
saveBoRuns(const std::vector<BoRun> &runs)
{
    CsvWriter csv(csvPath("fig11_runs.csv"));
    csv.header({"workload", "method", "seed", "sample", "edp"});
    for (const BoRun &run : runs) {
        for (std::size_t i = 0; i < run.edps.size(); ++i) {
            csv.row({run.workload, run.method,
                     std::to_string(run.seed), std::to_string(i),
                     std::isfinite(run.edps[i])
                         ? CsvWriter::cell(run.edps[i])
                         : "inf"});
        }
    }
}

std::vector<BoRun>
loadBoRuns(std::size_t samples, std::size_t seeds)
{
    std::ifstream in(cacheFile);
    if (!in)
        return {};

    std::map<std::string, BoRun> by_key;
    std::string line;
    std::getline(in, line); // header
    while (std::getline(in, line)) {
        std::istringstream iss(line);
        std::string workload, method, seed_str, sample_str, edp_str;
        if (!std::getline(iss, workload, ',') ||
            !std::getline(iss, method, ',') ||
            !std::getline(iss, seed_str, ',') ||
            !std::getline(iss, sample_str, ',') ||
            !std::getline(iss, edp_str, ',')) {
            return {};
        }
        const std::string key = workload + "/" + method + "/" +
                                seed_str;
        BoRun &run = by_key[key];
        run.workload = workload;
        run.method = method;
        run.seed = std::stoul(seed_str);
        run.edps.push_back(edp_str == "inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::stod(edp_str));
    }

    std::vector<BoRun> runs;
    for (auto &[key, run] : by_key) {
        if (run.edps.size() < samples || run.seed >= seeds)
            continue;
        runs.push_back(std::move(run));
    }
    // Expect workloads x methods x seeds complete runs.
    const std::size_t expected =
        trainingWorkloads().size() * boMethods.size() * seeds;
    if (runs.size() != expected)
        return {};
    return runs;
}

} // namespace vaesa::bench
