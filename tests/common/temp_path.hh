/**
 * @file
 * Per-test-case temp file naming. `ctest -j` runs every gtest case as
 * its own process, so two cases of one fixture sharing a file name
 * race: one case's TearDown unlink lands between another's write and
 * read. Deriving the name from the running case makes the paths
 * disjoint.
 */

#ifndef VAESA_TESTS_COMMON_TEMP_PATH_HH
#define VAESA_TESTS_COMMON_TEMP_PATH_HH

#include <string>

#include <gtest/gtest.h>

namespace vaesa::testing {

/** TempDir() path unique to the currently running test case. */
inline std::string
uniqueTempPath(const std::string &stem, const std::string &extension)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "/" + stem + "_" + info->name() +
           extension;
}

} // namespace vaesa::testing

#endif // VAESA_TESTS_COMMON_TEMP_PATH_HH
