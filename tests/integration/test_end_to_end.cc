/**
 * @file
 * Integration tests exercising the whole stack: dataset -> training
 * -> latent search -> decode -> scheduler -> cost model, mirroring
 * the paper's evaluation flows at miniature scale.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dse/bo.hh"
#include "dse/random_search.hh"
#include "sched/evaluator.hh"
#include "util/rng.hh"
#include "vaesa/framework.hh"
#include "vaesa/latent_dse.hh"
#include "workload/networks.hh"

namespace vaesa {
namespace {

/** One shared miniature pipeline for the integration suite. */
struct Pipeline
{
    Pipeline()
        : data([&] {
              std::vector<LayerShape> pool;
              for (const Workload &w : trainingWorkloads()) {
                  pool.insert(pool.end(), w.layers.begin(),
                              w.layers.end());
              }
              Rng rng(7);
              return DatasetBuilder(evaluator, pool)
                  .build(2500, rng);
          }()),
          framework(data, frameworkOptions(), 11)
    {
    }

    static FrameworkOptions
    frameworkOptions()
    {
        FrameworkOptions options;
        options.vae.latentDim = 4;
        options.vae.hiddenDims = {96, 48};
        options.train.epochs = 25;
        return options;
    }

    Evaluator evaluator;
    Dataset data;
    VaesaFramework framework;
};

Pipeline &
pipeline()
{
    static Pipeline instance;
    return instance;
}

TEST(EndToEnd, TrainingConverges)
{
    const auto &history = pipeline().framework.history();
    EXPECT_LT(history.back().reconLoss, 0.01);
    EXPECT_LT(history.back().latencyLoss, 0.02);
    EXPECT_LT(history.back().energyLoss, 0.02);
}

TEST(EndToEnd, ReconstructionBeatsRandomDecodeBaseline)
{
    // Encoding+decoding a training config must recover its features
    // far better than decoding an unrelated latent point would.
    Pipeline &p = pipeline();
    Rng rng(71);
    double err_roundtrip = 0.0;
    double err_random = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < 40; ++i) {
        const AcceleratorConfig original =
            p.data.samples()[i * 11].config;
        const auto f0 = designSpace().toFeatures(original);
        const AcceleratorConfig round = p.framework.decodeLatent(
            p.framework.encodeConfig(original));
        std::vector<double> z(p.framework.latentDim());
        for (double &v : z)
            v = rng.normal();
        const AcceleratorConfig other =
            p.framework.decodeLatent(z);
        const auto f1 = designSpace().toFeatures(round);
        const auto f2 = designSpace().toFeatures(other);
        for (int d = 0; d < numHwParams; ++d) {
            err_roundtrip += std::fabs(f0[d] - f1[d]);
            err_random += std::fabs(f0[d] - f2[d]);
            ++n;
        }
    }
    EXPECT_LT(err_roundtrip, 0.6 * err_random);
}

TEST(EndToEnd, LatentBoSearchFindsCompetitiveDesigns)
{
    // vae_bo within a small budget should at least match random
    // search on the same budget (paper: it is consistently better).
    Pipeline &p = pipeline();
    const Workload resnet = workloadByName("resnet50");
    const double radius = p.framework.latentRadius(p.data);

    double bo_best = 0.0;
    double random_best = 0.0;
    for (int seed = 0; seed < 2; ++seed) {
        LatentObjective latent(p.framework, p.evaluator,
                               resnet.layers, radius);
        Rng rng_bo(100 + seed);
        bo_best += BayesOpt().run(latent, 40, rng_bo).best();
        InputSpaceObjective input(p.evaluator, resnet.layers);
        Rng rng_rnd(100 + seed);
        random_best +=
            RandomSearch().run(input, 40, rng_rnd).best();
    }
    EXPECT_TRUE(std::isfinite(bo_best));
    EXPECT_LT(bo_best, 1.6 * random_best);
}

TEST(EndToEnd, VaeGdBeatsRandomInFewSamples)
{
    // Section IV-D: within a small sample budget, predictor-guided
    // GD in the latent space stays within a small constant factor of
    // random sampling of the input space (and beats it at the larger
    // budgets covered by LatentBoSearchFindsCompetitiveDesigns).
    //
    // Tolerance: the trained model -- and hence the design GD decodes
    // -- shifts whenever the math layer changes floating-point
    // accumulation order, while random search's best-of-10 swings by
    // ~0.4 in log-EDP per seed. The factor is therefore a geometric
    // mean over 6 seeds with a 1.4x allowance, wide enough to survive
    // seed-level retraining chaos but far below the ~5x gap a broken
    // gradient path produces.
    Pipeline &p = pipeline();
    const LayerShape layer = gdTestLayers()[6];

    double gd_mean = 0.0;
    double random_mean = 0.0;
    const int seeds = 6;
    for (int seed = 0; seed < seeds; ++seed) {
        Rng rng_gd(200 + seed);
        VaeGdOptions options;
        options.steps = 80;
        options.radius = 1.5 * p.framework.latentRadius(p.data);
        const SearchTrace gd_trace = vaeGdSearch(
            p.framework, p.evaluator, layer, 10, options, rng_gd);

        InputSpaceObjective input(p.evaluator, {layer});
        Rng rng_rnd(200 + seed);
        const SearchTrace rnd_trace =
            RandomSearch().run(input, 10, rng_rnd);

        gd_mean += std::log(gd_trace.best());
        random_mean += std::log(rnd_trace.best());
    }
    EXPECT_LT(gd_mean, random_mean + std::log(1.4) * seeds);
}

TEST(EndToEnd, DecodedDesignsEvaluateConsistently)
{
    // The EDP reported through the latent objective equals the EDP
    // of re-evaluating the decoded config from scratch.
    Pipeline &p = pipeline();
    LatentObjective obj(p.framework, p.evaluator,
                        alexNetLayers());
    Rng rng(73);
    for (int i = 0; i < 10; ++i) {
        std::vector<double> z(p.framework.latentDim());
        for (double &v : z)
            v = rng.normal();
        const double via_objective = obj.evaluate(z);
        Evaluator fresh;
        const EvalResult direct = fresh.evaluateWorkload(
            obj.decode(z), alexNetLayers());
        if (direct.valid) {
            EXPECT_NEAR(via_objective, direct.edp,
                        1e-9 * direct.edp);
        } else {
            EXPECT_TRUE(std::isinf(via_objective));
        }
    }
}

} // namespace
} // namespace vaesa
