/** @file Unit tests for the Mapping representation. */

#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/mapping.hh"

namespace vaesa {
namespace {

LayerShape
smallLayer()
{
    LayerShape l;
    l.name = "unit.conv";
    l.r = 3;
    l.s = 3;
    l.p = 8;
    l.q = 8;
    l.c = 16;
    l.k = 32;
    return l;
}

TEST(Mapping, LayerDimsOrder)
{
    const auto dims = layerDims(smallLayer());
    EXPECT_EQ(dims[DimR], 3);
    EXPECT_EQ(dims[DimS], 3);
    EXPECT_EQ(dims[DimP], 8);
    EXPECT_EQ(dims[DimQ], 8);
    EXPECT_EQ(dims[DimC], 16);
    EXPECT_EQ(dims[DimK], 32);
}

TEST(Mapping, ArrayTileCoversSpatialK)
{
    Mapping m;
    m.spatialK = 4;
    m.tilePe = {3, 3, 2, 2, 8, 2};
    EXPECT_EQ(m.arrayTilePe(DimK), 8);
    EXPECT_EQ(m.arrayTilePe(DimC), 8);
    EXPECT_EQ(m.arrayTilePe(DimP), 2);
}

TEST(Mapping, TileWordCounts)
{
    const LayerShape l = smallLayer();
    Mapping m;
    m.tilePe = {3, 3, 2, 2, 8, 4};
    EXPECT_EQ(m.weightTileWords(), 3 * 3 * 8 * 4);
    EXPECT_EQ(m.psumTileWords(), 2 * 2 * 4);
    // Input tile with halo: ((2-1)*1+3) x ((2-1)*1+3) x 8.
    EXPECT_EQ(m.inputTileWords(l), 4 * 4 * 8);
}

TEST(Mapping, InputTileAccountsForStride)
{
    LayerShape l = smallLayer();
    l.strideW = 2;
    l.strideH = 2;
    Mapping m;
    m.tilePe = {3, 3, 4, 4, 1, 1};
    // ((4-1)*2+3)^2 * 1 = 81.
    EXPECT_EQ(m.inputTileWords(l), 81);
}

TEST(Mapping, GlobalBufferTileWords)
{
    const LayerShape l = smallLayer();
    Mapping m;
    m.tileGb = {3, 3, 8, 8, 16, 32};
    EXPECT_EQ(m.inputGbTileWords(l), 10 * 10 * 16);
    EXPECT_EQ(m.outputGbTileWords(), 8 * 8 * 32);
}

TEST(Mapping, HugeTileWordCountsDoNotOverflow)
{
    // Regression: the word counts used to be int64 products, so a
    // corner-of-design-space tile (four ~2^20 extents) wrapped
    // negative and "fit" every buffer. In double, each factor is
    // widened before multiplying: the product is exact (each factor
    // is far below 2^53 and the true product below 2^80 keeps 53
    // significant bits here by construction of the powers of two)
    // and, crucially, positive and enormous.
    const std::int64_t big = std::int64_t{1} << 20; // 2^20
    Mapping m;
    m.tilePe = {big, big, big, big, big, big};
    m.tileGb = {big, big, big, big, big, big};

    const double words = m.weightTileWords(); // (2^20)^4 = 2^80
    EXPECT_GT(words, 0.0);
    EXPECT_EQ(words, std::pow(2.0, 80.0));

    const double psum = m.psumTileWords(); // 2^60
    EXPECT_GT(psum, 0.0);
    EXPECT_EQ(psum, std::pow(2.0, 60.0));

    const double out_gb = m.outputGbTileWords(); // 2^60
    EXPECT_GT(out_gb, 0.0);
    EXPECT_EQ(out_gb, std::pow(2.0, 60.0));

    LayerShape l = smallLayer();
    l.strideW = 2;
    l.strideH = 2;
    EXPECT_GT(m.inputTileWords(l), std::pow(2.0, 60.0));
    EXPECT_GT(m.inputGbTileWords(l), std::pow(2.0, 60.0));
}

TEST(Mapping, DescribeMentionsTiles)
{
    Mapping m;
    m.spatialK = 8;
    const std::string d = m.describe();
    EXPECT_NE(d.find("spatialK=8"), std::string::npos);
    EXPECT_NE(d.find("tilePe"), std::string::npos);
}

TEST(Mapping, DimNames)
{
    EXPECT_STREQ(dimName(DimR), "R");
    EXPECT_STREQ(dimName(DimK), "K");
    EXPECT_DEATH(dimName(6), "bad dimension");
}

} // namespace
} // namespace vaesa
