/** @file Unit tests for the analytical cost model. */

#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/cost_model.hh"
#include "workload/networks.hh"

namespace vaesa {
namespace {

/** A mid-range valid architecture. */
AcceleratorConfig
midConfig()
{
    AcceleratorConfig c;
    c.numPes = 16;
    c.numMacs = 1024;
    c.accumBufBytes = 48 * 1024;
    c.weightBufBytes = 1 * 1024 * 1024;
    c.inputBufBytes = 64 * 1024;
    c.globalBufBytes = 128 * 1024;
    return c;
}

/** A tiny layer whose costs are hand-computable. */
LayerShape
tinyLayer()
{
    LayerShape l;
    l.name = "unit.tiny";
    l.r = 1;
    l.s = 1;
    l.p = 4;
    l.q = 4;
    l.c = 8;
    l.k = 8;
    return l;
}

/** A mapping that holds the whole tiny layer on the array at once. */
Mapping
wholeLayerMapping()
{
    Mapping m;
    m.spatialK = 8;
    m.spatialC = 8;
    m.tilePe = {1, 1, 4, 4, 8, 1};
    m.tileGb = {1, 1, 4, 4, 8, 8};
    return m;
}

TEST(CostModel, AcceptsValidMapping)
{
    CostModel model;
    std::string reason;
    EXPECT_TRUE(model.checkMapping(midConfig(), tinyLayer(),
                                   wholeLayerMapping(), &reason))
        << reason;
}

TEST(CostModel, RejectsOversizedWeightTile)
{
    CostModel model;
    AcceleratorConfig arch = midConfig();
    arch.weightBufBytes = 2; // one word
    Mapping m = wholeLayerMapping();
    std::string reason;
    EXPECT_FALSE(model.checkMapping(arch, tinyLayer(), m, &reason));
    EXPECT_NE(reason.find("weight"), std::string::npos);
}

TEST(CostModel, RejectsCornerOfSpaceTileWithoutOverflow)
{
    // Regression: word counts were int64 products, so a whole-layer
    // tile of this (absurd but structurally legal) layer computed
    // 2^32 * 2^32 = 2^64 -> wrapped to 0 words and "fit" every
    // buffer, making the mapping valid. With per-factor widening to
    // double the product stays positive and enormous, and the
    // mapping is rejected for the right reason.
    LayerShape l;
    l.name = "unit.huge";
    l.r = 1;
    l.s = 1;
    l.p = 65536;
    l.q = 65536;
    l.c = std::int64_t{1} << 32;
    l.k = std::int64_t{1} << 32;
    ASSERT_TRUE(l.isSane());

    Mapping m;
    m.spatialK = 1;
    m.spatialC = 1;
    m.tilePe = layerDims(l);
    m.tileGb = layerDims(l);

    CostModel model;
    std::string reason;
    EXPECT_FALSE(model.checkMapping(midConfig(), l, m, &reason));
    EXPECT_NE(reason.find("exceeds"), std::string::npos) << reason;
}

TEST(CostModel, RejectsOversizedInputTile)
{
    CostModel model;
    AcceleratorConfig arch = midConfig();
    arch.inputBufBytes = 2;
    std::string reason;
    EXPECT_FALSE(model.checkMapping(arch, tinyLayer(),
                                    wholeLayerMapping(), &reason));
    EXPECT_NE(reason.find("input"), std::string::npos);
}

TEST(CostModel, RejectsOversizedPsumTile)
{
    CostModel model;
    AcceleratorConfig arch = midConfig();
    arch.accumBufBytes = 4;
    std::string reason;
    EXPECT_FALSE(model.checkMapping(arch, tinyLayer(),
                                    wholeLayerMapping(), &reason));
    EXPECT_NE(reason.find("psum"), std::string::npos);
}

TEST(CostModel, RejectsOversizedGlobalTile)
{
    CostModel model;
    AcceleratorConfig arch = midConfig();
    arch.globalBufBytes = 2;
    std::string reason;
    EXPECT_FALSE(model.checkMapping(arch, tinyLayer(),
                                    wholeLayerMapping(), &reason));
    EXPECT_NE(reason.find("global"), std::string::npos);
}

TEST(CostModel, RejectsBadSpatialSplit)
{
    CostModel model;
    Mapping m = wholeLayerMapping();
    m.spatialK = 100; // > numPes
    std::string reason;
    EXPECT_FALSE(model.checkMapping(midConfig(), tinyLayer(), m,
                                    &reason));
    m = wholeLayerMapping();
    m.spatialC = 1000; // > lanes
    EXPECT_FALSE(model.checkMapping(midConfig(), tinyLayer(), m,
                                    &reason));
}

TEST(CostModel, RejectsTileExceedingDimension)
{
    CostModel model;
    Mapping m = wholeLayerMapping();
    m.tileGb[DimP] = 100; // > P = 4
    std::string reason;
    EXPECT_FALSE(model.checkMapping(midConfig(), tinyLayer(), m,
                                    &reason));
    EXPECT_NE(reason.find("exceeds layer dimension"),
              std::string::npos);
}

TEST(CostModel, InvalidMappingYieldsInvalidResult)
{
    CostModel model;
    Mapping m = wholeLayerMapping();
    m.tilePe[DimC] = 0;
    const CostResult r = model.evaluate(midConfig(), tinyLayer(), m);
    EXPECT_FALSE(r.valid);
    EXPECT_FALSE(r.invalidReason.empty());
}

TEST(CostModel, WholeLayerComputeCycles)
{
    CostModel model;
    const CostResult r = model.evaluate(midConfig(), tinyLayer(),
                                        wholeLayerMapping());
    ASSERT_TRUE(r.valid);
    // One array tile; per tile: 1*1*4*4*ceil(8/8)*1 = 16 cycles.
    EXPECT_DOUBLE_EQ(r.computeCycles, 16.0);
    // Full utilization would need all 16 PEs; we use 8 of 16 PEs and
    // all 8 of the C lanes: macs / (cycles * spatialK * spatialC).
    const double macs = tinyLayer().macs();
    EXPECT_DOUBLE_EQ(r.macUtilization, macs / (16.0 * 8.0 * 8.0));
}

TEST(CostModel, WholeLayerDramTraffic)
{
    CostModel model;
    const CostResult r = model.evaluate(midConfig(), tinyLayer(),
                                        wholeLayerMapping());
    ASSERT_TRUE(r.valid);
    const LayerShape l = tinyLayer();
    // Everything resident: each word moves exactly once.
    EXPECT_DOUBLE_EQ(r.dramWeightReads,
                     static_cast<double>(l.weightWords()));
    EXPECT_DOUBLE_EQ(r.dramInputReads,
                     static_cast<double>(l.inputWords()));
    EXPECT_DOUBLE_EQ(r.dramOutputWrites,
                     static_cast<double>(l.outputWords()));
}

TEST(CostModel, EnergyBreakdownSumsToTotal)
{
    CostModel model;
    const CostResult r = model.evaluate(midConfig(), tinyLayer(),
                                        wholeLayerMapping());
    ASSERT_TRUE(r.valid);
    const double sum = r.macEnergy + r.registerEnergy +
                       r.inputBufEnergy + r.weightBufEnergy +
                       r.accumBufEnergy + r.globalBufEnergy +
                       r.dramEnergy + r.nocEnergy;
    EXPECT_NEAR(r.energyPj, sum, 1e-9 * sum);
    EXPECT_GT(r.energyPj, 0.0);
}

TEST(CostModel, LatencyIsMaxOfBoundTerms)
{
    CostModel model;
    const CostResult r = model.evaluate(midConfig(), tinyLayer(),
                                        wholeLayerMapping());
    ASSERT_TRUE(r.valid);
    EXPECT_GE(r.latencyCycles, r.computeCycles);
    EXPECT_GE(r.latencyCycles, r.dramCycles);
    EXPECT_GE(r.latencyCycles, r.globalBufCycles);
    EXPECT_DOUBLE_EQ(r.latencyCycles,
                     std::max({r.computeCycles, r.dramCycles,
                               r.globalBufCycles}));
}

TEST(CostModel, SmallerPqTileIncreasesWeightTraffic)
{
    CostModel model;
    Mapping whole = wholeLayerMapping();
    Mapping halved = whole;
    halved.tilePe[DimP] = 2;
    const CostResult r_whole =
        model.evaluate(midConfig(), tinyLayer(), whole);
    const CostResult r_half =
        model.evaluate(midConfig(), tinyLayer(), halved);
    ASSERT_TRUE(r_whole.valid);
    ASSERT_TRUE(r_half.valid);
    // Halving the P tile doubles the outer P iterations and so the
    // weight re-fetch traffic.
    EXPECT_DOUBLE_EQ(r_half.dramWeightReads,
                     2.0 * r_whole.dramWeightReads);
}

TEST(CostModel, SmallerKTileIncreasesInputReads)
{
    CostModel model;
    AcceleratorConfig arch = midConfig();
    Mapping whole = wholeLayerMapping();
    Mapping split = whole;
    split.spatialK = 4;
    split.tileGb[DimK] = 4; // two DRAM-level K iterations
    const CostResult r_whole =
        model.evaluate(arch, tinyLayer(), whole);
    const CostResult r_split =
        model.evaluate(arch, tinyLayer(), split);
    ASSERT_TRUE(r_whole.valid);
    ASSERT_TRUE(r_split.valid);
    EXPECT_GT(r_split.dramInputReads, r_whole.dramInputReads);
}

TEST(CostModel, UtilizationNeverExceedsOne)
{
    CostModel model;
    const CostResult r = model.evaluate(midConfig(), tinyLayer(),
                                        wholeLayerMapping());
    ASSERT_TRUE(r.valid);
    EXPECT_LE(r.macUtilization, 1.0 + 1e-12);
    EXPECT_GT(r.macUtilization, 0.0);
}

TEST(CostModel, PaddingLowersUtilization)
{
    // C = 8 over spatialC = 5 lanes: ceil(8/5) = 2 passes with the
    // second pass 3/5 idle.
    CostModel model;
    AcceleratorConfig arch = midConfig();
    Mapping m = wholeLayerMapping();
    m.spatialC = 5;
    const CostResult r = model.evaluate(arch, tinyLayer(), m);
    ASSERT_TRUE(r.valid);
    EXPECT_LT(r.macUtilization, 1.0);
}

TEST(CostModel, CustomBandwidthChangesLatencyOnly)
{
    CostModel::Params slow;
    slow.dramWordsPerCycle = 1.0;
    CostModel fast_model;
    CostModel slow_model(slow, EnergyModel());
    const CostResult fast = fast_model.evaluate(
        midConfig(), tinyLayer(), wholeLayerMapping());
    const CostResult slowr = slow_model.evaluate(
        midConfig(), tinyLayer(), wholeLayerMapping());
    ASSERT_TRUE(fast.valid);
    ASSERT_TRUE(slowr.valid);
    EXPECT_DOUBLE_EQ(fast.energyPj, slowr.energyPj);
    EXPECT_GT(slowr.dramCycles, fast.dramCycles);
}

} // namespace
} // namespace vaesa
