/**
 * @file
 * Property tests of the SoA batch cost model against the scalar
 * CostModel, following the two-kernel pattern of
 * tests/nn/test_gradcheck.cc: every property runs under BOTH
 * VAESA_KERNEL settings (saved and restored around each test).
 *
 * The contract under test (batch_cost_model.hh): under the naive
 * kernel batch results are BIT-identical to the scalar path; under
 * the blocked kernel they are bounded by a 1e-12 relative tolerance
 * (and on current builds — fp contraction disabled in the blocked
 * TU — are in fact still bit-identical, which the tolerance check
 * subsumes); and for a fixed kernel, results are permutation-
 * invariant and duplicate-stable.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "costmodel/batch_cost_model.hh"
#include "sched/evaluator.hh"
#include "sched/random_mapper.hh"
#include "tensor/kernels/kernels.hh"
#include "workload/networks.hh"
#include "workload/zoo.hh"

namespace vaesa {
namespace {

/** One scored item of a randomized batch. */
struct BatchItem
{
    AcceleratorConfig arch;
    Mapping mapping;
};

/** Draw up to @p want (config, mapping) items for one layer. */
std::vector<BatchItem>
drawItems(const LayerShape &layer, std::size_t want, Rng &rng)
{
    RandomMapper mapper;
    std::vector<BatchItem> items;
    for (int trial = 0; trial < 400 && items.size() < want; ++trial) {
        const AcceleratorConfig arch = designSpace().randomConfig(rng);
        const auto mapping = mapper.sampleMapping(arch, layer, rng);
        if (mapping)
            items.push_back({arch, *mapping});
    }
    return items;
}

std::vector<CostResult>
scoreBatch(const BatchCostModel &batch,
           const std::vector<BatchItem> &items, const LayerShape &layer)
{
    std::vector<AcceleratorConfig> archs;
    std::vector<Mapping> mappings;
    for (const BatchItem &it : items) {
        archs.push_back(it.arch);
        mappings.push_back(it.mapping);
    }
    std::vector<CostResult> results(items.size());
    batch.evaluateLayer(archs.data(), mappings.data(), items.size(),
                        layer, results.data());
    return results;
}

/** Fields the batch path fills (batch_cost_model.hh scope note). */
void
expectBitIdentical(const CostResult &a, const CostResult &b)
{
    ASSERT_EQ(a.valid, b.valid);
    if (!a.valid) {
        EXPECT_EQ(a.invalidReason, b.invalidReason);
        return;
    }
    EXPECT_EQ(a.latencyCycles, b.latencyCycles);
    EXPECT_EQ(a.energyPj, b.energyPj);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.dramCycles, b.dramCycles);
    EXPECT_EQ(a.globalBufCycles, b.globalBufCycles);
    EXPECT_EQ(a.dramWeightReads, b.dramWeightReads);
    EXPECT_EQ(a.dramInputReads, b.dramInputReads);
    EXPECT_EQ(a.dramOutputWrites, b.dramOutputWrites);
    EXPECT_EQ(a.macUtilization, b.macUtilization);
    EXPECT_EQ(a.edp(), b.edp());
}

class BatchCostProperties
    : public ::testing::TestWithParam<kernels::KernelKind>
{
  protected:
    void SetUp() override
    {
        saved_ = kernels::activeKernel();
        kernels::setActiveKernel(GetParam());
    }

    void TearDown() override { kernels::setActiveKernel(saved_); }

    CostModel model;
    BatchCostModel batch{model};

  private:
    kernels::KernelKind saved_ = kernels::KernelKind::Blocked;
};

TEST_P(BatchCostProperties, MatchesScalarModel)
{
    Rng rng(501);
    // The documented equivalence bound: exact under naive, 1e-12
    // relative under blocked (headroom; currently also exact).
    const bool naive = GetParam() == kernels::KernelKind::Naive;
    const double tol = naive ? 0.0 : 1e-12;

    int checked = 0;
    for (const Workload &w : trainingWorkloads()) {
        for (const LayerShape &layer : w.layers) {
            const auto items = drawItems(layer, 24, rng);
            const auto results = scoreBatch(batch, items, layer);
            for (std::size_t i = 0; i < items.size(); ++i) {
                const CostResult scalar = model.evaluate(
                    items[i].arch, layer, items[i].mapping);
                ASSERT_EQ(results[i].valid, scalar.valid);
                if (!scalar.valid)
                    continue;
                ++checked;
                if (naive) {
                    expectBitIdentical(results[i], scalar);
                } else {
                    EXPECT_NEAR(results[i].latencyCycles,
                                scalar.latencyCycles,
                                tol * scalar.latencyCycles);
                    EXPECT_NEAR(results[i].energyPj, scalar.energyPj,
                                tol * scalar.energyPj);
                    EXPECT_NEAR(results[i].macUtilization,
                                scalar.macUtilization,
                                tol * scalar.macUtilization);
                }
            }
        }
    }
    EXPECT_GT(checked, 100);
}

TEST_P(BatchCostProperties, PermutationInvariant)
{
    Rng rng(502);
    const LayerShape layer = trainingWorkloads()[0].layers[0];
    auto items = drawItems(layer, 32, rng);
    ASSERT_GE(items.size(), 8u);

    const auto before = scoreBatch(batch, items, layer);

    // Deterministic shuffle, then map each result back.
    std::vector<std::size_t> perm(items.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        perm[i] = i;
    for (std::size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng.index(i)]);
    std::vector<BatchItem> shuffled;
    for (const std::size_t p : perm)
        shuffled.push_back(items[p]);

    const auto after = scoreBatch(batch, shuffled, layer);
    for (std::size_t i = 0; i < perm.size(); ++i)
        expectBitIdentical(after[i], before[perm[i]]);
}

TEST_P(BatchCostProperties, DuplicateStable)
{
    Rng rng(503);
    const LayerShape layer = trainingWorkloads()[0].layers[2];
    const auto base = drawItems(layer, 6, rng);
    ASSERT_GE(base.size(), 3u);

    // Each base item repeated several times, interleaved.
    std::vector<BatchItem> dup;
    for (int rep = 0; rep < 5; ++rep)
        for (const BatchItem &it : base)
            dup.push_back(it);

    const auto single = scoreBatch(batch, base, layer);
    const auto repeated = scoreBatch(batch, dup, layer);
    for (std::size_t i = 0; i < dup.size(); ++i)
        expectBitIdentical(repeated[i], single[i % base.size()]);
}

TEST_P(BatchCostProperties, InvalidItemsCarryScalarReasons)
{
    Rng rng(504);
    const LayerShape layer = trainingWorkloads()[0].layers[1];
    auto items = drawItems(layer, 6, rng);
    ASSERT_GE(items.size(), 4u);

    // Break half the batch in distinct ways; the batch path must
    // report the scalar checkMapping() reason verbatim and leave the
    // valid neighbors untouched.
    items[0].mapping.tilePe[DimR] = 0;
    items[1].mapping.tileGb[DimP] = 0;
    items[2].mapping.spatialK = -1;

    const auto results = scoreBatch(batch, items, layer);
    for (std::size_t i = 0; i < items.size(); ++i) {
        std::string reason;
        const bool ok = model.checkMapping(items[i].arch, layer,
                                           items[i].mapping, &reason);
        ASSERT_EQ(results[i].valid, ok);
        if (!ok) {
            EXPECT_EQ(results[i].invalidReason, reason);
            EXPECT_EQ(results[i].latencyCycles, 0.0);
            EXPECT_EQ(results[i].energyPj, 0.0);
        } else {
            expectBitIdentical(
                results[i],
                model.evaluate(items[i].arch, layer,
                               items[i].mapping));
        }
    }
    EXPECT_FALSE(results[0].valid);
    EXPECT_FALSE(results[1].valid);
    EXPECT_FALSE(results[2].valid);
}

TEST_P(BatchCostProperties, EvaluatorLayerBatchMatchesLoop)
{
    Rng rng(505);
    const Evaluator evaluator;
    const LayerShape layer = trainingWorkloads()[1].layers[0];
    std::vector<AcceleratorConfig> configs;
    for (int i = 0; i < 40; ++i)
        configs.push_back(designSpace().randomConfig(rng));

    std::vector<EvalResult> batched(configs.size());
    evaluator.evaluateLayerBatch(configs.data(), configs.size(),
                                 layer, batched.data());

    const bool naive = GetParam() == kernels::KernelKind::Naive;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const EvalResult serial =
            evaluator.evaluateLayer(configs[i], layer);
        ASSERT_EQ(batched[i].valid, serial.valid);
        if (!serial.valid)
            continue;
        if (naive) {
            EXPECT_EQ(batched[i].latencyCycles, serial.latencyCycles);
            EXPECT_EQ(batched[i].energyPj, serial.energyPj);
            EXPECT_EQ(batched[i].edp, serial.edp);
        } else {
            EXPECT_NEAR(batched[i].edp, serial.edp,
                        1e-12 * serial.edp);
        }
    }
    // The batch counted one evaluation per item, the loop another.
    EXPECT_EQ(evaluator.evaluationCount(), 2 * configs.size());
}

// The zoo's shape extremes — depthwise convs (c=1, wide k) and long
// skinny GEMMs (huge p, tiny c/k) — stress different corners of the
// SoA kernels than the Table III convs, so the scalar-parity
// contract is pinned on them explicitly.
TEST_P(BatchCostProperties, MatchesScalarOnDepthwiseAndSkinnyGemm)
{
    Rng rng(507);
    const bool naive = GetParam() == kernels::KernelKind::Naive;

    std::vector<LayerShape> shapes;
    for (const LayerShape &l : mobileNetV2Workload().layers)
        if (l.c == 1)
            shapes.push_back(l); // the depthwise 3x3s
    for (const LayerShape &l : dlrmWorkload().layers)
        shapes.push_back(l); // batch-2048 skinny GEMMs
    ASSERT_GE(shapes.size(), 10u);

    int checked = 0;
    for (const LayerShape &layer : shapes) {
        const auto items = drawItems(layer, 16, rng);
        const auto results = scoreBatch(batch, items, layer);
        for (std::size_t i = 0; i < items.size(); ++i) {
            const CostResult scalar = model.evaluate(
                items[i].arch, layer, items[i].mapping);
            ASSERT_EQ(results[i].valid, scalar.valid)
                << layer.describe();
            if (!scalar.valid)
                continue;
            ++checked;
            if (naive) {
                expectBitIdentical(results[i], scalar);
            } else {
                EXPECT_NEAR(results[i].latencyCycles,
                            scalar.latencyCycles,
                            1e-12 * scalar.latencyCycles);
                EXPECT_NEAR(results[i].energyPj, scalar.energyPj,
                            1e-12 * scalar.energyPj);
            }
        }
    }
    EXPECT_GT(checked, 40);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, BatchCostProperties,
    ::testing::Values(kernels::KernelKind::Naive,
                      kernels::KernelKind::Blocked),
    [](const ::testing::TestParamInfo<kernels::KernelKind> &info) {
        return std::string(kernels::kernelName(info.param));
    });

} // namespace
} // namespace vaesa
