/**
 * @file
 * Property-based tests of the analytical cost model over random
 * legal mappings (drawn with the RandomMapper), random architectures
 * and every built-in layer: the invariants any Timeloop-like model
 * must satisfy regardless of the mapping.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sched/random_mapper.hh"
#include "workload/networks.hh"

namespace vaesa {
namespace {

class CostModelProperties : public ::testing::TestWithParam<int>
{
  protected:
    CostModel model;
    RandomMapper mapper;
};

TEST_P(CostModelProperties, InvariantsHoldOnRandomMappings)
{
    Rng rng(100 + GetParam());
    std::vector<LayerShape> pool;
    for (const Workload &w : trainingWorkloads())
        pool.insert(pool.end(), w.layers.begin(), w.layers.end());

    int checked = 0;
    for (int trial = 0; trial < 60; ++trial) {
        const AcceleratorConfig arch =
            designSpace().randomConfig(rng);
        const LayerShape &layer = pool[rng.index(pool.size())];
        const auto mapping = mapper.sampleMapping(arch, layer, rng);
        if (!mapping)
            continue;
        const CostResult r = model.evaluate(arch, layer, *mapping);
        if (!r.valid)
            continue;
        ++checked;

        // Latency is the max of the bound terms and positive.
        EXPECT_GT(r.latencyCycles, 0.0);
        EXPECT_DOUBLE_EQ(r.latencyCycles,
                         std::max({r.computeCycles, r.dramCycles,
                                   r.globalBufCycles}));

        // Compute can never beat the ideal-parallelism bound.
        const double ideal =
            layer.macs() /
            (static_cast<double>(mapping->spatialK) *
             static_cast<double>(mapping->spatialC));
        EXPECT_GE(r.computeCycles, ideal * (1.0 - 1e-9));

        // Every unique word moves at least once. For inputs, the
        // bounding box (inputWords) over-counts gap pixels that a
        // strided convolution never touches and tiled reads may
        // skip; the touched-pixel count is bounded below by P*Q*C.
        EXPECT_GE(r.dramWeightReads,
                  static_cast<double>(layer.weightWords()) - 0.5);
        EXPECT_GE(r.dramInputReads,
                  static_cast<double>(layer.p * layer.q * layer.c) -
                      0.5);
        EXPECT_DOUBLE_EQ(r.dramOutputWrites,
                         static_cast<double>(layer.outputWords()));

        // Energy breakdown sums to the total and is positive.
        const double sum = r.macEnergy + r.registerEnergy +
                           r.inputBufEnergy + r.weightBufEnergy +
                           r.accumBufEnergy + r.globalBufEnergy +
                           r.dramEnergy + r.nocEnergy;
        EXPECT_NEAR(r.energyPj, sum, 1e-9 * sum);
        EXPECT_GT(r.macEnergy, 0.0);
        EXPECT_GT(r.dramEnergy, 0.0);

        // MAC energy is an invariant of the layer, not the mapping.
        EXPECT_NEAR(r.macEnergy,
                    layer.macs() * model.energy().macPj(),
                    1e-6 * r.macEnergy);

        // Utilization in (0, 1].
        EXPECT_GT(r.macUtilization, 0.0);
        EXPECT_LE(r.macUtilization, 1.0 + 1e-12);

        // EDP consistency.
        EXPECT_DOUBLE_EQ(r.edp(),
                         r.latencyCycles * r.energyPj);
    }
    EXPECT_GT(checked, 30);
}

TEST_P(CostModelProperties, EvaluationIsDeterministic)
{
    Rng rng(200 + GetParam());
    const AcceleratorConfig arch = designSpace().randomConfig(rng);
    const LayerShape layer = resNet50Layers()[5];
    const auto mapping = mapper.sampleMapping(arch, layer, rng);
    if (!mapping)
        return;
    const CostResult a = model.evaluate(arch, layer, *mapping);
    const CostResult b = model.evaluate(arch, layer, *mapping);
    EXPECT_EQ(a.valid, b.valid);
    if (a.valid) {
        EXPECT_DOUBLE_EQ(a.latencyCycles, b.latencyCycles);
        EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
    }
}

TEST_P(CostModelProperties, WholeArrayTileIsBestCaseTraffic)
{
    // Any random mapping moves at least as much DRAM traffic as the
    // all-resident mapping (when one exists for this architecture).
    Rng rng(300 + GetParam());
    LayerShape tiny;
    tiny.name = "prop.tiny";
    tiny.p = 4;
    tiny.q = 4;
    tiny.c = 8;
    tiny.k = 8;

    AcceleratorConfig arch;
    arch.numPes = 16;
    arch.numMacs = 1024;
    arch.accumBufBytes = 48 * 1024;
    arch.weightBufBytes = 1024 * 1024;
    arch.inputBufBytes = 64 * 1024;
    arch.globalBufBytes = 128 * 1024;

    Mapping resident;
    resident.spatialK = 8;
    resident.spatialC = 8;
    resident.tilePe = {1, 1, 4, 4, 8, 1};
    resident.tileGb = {1, 1, 4, 4, 8, 8};
    const CostResult best = model.evaluate(arch, tiny, resident);
    ASSERT_TRUE(best.valid);
    const double best_traffic = best.dramWeightReads +
                                best.dramInputReads +
                                best.dramOutputWrites;

    for (int trial = 0; trial < 20; ++trial) {
        const auto mapping = mapper.sampleMapping(arch, tiny, rng);
        if (!mapping)
            continue;
        const CostResult r = model.evaluate(arch, tiny, *mapping);
        if (!r.valid)
            continue;
        const double traffic = r.dramWeightReads +
                               r.dramInputReads +
                               r.dramOutputWrites;
        EXPECT_GE(traffic, best_traffic * (1.0 - 1e-9));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelProperties,
                         ::testing::Range(0, 8));

} // namespace
} // namespace vaesa
