/** @file Unit tests for Bayesian optimization. */

#include <gtest/gtest.h>

#include <cmath>

#include "dse/bo.hh"
#include "dse/random_search.hh"

namespace vaesa {
namespace {

/** Shifted quadratic bowl with minimum at (0.3, -0.2). */
class BowlObjective : public Objective
{
  public:
    std::size_t dim() const override { return 2; }
    std::vector<double> lowerBounds() const override
    {
        return {-1.0, -1.0};
    }
    std::vector<double> upperBounds() const override
    {
        return {1.0, 1.0};
    }
    double
    evaluate(const std::vector<double> &x) override
    {
        ++evals;
        const double dx = x[0] - 0.3;
        const double dy = x[1] + 0.2;
        return dx * dx + dy * dy;
    }

    int evals = 0;
};

/** Bowl with an invalid (infinite) wedge, mimicking unmappable
 *  designs. */
class PartiallyInvalidObjective : public BowlObjective
{
  public:
    double
    evaluate(const std::vector<double> &x) override
    {
        if (x[0] < -0.5)
            return invalidScore;
        return BowlObjective::evaluate(x);
    }
};

TEST(ExpectedImprovement, ZeroWhenCertainAndWorse)
{
    GaussianProcess::Prediction pred{10.0, 0.0};
    EXPECT_DOUBLE_EQ(expectedImprovement(pred, 5.0), 0.0);
}

TEST(ExpectedImprovement, ImprovementWhenCertainAndBetter)
{
    GaussianProcess::Prediction pred{2.0, 0.0};
    EXPECT_DOUBLE_EQ(expectedImprovement(pred, 5.0), 3.0);
}

TEST(ExpectedImprovement, UncertaintyAddsValue)
{
    GaussianProcess::Prediction certain{5.0, 0.0};
    GaussianProcess::Prediction uncertain{5.0, 4.0};
    EXPECT_GT(expectedImprovement(uncertain, 5.0),
              expectedImprovement(certain, 5.0));
}

TEST(ExpectedImprovement, MonotoneInMean)
{
    GaussianProcess::Prediction better{1.0, 1.0};
    GaussianProcess::Prediction worse{3.0, 1.0};
    EXPECT_GT(expectedImprovement(better, 2.0),
              expectedImprovement(worse, 2.0));
}

TEST(BayesOpt, UsesExactBudget)
{
    BowlObjective obj;
    Rng rng(1);
    const SearchTrace trace = BayesOpt().run(obj, 30, rng);
    EXPECT_EQ(trace.points.size(), 30u);
    EXPECT_EQ(obj.evals, 30);
}

TEST(BayesOpt, FindsBowlMinimum)
{
    BowlObjective obj;
    Rng rng(2);
    const SearchTrace trace = BayesOpt().run(obj, 60, rng);
    EXPECT_LT(trace.best(), 0.01);
    const auto best = trace.bestPoint();
    EXPECT_NEAR(best[0], 0.3, 0.15);
    EXPECT_NEAR(best[1], -0.2, 0.15);
}

TEST(BayesOpt, BeatsRandomOnSmoothProblem)
{
    // Averaged over seeds, BO should reach a much better optimum on
    // a smooth 2-D bowl within the same budget.
    double bo_total = 0.0;
    double random_total = 0.0;
    for (int seed = 0; seed < 3; ++seed) {
        BowlObjective obj_bo;
        Rng rng_bo(seed);
        bo_total += BayesOpt().run(obj_bo, 40, rng_bo).best();
        BowlObjective obj_rnd;
        Rng rng_rnd(seed);
        random_total +=
            RandomSearch().run(obj_rnd, 40, rng_rnd).best();
    }
    EXPECT_LT(bo_total, random_total);
}

TEST(BayesOpt, SurvivesInvalidRegions)
{
    PartiallyInvalidObjective obj;
    Rng rng(3);
    const SearchTrace trace = BayesOpt().run(obj, 40, rng);
    EXPECT_EQ(trace.points.size(), 40u);
    EXPECT_LT(trace.best(), 0.05);
}

TEST(BayesOpt, SamplesStayInBox)
{
    BowlObjective obj;
    Rng rng(4);
    const SearchTrace trace = BayesOpt().run(obj, 40, rng);
    for (const TracePoint &p : trace.points) {
        EXPECT_GE(p.x[0], -1.0);
        EXPECT_LE(p.x[0], 1.0);
        EXPECT_GE(p.x[1], -1.0);
        EXPECT_LE(p.x[1], 1.0);
    }
}

TEST(BayesOpt, DeterministicForSeed)
{
    BowlObjective a;
    BowlObjective b;
    Rng rng_a(9);
    Rng rng_b(9);
    const SearchTrace ta = BayesOpt().run(a, 25, rng_a);
    const SearchTrace tb = BayesOpt().run(b, 25, rng_b);
    for (std::size_t i = 0; i < 25; ++i)
        EXPECT_EQ(ta.points[i].value, tb.points[i].value);
}

TEST(BayesOpt, SubsetOfDataCapKeepsRunning)
{
    BoOptions options;
    options.maxGpPoints = 16; // force the subset path early
    options.uniformCandidates = 64;
    options.localCandidates = 16;
    BowlObjective obj;
    Rng rng(5);
    const SearchTrace trace = BayesOpt(options).run(obj, 50, rng);
    EXPECT_EQ(trace.points.size(), 50u);
    EXPECT_LT(trace.best(), 0.05);
}

} // namespace
} // namespace vaesa
