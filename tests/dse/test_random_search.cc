/** @file Unit tests for random search. */

#include <gtest/gtest.h>

#include "dse/random_search.hh"

namespace vaesa {
namespace {

/** Quadratic bowl with minimum at the box center. */
class BowlObjective : public Objective
{
  public:
    std::size_t dim() const override { return 2; }
    std::vector<double> lowerBounds() const override
    {
        return {-1.0, -1.0};
    }
    std::vector<double> upperBounds() const override
    {
        return {1.0, 1.0};
    }
    double
    evaluate(const std::vector<double> &x) override
    {
        ++evals;
        return x[0] * x[0] + x[1] * x[1];
    }

    int evals = 0;
};

TEST(RandomSearch, UsesExactBudget)
{
    BowlObjective obj;
    Rng rng(1);
    const SearchTrace trace = RandomSearch().run(obj, 37, rng);
    EXPECT_EQ(trace.points.size(), 37u);
    EXPECT_EQ(obj.evals, 37);
}

TEST(RandomSearch, SamplesStayInBox)
{
    BowlObjective obj;
    Rng rng(2);
    const SearchTrace trace = RandomSearch().run(obj, 100, rng);
    for (const TracePoint &p : trace.points) {
        EXPECT_GE(p.x[0], -1.0);
        EXPECT_LT(p.x[0], 1.0);
        EXPECT_GE(p.x[1], -1.0);
        EXPECT_LT(p.x[1], 1.0);
    }
}

TEST(RandomSearch, FindsDecentPointEventually)
{
    BowlObjective obj;
    Rng rng(3);
    const SearchTrace trace = RandomSearch().run(obj, 500, rng);
    EXPECT_LT(trace.best(), 0.05);
}

TEST(RandomSearch, DeterministicForSeed)
{
    BowlObjective a;
    BowlObjective b;
    Rng rng_a(7);
    Rng rng_b(7);
    const SearchTrace ta = RandomSearch().run(a, 20, rng_a);
    const SearchTrace tb = RandomSearch().run(b, 20, rng_b);
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(ta.points[i].value, tb.points[i].value);
}

TEST(RandomSearch, ZeroBudgetProducesEmptyTrace)
{
    BowlObjective obj;
    Rng rng(1);
    EXPECT_TRUE(RandomSearch().run(obj, 0, rng).points.empty());
}

} // namespace
} // namespace vaesa
