/** @file Tests for BayesOpt option handling and edge cases. */

#include <gtest/gtest.h>

#include <cmath>

#include "dse/bo.hh"

namespace vaesa {
namespace {

class Bowl : public Objective
{
  public:
    std::size_t dim() const override { return 2; }
    std::vector<double> lowerBounds() const override
    {
        return {-1.0, -1.0};
    }
    std::vector<double> upperBounds() const override
    {
        return {1.0, 1.0};
    }
    double
    evaluate(const std::vector<double> &x) override
    {
        return x[0] * x[0] + x[1] * x[1];
    }
};

/** Objective where every point is invalid. */
class AlwaysInvalid : public Bowl
{
  public:
    double
    evaluate(const std::vector<double> &x) override
    {
        ++evals;
        (void)x;
        return invalidScore;
    }

    int evals = 0;
};

TEST(BoOptions, WarmupLargerThanBudgetIsClamped)
{
    BoOptions options;
    options.initSamples = 100;
    Bowl obj;
    Rng rng(1);
    const SearchTrace trace = BayesOpt(options).run(obj, 7, rng);
    EXPECT_EQ(trace.points.size(), 7u);
}

TEST(BoOptions, AllInvalidStillConsumesBudget)
{
    AlwaysInvalid obj;
    Rng rng(2);
    const SearchTrace trace = BayesOpt().run(obj, 25, rng);
    EXPECT_EQ(trace.points.size(), 25u);
    EXPECT_EQ(obj.evals, 25);
    EXPECT_TRUE(std::isinf(trace.best()));
}

TEST(BoOptions, RbfKernelWorksToo)
{
    BoOptions options;
    options.kernel = GaussianProcess::Kernel::Rbf;
    Bowl obj;
    Rng rng(3);
    const SearchTrace trace = BayesOpt(options).run(obj, 50, rng);
    EXPECT_LT(trace.best(), 0.02);
}

TEST(BoOptions, TinyCandidateBudgetStillRuns)
{
    BoOptions options;
    options.uniformCandidates = 4;
    options.localCandidates = 0;
    Bowl obj;
    Rng rng(4);
    const SearchTrace trace = BayesOpt(options).run(obj, 30, rng);
    EXPECT_EQ(trace.points.size(), 30u);
    EXPECT_LT(trace.best(), 0.5);
}

TEST(BoOptions, FrequentHyperRefitMatchesBudget)
{
    BoOptions options;
    options.hyperRefitInterval = 1;
    Bowl obj;
    Rng rng(5);
    const SearchTrace trace = BayesOpt(options).run(obj, 20, rng);
    EXPECT_EQ(trace.points.size(), 20u);
}

TEST(BoOptions, ZeroBudgetIsEmpty)
{
    Bowl obj;
    Rng rng(6);
    EXPECT_TRUE(BayesOpt().run(obj, 0, rng).points.empty());
}

TEST(BoOptions, PenaltyFactorKeepsGpFiniteWithMixedValidity)
{
    // Half the box is invalid; the GP must still steer into the
    // valid half and find the optimum there.
    class HalfInvalid : public Bowl
    {
      public:
        double
        evaluate(const std::vector<double> &x) override
        {
            if (x[0] > 0.0)
                return invalidScore;
            const double dx = x[0] + 0.5;
            return dx * dx + x[1] * x[1];
        }
    };
    HalfInvalid obj;
    Rng rng(7);
    const SearchTrace trace = BayesOpt().run(obj, 60, rng);
    EXPECT_LT(trace.best(), 0.05);
    EXPECT_LT(trace.bestPoint()[0], 0.0);
}

TEST(BoOptions, ContinueRunDoesNotShrinkTrace)
{
    Bowl obj;
    Rng rng(8);
    BayesOpt bo;
    SearchTrace trace = bo.run(obj, 12, rng);
    const double best_before = trace.best();
    bo.continueRun(obj, trace, 0, rng);
    EXPECT_EQ(trace.points.size(), 12u);
    bo.continueRun(obj, trace, 5, rng);
    EXPECT_EQ(trace.points.size(), 17u);
    EXPECT_LE(trace.best(), best_before);
}

} // namespace
} // namespace vaesa
