/** @file Unit tests for Gaussian-process regression. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dse/bo.hh"
#include "dse/gp.hh"
#include "util/rng.hh"

namespace vaesa {
namespace {

TEST(NormalDistribution, PdfAndCdfKnownValues)
{
    EXPECT_NEAR(normalPdf(0.0), 0.3989422804, 1e-9);
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(GaussianProcess, InterpolatesTrainingPointsWithLowNoise)
{
    GaussianProcess gp(GaussianProcess::Kernel::Rbf,
                       {0.5, 1e-8});
    const std::vector<std::vector<double>> xs{
        {0.0}, {0.5}, {1.0}};
    const std::vector<double> ys{1.0, -1.0, 2.0};
    gp.fit(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto pred = gp.predict(xs[i]);
        EXPECT_NEAR(pred.mean, ys[i], 1e-3);
        EXPECT_LT(pred.var, 1e-4);
    }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp(GaussianProcess::Kernel::Matern52,
                       {0.3, 1e-6});
    gp.fit({{0.0}, {0.1}, {0.2}}, {0.0, 0.1, 0.2});
    const double var_near = gp.predict({0.1}).var;
    const double var_far = gp.predict({3.0}).var;
    EXPECT_GT(var_far, var_near * 100.0);
}

TEST(GaussianProcess, PredictionRevertsToMeanFarAway)
{
    GaussianProcess gp(GaussianProcess::Kernel::Rbf, {0.2, 1e-6});
    gp.fit({{0.0}, {1.0}}, {5.0, 9.0});
    // Far from data the posterior mean reverts to the y mean (7).
    EXPECT_NEAR(gp.predict({100.0}).mean, 7.0, 1e-6);
}

TEST(GaussianProcess, Matern52SmoothFitOnSine)
{
    GaussianProcess gp(GaussianProcess::Kernel::Matern52,
                       {0.4, 1e-6});
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 20; ++i) {
        const double x = i / 20.0 * 2.0 * M_PI;
        xs.push_back({x});
        ys.push_back(std::sin(x));
    }
    gp.fit(xs, ys);
    for (double x : {0.7, 2.3, 4.1, 5.9}) {
        EXPECT_NEAR(gp.predict({x}).mean, std::sin(x), 0.05);
    }
}

TEST(GaussianProcess, VarianceIsNonNegative)
{
    Rng rng(1);
    GaussianProcess gp;
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 30; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.normal());
    }
    gp.fit(xs, ys);
    for (int i = 0; i < 50; ++i) {
        const auto pred = gp.predict({rng.uniform(), rng.uniform()});
        EXPECT_GE(pred.var, 0.0);
    }
}

TEST(GaussianProcess, HyperSearchImprovesLikelihood)
{
    Rng rng(2);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 40; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        xs.push_back({x});
        ys.push_back(std::sin(8.0 * x));
    }
    GaussianProcess fixed(GaussianProcess::Kernel::Matern52,
                          {1.6, 1e-2});
    fixed.fit(xs, ys);
    const double lik_fixed = fixed.logMarginalLikelihood();

    GaussianProcess tuned(GaussianProcess::Kernel::Matern52);
    tuned.fitWithHyperSearch(xs, ys);
    EXPECT_GE(tuned.logMarginalLikelihood(), lik_fixed);
}

TEST(GaussianProcess, HandlesConstantLabels)
{
    GaussianProcess gp;
    gp.fit({{0.0}, {1.0}, {2.0}}, {3.0, 3.0, 3.0});
    EXPECT_NEAR(gp.predict({0.5}).mean, 3.0, 1e-6);
}

TEST(GaussianProcess, DuplicateObservationsKeepSigmaFinite)
{
    // Regression: two identical observations drive the predictive
    // variance at the duplicated point negative (or, with a
    // degenerate solve, NaN) through catastrophic cancellation; the
    // old (var < 0) clamp passed NaN straight through, so
    // sqrt(var) -> NaN sigma poisoned every EI comparison and the
    // acquisition loop went blind. The clamp must be NaN-safe.
    GaussianProcess gp(GaussianProcess::Kernel::Rbf, {0.5, 1e-10});
    gp.fit({{0.25, 0.75}, {0.25, 0.75}}, {2.0, 2.0});
    const auto pred = gp.predict({0.25, 0.75});
    ASSERT_TRUE(std::isfinite(pred.mean));
    ASSERT_TRUE(std::isfinite(pred.var));
    EXPECT_GE(pred.var, 0.0);
    const double ei = expectedImprovement(pred, 1.0);
    EXPECT_TRUE(std::isfinite(ei));
    EXPECT_GE(ei, 0.0);
}

TEST(GaussianProcess, ExpectedImprovementIsNanSafe)
{
    // std::max(NaN, 0.0) returns NaN; the EI clamp must not use it.
    GaussianProcess::Prediction pred;
    pred.mean = 2.0;
    pred.var = std::numeric_limits<double>::quiet_NaN();
    const double ei = expectedImprovement(pred, 5.0);
    EXPECT_TRUE(std::isfinite(ei));
    EXPECT_DOUBLE_EQ(ei, 3.0); // sigma clamps to 0: best - mean
}

TEST(GaussianProcess, SingleObservationFitIsFinite)
{
    // stddev() of one label is NaN; fit() must fall back to unit
    // scale instead of standardizing by NaN.
    GaussianProcess gp;
    gp.fit({{0.5}}, {4.0});
    const auto pred = gp.predict({0.5});
    EXPECT_TRUE(std::isfinite(pred.mean));
    EXPECT_TRUE(std::isfinite(pred.var));
    EXPECT_NEAR(pred.mean, 4.0, 1e-3);
}

TEST(GaussianProcess, RejectsBadInputs)
{
    GaussianProcess gp;
    EXPECT_DEATH(gp.fit({}, {}), "bad observation");
    EXPECT_DEATH(gp.fit({{0.0}}, {1.0, 2.0}), "bad observation");
    EXPECT_DEATH(gp.predict({0.0}), "before fit");
}

class KernelSweep
    : public ::testing::TestWithParam<GaussianProcess::Kernel>
{
};

TEST_P(KernelSweep, KernelIsUnitAtZeroDistance)
{
    GaussianProcess gp(GetParam(), {0.3, 1e-6});
    gp.fit({{0.25, 0.75}}, {1.0});
    // Posterior variance at the training point is ~noise only.
    EXPECT_LT(gp.predict({0.25, 0.75}).var, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelSweep,
    ::testing::Values(GaussianProcess::Kernel::Rbf,
                      GaussianProcess::Kernel::Matern52));

} // namespace
} // namespace vaesa
