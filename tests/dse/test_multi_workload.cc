/**
 * @file
 * Multi-workload co-design layer: traffic-mix parsing, the weighted
 * objective's correctness against per-workload roll-ups, and the
 * bit-identity of its batch path — plus the counted workload
 * evaluation overloads it is built on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "../common/temp_path.hh"
#include "dse/multi_workload.hh"
#include "dse/random_search.hh"
#include "sched/parallel_evaluator.hh"
#include "util/thread_pool.hh"
#include "workload/zoo.hh"

namespace vaesa {
namespace {

/** A tiny counted workload (layer 0 runs 3x, layer 1 once). */
Workload
toyCounted()
{
    std::vector<LayerShape> seq;
    for (int rep = 0; rep < 3; ++rep)
        seq.push_back(alexNetLayers()[2]);
    seq.push_back(alexNetLayers()[6]);
    return countedWorkload("toy", seq);
}

AcceleratorConfig
someConfig(std::uint64_t seed)
{
    Rng rng(seed);
    return designSpace().randomConfig(rng);
}

TEST(CountedEval, EmptyCountsMatchLayerVectorExactly)
{
    Evaluator ev;
    const Workload w{"paper", alexNetLayers(), {}};
    for (std::uint64_t seed : {3u, 11u, 29u}) {
        const AcceleratorConfig config = someConfig(seed);
        const EvalResult a = ev.evaluateWorkload(config, w.layers);
        const EvalResult b = ev.evaluateWorkload(config, w);
        EXPECT_EQ(a.valid, b.valid);
        EXPECT_EQ(a.latencyCycles, b.latencyCycles);
        EXPECT_EQ(a.energyPj, b.energyPj);
        EXPECT_EQ(a.edp, b.edp);
    }
}

TEST(CountedEval, CountsWeightTheRollUp)
{
    Evaluator ev;
    const Workload w = toyCounted();
    ASSERT_EQ(w.layers.size(), 2u);
    const AcceleratorConfig config = someConfig(5);
    const EvalResult counted = ev.evaluateWorkload(config, w);
    const EvalResult l0 = ev.evaluateLayer(config, w.layers[0]);
    const EvalResult l1 = ev.evaluateLayer(config, w.layers[1]);
    ASSERT_TRUE(counted.valid);
    ASSERT_TRUE(l0.valid && l1.valid);
    EXPECT_EQ(counted.latencyCycles,
              3.0 * l0.latencyCycles + 1.0 * l1.latencyCycles);
    EXPECT_EQ(counted.energyPj,
              3.0 * l0.energyPj + 1.0 * l1.energyPj);
    EXPECT_EQ(counted.edp,
              counted.latencyCycles * counted.energyPj);
}

TEST(CountedEval, BatchMatchesSerialCountedRollUp)
{
    Evaluator ev;
    ThreadPool pool(4);
    const Workload w = toyCounted();
    std::vector<AcceleratorConfig> configs;
    Rng rng(17);
    for (int i = 0; i < 24; ++i)
        configs.push_back(designSpace().randomConfig(rng));
    // Exact duplicates exercise the dedup path.
    configs.push_back(configs[0]);
    configs.push_back(configs[5]);

    const std::vector<EvalResult> batch =
        evaluateConfigBatch(ev, configs, w, pool);
    ASSERT_EQ(batch.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const EvalResult serial =
            ev.evaluateWorkload(configs[i], w);
        EXPECT_EQ(batch[i].valid, serial.valid) << i;
        EXPECT_EQ(batch[i].latencyCycles, serial.latencyCycles)
            << i;
        EXPECT_EQ(batch[i].energyPj, serial.energyPj) << i;
        EXPECT_EQ(batch[i].edp, serial.edp) << i;
    }
}

TEST(TrafficMix, MakeRejectsBadInput)
{
    EXPECT_FALSE(makeTrafficMix({}).ok());
    EXPECT_FALSE(makeTrafficMix({{"no_such_net", 1.0}}).ok());
    EXPECT_FALSE(makeTrafficMix({{"alexnet", 0.0}}).ok());
    EXPECT_FALSE(makeTrafficMix({{"alexnet", -2.0}}).ok());
    EXPECT_FALSE(
        makeTrafficMix(
            {{"alexnet", std::numeric_limits<double>::infinity()}})
            .ok());
    EXPECT_FALSE(
        makeTrafficMix({{"alexnet", 1.0}, {"alexnet", 2.0}}).ok());
}

TEST(TrafficMix, MakeResolvesBuiltInAndZooNames)
{
    const auto mix =
        makeTrafficMix({{"resnet50", 2.0}, {"bert_base", 1.0}});
    ASSERT_TRUE(mix.ok());
    ASSERT_EQ(mix.value().entries.size(), 2u);
    EXPECT_EQ(mix.value().entries[0].workload.name, "resnet50");
    EXPECT_EQ(mix.value().entries[0].weight, 2.0);
    EXPECT_EQ(mix.value().entries[1].workload.name, "bert_base");
    EXPECT_TRUE(mix.value().entries[1].workload.hasCounts());
    EXPECT_EQ(mix.value().totalWeight(), 3.0);
}

class MixFileTest : public ::testing::Test
{
  protected:
    std::string
    tempPath()
    {
        return testing::uniqueTempPath("vaesa_mix", ".txt");
    }

    void TearDown() override { std::remove(tempPath().c_str()); }
};

TEST_F(MixFileTest, ParsesCommentsBlanksAndEntries)
{
    {
        std::ofstream out(tempPath());
        out << "# serving traffic, relative rates\n";
        out << "\n";
        out << "bert_base 3.5\n";
        out << "mobilenet_v2 1 # edge offload\n";
    }
    const auto mix = parseTrafficMixFile(tempPath());
    ASSERT_TRUE(mix.ok()) << mix.error().describe();
    ASSERT_EQ(mix.value().entries.size(), 2u);
    EXPECT_EQ(mix.value().entries[0].workload.name, "bert_base");
    EXPECT_EQ(mix.value().entries[0].weight, 3.5);
    EXPECT_EQ(mix.value().entries[1].weight, 1.0);
}

TEST_F(MixFileTest, MalformedLinesNameFileAndLine)
{
    {
        std::ofstream out(tempPath());
        out << "bert_base 1.0\n";
        out << "mobilenet_v2\n"; // missing weight
    }
    const auto mix = parseTrafficMixFile(tempPath());
    ASSERT_FALSE(mix.ok());
    EXPECT_EQ(mix.error().kind, LoadError::Kind::Malformed);
    EXPECT_EQ(mix.error().file, tempPath());
    EXPECT_EQ(mix.error().line, 2u);
}

TEST_F(MixFileTest, UnknownWorkloadIsAStructuredError)
{
    {
        std::ofstream out(tempPath());
        out << "not_a_network 1.0\n";
    }
    const auto mix = parseTrafficMixFile(tempPath());
    ASSERT_FALSE(mix.ok());
    EXPECT_EQ(mix.error().kind, LoadError::Kind::Malformed);
    EXPECT_EQ(mix.error().file, tempPath());
    EXPECT_NE(mix.error().message.find("unknown workload"),
              std::string::npos);
}

TEST_F(MixFileTest, MissingFileReportsOpenFailed)
{
    const auto mix = parseTrafficMixFile(::testing::TempDir() +
                                         "/no_mix_here.txt");
    ASSERT_FALSE(mix.ok());
    EXPECT_EQ(mix.error().kind, LoadError::Kind::OpenFailed);
}

TEST(MixLayerPool, MergesSharedShapesAndWeightsByOccurrence)
{
    TrafficMix mix;
    mix.entries.push_back({toyCounted(), 2.0});
    // Second entry shares toyCounted's layer 0 shape (alexnet conv3)
    // with count 1 and weight 5.
    mix.entries.push_back(
        {countedWorkload("other", {alexNetLayers()[2]}), 5.0});

    std::vector<double> weights;
    const std::vector<LayerShape> pool = mixLayerPool(mix, &weights);
    ASSERT_EQ(pool.size(), 2u);
    ASSERT_EQ(weights.size(), 2u);
    // conv3: 2.0 * 3 occurrences + 5.0 * 1 occurrence.
    EXPECT_TRUE(pool[0].sameShape(alexNetLayers()[2]));
    EXPECT_EQ(weights[0], 2.0 * 3 + 5.0 * 1);
    EXPECT_EQ(weights[1], 2.0 * 1);
}

TEST(MultiWorkload, EvaluateIsTheWeightedSumOfWorkloadMetrics)
{
    Evaluator ev;
    const auto mix =
        makeTrafficMix({{"alexnet", 2.0}, {"deepbench", 0.5}});
    ASSERT_TRUE(mix.ok());
    MultiWorkloadObjective objective(ev, mix.value());
    EXPECT_EQ(objective.dim(),
              static_cast<std::size_t>(numHwParams));

    const std::vector<double> x(numHwParams, 0.75);
    const double score = objective.evaluate(x);
    const AcceleratorConfig config = objective.decode(x);
    const EvalResult a =
        ev.evaluateWorkload(config, workloadByName("alexnet"));
    const EvalResult b =
        ev.evaluateWorkload(config, workloadByName("deepbench"));
    ASSERT_TRUE(a.valid && b.valid);
    EXPECT_EQ(score, 2.0 * a.edp + 0.5 * b.edp);
}

TEST(MultiWorkload, BatchPathIsBitIdenticalToSerial)
{
    Evaluator ev;
    ThreadPool pool(4);
    const auto mix =
        makeTrafficMix({{"alexnet", 1.0}, {"dlrm", 3.0}});
    ASSERT_TRUE(mix.ok());

    std::vector<std::vector<double>> xs;
    Rng rng(23);
    for (int i = 0; i < 20; ++i) {
        std::vector<double> x(numHwParams);
        for (double &v : x)
            v = rng.uniform();
        xs.push_back(x);
    }

    MultiWorkloadObjective serialObj(ev, mix.value());
    std::vector<double> serial;
    for (const auto &x : xs)
        serial.push_back(serialObj.evaluate(x));

    MultiWorkloadObjective batchObj(ev, mix.value());
    const std::vector<double> batched =
        batchObj.evaluateBatch(xs, &pool);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(batched[i], serial[i]) << i;
}

TEST(MultiWorkload, SearchRunsOnAZooMix)
{
    Evaluator ev;
    ThreadPool pool(4);
    const auto mix =
        makeTrafficMix({{"mobilenet_v2", 1.0}, {"dlrm", 1.0}});
    ASSERT_TRUE(mix.ok());
    MultiWorkloadObjective objective(ev, mix.value());
    Rng rng(7);
    const SearchTrace trace =
        RandomSearch().run(objective, 24, rng, &pool);
    EXPECT_EQ(trace.points.size(), 24u);
    EXPECT_TRUE(std::isfinite(trace.best()));
    EXPECT_GT(trace.best(), 0.0);
}

TEST(MultiWorkload, RejectsEmptyMix)
{
    Evaluator ev;
    EXPECT_DEATH(MultiWorkloadObjective(ev, TrafficMix{}),
                 "non-empty mix");
}

} // namespace
} // namespace vaesa
