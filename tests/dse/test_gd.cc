/** @file Unit tests for the projected gradient-descent driver. */

#include <gtest/gtest.h>

#include <cmath>

#include "dse/gd.hh"

namespace vaesa {
namespace {

/** f(x) = sum (x_i - 1)^2. */
double
shiftedBowl(const std::vector<double> &x, std::vector<double> *grad)
{
    double value = 0.0;
    if (grad)
        grad->assign(x.size(), 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - 1.0;
        value += d * d;
        if (grad)
            (*grad)[i] = 2.0 * d;
    }
    return value;
}

TEST(GradientDescent, ConvergesToMinimum)
{
    GdOptions options;
    options.learningRate = 0.05;
    options.momentum = 0.0;
    options.steps = 200;
    const GdResult r =
        GradientDescent(options).run(shiftedBowl, {5.0, -3.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
    EXPECT_LT(r.value, 1e-5);
}

TEST(GradientDescent, TraceHasStepsPlusOneEntries)
{
    GdOptions options;
    options.steps = 10;
    const GdResult r =
        GradientDescent(options).run(shiftedBowl, {0.0});
    EXPECT_EQ(r.valueTrace.size(), 11u);
    EXPECT_DOUBLE_EQ(r.valueTrace.front(), 1.0);
    EXPECT_DOUBLE_EQ(r.valueTrace.back(), r.value);
}

TEST(GradientDescent, ZeroStepsReturnsStart)
{
    GdOptions options;
    options.steps = 0;
    const GdResult r =
        GradientDescent(options).run(shiftedBowl, {4.0});
    EXPECT_DOUBLE_EQ(r.x[0], 4.0);
    EXPECT_DOUBLE_EQ(r.value, 9.0);
}

TEST(GradientDescent, ProjectionKeepsIterateInBox)
{
    GdOptions options;
    options.learningRate = 0.5;
    options.momentum = 0.9;
    options.steps = 50;
    options.lower = {-0.5};
    options.upper = {0.5};
    const GdResult r =
        GradientDescent(options).run(shiftedBowl, {0.0});
    // The unconstrained minimum (1.0) is outside the box, so GD must
    // stop at the boundary.
    EXPECT_DOUBLE_EQ(r.x[0], 0.5);
}

TEST(GradientDescent, MomentumSpeedsConvergence)
{
    GdOptions slow;
    slow.learningRate = 0.01;
    slow.momentum = 0.0;
    slow.steps = 50;
    GdOptions fast = slow;
    fast.momentum = 0.9;
    const double v_slow =
        GradientDescent(slow).run(shiftedBowl, {10.0}).value;
    const double v_fast =
        GradientDescent(fast).run(shiftedBowl, {10.0}).value;
    EXPECT_LT(v_fast, v_slow);
}

TEST(GradientDescent, BoundSizeMismatchPanics)
{
    GdOptions options;
    options.lower = {0.0};
    options.upper = {1.0};
    EXPECT_DEATH(
        GradientDescent(options).run(shiftedBowl, {0.0, 0.0}),
        "dimensionality");
}

TEST(GradientDescent, GradientSizeMismatchPanics)
{
    const DifferentiableFn bad =
        [](const std::vector<double> &x, std::vector<double> *grad) {
            if (grad)
                grad->assign(x.size() + 1, 0.0);
            return 0.0;
        };
    GdOptions options;
    options.steps = 1;
    EXPECT_DEATH(GradientDescent(options).run(bad, {0.0}),
                 "dimensionality");
}

TEST(GradientDescent, DescendsNonConvexSurfaceLocally)
{
    // f(x) = sin(3x) + 0.1 x^2 has several local minima; GD from a
    // point should reduce the value, not necessarily find the global.
    const DifferentiableFn wavy =
        [](const std::vector<double> &x, std::vector<double> *grad) {
            if (grad) {
                grad->assign(1, 3.0 * std::cos(3.0 * x[0]) +
                                    0.2 * x[0]);
            }
            return std::sin(3.0 * x[0]) + 0.1 * x[0] * x[0];
        };
    GdOptions options;
    options.learningRate = 0.02;
    options.steps = 100;
    const GdResult r = GradientDescent(options).run(wavy, {1.0});
    EXPECT_LT(r.value, wavy({1.0}, nullptr));
}

} // namespace
} // namespace vaesa
