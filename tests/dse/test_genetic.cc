/** @file Unit tests for genetic search and simulated annealing. */

#include <gtest/gtest.h>

#include <cmath>

#include "dse/genetic.hh"
#include "dse/random_search.hh"

namespace vaesa {
namespace {

/** Shifted quadratic bowl with minimum at (0.3, -0.2). */
class BowlObjective : public Objective
{
  public:
    std::size_t dim() const override { return 2; }
    std::vector<double> lowerBounds() const override
    {
        return {-1.0, -1.0};
    }
    std::vector<double> upperBounds() const override
    {
        return {1.0, 1.0};
    }
    double
    evaluate(const std::vector<double> &x) override
    {
        ++evals;
        const double dx = x[0] - 0.3;
        const double dy = x[1] + 0.2;
        return dx * dx + dy * dy;
    }

    int evals = 0;
};

/** Rastrigin-like multimodal surface (many local minima). */
class MultimodalObjective : public Objective
{
  public:
    std::size_t dim() const override { return 2; }
    std::vector<double> lowerBounds() const override
    {
        return {-2.0, -2.0};
    }
    std::vector<double> upperBounds() const override
    {
        return {2.0, 2.0};
    }
    double
    evaluate(const std::vector<double> &x) override
    {
        double acc = 0.0;
        for (double xi : x) {
            acc += xi * xi - std::cos(3.0 * M_PI * xi) + 1.0;
        }
        return acc;
    }
};

/** Objective with an invalid half-plane. */
class HalfInvalidObjective : public BowlObjective
{
  public:
    double
    evaluate(const std::vector<double> &x) override
    {
        if (x[1] > 0.5)
            return invalidScore;
        return BowlObjective::evaluate(x);
    }
};

TEST(GeneticSearch, UsesExactBudget)
{
    BowlObjective obj;
    Rng rng(1);
    const SearchTrace trace = GeneticSearch().run(obj, 73, rng);
    EXPECT_EQ(trace.points.size(), 73u);
    EXPECT_EQ(obj.evals, 73);
}

TEST(GeneticSearch, FindsBowlMinimum)
{
    BowlObjective obj;
    Rng rng(2);
    const SearchTrace trace = GeneticSearch().run(obj, 200, rng);
    EXPECT_LT(trace.best(), 0.01);
}

TEST(GeneticSearch, BeatsRandomOnMultimodal)
{
    double ga_total = 0.0;
    double random_total = 0.0;
    for (int seed = 0; seed < 3; ++seed) {
        MultimodalObjective obj_ga;
        Rng rng_ga(seed);
        ga_total += GeneticSearch().run(obj_ga, 150, rng_ga).best();
        MultimodalObjective obj_rnd;
        Rng rng_rnd(seed);
        random_total +=
            RandomSearch().run(obj_rnd, 150, rng_rnd).best();
    }
    EXPECT_LE(ga_total, random_total * 1.05);
}

TEST(GeneticSearch, StaysInBox)
{
    BowlObjective obj;
    Rng rng(3);
    const SearchTrace trace = GeneticSearch().run(obj, 100, rng);
    for (const TracePoint &p : trace.points) {
        for (double v : p.x) {
            EXPECT_GE(v, -1.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(GeneticSearch, SurvivesInvalidRegions)
{
    HalfInvalidObjective obj;
    Rng rng(4);
    const SearchTrace trace = GeneticSearch().run(obj, 120, rng);
    EXPECT_LT(trace.best(), 0.05);
}

TEST(GeneticSearch, DeterministicForSeed)
{
    BowlObjective a;
    BowlObjective b;
    Rng rng_a(5);
    Rng rng_b(5);
    const SearchTrace ta = GeneticSearch().run(a, 60, rng_a);
    const SearchTrace tb = GeneticSearch().run(b, 60, rng_b);
    for (std::size_t i = 0; i < 60; ++i)
        EXPECT_EQ(ta.points[i].value, tb.points[i].value);
}

TEST(SimulatedAnnealing, UsesExactBudget)
{
    BowlObjective obj;
    Rng rng(6);
    const SearchTrace trace =
        SimulatedAnnealing().run(obj, 41, rng);
    EXPECT_EQ(trace.points.size(), 41u);
}

TEST(SimulatedAnnealing, FindsBowlMinimum)
{
    BowlObjective obj;
    Rng rng(7);
    const SearchTrace trace =
        SimulatedAnnealing().run(obj, 300, rng);
    EXPECT_LT(trace.best(), 0.02);
}

TEST(SimulatedAnnealing, StaysInBox)
{
    BowlObjective obj;
    Rng rng(8);
    const SearchTrace trace =
        SimulatedAnnealing().run(obj, 100, rng);
    for (const TracePoint &p : trace.points) {
        for (double v : p.x) {
            EXPECT_GE(v, -1.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(SimulatedAnnealing, SurvivesInvalidStartRegion)
{
    HalfInvalidObjective obj;
    Rng rng(9);
    const SearchTrace trace =
        SimulatedAnnealing().run(obj, 200, rng);
    EXPECT_LT(trace.best(), 0.1);
}

TEST(SimulatedAnnealing, ZeroBudgetIsEmpty)
{
    BowlObjective obj;
    Rng rng(10);
    EXPECT_TRUE(SimulatedAnnealing().run(obj, 0, rng).points.empty());
}

TEST(SimulatedAnnealing, CoolingMakesLateMovesGreedier)
{
    // With heavy cooling, late samples should cluster near the best
    // point; compare mean distance of first vs last quartile.
    BowlObjective obj;
    SaOptions options;
    options.coolingRate = 0.9;
    Rng rng(11);
    const SearchTrace trace =
        SimulatedAnnealing(options).run(obj, 200, rng);
    auto mean_value = [&](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        std::size_t n = 0;
        for (std::size_t i = begin; i < end; ++i) {
            acc += trace.points[i].value;
            ++n;
        }
        return acc / n;
    };
    EXPECT_LT(mean_value(150, 200), mean_value(0, 50));
}

} // namespace
} // namespace vaesa
