/** @file Unit tests for Pareto-front utilities. */

#include <gtest/gtest.h>

#include "dse/pareto.hh"

namespace vaesa {
namespace {

TEST(Pareto, SinglePointIsTheFront)
{
    const std::vector<BiPoint> pts{{1.0, 2.0}};
    EXPECT_EQ(paretoFront(pts), std::vector<std::size_t>{0});
}

TEST(Pareto, DominatedPointsExcluded)
{
    const std::vector<BiPoint> pts{
        {1.0, 5.0}, // front
        {2.0, 6.0}, // dominated by (1,5)
        {3.0, 2.0}, // front
        {3.5, 2.0}, // dominated by (3,2)
        {5.0, 1.0}, // front
    };
    const std::vector<std::size_t> expect{0, 2, 4};
    EXPECT_EQ(paretoFront(pts), expect);
}

TEST(Pareto, FrontSortedByFirstCoordinate)
{
    const std::vector<BiPoint> pts{
        {5.0, 1.0}, {1.0, 5.0}, {3.0, 3.0}};
    const auto front = paretoFront(pts);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_LT(pts[front[0]].first, pts[front[1]].first);
    EXPECT_LT(pts[front[1]].first, pts[front[2]].first);
}

TEST(Pareto, DuplicatesKeepFirstOccurrence)
{
    const std::vector<BiPoint> pts{{1.0, 1.0}, {1.0, 1.0}};
    EXPECT_EQ(paretoFront(pts), std::vector<std::size_t>{0});
}

TEST(Pareto, TiesOnOneAxis)
{
    // Same latency, different energy: only the lower-energy one is
    // non-dominated.
    const std::vector<BiPoint> pts{{1.0, 3.0}, {1.0, 2.0}};
    EXPECT_EQ(paretoFront(pts), std::vector<std::size_t>{1});
}

TEST(Pareto, IsDominated)
{
    const std::vector<BiPoint> pts{{1.0, 5.0}, {5.0, 1.0}};
    EXPECT_TRUE(isDominated({2.0, 6.0}, pts));
    EXPECT_TRUE(isDominated({1.0, 6.0}, pts)); // tie on x
    EXPECT_FALSE(isDominated({0.5, 6.0}, pts));
    EXPECT_FALSE(isDominated({3.0, 3.0}, pts));
    EXPECT_FALSE(isDominated({1.0, 5.0}, pts)); // equal, not dominated
}

TEST(Pareto, HypervolumeOfSinglePoint)
{
    // Rectangle between point and reference.
    EXPECT_DOUBLE_EQ(hypervolume({{1.0, 1.0}}, {3.0, 4.0}),
                     2.0 * 3.0);
}

TEST(Pareto, HypervolumeOfStaircase)
{
    // Points (1,3), (2,2), (3,1) with reference (4,4):
    // strips: (2-1)*(4-3) + (3-2)*(4-2) + (4-3)*(4-1) = 1+2+3 = 6.
    const std::vector<BiPoint> front{{1.0, 3.0}, {2.0, 2.0},
                                     {3.0, 1.0}};
    EXPECT_DOUBLE_EQ(hypervolume(front, {4.0, 4.0}), 6.0);
}

TEST(Pareto, HypervolumeIgnoresDominatedPoints)
{
    const std::vector<BiPoint> with_dup{
        {1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}, {2.5, 3.5}};
    EXPECT_DOUBLE_EQ(hypervolume(with_dup, {4.0, 4.0}), 6.0);
}

TEST(Pareto, HypervolumeEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(hypervolume({}, {1.0, 1.0}), 0.0);
}

TEST(Pareto, HypervolumeRejectsBadReference)
{
    EXPECT_DEATH(hypervolume({{2.0, 2.0}}, {1.0, 3.0}),
                 "reference");
}

TEST(Pareto, MoreFrontPointsNeverShrinkHypervolume)
{
    std::vector<BiPoint> pts{{1.0, 3.0}, {3.0, 1.0}};
    const double before = hypervolume(pts, {5.0, 5.0});
    pts.push_back({2.0, 1.5});
    const double after = hypervolume(pts, {5.0, 5.0});
    EXPECT_GE(after, before);
}

} // namespace
} // namespace vaesa
